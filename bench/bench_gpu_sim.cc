// Wave-level GPU simulation of the ParPaRaw pipeline: per-kernel execution
// breakdown and the chunk-size occupancy effect §5.1 reports ("the small
// spikes for parsing and tagging when using 32, 48, and 64 bytes per chunk
// are due to shared-memory bank conflicts and bad occupancy") — larger
// chunks stage more shared memory per block, reducing resident blocks per
// SM.

#include <cstdio>

#include "bench_util.h"
#include "core/parser.h"
#include "sim/gpu_sim.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

}  // namespace

int main() {
  PrintHeader("GPU wave-level simulation of the pipeline");
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(13, bytes);
  ParseOptions options;
  options.schema = YelpSchema();
  auto parsed = Parser::Parse(data, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const GpuSimulator sim;

  std::printf("\n--- per-kernel breakdown (chunk=31B, %zu MB yelp-like) ---\n",
              bytes >> 20);
  std::vector<GpuKernelResult> kernels;
  const StepTimings t = sim.SimulatePipeline(
      parsed->work, 31, 6, parsed->table.num_columns(), &kernels);
  for (const GpuKernelResult& kernel : kernels) {
    std::printf("  %s\n", kernel.ToString().c_str());
  }
  std::printf("  buckets: %s\n", t.ToString().c_str());

  std::printf("\n--- chunk-size sweep: occupancy of the multi-DFA kernel ---\n");
  std::printf("%8s %10s %8s %12s %14s\n", "chunk", "blk/SM", "waves",
              "parse-ms", "pipeline-ms");
  for (size_t chunk : {8, 16, 24, 31, 32, 48, 64, 128, 256, 512}) {
    std::vector<GpuKernelResult> ks;
    const StepTimings st = sim.SimulatePipeline(
        parsed->work, chunk, 6, parsed->table.num_columns(), &ks);
    std::printf("%6zuB %10d %8lld %12.3f %14.3f\n", chunk,
                ks[0].blocks_per_sm,
                static_cast<long long>(ks[0].num_waves), st.parse_ms,
                st.TotalMs());
  }
  std::printf(
      "\n(Occupancy shrinks as chunks grow; tiny chunks pay per-thread "
      "overhead instead — the two ends of Fig. 9's curve.)\n");
  return 0;
}
