// Extension experiment (§1 outlook: "package-level integration of multiple
// GPU modules"): the streaming pipeline of Fig. 7 scheduled over K modeled
// devices with independent interconnect channels, partitions distributed
// round-robin. Shows where multi-GPU streaming helps (transfer-bound
// regime) and where the carry-over dependency caps it (parse-bound
// regime, because parse(p) waits for parse(p-1)'s carry-over copy).

#include <cstdio>

#include "bench_util.h"
#include "sim/device_model.h"
#include "sim/pcie_model.h"
#include "sim/timeline.h"
#include "stream/streaming_parser.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

}  // namespace

int main() {
  PrintHeader("Multi-GPU streaming extension (Fig. 7 over K devices)");
  const size_t bytes = BenchBytes(16);
  const std::string data = GenerateYelpLike(77, bytes);

  // Derive per-partition stage durations once from a real streaming parse.
  StreamingOptions options;
  options.base.schema = YelpSchema();
  options.partition_size = 1 << 20;
  auto result = StreamingParser::Parse(data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const PcieModel pcie;
  const DeviceModel device;
  const int parts = result->num_partitions;
  std::printf("input %.1f MB, %d partitions of 1 MB\n",
              static_cast<double>(data.size()) / (1 << 20), parts);

  // Two regimes: the measured work (parse-heavier) and a transfer-bound
  // variant (as if the GPU parsed 8x faster than the link).
  for (int regime = 0; regime < 2; ++regime) {
    std::vector<PartitionStages> stages(parts);
    const double h2d = pcie.H2dSeconds(1 << 20);
    const double parse_each =
        regime == 0
            ? device.ModelPipeline(result->work, 9, 6).TotalMs() / 1e3 / parts
            : h2d / 8;
    for (auto& s : stages) {
      s.h2d_seconds = h2d;
      s.parse_seconds = parse_each;
      s.d2h_seconds = pcie.D2hSeconds(
          result->table.TotalBufferBytes() / std::max(parts, 1));
      s.carry_copy_seconds = device.MemorySeconds(2 * 1024);
    }
    std::printf("\n--- %s regime (parse %.3f ms vs transfer %.3f ms per "
                "partition) ---\n",
                regime == 0 ? "measured-work" : "transfer-bound",
                parse_each * 1e3, h2d * 1e3);
    std::printf("%8s %14s %10s\n", "devices", "makespan", "speedup");
    const double base =
        StreamingTimeline::ScheduleMultiDevice(stages, 1).makespan;
    for (int devices : {1, 2, 4, 8}) {
      const double makespan =
          StreamingTimeline::ScheduleMultiDevice(stages, devices).makespan;
      std::printf("%8d %11.3fms %9.2fx\n", devices, makespan * 1e3,
                  base / makespan);
    }
  }
  std::printf(
      "\n(The carry-over dependency of Fig. 7 serialises parse stages "
      "across devices; multi-GPU pays off only while transfers are the "
      "bottleneck.)\n");
  return 0;
}
