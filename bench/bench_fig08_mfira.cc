// Microbenchmark for Fig. 8's multi-fragment in-register array: dynamic
// indexed get/set on the bit-packed representation versus a plain array
// (which on a GPU would spill to slow local memory when indexed
// dynamically — on the CPU the plain array is the upper bound, and the
// bench quantifies MFIRA's packing overhead).

#include <benchmark/benchmark.h>

#include <array>
#include <random>

#include "mfira/mfira.h"

namespace {

using parparaw::Mfira;

constexpr int kAccesses = 4096;

std::array<int, kAccesses> MakeIndices(int modulo) {
  std::array<int, kAccesses> idx;
  std::mt19937 rng(5);
  for (auto& i : idx) i = static_cast<int>(rng() % modulo);
  return idx;
}

void BM_MfiraGet(benchmark::State& state) {
  Mfira<10, 5> array;
  for (int i = 0; i < 10; ++i) array.Set(i, static_cast<uint32_t>(i * 3));
  const auto idx = MakeIndices(10);
  for (auto _ : state) {
    uint32_t sum = 0;
    for (int i : idx) sum += array.Get(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_MfiraGet);

void BM_MfiraSet(benchmark::State& state) {
  Mfira<10, 5> array;
  const auto idx = MakeIndices(10);
  for (auto _ : state) {
    for (int i : idx) array.Set(i, static_cast<uint32_t>(i));
    benchmark::DoNotOptimize(array);
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_MfiraSet);

void BM_PlainArrayGet(benchmark::State& state) {
  std::array<uint8_t, 10> array{};
  for (int i = 0; i < 10; ++i) array[i] = static_cast<uint8_t>(i * 3);
  const auto idx = MakeIndices(10);
  for (auto _ : state) {
    uint32_t sum = 0;
    for (int i : idx) sum += array[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_PlainArrayGet);

void BM_PlainArraySet(benchmark::State& state) {
  std::array<uint8_t, 10> array{};
  const auto idx = MakeIndices(10);
  for (auto _ : state) {
    for (int i : idx) array[i] = static_cast<uint8_t>(i);
    benchmark::DoNotOptimize(array);
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_PlainArraySet);

// The 16-state/4-bit shape backing the state-transition vectors.
void BM_MfiraStateVectorShape(benchmark::State& state) {
  Mfira<16, 4> array;
  const auto idx = MakeIndices(16);
  for (auto _ : state) {
    for (int i : idx) array.Set(i, array.Get(15 - i));
    benchmark::DoNotOptimize(array);
  }
  state.SetItemsProcessed(state.iterations() * kAccesses);
}
BENCHMARK(BM_MfiraStateVectorShape);

}  // namespace

BENCHMARK_MAIN();
