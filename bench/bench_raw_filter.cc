// Raw-filtering ablation (§2, Palkar et al.'s "Filter Before You Parse"):
// for a selective predicate, dropping raw lines with a cheap substring
// scan before the full ParPaRaw parse should beat parse-everything-then-
// filter by roughly the inverse of the selectivity — the claim this bench
// checks on the taxi-like workload (where raw newlines are safe record
// boundaries).

#include <cstdio>

#include "bench_util.h"
#include "core/parser.h"
#include "query/query.h"
#include "query/raw_filter.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

}  // namespace

int main() {
  PrintHeader("Raw filtering ablation (filter before you parse)");
  const size_t bytes = BenchBytes(8);
  const std::string csv = GenerateTaxiLike(55, bytes);
  ParseOptions options;
  options.schema = TaxiSchema();

  QuerySpec spec;
  spec.filter.conjuncts.push_back({6, CompareOp::kEq, "Y"});  // ~5% of rows
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kSum, 16)};

  std::printf("input %.1f MB, predicate store_and_fwd_flag == 'Y'\n\n",
              static_cast<double>(csv.size()) / (1 << 20));
  std::printf("%-28s %12s %12s %10s\n", "plan", "total", "parse-share",
              "rows");

  int64_t matching_full = -1;
  double sum_full = 0;
  {
    Stopwatch watch;
    auto parsed = Parser::Parse(csv, options);
    if (!parsed.ok()) return 1;
    const double parse_ms = watch.ElapsedMillis();
    auto result = RunQuery(parsed->table, spec);
    if (!result.ok()) return 1;
    matching_full = result->columns[0].Value<int64_t>(0);
    sum_full = result->columns[1].Value<double>(0);
    std::printf("%-28s %10.1fms %10.1fms %10lld\n",
                "parse-all, then filter", watch.ElapsedMillis(), parse_ms,
                static_cast<long long>(matching_full));
  }
  {
    Stopwatch watch;
    RawFilterStats stats;
    auto prefiltered = RawFilterLines(csv, ",Y,", &stats);
    if (!prefiltered.ok()) return 1;
    Stopwatch parse_watch;
    auto parsed = Parser::Parse(*prefiltered, options);
    if (!parsed.ok()) return 1;
    const double parse_ms = parse_watch.ElapsedMillis();
    auto result = RunQuery(parsed->table, spec);
    if (!result.ok()) return 1;
    const int64_t matching = result->columns[0].Value<int64_t>(0);
    const double sum = result->columns[1].Value<double>(0);
    std::printf("%-28s %10.1fms %10.1fms %10lld\n",
                "raw-prefilter, then parse", watch.ElapsedMillis(),
                parse_ms, static_cast<long long>(matching));
    std::printf(
        "\nprefilter kept %.1f%% of bytes; answers agree: %s (sum %.2f "
        "vs %.2f)\n",
        stats.Selectivity() * 100,
        (matching == matching_full && sum == sum_full) ? "yes" : "NO",
        sum, sum_full);
  }
  return 0;
}
