// Ablations for the parallel primitives the pipeline is built from:
//  * single-pass decoupled-lookback scan (Merrill & Garland, the paper's
//    §2 building block) vs the classic two-pass reduce-then-scan;
//  * radix-sort digit width (partitioning passes vs per-pass cost);
//  * the composite-operator scan over state-transition vectors.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "dfa/dfa.h"
#include "dfa/state_vector.h"
#include "parallel/radix_sort.h"
#include "parallel/scan.h"
#include "parallel/thread_pool.h"

namespace {

using namespace parparaw;  // NOLINT

ThreadPool* Pool() {
  static ThreadPool& pool = *new ThreadPool();
  return &pool;
}

void BM_ScanDecoupledLookback(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanDecoupledLookback(Pool(), in.data(), out.data(), n,
                          [](int64_t a, int64_t b) { return a + b; },
                          int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanDecoupledLookback)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_ScanTwoPass(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanTwoPass(Pool(), in.data(), out.data(), n,
                [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanTwoPass)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CompositeScanStateVectors(benchmark::State& state) {
  // The context-resolution scan itself: 6-state vectors under ∘.
  const int64_t n = state.range(0);
  std::mt19937 rng(2);
  std::vector<StateVector> in(n, StateVector::Identity(6));
  for (auto& v : in) {
    for (int i = 0; i < 6; ++i) v.Set(i, static_cast<uint8_t>(rng() % 6));
  }
  std::vector<StateVector> out(n, StateVector::Identity(6));
  for (auto _ : state) {
    ExclusiveScan(Pool(), in.data(), out.data(), n,
                  [](const StateVector& a, const StateVector& b) {
                    return Compose(a, b);
                  },
                  StateVector::Identity(6));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CompositeScanStateVectors)->Arg(1 << 14)->Arg(1 << 18);

// The paper's "constant factor" (§3.1): multi-DFA simulation runs |S|
// instances per byte. This ablation sweeps the state count of a synthetic
// ring DFA to quantify the per-state cost of the context step's hot loop.
void BM_MultiDfaStateCount(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  DfaBuilder builder;
  for (int s = 0; s < num_states; ++s) {
    builder.AddState("s" + std::to_string(s), true);
  }
  const int g = builder.AddSymbol('x');
  for (int s = 0; s < num_states; ++s) {
    builder.SetTransition(s, g, (s + 1) % num_states, kSymbolData);
    builder.SetDefaultTransition(s, (s + 2) % num_states, kSymbolData);
  }
  const Dfa dfa = *builder.Build();
  std::vector<uint8_t> input(64 * 1024);
  std::mt19937 rng(1);
  for (auto& b : input) b = (rng() % 4 == 0) ? 'x' : 'y';
  for (auto _ : state) {
    const StateVector v = dfa.TransitionVector(input.data(), input.size());
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_MultiDfaStateCount)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(16);

void BM_RadixSortBitsPerPass(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int64_t n = 1 << 20;
  std::mt19937_64 rng(4);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng() % 17);  // column tags
  RadixSortOptions options;
  options.bits_per_pass = bits;
  options.significant_bits = 5;
  std::vector<uint32_t> perm;
  for (auto _ : state) {
    StableRadixSortPermutation(Pool(), keys, &perm, options);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortBitsPerPass)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
