// Ablations for the parallel primitives the pipeline is built from:
//  * single-pass decoupled-lookback scan (Merrill & Garland, the paper's
//    §2 building block) vs the classic two-pass reduce-then-scan;
//  * radix-sort digit width (partitioning passes vs per-pass cost);
//  * the composite-operator scan over state-transition vectors;
//  * `--transpose-mode`: the symbol-sort vs field-gather transposition
//    head-to-head on the yelp-like workload (wall time, transpose-phase
//    time, modelled peak bytes; --json-out= for BENCH_transpose.json);
//  * `--dialect`: the runtime dialect compiler — compile+minimise+prove
//    latency per spec shape, compiled-CSV-twin vs built-in RFC 4180 parse
//    throughput, and the scalar-fallback walk's cost relative to the
//    pipeline (--json-out= for BENCH_dialect.json);
//  * `--planner`: the adaptive runtime planner (src/plan) against every
//    static kernel/chunk configuration on the bundled corpora, asserting
//    kAuto lands within 5% of the best static choice and never loses to
//    the worst (--json-out= for BENCH_autotune.json).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "dialect/dialect.h"
#include "dfa/dfa.h"
#include "dfa/formats.h"
#include "dfa/state_vector.h"
#include "parallel/radix_sort.h"
#include "parallel/scan.h"
#include "parallel/thread_pool.h"
#include "plan/planner.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace {

using namespace parparaw;  // NOLINT

ThreadPool* Pool() {
  static ThreadPool& pool = *new ThreadPool();
  return &pool;
}

void BM_ScanDecoupledLookback(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanDecoupledLookback(Pool(), in.data(), out.data(), n,
                          [](int64_t a, int64_t b) { return a + b; },
                          int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanDecoupledLookback)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_ScanTwoPass(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanTwoPass(Pool(), in.data(), out.data(), n,
                [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanTwoPass)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CompositeScanStateVectors(benchmark::State& state) {
  // The context-resolution scan itself: 6-state vectors under ∘.
  const int64_t n = state.range(0);
  std::mt19937 rng(2);
  std::vector<StateVector> in(n, StateVector::Identity(6));
  for (auto& v : in) {
    for (int i = 0; i < 6; ++i) v.Set(i, static_cast<uint8_t>(rng() % 6));
  }
  std::vector<StateVector> out(n, StateVector::Identity(6));
  for (auto _ : state) {
    ExclusiveScan(Pool(), in.data(), out.data(), n,
                  [](const StateVector& a, const StateVector& b) {
                    return Compose(a, b);
                  },
                  StateVector::Identity(6));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CompositeScanStateVectors)->Arg(1 << 14)->Arg(1 << 18);

// The paper's "constant factor" (§3.1): multi-DFA simulation runs |S|
// instances per byte. This ablation sweeps the state count of a synthetic
// ring DFA to quantify the per-state cost of the context step's hot loop.
void BM_MultiDfaStateCount(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  DfaBuilder builder;
  for (int s = 0; s < num_states; ++s) {
    builder.AddState("s" + std::to_string(s), true);
  }
  const int g = builder.AddSymbol('x');
  for (int s = 0; s < num_states; ++s) {
    builder.SetTransition(s, g, (s + 1) % num_states, kSymbolData);
    builder.SetDefaultTransition(s, (s + 2) % num_states, kSymbolData);
  }
  const Dfa dfa = *builder.Build();
  std::vector<uint8_t> input(64 * 1024);
  std::mt19937 rng(1);
  for (auto& b : input) b = (rng() % 4 == 0) ? 'x' : 'y';
  for (auto _ : state) {
    const StateVector v = dfa.TransitionVector(input.data(), input.size());
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_MultiDfaStateCount)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(16);

void BM_RadixSortBitsPerPass(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int64_t n = 1 << 20;
  std::mt19937_64 rng(4);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng() % 17);  // column tags
  RadixSortOptions options;
  options.bits_per_pass = bits;
  options.significant_bits = 5;
  std::vector<uint32_t> perm;
  for (auto _ : state) {
    StableRadixSortPermutation(Pool(), keys, &perm, options);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortBitsPerPass)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --transpose-mode: head-to-head of the two TransposeMode implementations
// on the yelp-like workload (quoted text fields — the shape the paper's §5
// string-heavy dataset stresses). Reports wall time, the transpose-phase
// share (tag + partition), and the modelled peak bytes resident for the
// transposition; the field gather should be >= 4x lighter and faster.
struct TransposeRun {
  double seconds = 0;
  double transpose_ms = 0;
  int64_t peak_bytes = 0;
};

int RunTransposeAblation(int argc, char** argv) {
  using namespace parparaw::bench;  // NOLINT
  JsonReport report(argc, argv);
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(42, bytes);
  PrintHeader("transpose mode ablation (yelp-like)");
  std::printf("%zu MB input, best of 3 runs\n\n", bytes >> 20);
  std::printf("%-14s %10s %8s %14s %18s\n", "mode", "seconds", "GB/s",
              "transpose ms", "transpose peak");

  auto run_mode = [&](TransposeMode mode, const char* name,
                      TransposeRun* out) -> bool {
    ParseOptions options;
    options.schema = YelpSchema();
    options.transpose_mode = mode;
    TransposeRun best;
    best.seconds = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto result = Parser::Parse(data, options);
      const double seconds = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("%-14s failed: %s\n", name,
                    result.status().ToString().c_str());
        return false;
      }
      if (seconds < best.seconds) {
        best.seconds = seconds;
        best.transpose_ms =
            result->timings.tag_ms + result->timings.partition_ms;
      }
      best.peak_bytes = result->work.transpose_peak_bytes;
    }
    std::printf("%-14s %10.3f %8.2f %14.1f %18lld\n", name, best.seconds,
                Gbps(bytes, best.seconds), best.transpose_ms,
                static_cast<long long>(best.peak_bytes));
    report.Add(std::string("transpose/") + name,
               {{"seconds", best.seconds},
                {"gbps", Gbps(bytes, best.seconds)},
                {"transpose_ms", best.transpose_ms},
                {"transpose_peak_bytes",
                 static_cast<double>(best.peak_bytes)}});
    *out = best;
    return true;
  };

  TransposeRun sort_run, gather_run;
  if (!run_mode(TransposeMode::kSymbolSort, "symbol_sort", &sort_run) ||
      !run_mode(TransposeMode::kFieldGather, "field_gather", &gather_run)) {
    return 1;
  }
  const double peak_reduction =
      gather_run.peak_bytes > 0
          ? static_cast<double>(sort_run.peak_bytes) /
                static_cast<double>(gather_run.peak_bytes)
          : 0;
  const double transpose_speedup =
      gather_run.transpose_ms > 0
          ? sort_run.transpose_ms / gather_run.transpose_ms
          : 0;
  const double wall_speedup =
      gather_run.seconds > 0 ? sort_run.seconds / gather_run.seconds : 0;
  std::printf(
      "\nfield gather vs symbol sort: %.2fx lower transpose peak, "
      "%.2fx faster transpose phase, %.2fx end-to-end\n",
      peak_reduction, transpose_speedup, wall_speedup);
  report.Add("transpose/ratio", {{"peak_reduction", peak_reduction},
                                 {"transpose_speedup", transpose_speedup},
                                 {"wall_speedup", wall_speedup}});
  report.Flush();
  return 0;
}

// Dialect-compiler ablation: what the runtime construction costs (compile
// + minimise + equivalence proof, per spec shape), and what using a
// compiled dialect costs at parse time — the twin must match the built-in
// within noise since both pack into the identical Dfa representation,
// while the scalar fallback walk shows the price an over-budget dialect
// pays.
int RunDialectAblation(int argc, char** argv) {
  using namespace parparaw::bench;  // NOLINT
  JsonReport report(argc, argv);
  PrintHeader("dialect compiler ablation");

  // (1) Compile latency across the spec shapes, best of 16.
  std::vector<dialect::DialectSpec> specs;
  {
    dialect::DialectSpec csv;
    csv.name = "csv_twin";
    specs.push_back(csv);
    dialect::DialectSpec crlf;
    crlf.name = "crlf_multibyte";
    crlf.record_delimiter = "\r\n";
    specs.push_back(crlf);
    dialect::DialectSpec euro;
    euro.name = "euro_backslash_comment";
    euro.field_delimiter = ';';
    euro.escape_style = dialect::EscapeStyle::kBackslash;
    euro.comment = '#';
    euro.skip_empty_lines = true;
    specs.push_back(euro);
    dialect::DialectSpec fixed;
    fixed.name = "fixed_width_12";
    fixed.fixed_widths = {3, 2, 4, 3};
    fixed.quote = 0;
    specs.push_back(fixed);
  }
  std::printf("%-24s %12s %8s %8s %8s\n", "spec", "compile us", "wide",
              "minimal", "packed");
  for (const dialect::DialectSpec& spec : specs) {
    double best_us = 1e100;
    int original = 0, minimal = 0;
    bool packed = false;
    for (int rep = 0; rep < 16; ++rep) {
      Stopwatch watch;
      auto compiled = dialect::Compile(spec, Pool());
      const double us = watch.ElapsedSeconds() * 1e6;
      if (!compiled.ok()) {
        std::printf("%-24s failed: %s\n", spec.name.c_str(),
                    compiled.status().ToString().c_str());
        return 1;
      }
      best_us = std::min(best_us, us);
      original = compiled->original_states;
      minimal = compiled->minimized_states;
      packed = compiled->within_budget;
    }
    std::printf("%-24s %12.1f %8d %8d %8s\n", spec.name.c_str(), best_us,
                original, minimal, packed ? "yes" : "fallback");
    report.Add("dialect/compile/" + spec.name,
               {{"compile_us", best_us},
                {"original_states", static_cast<double>(original)},
                {"minimized_states", static_cast<double>(minimal)},
                {"within_budget", packed ? 1.0 : 0.0}});
  }

  // (2) Parse throughput: built-in RFC 4180 vs its compiled twin vs the
  // scalar fallback walk, same yelp-like input and schema.
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(42, bytes);
  auto twin = dialect::Compile(specs[0], Pool());
  if (!twin.ok()) return 1;
  std::printf("\n%zu MB yelp-like input, best of 3 runs\n", bytes >> 20);
  std::printf("%-24s %10s %8s\n", "path", "seconds", "GB/s");
  double builtin_seconds = 0, twin_seconds = 0, fallback_seconds = 0;
  auto run_path = [&](const char* name, double* out,
                      auto&& parse) -> bool {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      if (!parse()) {
        std::printf("%-24s failed\n", name);
        return false;
      }
      best = std::min(best, watch.ElapsedSeconds());
    }
    std::printf("%-24s %10.3f %8.2f\n", name, best, Gbps(bytes, best));
    report.Add(std::string("dialect/parse/") + name,
               {{"seconds", best}, {"gbps", Gbps(bytes, best)}});
    *out = best;
    return true;
  };
  const bool ok =
      run_path("builtin_rfc4180", &builtin_seconds,
               [&] {
                 ParseOptions options;
                 options.schema = YelpSchema();
                 return Parser::Parse(data, options).ok();
               }) &&
      run_path("compiled_twin", &twin_seconds,
               [&] {
                 ParseOptions options;
                 options.schema = YelpSchema();
                 options.dialect = specs[0];
                 return Parser::Parse(data, options).ok();
               }) &&
      run_path("scalar_fallback_walk", &fallback_seconds, [&] {
        ParseOptions options;
        options.schema = YelpSchema();
        return dialect::FallbackParse(data, *twin, options).ok();
      });
  if (!ok) return 1;
  const double twin_overhead =
      builtin_seconds > 0 ? twin_seconds / builtin_seconds : 0;
  const double fallback_slowdown =
      twin_seconds > 0 ? fallback_seconds / twin_seconds : 0;
  std::printf(
      "\ncompiled twin vs built-in: %.2fx; scalar fallback vs pipeline: "
      "%.2fx\n",
      twin_overhead, fallback_slowdown);
  report.Add("dialect/ratio", {{"twin_overhead", twin_overhead},
                               {"fallback_slowdown", fallback_slowdown}});
  report.Flush();
  return 0;
}

// --planner: the adaptive planner's kAuto against the static grid on the
// bundled corpora. The interesting corners from BENCH_simd.json: the SWAR
// kernel is slower than scalar on yelp/taxi but ~6x faster on quote-free
// lineitem, and chunk 31 vs 4096 swings throughput ~10x depending on
// whether speculation converges — so no single static row wins everywhere,
// and the planner must land on (or near) the per-corpus winner.
int RunPlannerAblation(int argc, char** argv) {
  using namespace parparaw::bench;  // NOLINT
  JsonReport report(argc, argv);
  const size_t bytes = BenchBytes(8);

  DsvOptions pipe;
  pipe.field_delimiter = '|';
  pipe.quote = 0;
  auto pipe_format = DsvFormat(pipe);
  auto log_format = ExtendedLogFormat();
  if (!pipe_format.ok() || !log_format.ok()) return 1;

  struct Corpus {
    const char* name;
    std::string data;
    Format format;  // empty = RFC 4180
    Schema schema;  // empty = inferred strings
  };
  const Corpus corpora[] = {
      {"yelp_like", GenerateYelpLike(42, bytes), Format(), YelpSchema()},
      {"taxi_like", GenerateTaxiLike(42, bytes), Format(), TaxiSchema()},
      {"lineitem_pipe", GenerateLineitemLike(42, bytes), *pipe_format,
       LineitemSchema()},
      {"log_like", GenerateLogLike(42, bytes), *log_format, Schema()},
  };

  // The static grid: the rows a user without a planner would have to pick
  // blind. kSwarForced pins the portable SWAR level underneath the simd
  // kernel so the grid covers machines without a vector ISA too.
  struct Config {
    const char* name;
    simd::KernelKind kernel;
    size_t chunk;
    bool force_swar;
  };
  const Config static_configs[] = {
      {"scalar_31", simd::KernelKind::kScalar, 31, false},
      {"simd_31", simd::KernelKind::kSimd, 31, false},
      {"simd_1024", simd::KernelKind::kSimd, 1024, false},
      {"simd_2048", simd::KernelKind::kSimd, 2048, false},
      {"simd_4096", simd::KernelKind::kSimd, 4096, false},
      {"swar_31", simd::KernelKind::kSimd, 31, true},
  };

  constexpr int kReps = 5;
  constexpr int kAttempts = 3;
  PrintHeader("adaptive planner ablation");
  std::printf("%zu MB per corpus, median of %d interleaved runs\n",
              bytes >> 20, kReps);

  constexpr size_t kNumStatic = std::size(static_configs);
  bool all_pass = true;
  for (const Corpus& corpus : corpora) {
    std::printf("\n--- %s ---\n", corpus.name);
    std::printf("%-12s %10s %8s\n", "config", "seconds", "GB/s");

    // Timing discipline, learned the hard way on a noisy shared host:
    //  - round-robin across rows per rep, so machine drift spreads evenly;
    //  - an untimed warmup parse before every timed one, so each row is
    //    measured with caches and predictors trained on ITS OWN config
    //    (back-to-back rows otherwise inherit their neighbour's state);
    //  - median per row, not min: best_static takes a min ACROSS rows, and
    //    comparing mins over unequal draw counts has an extreme-value bias
    //    that penalises whichever single row (auto) it is compared to;
    //  - retry a failing corpus: a multi-second throughput dip on a shared
    //    host fakes a FAIL but never fakes auto being competitive, so keep
    //    the best of up to kAttempts measurements.
    double best_seconds[kNumStatic + 1];
    auto measure = [&]() -> bool {
      double samples[kNumStatic + 1][kReps];
      auto run_once = [&](const ParseOptions& options, bool timed,
                          double* out) -> bool {
        Stopwatch watch;
        auto result = Parser::Parse(corpus.data, options);
        const double seconds = watch.ElapsedSeconds();
        if (!result.ok()) {
          std::fprintf(stderr, "parse failed: %s\n",
                       result.status().ToString().c_str());
          return false;
        }
        if (timed) *out = seconds;
        return true;
      };
      for (int rep = 0; rep < kReps; ++rep) {
        for (size_t c = 0; c <= kNumStatic; ++c) {
          ParseOptions options;
          options.format = corpus.format;
          options.schema = corpus.schema;
          const bool is_auto = c == kNumStatic;
          if (!is_auto) {
            // The auto slot keeps the planner engaged, so its timing
            // honestly includes the sampling pass.
            options.planner = PlannerMode::kDisabled;
            options.kernel = static_configs[c].kernel;
            options.chunk_size = static_configs[c].chunk;
            if (static_configs[c].force_swar) {
              simd::SetForcedKernelLevel(simd::KernelLevel::kSwar);
            }
          }
          const bool ok = run_once(options, /*timed=*/false, nullptr) &&
                          run_once(options, /*timed=*/true, &samples[c][rep]);
          if (!is_auto && static_configs[c].force_swar) {
            simd::SetForcedKernelLevel(std::nullopt);
          }
          if (!ok) return false;
        }
      }
      for (size_t c = 0; c <= kNumStatic; ++c) {
        std::sort(samples[c], samples[c] + kReps);
        best_seconds[c] = samples[c][kReps / 2];
      }
      return true;
    };
    auto ratio_vs_best = [&]() -> double {
      double best_static = 1e100;
      for (size_t c = 0; c < kNumStatic; ++c) {
        best_static = std::min(best_static, best_seconds[c]);
      }
      return best_seconds[kNumStatic] > 0
                 ? best_static / best_seconds[kNumStatic]
                 : 0;
    };
    if (!measure()) return 1;
    for (int attempt = 1; attempt < kAttempts && ratio_vs_best() < 0.95;
         ++attempt) {
      std::printf("auto vs best static %.2fx — remeasuring (attempt %d)\n",
                  ratio_vs_best(), attempt + 1);
      double kept[kNumStatic + 1];
      std::copy(best_seconds, best_seconds + kNumStatic + 1, kept);
      const double kept_ratio = ratio_vs_best();
      if (!measure()) return 1;
      if (ratio_vs_best() < kept_ratio) {
        std::copy(kept, kept + kNumStatic + 1, best_seconds);
      }
    }

    double best_static = 1e100, worst_static = 0;
    for (size_t c = 0; c < kNumStatic; ++c) {
      best_static = std::min(best_static, best_seconds[c]);
      worst_static = std::max(worst_static, best_seconds[c]);
      std::printf("%-12s %10.3f %8.2f\n", static_configs[c].name,
                  best_seconds[c], Gbps(bytes, best_seconds[c]));
      report.Add(std::string("planner/") + corpus.name + "/" +
                     static_configs[c].name,
                 {{"seconds", best_seconds[c]},
                  {"gbps", Gbps(bytes, best_seconds[c])}});
    }
    const double auto_seconds = best_seconds[kNumStatic];
    std::printf("%-12s %10.3f %8.2f\n", "auto", auto_seconds,
                Gbps(bytes, auto_seconds));

    ParseOptions auto_options;
    auto_options.format = corpus.format;
    auto_options.schema = corpus.schema;

    auto planned = plan::PlanParse(
        std::string_view(corpus.data).substr(
            0, std::min(corpus.data.size(), auto_options.sample_budget)),
        corpus.data.size() > auto_options.sample_budget, auto_options);
    if (planned.ok()) {
      std::printf("%s\n", planned->Explain().c_str());
    }

    const double vs_best = auto_seconds > 0 ? best_static / auto_seconds : 0;
    const double vs_worst =
        auto_seconds > 0 ? worst_static / auto_seconds : 0;
    // The acceptance bar: within 5% of the best static row, and never
    // beaten by the worst one (5% noise margin on a timing bench).
    const bool pass = vs_best >= 0.95 && vs_worst >= 0.95;
    all_pass = all_pass && pass;
    std::printf("auto vs best static: %.2fx, vs worst static: %.2fx  [%s]\n",
                vs_best, vs_worst, pass ? "PASS" : "FAIL");
    report.Add(std::string("planner/") + corpus.name + "/auto",
               {{"seconds", auto_seconds},
                {"gbps", Gbps(bytes, auto_seconds)},
                {"vs_best_static", vs_best},
                {"vs_worst_static", vs_worst},
                {"planned_chunk",
                 planned.ok() ? static_cast<double>(planned->chunk_size) : -1},
                {"planned_scalar_kernel",
                 planned.ok() && planned->kernel == simd::KernelKind::kScalar
                     ? 1.0
                     : 0.0},
                {"convergence_pct",
                 planned.ok() ? planned->stats.convergence_fraction * 100.0
                              : -1}});
  }

  report.Flush();
  std::printf("\nplanner ablation: %s\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transpose-mode") == 0) {
      return RunTransposeAblation(argc, argv);
    }
    if (std::strncmp(argv[i], "--dialect", 9) == 0) {
      return RunDialectAblation(argc, argv);
    }
    if (std::strcmp(argv[i], "--planner") == 0) {
      return RunPlannerAblation(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
