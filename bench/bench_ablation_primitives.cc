// Ablations for the parallel primitives the pipeline is built from:
//  * single-pass decoupled-lookback scan (Merrill & Garland, the paper's
//    §2 building block) vs the classic two-pass reduce-then-scan;
//  * radix-sort digit width (partitioning passes vs per-pass cost);
//  * the composite-operator scan over state-transition vectors;
//  * `--transpose-mode`: the symbol-sort vs field-gather transposition
//    head-to-head on the yelp-like workload (wall time, transpose-phase
//    time, modelled peak bytes; --json-out= for BENCH_transpose.json).

#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "dfa/dfa.h"
#include "dfa/state_vector.h"
#include "parallel/radix_sort.h"
#include "parallel/scan.h"
#include "parallel/thread_pool.h"
#include "util/stopwatch.h"
#include "workload/generators.h"

namespace {

using namespace parparaw;  // NOLINT

ThreadPool* Pool() {
  static ThreadPool& pool = *new ThreadPool();
  return &pool;
}

void BM_ScanDecoupledLookback(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanDecoupledLookback(Pool(), in.data(), out.data(), n,
                          [](int64_t a, int64_t b) { return a + b; },
                          int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanDecoupledLookback)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_ScanTwoPass(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    ScanTwoPass(Pool(), in.data(), out.data(), n,
                [](int64_t a, int64_t b) { return a + b; }, int64_t{0});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(int64_t));
}
BENCHMARK(BM_ScanTwoPass)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CompositeScanStateVectors(benchmark::State& state) {
  // The context-resolution scan itself: 6-state vectors under ∘.
  const int64_t n = state.range(0);
  std::mt19937 rng(2);
  std::vector<StateVector> in(n, StateVector::Identity(6));
  for (auto& v : in) {
    for (int i = 0; i < 6; ++i) v.Set(i, static_cast<uint8_t>(rng() % 6));
  }
  std::vector<StateVector> out(n, StateVector::Identity(6));
  for (auto _ : state) {
    ExclusiveScan(Pool(), in.data(), out.data(), n,
                  [](const StateVector& a, const StateVector& b) {
                    return Compose(a, b);
                  },
                  StateVector::Identity(6));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CompositeScanStateVectors)->Arg(1 << 14)->Arg(1 << 18);

// The paper's "constant factor" (§3.1): multi-DFA simulation runs |S|
// instances per byte. This ablation sweeps the state count of a synthetic
// ring DFA to quantify the per-state cost of the context step's hot loop.
void BM_MultiDfaStateCount(benchmark::State& state) {
  const int num_states = static_cast<int>(state.range(0));
  DfaBuilder builder;
  for (int s = 0; s < num_states; ++s) {
    builder.AddState("s" + std::to_string(s), true);
  }
  const int g = builder.AddSymbol('x');
  for (int s = 0; s < num_states; ++s) {
    builder.SetTransition(s, g, (s + 1) % num_states, kSymbolData);
    builder.SetDefaultTransition(s, (s + 2) % num_states, kSymbolData);
  }
  const Dfa dfa = *builder.Build();
  std::vector<uint8_t> input(64 * 1024);
  std::mt19937 rng(1);
  for (auto& b : input) b = (rng() % 4 == 0) ? 'x' : 'y';
  for (auto _ : state) {
    const StateVector v = dfa.TransitionVector(input.data(), input.size());
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_MultiDfaStateCount)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(16);

void BM_RadixSortBitsPerPass(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int64_t n = 1 << 20;
  std::mt19937_64 rng(4);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng() % 17);  // column tags
  RadixSortOptions options;
  options.bits_per_pass = bits;
  options.significant_bits = 5;
  std::vector<uint32_t> perm;
  for (auto _ : state) {
    StableRadixSortPermutation(Pool(), keys, &perm, options);
    benchmark::DoNotOptimize(perm.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortBitsPerPass)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --transpose-mode: head-to-head of the two TransposeMode implementations
// on the yelp-like workload (quoted text fields — the shape the paper's §5
// string-heavy dataset stresses). Reports wall time, the transpose-phase
// share (tag + partition), and the modelled peak bytes resident for the
// transposition; the field gather should be >= 4x lighter and faster.
struct TransposeRun {
  double seconds = 0;
  double transpose_ms = 0;
  int64_t peak_bytes = 0;
};

int RunTransposeAblation(int argc, char** argv) {
  using namespace parparaw::bench;  // NOLINT
  JsonReport report(argc, argv);
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(42, bytes);
  PrintHeader("transpose mode ablation (yelp-like)");
  std::printf("%zu MB input, best of 3 runs\n\n", bytes >> 20);
  std::printf("%-14s %10s %8s %14s %18s\n", "mode", "seconds", "GB/s",
              "transpose ms", "transpose peak");

  auto run_mode = [&](TransposeMode mode, const char* name,
                      TransposeRun* out) -> bool {
    ParseOptions options;
    options.schema = YelpSchema();
    options.transpose_mode = mode;
    TransposeRun best;
    best.seconds = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto result = Parser::Parse(data, options);
      const double seconds = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("%-14s failed: %s\n", name,
                    result.status().ToString().c_str());
        return false;
      }
      if (seconds < best.seconds) {
        best.seconds = seconds;
        best.transpose_ms =
            result->timings.tag_ms + result->timings.partition_ms;
      }
      best.peak_bytes = result->work.transpose_peak_bytes;
    }
    std::printf("%-14s %10.3f %8.2f %14.1f %18lld\n", name, best.seconds,
                Gbps(bytes, best.seconds), best.transpose_ms,
                static_cast<long long>(best.peak_bytes));
    report.Add(std::string("transpose/") + name,
               {{"seconds", best.seconds},
                {"gbps", Gbps(bytes, best.seconds)},
                {"transpose_ms", best.transpose_ms},
                {"transpose_peak_bytes",
                 static_cast<double>(best.peak_bytes)}});
    *out = best;
    return true;
  };

  TransposeRun sort_run, gather_run;
  if (!run_mode(TransposeMode::kSymbolSort, "symbol_sort", &sort_run) ||
      !run_mode(TransposeMode::kFieldGather, "field_gather", &gather_run)) {
    return 1;
  }
  const double peak_reduction =
      gather_run.peak_bytes > 0
          ? static_cast<double>(sort_run.peak_bytes) /
                static_cast<double>(gather_run.peak_bytes)
          : 0;
  const double transpose_speedup =
      gather_run.transpose_ms > 0
          ? sort_run.transpose_ms / gather_run.transpose_ms
          : 0;
  const double wall_speedup =
      gather_run.seconds > 0 ? sort_run.seconds / gather_run.seconds : 0;
  std::printf(
      "\nfield gather vs symbol sort: %.2fx lower transpose peak, "
      "%.2fx faster transpose phase, %.2fx end-to-end\n",
      peak_reduction, transpose_speedup, wall_speedup);
  report.Add("transpose/ratio", {{"peak_reduction", peak_reduction},
                                 {"transpose_speedup", transpose_speedup},
                                 {"wall_speedup", wall_speedup}});
  report.Flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transpose-mode") == 0) {
      return RunTransposeAblation(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
