// Kernel-stage shootout: the src/simd vectorized multi-DFA kernels against
// the scalar reference pipeline, on the Figure 13 workloads plus a
// quote-free pipe-separated dataset (the speculation fast path's best case).
//
// Measures the context step (multi-DFA simulation + composite-operator scan)
// and the bitmap step (symbol-class bitmap emission, fused with the
// speculative single-state walk on converged chunks) separately, because the
// two techniques land in different stages: shuffle-as-gather accelerates the
// multi-state phase, convergence speculation moves work from "walk all
// states" to "walk one state and verify".
//
// Convergence behaviour differs by workload (see docs/simd.md):
//   - yelp-like (quoted CSV): chunks converge once a quote collapses the
//     out-of-quote state family; speculation engages on most chunks.
//   - taxi-like (unquoted CSV under the quoting RFC 4180 DFA): quote parity
//     keeps the ENC lane alive, chunks never converge; the win comes from
//     the vectorized multi-state phase alone.
//   - lineitem-like (pipe DSV, quoting disabled): every chunk converges at
//     its first delimiter; near-pure speculation.
//
// Run with --json-out=<file> to record the results (BENCH_simd.json).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/bitmap_step.h"
#include "core/context_step.h"
#include "dfa/formats.h"
#include "simd/dispatch.h"
#include "util/bit_util.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

struct StageSeconds {
  double context = 0;
  double bitmap = 0;
  double total() const { return context + bitmap; }
};

/// One pass of the context and bitmap steps over `data`, timed per stage.
/// A fresh PipelineState per pass keeps runs independent.
StageSeconds RunSteps(const std::string& data, const ParseOptions& options) {
  PipelineState state;
  state.data = reinterpret_cast<const uint8_t*>(data.data());
  state.size = data.size();
  state.options = &options;
  state.pool = options.pool;
  state.num_chunks =
      static_cast<int64_t>(bit_util::CeilDiv(data.size(), options.chunk_size));
  StepTimings timings;
  StageSeconds out;
  Stopwatch watch;
  Status status = ContextStep::Run(&state, &timings);
  out.context = watch.ElapsedSeconds();
  if (status.ok()) {
    watch.Restart();
    status = BitmapStep::Run(&state, &timings);
    out.bitmap = watch.ElapsedSeconds();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "step failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return out;
}

/// Best-of-`reps` timing after one warm-up pass.
StageSeconds BestOf(const std::string& data, const ParseOptions& options,
                    int reps) {
  RunSteps(data, options);  // warm-up: faults pages, primes caches
  StageSeconds best = RunSteps(data, options);
  for (int i = 1; i < reps; ++i) {
    const StageSeconds run = RunSteps(data, options);
    if (run.total() < best.total()) best = run;
  }
  return best;
}

std::vector<simd::KernelLevel> Levels() {
  std::vector<simd::KernelLevel> levels = {simd::KernelLevel::kScalar,
                                           simd::KernelLevel::kSwar};
  for (simd::KernelLevel level :
       {simd::KernelLevel::kSse42, simd::KernelLevel::kAvx2,
        simd::KernelLevel::kNeon}) {
    if (simd::KernelLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

void RunWorkload(const char* key, const char* title, const std::string& data,
                 const Format& format, JsonReport* report) {
  std::printf("\n--- %s (%.1f MB) ---\n", title,
              static_cast<double>(data.size()) / (1 << 20));

  for (const size_t chunk_size : {size_t{31}, size_t{4096}}) {
    std::printf("chunk_size %zu:\n", chunk_size);
    std::printf("  %-8s %12s %12s %12s %10s %9s\n", "kernel", "context ms",
                "bitmap ms", "total ms", "GB/s", "speedup");
    double scalar_total = 0;
    for (simd::KernelLevel level : Levels()) {
      simd::SetForcedKernelLevel(level);
      ParseOptions options;
      options.format = format;
      options.chunk_size = chunk_size;
      options.pool = ThreadPool::Default();
      const StageSeconds best = BestOf(data, options, /*reps=*/3);
      simd::SetForcedKernelLevel(std::nullopt);

      if (level == simd::KernelLevel::kScalar) scalar_total = best.total();
      const double speedup =
          best.total() > 0 ? scalar_total / best.total() : 0;
      std::printf("  %-8s %12.2f %12.2f %12.2f %10.3f %8.2fx\n",
                  simd::KernelLevelName(level), best.context * 1e3,
                  best.bitmap * 1e3, best.total() * 1e3,
                  Gbps(data.size(), best.total()), speedup);
      report->Add(std::string(key) + "/chunk" + std::to_string(chunk_size) +
                      "/" + simd::KernelLevelName(level),
                  {{"context_seconds", best.context},
                   {"bitmap_seconds", best.bitmap},
                   {"total_seconds", best.total()},
                   {"gbps", Gbps(data.size(), best.total())},
                   {"speedup_vs_scalar", speedup}});
    }
  }

  // One instrumented pass (not timed) records how often speculation engaged
  // at the larger chunk size, for the best available level.
  {
    obs::MetricsRegistry registry;
    ParseOptions options;
    options.format = format;
    options.chunk_size = 4096;
    options.pool = ThreadPool::Default();
    options.metrics = &registry;
    RunSteps(data, options);
    const int64_t converged =
        registry.GetCounter("simd.chunks_converged")->Value();
    const int64_t unconverged =
        registry.GetCounter("simd.chunks_unconverged")->Value();
    const int64_t mis =
        registry.GetCounter("simd.mis_speculations")->Value();
    std::printf("  speculation @4096: %lld/%lld chunks converged, "
                "%lld mis-speculations\n",
                static_cast<long long>(converged),
                static_cast<long long>(converged + unconverged),
                static_cast<long long>(mis));
    report->Add(std::string(key) + "/speculation",
                {{"chunks_converged", static_cast<double>(converged)},
                 {"chunks_unconverged", static_cast<double>(unconverged)},
                 {"mis_speculations", static_cast<double>(mis)}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv);
  PrintHeader("SIMD kernel stages: scalar vs vectorized vs speculative");
  const size_t bytes = BenchBytes(8);

  auto rfc4180 = Rfc4180Format();
  if (!rfc4180.ok()) {
    std::fprintf(stderr, "%s\n", rfc4180.status().ToString().c_str());
    return 1;
  }
  DsvOptions pipe;
  pipe.field_delimiter = '|';
  pipe.quote = 0;
  auto pipe_format = DsvFormat(pipe);
  if (!pipe_format.ok()) {
    std::fprintf(stderr, "%s\n", pipe_format.status().ToString().c_str());
    return 1;
  }

  RunWorkload("yelp_like", "yelp reviews (quoted CSV, Fig. 13)",
              GenerateYelpLike(99, bytes), *rfc4180, &report);
  RunWorkload("taxi_like", "NYC taxi trips (unquoted CSV, Fig. 13)",
              GenerateTaxiLike(99, bytes), *rfc4180, &report);
  RunWorkload("lineitem_pipe", "TPC-H lineitem (pipe DSV, quote-free)",
              GenerateLineitemLike(99, bytes), *pipe_format, &report);

  report.Flush();
  return 0;
}
