// Reproduces Figure 13: end-to-end duration of ParPaRaw versus the other
// approaches, for both datasets.
//
// Paper shape (yelp 4.8 GB / NYC 9.1 GB): ParPaRaw 0.4 s / 0.9 s; cuDF*
// 7.3 / 9.4; cuDF 10.5 / 16.5; Inst. Loading x (fails on yelp) / 3.6;
// MonetDB 58.2 / 38.0; Spark 94.3 / 98.1; pandas 91.3 / 83.4.
//
// This repo implements one representative of each algorithm class from
// scratch (see DESIGN.md §2): ParPaRaw streaming (modelled GPU + PCIe),
// Instant-Loading-style chunk parallelism (safe mode where the format
// requires it, and it *fails correctness* on yelp in unsafe mode exactly
// like the original), a speculative quote-count parser, and the
// sequential FSM parser standing in for the single-threaded CPU systems.
// The expected ordering: ParPaRaw-modeled << quote-count/instant-loading
// << sequential; instant-loading unusable (wrong) for quoted yelp data in
// unsafe mode.

#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "baseline/instant_loading.h"
#include "baseline/quote_count.h"
#include "baseline/sequential_parser.h"
#include "bench_util.h"
#include "exec/executor.h"
#include "stream/streaming_parser.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

// --transpose-mode=<symbol_sort|field_gather> pins the transposition
// implementation for every ParPaRaw run (default: the library's kAuto
// resolution).
TransposeMode g_transpose_mode = TransposeMode::kAuto;

void Row(const char* system, double seconds, int64_t rows, bool correct,
         size_t bytes) {
  std::printf("%-28s %10.1fms %10.3fGB/s %10lld %s\n", system,
              seconds * 1e3, Gbps(bytes, seconds),
              static_cast<long long>(rows), correct ? "" : "  (WRONG OUTPUT)");
}

/// Prints the row and records it into the --json-out report under
/// "<key>/<system>".
void Record(JsonReport* report, const char* key, const char* system,
            double seconds, int64_t rows, bool correct, size_t bytes) {
  Row(system, seconds, rows, correct, bytes);
  report->Add(std::string(key) + "/" + system,
              {{"seconds", seconds},
               {"gbps", Gbps(bytes, seconds)},
               {"rows", static_cast<double>(rows)},
               {"correct", correct ? 1.0 : 0.0}});
}

void RunDataset(const char* key, const char* name, const std::string& data,
                const Schema& schema, bool quoted_text, JsonReport* report) {
  std::printf("\n--- Figure 13 (%s, %.1f MB) ---\n", name,
              static_cast<double>(data.size()) / (1 << 20));
  std::printf("%-28s %12s %13s %10s\n", "system", "duration", "rate",
              "rows");

  ParseOptions base;
  base.schema = schema;
  base.transpose_mode = g_transpose_mode;

  // Ground truth for correctness marks.
  auto expected = SequentialParser::Parse(data, base);
  if (!expected.ok()) {
    std::printf("sequential reference failed: %s\n",
                expected.status().ToString().c_str());
    return;
  }

  // ParPaRaw, end-to-end streaming: modelled GPU + PCIe timeline plus the
  // CPU-substrate wall time for transparency. The run feeds the metrics
  // registry and tracer so the per-stage breakdown below comes from the
  // observability subsystem, not ad-hoc stopwatches.
  {
    StreamingOptions options;
    options.base = base;
    EnableObservability(&options.base);
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Clear();
    options.partition_size = 4 << 20;
    auto result = StreamingParser::Parse(data, options);
    if (result.ok()) {
      Record(report, key, "ParPaRaw (modeled GPU e2e)",
             result->modeled_end_to_end_seconds, result->table.num_rows,
             result->table.Equals(expected->table), data.size());
      Record(report, key, "ParPaRaw (CPU substrate)", result->wall_seconds,
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
      std::printf("\nper-stage breakdown (CPU substrate, %d partitions):\n",
                  result->num_partitions);
      PrintStageBreakdown(&obs::MetricsRegistry::Global());
    }
    MaybeDumpTrace();
  }

  // Instant Loading: unsafe mode is only *correct* for formats whose
  // newlines are always record delimiters (NYC); safe mode pays the
  // sequential context pass (yelp).
  {
    InstantLoadingOptions options;
    options.base = base;
    // The paper's Inst. Loading run uses 32 physical cores; with one
    // logical chunk per core the unsafe mode's boundary mistakes on
    // quoted data become visible.
    options.num_workers = 32;
    options.safe_mode = false;
    Stopwatch watch;
    auto result = InstantLoadingParser::Parse(data, options);
    if (result.ok()) {
      Record(report, key, "Inst. Loading (unsafe)", watch.ElapsedSeconds(),
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
    }
    options.safe_mode = true;
    watch.Restart();
    auto safe = InstantLoadingParser::Parse(data, options);
    if (safe.ok()) {
      Record(report, key, "Inst. Loading (safe)", watch.ElapsedSeconds(),
             safe->table.num_rows, safe->table.Equals(expected->table),
             data.size());
    }
  }

  // Speculative quote-count parser (format-specific exploit).
  {
    Stopwatch watch;
    auto result = QuoteCountParser::Parse(data, base);
    if (result.ok()) {
      Record(report, key, "Quote-count (speculative)", watch.ElapsedSeconds(),
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
    }
  }

  // Sequential FSM parser (the single-threaded CPU-system class).
  {
    Stopwatch watch;
    auto result = SequentialParser::Parse(data, base);
    if (result.ok()) {
      Record(report, key, "Sequential FSM (CPU class)",
             watch.ElapsedSeconds(), result->table.num_rows, true,
             data.size());
    }
  }
  (void)quoted_text;
}

// Asks the kernel to evict `path` from the page cache, so the next read
// actually goes to the device (cold-cache ingest). Best-effort: on tmpfs
// there is no backing device and the "read" stays a memory copy.
void DropFileCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
#if defined(POSIX_FADV_DONTNEED)
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
}

// --pipeline: the real (non-modelled) Fig. 7 claim — overlapping disk
// reads, parse, sort and conversion across partitions beats running the
// same stages back to back on a cold-cache multi-partition file.
void RunPipelineMode(JsonReport* report) {
  PrintHeader("Pipelined vs serial ingest (cold cache)");
  const size_t bytes = BenchBytes(64);
  const size_t partition_size = 8 << 20;
  const std::string path = "/tmp/parparaw_bench_pipeline.csv";
  {
    Status st = WriteStringToFile(path, GenerateTaxiLike(99, bytes));
    if (!st.ok()) {
      std::printf("cannot write %s: %s\n", path.c_str(),
                  st.ToString().c_str());
      return;
    }
  }
  ParseOptions base;
  base.schema = TaxiSchema();
  std::printf("%-28s %12s %13s %10s\n", "schedule", "duration", "rate",
              "rows");

  double serial_seconds = 0;
  Table serial_table;
  {
    DropFileCache(path);
    StreamingOptions options;
    options.base = base;
    options.partition_size = partition_size;
    Stopwatch watch;
    auto result = StreamingParser::ParseFile(path, options);
    if (!result.ok()) {
      std::printf("serial ingest failed: %s\n",
                  result.status().ToString().c_str());
      return;
    }
    serial_seconds = watch.ElapsedSeconds();
    serial_table = std::move(result->table);
    Record(report, "pipeline", "serial (read+parse+convert)",
           serial_seconds, serial_table.num_rows, true, bytes);
  }

  {
    DropFileCache(path);
    exec::PipelineExecutor executor;
    exec::ExecOptions options;
    options.base = base;
    options.partition_size = partition_size;
    Stopwatch watch;
    auto result = executor.IngestFile(path, options);
    if (!result.ok()) {
      std::printf("pipelined ingest failed: %s\n",
                  result.status().ToString().c_str());
      return;
    }
    const double pipelined_seconds = watch.ElapsedSeconds();
    const bool correct = result->table.Equals(serial_table);
    Record(report, "pipeline", "pipelined (staged executor)",
           pipelined_seconds, result->table.num_rows, correct, bytes);
    const double speedup =
        pipelined_seconds > 0 ? serial_seconds / pipelined_seconds : 0;
    std::printf(
        "\n%d partitions, admission limit %d (max %d in flight)\n"
        "stage busy: read %.0f ms, scan %.0f ms, sort %.0f ms, convert "
        "%.0f ms; wall %.0f ms\npipelined speedup over serial: %.2fx\n",
        result->stats.num_partitions, result->stats.admission_limit,
        result->stats.max_inflight, result->stats.read_seconds * 1e3,
        result->stats.scan_seconds * 1e3, result->stats.sort_seconds * 1e3,
        result->stats.convert_seconds * 1e3,
        result->stats.wall_seconds * 1e3, speedup);
    report->Add("pipeline/speedup",
                {{"speedup", speedup},
                 {"partitions",
                  static_cast<double>(result->stats.num_partitions)},
                 {"max_inflight",
                  static_cast<double>(result->stats.max_inflight)}});
  }
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv);
  bool pipeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pipeline") == 0) pipeline = true;
    if (std::strcmp(argv[i], "--transpose-mode=symbol_sort") == 0) {
      g_transpose_mode = TransposeMode::kSymbolSort;
    }
    if (std::strcmp(argv[i], "--transpose-mode=field_gather") == 0) {
      g_transpose_mode = TransposeMode::kFieldGather;
    }
  }
  if (pipeline) {
    RunPipelineMode(&report);
    report.Flush();
    return 0;
  }
  PrintHeader("Figure 13: end-to-end comparison");
  const size_t bytes = BenchBytes(16);
  RunDataset("yelp", "yelp reviews (synthetic)", GenerateYelpLike(99, bytes),
             YelpSchema(), /*quoted_text=*/true, &report);
  RunDataset("taxi", "NYC taxi trips (synthetic)",
             GenerateTaxiLike(99, bytes), TaxiSchema(),
             /*quoted_text=*/false, &report);
  report.Flush();
  return 0;
}
