// Reproduces Figure 13: end-to-end duration of ParPaRaw versus the other
// approaches, for both datasets.
//
// Paper shape (yelp 4.8 GB / NYC 9.1 GB): ParPaRaw 0.4 s / 0.9 s; cuDF*
// 7.3 / 9.4; cuDF 10.5 / 16.5; Inst. Loading x (fails on yelp) / 3.6;
// MonetDB 58.2 / 38.0; Spark 94.3 / 98.1; pandas 91.3 / 83.4.
//
// This repo implements one representative of each algorithm class from
// scratch (see DESIGN.md §2): ParPaRaw streaming (modelled GPU + PCIe),
// Instant-Loading-style chunk parallelism (safe mode where the format
// requires it, and it *fails correctness* on yelp in unsafe mode exactly
// like the original), a speculative quote-count parser, and the
// sequential FSM parser standing in for the single-threaded CPU systems.
// The expected ordering: ParPaRaw-modeled << quote-count/instant-loading
// << sequential; instant-loading unusable (wrong) for quoted yelp data in
// unsafe mode.

#include <cstdio>

#include "baseline/instant_loading.h"
#include "baseline/quote_count.h"
#include "baseline/sequential_parser.h"
#include "bench_util.h"
#include "stream/streaming_parser.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

void Row(const char* system, double seconds, int64_t rows, bool correct,
         size_t bytes) {
  std::printf("%-28s %10.1fms %10.3fGB/s %10lld %s\n", system,
              seconds * 1e3, Gbps(bytes, seconds),
              static_cast<long long>(rows), correct ? "" : "  (WRONG OUTPUT)");
}

/// Prints the row and records it into the --json-out report under
/// "<key>/<system>".
void Record(JsonReport* report, const char* key, const char* system,
            double seconds, int64_t rows, bool correct, size_t bytes) {
  Row(system, seconds, rows, correct, bytes);
  report->Add(std::string(key) + "/" + system,
              {{"seconds", seconds},
               {"gbps", Gbps(bytes, seconds)},
               {"rows", static_cast<double>(rows)},
               {"correct", correct ? 1.0 : 0.0}});
}

void RunDataset(const char* key, const char* name, const std::string& data,
                const Schema& schema, bool quoted_text, JsonReport* report) {
  std::printf("\n--- Figure 13 (%s, %.1f MB) ---\n", name,
              static_cast<double>(data.size()) / (1 << 20));
  std::printf("%-28s %12s %13s %10s\n", "system", "duration", "rate",
              "rows");

  ParseOptions base;
  base.schema = schema;

  // Ground truth for correctness marks.
  auto expected = SequentialParser::Parse(data, base);
  if (!expected.ok()) {
    std::printf("sequential reference failed: %s\n",
                expected.status().ToString().c_str());
    return;
  }

  // ParPaRaw, end-to-end streaming: modelled GPU + PCIe timeline plus the
  // CPU-substrate wall time for transparency. The run feeds the metrics
  // registry and tracer so the per-stage breakdown below comes from the
  // observability subsystem, not ad-hoc stopwatches.
  {
    StreamingOptions options;
    options.base = base;
    EnableObservability(&options.base);
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Clear();
    options.partition_size = 4 << 20;
    auto result = StreamingParser::Parse(data, options);
    if (result.ok()) {
      Record(report, key, "ParPaRaw (modeled GPU e2e)",
             result->modeled_end_to_end_seconds, result->table.num_rows,
             result->table.Equals(expected->table), data.size());
      Record(report, key, "ParPaRaw (CPU substrate)", result->wall_seconds,
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
      std::printf("\nper-stage breakdown (CPU substrate, %d partitions):\n",
                  result->num_partitions);
      PrintStageBreakdown(&obs::MetricsRegistry::Global());
    }
    MaybeDumpTrace();
  }

  // Instant Loading: unsafe mode is only *correct* for formats whose
  // newlines are always record delimiters (NYC); safe mode pays the
  // sequential context pass (yelp).
  {
    InstantLoadingOptions options;
    options.base = base;
    // The paper's Inst. Loading run uses 32 physical cores; with one
    // logical chunk per core the unsafe mode's boundary mistakes on
    // quoted data become visible.
    options.num_workers = 32;
    options.safe_mode = false;
    Stopwatch watch;
    auto result = InstantLoadingParser::Parse(data, options);
    if (result.ok()) {
      Record(report, key, "Inst. Loading (unsafe)", watch.ElapsedSeconds(),
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
    }
    options.safe_mode = true;
    watch.Restart();
    auto safe = InstantLoadingParser::Parse(data, options);
    if (safe.ok()) {
      Record(report, key, "Inst. Loading (safe)", watch.ElapsedSeconds(),
             safe->table.num_rows, safe->table.Equals(expected->table),
             data.size());
    }
  }

  // Speculative quote-count parser (format-specific exploit).
  {
    Stopwatch watch;
    auto result = QuoteCountParser::Parse(data, base);
    if (result.ok()) {
      Record(report, key, "Quote-count (speculative)", watch.ElapsedSeconds(),
             result->table.num_rows, result->table.Equals(expected->table),
             data.size());
    }
  }

  // Sequential FSM parser (the single-threaded CPU-system class).
  {
    Stopwatch watch;
    auto result = SequentialParser::Parse(data, base);
    if (result.ok()) {
      Record(report, key, "Sequential FSM (CPU class)",
             watch.ElapsedSeconds(), result->table.num_rows, true,
             data.size());
    }
  }
  (void)quoted_text;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv);
  PrintHeader("Figure 13: end-to-end comparison");
  const size_t bytes = BenchBytes(16);
  RunDataset("yelp", "yelp reviews (synthetic)", GenerateYelpLike(99, bytes),
             YelpSchema(), /*quoted_text=*/true, &report);
  RunDataset("taxi", "NYC taxi trips (synthetic)",
             GenerateTaxiLike(99, bytes), TaxiSchema(),
             /*quoted_text=*/false, &report);
  report.Flush();
  return 0;
}
