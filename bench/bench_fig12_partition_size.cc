// Reproduces Figure 12: end-to-end processing duration as a function of
// the streaming partition size.
//
// Paper shape: a U-curve — small partitions pay per-partition overhead and
// lose overlap; very large partitions grow the non-overlapped head (first
// transfer) and tail (last return), so the duration rises again beyond
// 128 MB (yelp) / 256 MB (taxi). The modelled timeline reproduces the
// curve; partition sizes are scaled to the configured input size.

#include <cstdio>

#include "bench_util.h"
#include "stream/streaming_parser.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

void RunDataset(const char* name, const std::string& data,
                const Schema& schema) {
  std::printf("\n--- Figure 12 (%s, %.1f MB) ---\n", name,
              static_cast<double>(data.size()) / (1 << 20));
  std::printf("%12s %6s %14s %14s %12s\n", "partition", "#part",
              "modeled-e2e", "modeled-serial", "wall-parse");
  for (size_t partition = 256 * 1024; partition <= data.size() * 2;
       partition *= 2) {
    StreamingOptions options;
    options.base.schema = schema;
    options.partition_size = partition;
    auto result = StreamingParser::Parse(data, options);
    if (!result.ok()) {
      std::printf("%10zuKB failed: %s\n", partition >> 10,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%10zuKB %6d %11.2fms %11.2fms %9.1fms\n", partition >> 10,
                result->num_partitions,
                result->modeled_end_to_end_seconds * 1e3,
                result->modeled_serial_seconds * 1e3,
                result->wall_seconds * 1e3);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 12: end-to-end duration vs partition size");
  const size_t bytes = BenchBytes(16);
  RunDataset("yelp reviews (synthetic)", GenerateYelpLike(5, bytes),
             YelpSchema());
  RunDataset("NYC taxi trips (synthetic)", GenerateTaxiLike(5, bytes),
             TaxiSchema());
  return 0;
}
