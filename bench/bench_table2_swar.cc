// Microbenchmark for Table 2's branchless SWAR symbol matcher, compared
// against the alternatives it displaces: a chain of comparisons
// (branching, divergence-prone on GPUs) and a 256-entry lookup table
// (accurate but too large for the register file).

#include <benchmark/benchmark.h>

#include <array>
#include <random>
#include <vector>

#include "mfira/swar.h"

namespace {

using parparaw::SwarMatcher;

const std::vector<uint8_t> kSymbols = {'\n', '"', ',', '|', '\t'};

std::vector<uint8_t> MakeInput(size_t n) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> input(n);
  for (auto& b : input) {
    // ~10% structural characters, like real CSV data.
    const uint64_t roll = rng() % 100;
    if (roll < 10) {
      b = kSymbols[rng() % kSymbols.size()];
    } else {
      b = static_cast<uint8_t>('a' + rng() % 26);
    }
  }
  return input;
}

void BM_SwarMatcher(benchmark::State& state) {
  const SwarMatcher matcher(kSymbols);
  const std::vector<uint8_t> input = MakeInput(64 * 1024);
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint8_t b : input) sum += matcher.Match(b);
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_SwarMatcher);

void BM_BranchingComparisons(benchmark::State& state) {
  const std::vector<uint8_t> input = MakeInput(64 * 1024);
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint8_t b : input) {
      int idx;
      if (b == '\n') {
        idx = 0;
      } else if (b == '"') {
        idx = 1;
      } else if (b == ',') {
        idx = 2;
      } else if (b == '|') {
        idx = 3;
      } else if (b == '\t') {
        idx = 4;
      } else {
        idx = 5;
      }
      sum += idx;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_BranchingComparisons);

void BM_LookupTable256(benchmark::State& state) {
  std::array<uint8_t, 256> table;
  table.fill(static_cast<uint8_t>(kSymbols.size()));
  for (size_t i = 0; i < kSymbols.size(); ++i) {
    table[kSymbols[i]] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> input = MakeInput(64 * 1024);
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint8_t b : input) sum += table[b];
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LookupTable256);

}  // namespace

BENCHMARK_MAIN();
