// Reproduces Figure 11: per-step time breakdown for the three tagging
// modes (left) and robustness on skewed input (right).
//
// Paper shape: record-tags ("tagged") is noticeably slower than the
// inline-terminated and vector-delimited modes — specifically in the tag,
// partition, and convert steps, which move the 4-byte record tags — and
// the skewed inputs (one 200 MB-class record) change totals only
// marginally versus the original inputs.

#include <cstdio>

#include "bench_util.h"
#include "core/parser.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

const char* ModeName(TaggingMode mode) {
  switch (mode) {
    case TaggingMode::kRecordTags:
      return "tagged";
    case TaggingMode::kInlineTerminated:
      return "inline";
    case TaggingMode::kVectorDelimited:
      return "delimited";
  }
  return "?";
}

void RunOne(const char* dataset, const std::string& data,
            const Schema& schema, TaggingMode mode) {
  ParseOptions options;
  options.schema = schema;
  options.tagging_mode = mode;
  auto result = Parser::Parse(data, options);
  if (!result.ok()) {
    std::printf("%-10s %-10s failed: %s\n", ModeName(mode), dataset,
                result.status().ToString().c_str());
    return;
  }
  const StepTimings& t = result->timings;
  std::printf(
      "%-10s %-6s %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %9.1fms\n",
      ModeName(mode), dataset, t.parse_ms, t.scan_ms, t.tag_ms,
      t.partition_ms, t.convert_ms, t.TotalMs());
}

}  // namespace

int main() {
  PrintHeader("Figure 11: tagging modes (left) and skewed input (right)");
  const size_t bytes = BenchBytes(8);
  const std::string yelp = GenerateYelpLike(21, bytes);
  const std::string taxi = GenerateTaxiLike(21, bytes);

  std::printf("\n--- tagging-mode breakdown ---\n");
  std::printf("%-10s %-6s %10s %10s %10s %10s %10s %10s\n", "mode", "data",
              "parse", "scan", "tag", "partition", "convert", "total");
  for (TaggingMode mode :
       {TaggingMode::kRecordTags, TaggingMode::kInlineTerminated,
        TaggingMode::kVectorDelimited}) {
    RunOne("yelp", yelp, YelpSchema(), mode);
    RunOne("NYC", taxi, TaxiSchema(), mode);
  }

  std::printf("\n--- skewed input (one record with a ~%zu KB field) ---\n",
              bytes / 4 / 1024);
  std::printf("%-10s %-10s %12s %12s\n", "dataset", "variant", "total",
              "rate");
  for (bool is_yelp : {true, false}) {
    const std::string& original = is_yelp ? yelp : taxi;
    const std::string skewed =
        GenerateSkewed(21, bytes, /*giant_field_bytes=*/bytes / 4, is_yelp);
    for (int variant = 0; variant < 2; ++variant) {
      const std::string& data = variant == 0 ? original : skewed;
      ParseOptions options;
      options.schema = is_yelp ? YelpSchema() : TaxiSchema();
      Stopwatch watch;
      auto result = Parser::Parse(data, options);
      const double s = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::printf("%-10s %-10s failed: %s\n", is_yelp ? "yelp" : "NYC",
                    variant == 0 ? "original" : "skewed",
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-10s %-10s %10.1fms %9.3fGB/s\n",
                  is_yelp ? "yelp" : "NYC",
                  variant == 0 ? "original" : "skewed", s * 1e3,
                  Gbps(data.size(), s));
    }
  }
  return 0;
}
