// Microbenchmark for Table 1's transition-table organisation: one packed
// row per symbol group ("coalesced access to all state transitions of a
// read symbol") lets a thread advance all of its DFA instances from a
// single fetched row — the hot loop of the context step. Compared against
// a conventional [state][symbol] matrix walk.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "dfa/formats.h"

namespace {

using namespace parparaw;  // NOLINT

std::string MakeCsv(size_t n) {
  std::mt19937_64 rng(3);
  std::string s;
  s.reserve(n);
  while (s.size() < n) {
    s += "word" + std::to_string(rng() % 1000);
    s += (rng() % 8 == 0) ? '\n' : ',';
  }
  return s;
}

// Multi-instance stepping through the packed row (the ParPaRaw way).
void BM_PackedRowMultiDfa(benchmark::State& state) {
  const Format format = *Rfc4180Format();
  const Dfa& dfa = format.dfa;
  const std::string input = MakeCsv(64 * 1024);
  for (auto _ : state) {
    StateVector v = StateVector::Identity(dfa.num_states());
    for (char c : input) dfa.Step(&v, static_cast<uint8_t>(c));
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_PackedRowMultiDfa);

// The same simulation against a [state][group] matrix: one dependent load
// per instance instead of one row fetch per symbol.
void BM_MatrixMultiDfa(benchmark::State& state) {
  const Format format = *Rfc4180Format();
  const Dfa& dfa = format.dfa;
  // Expand to a dense matrix.
  std::vector<uint8_t> matrix(dfa.num_states() * dfa.num_symbol_groups());
  for (int s = 0; s < dfa.num_states(); ++s) {
    for (int g = 0; g < dfa.num_symbol_groups(); ++g) {
      matrix[s * dfa.num_symbol_groups() + g] =
          dfa.NextState(s, g);
    }
  }
  const std::string input = MakeCsv(64 * 1024);
  for (auto _ : state) {
    uint8_t states[parparaw::kMaxDfaStates];
    for (int i = 0; i < dfa.num_states(); ++i) states[i] = i;
    for (char c : input) {
      const int g = dfa.SymbolGroup(static_cast<uint8_t>(c));
      for (int i = 0; i < dfa.num_states(); ++i) {
        states[i] = matrix[states[i] * dfa.num_symbol_groups() + g];
      }
    }
    benchmark::DoNotOptimize(states);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_MatrixMultiDfa);

// Single-instance run (what the bitmap/tag passes execute per byte).
void BM_SingleDfaRun(benchmark::State& state) {
  const Format format = *Rfc4180Format();
  const Dfa& dfa = format.dfa;
  const std::string input = MakeCsv(64 * 1024);
  for (auto _ : state) {
    const uint8_t end = dfa.Run(
        dfa.start_state(), reinterpret_cast<const uint8_t*>(input.data()),
        input.size());
    benchmark::DoNotOptimize(end);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_SingleDfaRun);

}  // namespace

BENCHMARK_MAIN();
