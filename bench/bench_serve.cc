// parparawd serving benchmark: drives a loopback daemon with the
// src/workload request generators and reports request-latency
// percentiles (p50/p99/p999) plus saturation throughput.
//
// Two harness modes, both built on workload::RequestStream:
//   closed loop — N client threads, each issuing the next request the
//     moment the previous reply lands. Sweeping N exposes the
//     saturation point (max aggregate throughput).
//   open loop — Poisson arrivals at a fixed offered rate (a fraction of
//     the measured saturation), so reported latency includes queueing
//     delay rather than being gated by the clients themselves.
//
// Output: plain tables on stdout; `--json-out=BENCH_serve.json` writes
// the flat metric list documented in EXPERIMENTS.md.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/obs.h"
#include "query/predicate.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/stopwatch.h"
#include "workload/generators.h"
#include "workload/request_stream.h"

namespace parparaw::bench {
namespace {

struct Dataset {
  std::string bytes;
};

std::vector<Dataset> MakeDatasets(size_t count, size_t bytes_each) {
  std::vector<Dataset> datasets(count);
  for (size_t i = 0; i < count; ++i) {
    // Alternate generator families so dialect/type resolution varies.
    switch (i % 3) {
      case 0:
        datasets[i].bytes = GenerateYelpLike(100 + i, bytes_each);
        break;
      case 1:
        datasets[i].bytes = GenerateTaxiLike(200 + i, bytes_each);
        break;
      default:
        datasets[i].bytes = GenerateLogLike(300 + i, bytes_each);
        break;
    }
  }
  return datasets;
}

struct RunResult {
  std::vector<double> latencies_us;  // one entry per completed request
  double wall_seconds = 0;
  int64_t requests = 0;
  int64_t busy = 0;
  int64_t payload_bytes = 0;
};

double Percentile(std::vector<double>* sorted_inout, double p) {
  if (sorted_inout->empty()) return 0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_inout->size() - 1));
  return (*sorted_inout)[idx];
}

/// Issues one request from the stream against `client`; returns the
/// request's payload bytes, or -1 on busy (not retried here — shed work
/// is part of the daemon's contract under saturation).
int64_t IssueOne(serve::Client* client, const Request& request,
                 const std::vector<Dataset>& datasets) {
  const Dataset& dataset = datasets[request.dataset % datasets.size()];
  switch (request.kind) {
    case RequestKind::kPing:
      return client->Ping().ok() ? 0 : -1;
    case RequestKind::kQuery: {
      auto reply =
          client->Query(dataset.bytes, Predicate(0, CompareOp::kIsNotNull));
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
    case RequestKind::kStreamParse: {
      serve::RequestOptions options;
      options.stream = true;
      auto reply = client->Parse(dataset.bytes, options);
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
    case RequestKind::kParse:
    default: {
      auto reply = client->Parse(dataset.bytes);
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
  }
}

/// Closed loop: `threads` clients, `per_thread` requests each,
/// back-to-back.
RunResult RunClosedLoop(uint16_t port, const std::vector<Dataset>& datasets,
                        int threads, int per_thread) {
  std::vector<RunResult> partial(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RunResult& mine = partial[static_cast<size_t>(t)];
      auto client = serve::Client::Connect(port);
      if (!client.ok()) return;
      RequestStream::Options stream_options;
      stream_options.seed = 7000 + static_cast<uint64_t>(t);
      stream_options.num_datasets = datasets.size();
      RequestStream stream(stream_options);
      mine.latencies_us.reserve(static_cast<size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const Request request = stream.Next();
        Stopwatch timer;
        const int64_t bytes = IssueOne(&*client, request, datasets);
        if (bytes < 0) {
          ++mine.busy;
          continue;
        }
        mine.latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
        ++mine.requests;
        mine.payload_bytes += bytes;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  RunResult merged;
  merged.wall_seconds = wall.ElapsedSeconds();
  for (RunResult& p : partial) {
    merged.requests += p.requests;
    merged.busy += p.busy;
    merged.payload_bytes += p.payload_bytes;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               p.latencies_us.begin(), p.latencies_us.end());
  }
  return merged;
}

/// Open loop: Poisson arrivals at `rate` req/s spread over `threads`
/// dispatchers; latency includes time spent waiting behind the offered
/// schedule.
RunResult RunOpenLoop(uint16_t port, const std::vector<Dataset>& datasets,
                      int threads, double rate, int total_requests) {
  std::vector<RunResult> partial(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const int per_thread = total_requests / threads;
  Stopwatch wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RunResult& mine = partial[static_cast<size_t>(t)];
      auto client = serve::Client::Connect(port);
      if (!client.ok()) return;
      RequestStream::Options stream_options;
      stream_options.seed = 9000 + static_cast<uint64_t>(t);
      stream_options.num_datasets = datasets.size();
      stream_options.arrivals_per_sec = rate / threads;
      RequestStream stream(stream_options);
      Stopwatch clock;
      double next_due_us = 0;
      for (int i = 0; i < per_thread; ++i) {
        const Request request = stream.Next();
        next_due_us += static_cast<double>(request.inter_arrival_us);
        const double now_us = clock.ElapsedSeconds() * 1e6;
        if (now_us < next_due_us) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(next_due_us - now_us)));
        }
        // Latency is measured from the *scheduled* arrival, so falling
        // behind the offered rate shows up as queueing delay.
        const int64_t bytes = IssueOne(&*client, request, datasets);
        if (bytes < 0) {
          ++mine.busy;
          continue;
        }
        mine.latencies_us.push_back(clock.ElapsedSeconds() * 1e6 -
                                    next_due_us);
        ++mine.requests;
        mine.payload_bytes += bytes;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  RunResult merged;
  merged.wall_seconds = wall.ElapsedSeconds();
  for (RunResult& p : partial) {
    merged.requests += p.requests;
    merged.busy += p.busy;
    merged.payload_bytes += p.payload_bytes;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               p.latencies_us.begin(), p.latencies_us.end());
  }
  return merged;
}

void Report(const char* mode, const char* axis, int value,
            const RunResult& run, JsonReport* json) {
  std::vector<double> lat = run.latencies_us;
  const double p50 = Percentile(&lat, 0.50);
  const double p99 = Percentile(&lat, 0.99);
  const double p999 = Percentile(&lat, 0.999);
  const double rps =
      run.wall_seconds > 0 ? run.requests / run.wall_seconds : 0;
  const double gbps = Gbps(static_cast<size_t>(run.payload_bytes),
                           run.wall_seconds);
  std::printf("%-12s %4d %10lld %8lld %10.0f %9.0f %9.0f %9.0f %7.2f\n",
              mode, value, static_cast<long long>(run.requests),
              static_cast<long long>(run.busy), rps, p50, p99, p999, gbps);
  char name[64];
  std::snprintf(name, sizeof(name), "serve/%s/%s=%d", mode, axis, value);
  json->Add(name, {{"requests", static_cast<double>(run.requests)},
                   {"busy", static_cast<double>(run.busy)},
                   {"requests_per_sec", rps},
                   {"p50_us", p50},
                   {"p99_us", p99},
                   {"p999_us", p999},
                   {"payload_gbps", gbps}});
}

int Main(int argc, char** argv) {
  JsonReport json(argc, argv);

  // Per-dataset size; PARPARAW_BENCH_MB scales it (default keeps a full
  // sweep under a minute on a small CI box).
  const size_t dataset_bytes = BenchBytes(1) / 8;
  const std::vector<Dataset> datasets = MakeDatasets(8, dataset_bytes);

  serve::ServeOptions options;
  options.max_connections = 128;
  options.max_inflight_requests =
      std::max(2u, std::thread::hardware_concurrency());
  serve::Server server(options);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }

  PrintHeader("parparawd serving: closed-loop concurrency sweep");
  std::printf("%-12s %4s %10s %8s %10s %9s %9s %9s %7s\n", "mode", "conc",
              "requests", "busy", "req/s", "p50us", "p99us", "p999us",
              "GB/s");
  const int per_thread = 60;
  double saturation_rps = 0;
  for (int threads : {1, 2, 4, 8}) {
    const RunResult run =
        RunClosedLoop(*port, datasets, threads, per_thread);
    Report("closed", "threads", threads, run, &json);
    if (run.wall_seconds > 0) {
      saturation_rps =
          std::max(saturation_rps, run.requests / run.wall_seconds);
    }
  }
  json.Add("serve/saturation",
           {{"requests_per_sec", saturation_rps}});
  std::printf("saturation throughput: %.0f req/s\n", saturation_rps);

  PrintHeader("parparawd serving: open loop (Poisson arrivals)");
  std::printf("%-12s %4s %10s %8s %10s %9s %9s %9s %7s\n", "mode", "rate%",
              "requests", "busy", "req/s", "p50us", "p99us", "p999us",
              "GB/s");
  // Offered load at 30% / 60% / 90% of saturation: queueing delay climbs
  // as the daemon approaches its admission limit.
  for (int pct : {30, 60, 90}) {
    const double rate = saturation_rps * pct / 100.0;
    if (rate <= 0) break;
    const RunResult run = RunOpenLoop(*port, datasets, 4, rate, 240);
    Report("open", "pct", pct, run, &json);
  }

  server.Stop();
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace parparaw::bench

int main(int argc, char** argv) { return parparaw::bench::Main(argc, argv); }
