// parparawd serving benchmark: drives a loopback daemon with the
// src/workload request generators and reports request-latency
// percentiles (p50/p99/p999) plus saturation throughput.
//
// Two harness modes, both built on workload::RequestStream:
//   closed loop — N client threads, each issuing the next request the
//     moment the previous reply lands. Sweeping N exposes the
//     saturation point (max aggregate throughput).
//   open loop — Poisson arrivals at a fixed offered rate (a fraction of
//     the measured saturation), so reported latency includes queueing
//     delay rather than being gated by the clients themselves.
//
// Output: plain tables on stdout; `--json-out=BENCH_serve.json` writes
// the flat metric list documented in EXPERIMENTS.md.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/obs.h"
#include "query/predicate.h"
#include "serve/client.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "util/stopwatch.h"
#include "workload/generators.h"
#include "workload/request_stream.h"

namespace parparaw::bench {
namespace {

struct Dataset {
  std::string bytes;
};

std::vector<Dataset> MakeDatasets(size_t count, size_t bytes_each) {
  std::vector<Dataset> datasets(count);
  for (size_t i = 0; i < count; ++i) {
    // Alternate generator families so dialect/type resolution varies.
    switch (i % 3) {
      case 0:
        datasets[i].bytes = GenerateYelpLike(100 + i, bytes_each);
        break;
      case 1:
        datasets[i].bytes = GenerateTaxiLike(200 + i, bytes_each);
        break;
      default:
        datasets[i].bytes = GenerateLogLike(300 + i, bytes_each);
        break;
    }
  }
  return datasets;
}

struct RunResult {
  std::vector<double> latencies_us;  // one entry per completed request
  double wall_seconds = 0;
  int64_t requests = 0;  // logical requests that completed (counted ONCE,
                         // however many times they were shed and retried)
  int64_t failed = 0;    // logical requests that exhausted their retries
  int64_t payload_bytes = 0;
  // Wire-level accounting from RetryingClient, so shed work is visible
  // without double-counting it as throughput.
  int64_t attempts = 0;
  int64_t busy_sheds = 0;
  int64_t transport_retries = 0;
};

double Percentile(std::vector<double>* sorted_inout, double p) {
  if (sorted_inout->empty()) return 0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_inout->size() - 1));
  return (*sorted_inout)[idx];
}

/// Issues one logical request from the stream through the retrying
/// client; kBusy sheds are retried with jittered backoff inside, so a
/// shed-then-completed request is counted exactly once by the caller.
/// Returns the request's payload bytes, or -1 when retries exhausted.
int64_t IssueOne(serve::RetryingClient* client, const Request& request,
                 const std::vector<Dataset>& datasets) {
  const Dataset& dataset = datasets[request.dataset % datasets.size()];
  switch (request.kind) {
    case RequestKind::kPing:
      return client->Ping().ok() ? 0 : -1;
    case RequestKind::kQuery: {
      auto reply =
          client->Query(dataset.bytes, Predicate(0, CompareOp::kIsNotNull));
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
    case RequestKind::kStreamParse: {
      serve::RequestOptions options;
      options.stream = true;
      auto reply = client->Parse(dataset.bytes, options);
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
    case RequestKind::kParse:
    default: {
      auto reply = client->Parse(dataset.bytes);
      if (!reply.ok() || reply->busy) return -1;
      return static_cast<int64_t>(dataset.bytes.size());
    }
  }
}

serve::RetryPolicy BenchRetryPolicy(uint64_t seed) {
  serve::RetryPolicy policy;
  policy.seed = seed;
  policy.max_attempts = 8;
  policy.base_delay_us = 200;
  policy.max_delay_us = 20'000;
  return policy;
}

void MergeClientStats(const serve::RetryStats& stats, RunResult* mine) {
  mine->attempts += stats.attempts;
  mine->busy_sheds += stats.busy_sheds;
  mine->transport_retries += stats.transport_retries;
}

/// Closed loop: `threads` clients, `per_thread` requests each,
/// back-to-back.
RunResult RunClosedLoop(uint16_t port, const std::vector<Dataset>& datasets,
                        int threads, int per_thread) {
  std::vector<RunResult> partial(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  Stopwatch wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RunResult& mine = partial[static_cast<size_t>(t)];
      serve::RetryingClient client(
          port, BenchRetryPolicy(7000 + static_cast<uint64_t>(t)));
      RequestStream::Options stream_options;
      stream_options.seed = 7000 + static_cast<uint64_t>(t);
      stream_options.num_datasets = datasets.size();
      RequestStream stream(stream_options);
      mine.latencies_us.reserve(static_cast<size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const Request request = stream.Next();
        Stopwatch timer;
        const int64_t bytes = IssueOne(&client, request, datasets);
        if (bytes < 0) {
          ++mine.failed;
          continue;
        }
        // Latency covers the whole logical request, backoff included.
        mine.latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
        ++mine.requests;
        mine.payload_bytes += bytes;
      }
      MergeClientStats(client.stats(), &mine);
    });
  }
  for (std::thread& worker : workers) worker.join();
  RunResult merged;
  merged.wall_seconds = wall.ElapsedSeconds();
  for (RunResult& p : partial) {
    merged.requests += p.requests;
    merged.failed += p.failed;
    merged.payload_bytes += p.payload_bytes;
    merged.attempts += p.attempts;
    merged.busy_sheds += p.busy_sheds;
    merged.transport_retries += p.transport_retries;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               p.latencies_us.begin(), p.latencies_us.end());
  }
  return merged;
}

/// Open loop: Poisson arrivals at `rate` req/s spread over `threads`
/// dispatchers; latency includes time spent waiting behind the offered
/// schedule.
RunResult RunOpenLoop(uint16_t port, const std::vector<Dataset>& datasets,
                      int threads, double rate, int total_requests) {
  std::vector<RunResult> partial(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  const int per_thread = total_requests / threads;
  Stopwatch wall;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      RunResult& mine = partial[static_cast<size_t>(t)];
      serve::RetryingClient client(
          port, BenchRetryPolicy(9000 + static_cast<uint64_t>(t)));
      RequestStream::Options stream_options;
      stream_options.seed = 9000 + static_cast<uint64_t>(t);
      stream_options.num_datasets = datasets.size();
      stream_options.arrivals_per_sec = rate / threads;
      RequestStream stream(stream_options);
      Stopwatch clock;
      double next_due_us = 0;
      for (int i = 0; i < per_thread; ++i) {
        const Request request = stream.Next();
        next_due_us += static_cast<double>(request.inter_arrival_us);
        const double now_us = clock.ElapsedSeconds() * 1e6;
        if (now_us < next_due_us) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(next_due_us - now_us)));
        }
        // Latency is measured from the *scheduled* arrival, so falling
        // behind the offered rate shows up as queueing delay.
        const int64_t bytes = IssueOne(&client, request, datasets);
        if (bytes < 0) {
          ++mine.failed;
          continue;
        }
        mine.latencies_us.push_back(clock.ElapsedSeconds() * 1e6 -
                                    next_due_us);
        ++mine.requests;
        mine.payload_bytes += bytes;
      }
      MergeClientStats(client.stats(), &mine);
    });
  }
  for (std::thread& worker : workers) worker.join();
  RunResult merged;
  merged.wall_seconds = wall.ElapsedSeconds();
  for (RunResult& p : partial) {
    merged.requests += p.requests;
    merged.failed += p.failed;
    merged.payload_bytes += p.payload_bytes;
    merged.attempts += p.attempts;
    merged.busy_sheds += p.busy_sheds;
    merged.transport_retries += p.transport_retries;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               p.latencies_us.begin(), p.latencies_us.end());
  }
  return merged;
}

void Report(const char* mode, const char* axis, int value,
            const RunResult& run, JsonReport* json) {
  std::vector<double> lat = run.latencies_us;
  const double p50 = Percentile(&lat, 0.50);
  const double p99 = Percentile(&lat, 0.99);
  const double p999 = Percentile(&lat, 0.999);
  const double rps =
      run.wall_seconds > 0 ? run.requests / run.wall_seconds : 0;
  const double gbps = Gbps(static_cast<size_t>(run.payload_bytes),
                           run.wall_seconds);
  std::printf(
      "%-12s %4d %10lld %8lld %8lld %10.0f %9.0f %9.0f %9.0f %7.2f\n",
      mode, value, static_cast<long long>(run.requests),
      static_cast<long long>(run.busy_sheds),
      static_cast<long long>(run.failed), rps, p50, p99, p999, gbps);
  char name[64];
  std::snprintf(name, sizeof(name), "serve/%s/%s=%d", mode, axis, value);
  // `requests` counts each logical request once, no matter how many
  // kBusy sheds its retries absorbed; `attempts` is the wire total.
  json->Add(name, {{"requests", static_cast<double>(run.requests)},
                   {"attempts", static_cast<double>(run.attempts)},
                   {"busy_sheds", static_cast<double>(run.busy_sheds)},
                   {"transport_retries",
                    static_cast<double>(run.transport_retries)},
                   {"failed", static_cast<double>(run.failed)},
                   {"requests_per_sec", rps},
                   {"p50_us", p50},
                   {"p99_us", p99},
                   {"p999_us", p999},
                   {"payload_gbps", gbps}});
}

int Main(int argc, char** argv) {
  JsonReport json(argc, argv);

  // Per-dataset size; PARPARAW_BENCH_MB scales it (default keeps a full
  // sweep under a minute on a small CI box).
  const size_t dataset_bytes = BenchBytes(1) / 8;
  const std::vector<Dataset> datasets = MakeDatasets(8, dataset_bytes);

  serve::ServeOptions options;
  options.max_connections = 128;
  options.max_inflight_requests =
      std::max(2u, std::thread::hardware_concurrency());
  serve::Server server(options);
  auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }

  PrintHeader("parparawd serving: closed-loop concurrency sweep");
  std::printf("%-12s %4s %10s %8s %8s %10s %9s %9s %9s %7s\n", "mode",
              "conc", "requests", "sheds", "failed", "req/s", "p50us",
              "p99us", "p999us", "GB/s");
  const int per_thread = 60;
  double saturation_rps = 0;
  for (int threads : {1, 2, 4, 8}) {
    const RunResult run =
        RunClosedLoop(*port, datasets, threads, per_thread);
    Report("closed", "threads", threads, run, &json);
    if (run.wall_seconds > 0) {
      saturation_rps =
          std::max(saturation_rps, run.requests / run.wall_seconds);
    }
  }
  json.Add("serve/saturation",
           {{"requests_per_sec", saturation_rps}});
  std::printf("saturation throughput: %.0f req/s\n", saturation_rps);

  PrintHeader("parparawd serving: open loop (Poisson arrivals)");
  std::printf("%-12s %4s %10s %8s %8s %10s %9s %9s %9s %7s\n", "mode",
              "rate%", "requests", "sheds", "failed", "req/s", "p50us",
              "p99us", "p999us", "GB/s");
  // Offered load at 30% / 60% / 90% of saturation: queueing delay climbs
  // as the daemon approaches its admission limit.
  for (int pct : {30, 60, 90}) {
    const double rate = saturation_rps * pct / 100.0;
    if (rate <= 0) break;
    const RunResult run = RunOpenLoop(*port, datasets, 4, rate, 240);
    Report("open", "pct", pct, run, &json);
  }

  // Drain latency: kick off a few in-flight parses, then measure how
  // long Drain() takes to let them finish (SIGTERM's grace path).
  PrintHeader("parparawd serving: graceful drain");
  {
    std::vector<std::thread> stragglers;
    for (int t = 0; t < 3; ++t) {
      stragglers.emplace_back([&, t] {
        serve::RetryingClient client(
            *port, BenchRetryPolicy(11000 + static_cast<uint64_t>(t)));
        (void)client.Parse(datasets[static_cast<size_t>(t) %
                                    datasets.size()].bytes);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Stopwatch drain_watch;
    const bool clean = server.Drain(/*deadline_ms=*/10000);
    const double drain_ms = drain_watch.ElapsedMillis();
    for (std::thread& straggler : stragglers) straggler.join();
    const auto stats = server.stats();
    std::printf("drain: %.1fms, clean=%d, drained=%lld, cancelled=%lld\n",
                drain_ms, clean ? 1 : 0,
                static_cast<long long>(stats.drained),
                static_cast<long long>(stats.drain_cancelled));
    json.Add("serve/drain",
             {{"drain_ms", drain_ms},
              {"clean", clean ? 1.0 : 0.0},
              {"drained", static_cast<double>(stats.drained)},
              {"drain_cancelled",
               static_cast<double>(stats.drain_cancelled)}});
  }

  server.Stop();
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace parparaw::bench

int main(int argc, char** argv) { return parparaw::bench::Main(argc, argv); }
