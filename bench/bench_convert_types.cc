// Type-conversion throughput per column type — the step that dominates the
// NYC-taxi workload (Fig. 9b attributes ~1/3 of total time to convert).

#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "convert/inference.h"
#include "convert/numeric.h"
#include "convert/temporal.h"

namespace {

using namespace parparaw;  // NOLINT

std::vector<std::string> MakeFields(const char* kind, int n) {
  std::mt19937_64 rng(13);
  std::vector<std::string> fields(n);
  char buf[64];
  for (auto& f : fields) {
    if (!std::strcmp(kind, "int")) {
      f = std::to_string(static_cast<int64_t>(rng() % 1000000) - 500000);
    } else if (!std::strcmp(kind, "float")) {
      std::snprintf(buf, sizeof(buf), "%.2f",
                    static_cast<double>(rng() % 100000) / 100.0);
      f = buf;
    } else if (!std::strcmp(kind, "decimal")) {
      std::snprintf(buf, sizeof(buf), "%llu.%02llu",
                    static_cast<unsigned long long>(rng() % 1000),
                    static_cast<unsigned long long>(rng() % 100));
      f = buf;
    } else if (!std::strcmp(kind, "date")) {
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                    2000 + static_cast<int>(rng() % 25),
                    1 + static_cast<int>(rng() % 12),
                    1 + static_cast<int>(rng() % 28));
      f = buf;
    } else {
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                    2000 + static_cast<int>(rng() % 25),
                    1 + static_cast<int>(rng() % 12),
                    1 + static_cast<int>(rng() % 28),
                    static_cast<int>(rng() % 24),
                    static_cast<int>(rng() % 60),
                    static_cast<int>(rng() % 60));
      f = buf;
    }
  }
  return fields;
}

int64_t TotalBytes(const std::vector<std::string>& fields) {
  int64_t total = 0;
  for (const auto& f : fields) total += static_cast<int64_t>(f.size());
  return total;
}

void BM_ParseInt64(benchmark::State& state) {
  const auto fields = MakeFields("int", 10000);
  for (auto _ : state) {
    int64_t v, sum = 0;
    for (const auto& f : fields) {
      if (ParseInt64(f, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ParseInt64);

void BM_ParseFloat64(benchmark::State& state) {
  const auto fields = MakeFields("float", 10000);
  for (auto _ : state) {
    double v, sum = 0;
    for (const auto& f : fields) {
      if (ParseFloat64(f, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ParseFloat64);

void BM_ParseDecimal64(benchmark::State& state) {
  const auto fields = MakeFields("decimal", 10000);
  for (auto _ : state) {
    int64_t v, sum = 0;
    for (const auto& f : fields) {
      if (ParseDecimal64(f, 2, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ParseDecimal64);

void BM_ParseDate32(benchmark::State& state) {
  const auto fields = MakeFields("date", 10000);
  for (auto _ : state) {
    int32_t v;
    int64_t sum = 0;
    for (const auto& f : fields) {
      if (ParseDate32(f, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ParseDate32);

void BM_ParseTimestamp(benchmark::State& state) {
  const auto fields = MakeFields("timestamp", 10000);
  for (auto _ : state) {
    int64_t v, sum = 0;
    for (const auto& f : fields) {
      if (ParseTimestampMicros(f, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ParseTimestamp);

void BM_ClassifyField(benchmark::State& state) {
  // The per-field classification of §4.3 type inference.
  auto fields = MakeFields("int", 3000);
  auto floats = MakeFields("float", 3000);
  auto dates = MakeFields("date", 3000);
  fields.insert(fields.end(), floats.begin(), floats.end());
  fields.insert(fields.end(), dates.begin(), dates.end());
  for (auto _ : state) {
    int64_t sum = 0;
    for (const auto& f : fields) {
      sum += static_cast<int>(ClassifyField(f));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * TotalBytes(fields));
}
BENCHMARK(BM_ClassifyField);

}  // namespace

BENCHMARK_MAIN();
