#ifndef PARPARAW_BENCH_BENCH_UTIL_H_
#define PARPARAW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/options.h"
#include "workload/generators.h"

namespace parparaw::bench {

/// Dataset size for the figure benches, overridable with
/// PARPARAW_BENCH_MB (the paper uses 512 MB slices; the default here is
/// sized for a small CI machine — shapes, not absolute numbers, are the
/// reproduction target, see EXPERIMENTS.md).
inline size_t BenchBytes(size_t default_mb) {
  const char* env = std::getenv("PARPARAW_BENCH_MB");
  if (env != nullptr) {
    const long mb = std::strtol(env, nullptr, 10);
    if (mb > 0) return static_cast<size_t>(mb) << 20;
  }
  return default_mb << 20;
}

inline double Gbps(size_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / seconds / (1 << 30) : 0;
}

inline void PrintHeader(const char* title) {
  std::printf("\n===== %s =====\n", title);
}

}  // namespace parparaw::bench

#endif  // PARPARAW_BENCH_BENCH_UTIL_H_
