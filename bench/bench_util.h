#ifndef PARPARAW_BENCH_BENCH_UTIL_H_
#define PARPARAW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "core/options.h"
#include "io/file.h"
#include "obs/obs.h"
#include "workload/generators.h"

namespace parparaw::bench {

/// Dataset size for the figure benches, overridable with
/// PARPARAW_BENCH_MB (the paper uses 512 MB slices; the default here is
/// sized for a small CI machine — shapes, not absolute numbers, are the
/// reproduction target, see EXPERIMENTS.md).
inline size_t BenchBytes(size_t default_mb) {
  const char* env = std::getenv("PARPARAW_BENCH_MB");
  if (env != nullptr) {
    const long mb = std::strtol(env, nullptr, 10);
    if (mb > 0) return static_cast<size_t>(mb) << 20;
  }
  return default_mb << 20;
}

inline double Gbps(size_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / seconds / (1 << 30) : 0;
}

inline void PrintHeader(const char* title) {
  std::printf("\n===== %s =====\n", title);
}

/// Switches the process-wide observability sinks on and returns them wired
/// into `options` so a bench run feeds the registry/tracer.
inline void EnableObservability(ParseOptions* options) {
  obs::MetricsRegistry::Global().SetEnabled(true);
  obs::Tracer::Global().SetEnabled(true);
  if (options != nullptr) {
    options->metrics = &obs::MetricsRegistry::Global();
    options->tracer = &obs::Tracer::Global();
  }
}

/// Prints the paper's per-stage breakdown (the Fig. 13 stacked-bar data)
/// from the registry's step histograms: total milliseconds, share of the
/// instrumented pipeline time, and number of recorded samples per stage.
inline void PrintStageBreakdown(obs::MetricsRegistry* registry) {
  struct Stage {
    const char* label;
    const char* histogram;
  };
  static constexpr Stage kStages[] = {
      {"context: parse (multi-DFA)", "step.context.parse_us"},
      {"context: scan (composite op)", "step.context.scan_us"},
      {"bitmaps (symbol classes)", "step.bitmap_us"},
      {"offsets (record/column scans)", "step.offset_us"},
      {"tagging: count/size", "step.tag.count_us"},
      {"tagging: scan", "step.tag.scan_us"},
      {"tagging: CSS write", "step.tag.write_us"},
      {"partition (radix sort)", "step.partition_us"},
      {"CSS indexing", "step.css_index_us"},
      {"convert (value generation)", "step.convert_us"},
  };
  double total_ms = 0;
  obs::HistogramSnapshot snaps[sizeof(kStages) / sizeof(kStages[0])];
  for (size_t i = 0; i < std::size(kStages); ++i) {
    snaps[i] = registry->GetHistogram(kStages[i].histogram)->Snapshot();
    total_ms += static_cast<double>(snaps[i].sum) / 1e3;
  }
  std::printf("%-32s %12s %8s %8s\n", "stage", "total ms", "share",
              "samples");
  for (size_t i = 0; i < std::size(kStages); ++i) {
    const double ms = static_cast<double>(snaps[i].sum) / 1e3;
    std::printf("%-32s %12.2f %7.1f%% %8lld\n", kStages[i].label, ms,
                total_ms > 0 ? 100.0 * ms / total_ms : 0.0,
                static_cast<long long>(snaps[i].count));
  }
  std::printf("%-32s %12.2f\n", "instrumented pipeline total", total_ms);
}

/// Collects benchmark measurements and, when `--json-out=<file>` was passed
/// on the command line, serialises them as a JSON document on Flush(). The
/// format is a flat list so downstream tooling can diff runs without knowing
/// each bench's shape:
///
///   {"benchmarks": [
///     {"name": "yelp_like/context/avx2",
///      "metrics": {"seconds": 0.1234, "gbps": 3.21}},
///     ...]}
///
/// With no --json-out flag the report is a no-op, so benches can always
/// record into it unconditionally.
class JsonReport {
 public:
  JsonReport(int argc, char** argv) {
    constexpr const char kFlag[] = "--json-out=";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind(kFlag, 0) == 0) path_ = arg.substr(sizeof(kFlag) - 1);
    }
  }

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& name,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    Entry entry;
    entry.name = name;
    entry.metrics.assign(metrics.begin(), metrics.end());
    entries_.push_back(std::move(entry));
  }

  /// Writes the accumulated entries to the --json-out path. Safe to call
  /// when disabled (does nothing).
  void Flush() const {
    if (path_.empty()) return;
    std::string json = "{\n  \"benchmarks\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      json += i == 0 ? "\n" : ",\n";
      json += "    {\"name\": \"" + entries_[i].name + "\", \"metrics\": {";
      for (size_t m = 0; m < entries_[i].metrics.size(); ++m) {
        if (m > 0) json += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "\"%s\": %.6g",
                      entries_[i].metrics[m].first.c_str(),
                      entries_[i].metrics[m].second);
        json += buf;
      }
      json += "}}";
    }
    json += "\n  ]\n}\n";
    if (WriteStringToFile(path_, json).ok()) {
      std::fprintf(stderr, "benchmark results written to %s (%zu entries)\n",
                   path_.c_str(), entries_.size());
    } else {
      std::fprintf(stderr, "failed to write benchmark results to %s\n",
                   path_.c_str());
    }
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

/// When PARPARAW_TRACE_OUT is set, writes the global tracer's events there
/// as chrome://tracing JSON.
inline void MaybeDumpTrace() {
  const char* path = std::getenv("PARPARAW_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return;
  const std::string json = obs::Tracer::Global().ChromeTraceJson();
  if (WriteStringToFile(path, json).ok()) {
    std::fprintf(stderr, "trace written to %s (%zu events)\n", path,
                 obs::Tracer::Global().Events().size());
  }
}

}  // namespace parparaw::bench

#endif  // PARPARAW_BENCH_BENCH_UTIL_H_
