// Reproduces Figure 9: time spent on the individual processing steps
// (parse / scan / tag / partition / convert) as a function of the chunk
// size, for the yelp-like (a) and taxi-like (b) datasets.
//
// Paper shape: mostly flat above ~16 B/chunk with overhead exploding for
// tiny chunks; convert dominates for the taxi dataset (~1/3 of total),
// contributes only ~20% for yelp; best setting around 31 B/chunk.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "sim/device_model.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

void RunDataset(const char* name, const std::string& data,
                const Schema& schema) {
  std::printf("\n--- Figure 9 (%s), input %.1f MB ---\n", name,
              static_cast<double>(data.size()) / (1 << 20));
  std::printf("%8s %9s %9s %9s %9s %9s %9s | %12s\n", "chunk", "parse",
              "scan", "tag", "partition", "convert", "total", "modeled-GPU");
  const DeviceModel device;
  for (size_t chunk : {4, 8, 12, 16, 24, 31, 32, 48, 64}) {
    ParseOptions options;
    options.schema = schema;
    options.chunk_size = chunk;
    auto result = Parser::Parse(data, options);
    if (!result.ok()) {
      std::printf("%8zu parse failed: %s\n", chunk,
                  result.status().ToString().c_str());
      continue;
    }
    const StepTimings& t = result->timings;
    const StepTimings modeled = device.ModelPipeline(
        result->work, result->table.num_columns(),
        options.format.dfa.num_states() ? options.format.dfa.num_states() : 6);
    std::printf(
        "%6zuB %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms | %9.2fms\n",
        chunk, t.parse_ms, t.scan_ms, t.tag_ms, t.partition_ms, t.convert_ms,
        t.TotalMs(), modeled.TotalMs());
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 9: per-step time vs chunk size");
  const size_t bytes = BenchBytes(8);
  RunDataset("yelp reviews (synthetic)", GenerateYelpLike(42, bytes),
             YelpSchema());
  RunDataset("NYC taxi trips (synthetic)", GenerateTaxiLike(42, bytes),
             TaxiSchema());
  return 0;
}
