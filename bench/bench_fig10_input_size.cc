// Reproduces Figure 10: on-GPU parsing rate (GB/s) as a function of the
// input size, for both datasets.
//
// Paper shape: rate grows with input size and saturates (9.75 GB/s at
// 10 MB for yelp, >2.1/2.7 GB/s already at 1 MB, ~50% of peak at 5 MB);
// small inputs suffer from the per-column kernel-launch overhead. On this
// CPU substrate the wall-clock column shows the same saturating shape; the
// modeled-GPU column reproduces the paper's scale.

#include <cstdio>

#include "bench_util.h"
#include "core/parser.h"
#include "sim/device_model.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

void RunDataset(const char* name, bool yelp) {
  const size_t max_bytes = BenchBytes(32);
  std::printf("\n--- Figure 10 (%s) ---\n", name);
  std::printf("%10s %12s %14s %14s\n", "input", "wall", "wall-rate",
              "modeled-GPU");
  const DeviceModel device;
  const std::string full = yelp ? GenerateYelpLike(7, max_bytes)
                                : GenerateTaxiLike(7, max_bytes);
  for (size_t bytes = 1 << 20; bytes <= max_bytes; bytes *= 2) {
    const std::string_view slice(full.data(), bytes);
    ParseOptions options;
    options.schema = yelp ? YelpSchema() : TaxiSchema();
    Stopwatch watch;
    auto result = Parser::Parse(slice, options);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::printf("%8zuMB failed: %s\n", bytes >> 20,
                  result.status().ToString().c_str());
      continue;
    }
    const double modeled = device.ModelParsingRateGbps(
        result->work, result->table.num_columns(), 6);
    std::printf("%8zuMB %10.1fms %11.3fGB/s %11.2fGB/s\n", bytes >> 20,
                seconds * 1e3, Gbps(bytes, seconds), modeled);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 10: parsing rate vs input size");
  RunDataset("yelp reviews (synthetic)", /*yelp=*/true);
  RunDataset("NYC taxi trips (synthetic)", /*yelp=*/false);
  return 0;
}
