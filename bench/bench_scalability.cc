// Reproduces the scalability claim (§1/§6: "able to scale to thousands of
// cores and beyond"): fixed input, sweeping (a) the CPU substrate's worker
// count for both the monolithic parse and the morsel-driven pipelined
// executor — on a multi-core host the wall time should drop near-linearly
// until the pipeline turns memory-bound — and (b) the device model's core
// count, which shows where the roofline's memory term starts to dominate
// (precisely why ParPaRaw trades extra work for bandwidth-friendly
// data-parallel steps).
//
// Every configuration is measured best-of-N; a parse failure at any point
// aborts the bench with a non-zero exit (a silently skipped row would make
// the sweep look complete while measuring nothing). With --json-out=<file>
// the measurements land in a JSON report whose fields EXPERIMENTS.md
// documents; scripts record it as BENCH_scalability.json.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/parser.h"
#include "exec/executor.h"
#include "sim/device_model.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

constexpr int kRepetitions = 3;

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "FATAL: %s failed: %s\n", what,
               status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv);
  PrintHeader("Scalability: workers (substrate) and cores (device model)");
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(11, bytes);
  const std::vector<int> worker_counts = {1, 2, 4, 8};
  // The host's parallelism bound goes into the report: speedup claims are
  // only meaningful up to this many hardware threads (a 1-core container
  // caps every sweep at ~1.0x no matter the scheduler).
  report.Add("scalability/host",
             {{"hardware_concurrency",
               static_cast<double>(std::thread::hardware_concurrency())},
              {"input_bytes", static_cast<double>(data.size())}});

  // --- (a1) monolithic parse: the data-parallel primitives alone ---
  std::printf("\n--- CPU monolithic parse worker sweep (host has %u cores) ---\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %10s\n", "workers", "wall", "rate", "speedup");
  WorkCounters work;
  int num_columns = 0;
  double parse_base_seconds = 0;
  for (int workers : worker_counts) {
    ThreadPool pool(workers);
    ParseOptions options;
    options.schema = YelpSchema();
    options.pool = &pool;
    double best = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Stopwatch watch;
      auto result = Parser::Parse(data, options);
      const double s = watch.ElapsedSeconds();
      if (!result.ok()) Die("monolithic parse", result.status());
      if (rep == 0 || s < best) best = s;
      work = result->work;
      num_columns = result->table.num_columns();
    }
    if (workers == worker_counts.front()) parse_base_seconds = best;
    const double speedup = best > 0 ? parse_base_seconds / best : 0;
    std::printf("%8d %10.1fms %9.3fGB/s %9.2fx\n", workers, best * 1e3,
                Gbps(data.size(), best), speedup);
    report.Add("scalability/parse/workers=" + std::to_string(workers),
               {{"seconds", best},
                {"gbps", Gbps(data.size(), best)},
                {"speedup_vs_1", speedup}});
  }

  // --- (a2) morsel-driven pipelined executor, end to end ---
  // Partitions sized so the sweep has real inter-partition parallelism
  // (scan is carry-serialised; sort/convert morsels overlap freely), with
  // the admission limit opened up so residency never caps the sweep.
  std::printf("\n--- CPU pipelined-executor worker sweep (morsel scheduler) ---\n");
  std::printf("%8s %12s %12s %10s  %s\n", "workers", "wall", "rate",
              "speedup", "stage busy (read/scan/sort/convert)");
  double exec_base_seconds = 0;
  for (int workers : worker_counts) {
    ThreadPool pool(workers);
    exec::ExecOptions options;
    options.base.schema = YelpSchema();
    options.base.pool = &pool;
    options.partition_size = std::max<size_t>(data.size() / 16, 64 * 1024);
    options.max_inflight_partitions = 16;
    double best = 0;
    exec::IngestStats stats;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      exec::PipelineExecutor executor;
      auto result = executor.IngestBuffer(data, options);
      if (!result.ok()) Die("pipelined ingest", result.status());
      if (rep == 0 || result->stats.wall_seconds < best) {
        best = result->stats.wall_seconds;
        stats = result->stats;
      }
    }
    if (workers == worker_counts.front()) exec_base_seconds = best;
    const double speedup = best > 0 ? exec_base_seconds / best : 0;
    // Per-stage busy seconds are the memory-bound evidence: once the
    // summed busy time stops growing but wall time stops shrinking, the
    // added workers are waiting on bandwidth, not on the scheduler.
    std::printf("%8d %10.1fms %9.3fGB/s %9.2fx  %.0f/%.0f/%.0f/%.0fms\n",
                workers, best * 1e3, Gbps(data.size(), best), speedup,
                stats.read_seconds * 1e3, stats.scan_seconds * 1e3,
                stats.sort_seconds * 1e3, stats.convert_seconds * 1e3);
    report.Add("scalability/executor/workers=" + std::to_string(workers),
               {{"seconds", best},
                {"gbps", Gbps(data.size(), best)},
                {"speedup_vs_1", speedup},
                {"partitions", static_cast<double>(stats.num_partitions)},
                {"read_seconds", stats.read_seconds},
                {"scan_seconds", stats.scan_seconds},
                {"sort_seconds", stats.sort_seconds},
                {"convert_seconds", stats.convert_seconds}});
  }

  // --- (b) device model: where the memory roofline flattens the curve ---
  std::printf("\n--- Device-model core sweep (Titan X = 3584 cores) ---\n");
  std::printf("%8s %14s %14s\n", "cores", "modeled-time", "modeled-rate");
  for (int cores : {128, 256, 512, 1024, 2048, 3584, 7168, 14336}) {
    DeviceSpec spec;
    spec.cores = cores;
    const DeviceModel model(spec);
    const StepTimings t = model.ModelPipeline(work, num_columns, 6);
    const double modeled_gbps =
        model.ModelParsingRateGbps(work, num_columns, 6);
    std::printf("%8d %11.2fms %11.2fGB/s\n", cores, t.TotalMs(),
                modeled_gbps);
    report.Add("scalability/device_model/cores=" + std::to_string(cores),
               {{"modeled_ms", t.TotalMs()}, {"modeled_gbps", modeled_gbps}});
  }
  std::printf(
      "\n(The modeled curve flattens once the pipeline becomes memory-"
      "bound; scan work is O(#chunks) and never serialises.)\n");
  report.Flush();
  return 0;
}
