// Reproduces the scalability claim (§1/§6: "able to scale to thousands of
// cores and beyond"): fixed input, sweeping (a) the CPU substrate's worker
// count — on a multi-core host the wall time should drop near-linearly —
// and (b) the device model's core count, which shows when the algorithm
// turns memory-bound (adding cores stops helping once the roofline's
// memory term dominates, which is precisely why ParPaRaw trades extra work
// for bandwidth-friendly data-parallel steps).

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/parser.h"
#include "sim/device_model.h"
#include "util/stopwatch.h"

namespace {

using namespace parparaw;         // NOLINT
using namespace parparaw::bench;  // NOLINT

}  // namespace

int main() {
  PrintHeader("Scalability: workers (substrate) and cores (device model)");
  const size_t bytes = BenchBytes(8);
  const std::string data = GenerateYelpLike(11, bytes);

  std::printf("\n--- CPU substrate worker sweep (host has %u cores) ---\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s\n", "workers", "wall", "rate");
  WorkCounters work;
  int num_columns = 0;
  for (int workers : {1, 2, 4, 8}) {
    ThreadPool pool(workers);
    ParseOptions options;
    options.schema = YelpSchema();
    options.pool = &pool;
    Stopwatch watch;
    auto result = Parser::Parse(data, options);
    const double s = watch.ElapsedSeconds();
    if (!result.ok()) continue;
    work = result->work;
    num_columns = result->table.num_columns();
    std::printf("%8d %10.1fms %9.3fGB/s\n", workers, s * 1e3,
                Gbps(data.size(), s));
  }

  std::printf("\n--- Device-model core sweep (Titan X = 3584 cores) ---\n");
  std::printf("%8s %14s %14s\n", "cores", "modeled-time", "modeled-rate");
  for (int cores : {128, 256, 512, 1024, 2048, 3584, 7168, 14336}) {
    DeviceSpec spec;
    spec.cores = cores;
    const DeviceModel model(spec);
    const StepTimings t = model.ModelPipeline(work, num_columns, 6);
    std::printf("%8d %11.2fms %11.2fGB/s\n", cores, t.TotalMs(),
                model.ModelParsingRateGbps(work, num_columns, 6));
  }
  std::printf(
      "\n(The modeled curve flattens once the pipeline becomes memory-"
      "bound; scan work is O(#chunks) and never serialises.)\n");
  return 0;
}
