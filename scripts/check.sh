#!/usr/bin/env bash
# Tier-1 hardening driver: builds and runs the test suite under ASan+UBSan,
# then rebuilds under TSan and runs the concurrency-sensitive tests
# (thread pool, observability, streaming). Usage:
#
#   scripts/check.sh            # asan+ubsan full suite, then tsan subset
#   scripts/check.sh asan       # just the address+undefined pass
#   scripts/check.sh tsan       # just the thread-sanitizer pass
#
# Build trees land in build-asan/ and build-tsan/ next to the normal
# build/ so a sanitizer run never invalidates the regular build cache.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_asan() {
  echo "=== ASan+UBSan: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== ASan+UBSan: build ==="
  cmake --build build-asan -j "${JOBS}"
  echo "=== ASan+UBSan: full test suite ==="
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "=== TSan: configure ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== TSan: build ==="
  cmake --build build-tsan -j "${JOBS}"
  # The concurrency surface: the worker pool, the lock-free metric shards
  # and tracer, and the streaming pipeline that drives both.
  echo "=== TSan: concurrency-sensitive tests ==="
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'ThreadPool|ParallelFor|Metrics|Tracer|ObsIntegration|Streaming'
}

case "${MODE}" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)
    run_asan
    run_tsan
    ;;
  *)
    echo "usage: $0 [asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "=== all sanitizer passes clean ==="
