#!/usr/bin/env bash
# Tier-1 hardening driver: builds and runs the test suite under ASan+UBSan,
# then rebuilds under TSan and runs the concurrency-sensitive tests
# (thread pool, observability, streaming), then re-runs the suite once per
# src/simd kernel variant (PARPARAW_FORCE_KERNEL) so every dispatch level —
# not just the one this machine auto-selects — gets sanitizer coverage.
# Usage:
#
#   scripts/check.sh            # asan+ubsan suite, tsan subset, kernel sweep
#   scripts/check.sh asan       # just the address+undefined pass
#   scripts/check.sh tsan       # just the thread-sanitizer pass
#   scripts/check.sh kernels    # just the per-kernel-variant sweep
#   scripts/check.sh faults     # fault-injection: chaos/robustness suites
#                               # under ASan+UBSan across a fixed seed matrix
#   scripts/check.sh pipeline   # pipelined-executor differential suite
#                               # (exec/Reader/chaos) under TSan
#   scripts/check.sh transpose  # full suite per TransposeMode
#                               # (PARPARAW_TRANSPOSE_MODE) plus the
#                               # symbol-sort vs field-gather differential
#                               # harness, under ASan+UBSan
#   scripts/check.sh dialects   # dialect compiler suite (equivalence
#                               # proofs, minimiser properties, widened
#                               # generated-dialect differential sweeps,
#                               # chaos) under ASan+UBSan
#   scripts/check.sh tuning     # adaptive planner: determinism/decision
#                               # suites, the Tuning/Validate contradiction
#                               # matrix, Reader Explain/WithTuning, chaos
#                               # with plan.* failpoints, and the planner
#                               # axes of both differential harnesses under
#                               # ASan+UBSan; per-request planning against
#                               # the daemon's shared state under TSan;
#                               # then the --planner ablation bench in the
#                               # regular build emitting BENCH_autotune.json
#   scripts/check.sh scaling    # morsel scheduler: forward-progress
#                               # regressions (nested ParallelFor,
#                               # concurrent decoupled-lookback scans on
#                               # an occupied pool), task-group scoping,
#                               # steal stress, and both differential
#                               # harnesses under TSan, plus the chaos
#                               # sweep with sched.submit/sched.steal
#                               # schedule-perturbation failpoints armed
#   scripts/check.sh serve      # parparawd daemon: protocol conformance,
#                               # 10k-frame fuzz (malformed + bit-flipped
#                               # checksummed frames), request-lifecycle
#                               # suites (deadlines/drain/retry/timeouts)
#                               # and a SIGTERM drain smoke of the real
#                               # binary under ASan+UBSan, then the
#                               # multi-client loopback + restart soak
#                               # under TSan, plus the chaos sweep with
#                               # serve.* failpoints in its schedule space
#
# Build trees land in build-asan/ and build-tsan/ next to the normal
# build/ so a sanitizer run never invalidates the regular build cache.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_asan() {
  echo "=== ASan+UBSan: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== ASan+UBSan: build ==="
  cmake --build build-asan -j "${JOBS}"
  echo "=== ASan+UBSan: full test suite ==="
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
}

run_tsan() {
  echo "=== TSan: configure ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== TSan: build ==="
  cmake --build build-tsan -j "${JOBS}"
  # The concurrency surface: the worker pool, the lock-free metric shards
  # and tracer, the streaming pipeline, and the staged ingestion executor
  # with its bounded queues and admission controller.
  echo "=== TSan: concurrency-sensitive tests ==="
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'ThreadPool|ParallelFor|Scheduler|TaskGroup|Metrics|Tracer|ObsIntegration|Streaming|Exec|Reader'
}

run_scaling() {
  echo "=== scaling: configure (TSan) ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== scaling: build ==="
  cmake --build build-tsan -j "${JOBS}"
  # The work-stealing scheduler's whole surface under the thread
  # sanitizer: the forward-progress regressions (nested ParallelFor
  # deadlock, decoupled-lookback scan livelock on an occupied shared
  # pool), task-group scoping, the steal/injection stress suites, the
  # scan/sort primitives that ride on the pool, and both differential
  # harnesses — morsel output must stay bit-identical to the serial
  # reference no matter the schedule.
  echo "=== scaling: scheduler + scan stress + differential under TSan ==="
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'Scheduler|TaskGroup|ThreadPool|ParallelFor|Scan|RadixSort|Exec|Reader|SimdDifferential|TransposeDifferential'
  # The chaos sweep with the scheduler's schedule-perturbation sites
  # (sched.submit -> inline execution, sched.steal -> skipped steal) in
  # the armed matrix: perturbing the schedule must never change output.
  echo "=== scaling: chaos sweep with sched.* perturbation under TSan ==="
  PARPARAW_CHAOS_SCHEDULES=400 \
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'Chaos'
}

run_pipeline() {
  echo "=== pipeline: configure (TSan) ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== pipeline: build ==="
  cmake --build build-tsan -j "${JOBS}"
  # The executor's differential suite (pipelined vs serial, bit-identical
  # across kernels and error policies), the Reader facade on top of it,
  # and the chaos sweep — whose schedule space now includes faults at
  # every exec queue hand-off — all under the thread sanitizer, since the
  # pipeline is the most schedule-sensitive code in the repo.
  echo "=== pipeline: executor differential + chaos under TSan ==="
  PARPARAW_CHAOS_SCHEDULES=400 \
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'Exec|Reader|Validate|Chaos'
}

run_kernels() {
  echo "=== kernel sweep: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== kernel sweep: build ==="
  cmake --build build-asan -j "${JOBS}"
  # scalar = the reference pipeline; swar = the portable fallback every
  # build has; simd = the best vector level this CPU offers (degrades to
  # swar when none). The full suite runs per variant, then the
  # differential harness once more by itself so its cross-level sweep is
  # exercised with the env override active too.
  for kernel in scalar swar simd; do
    echo "=== kernel sweep: full suite, PARPARAW_FORCE_KERNEL=${kernel} ==="
    PARPARAW_FORCE_KERNEL="${kernel}" \
    ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
    echo "=== kernel sweep: differential tests, PARPARAW_FORCE_KERNEL=${kernel} ==="
    PARPARAW_FORCE_KERNEL="${kernel}" \
    ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
        -R 'SimdDifferential|SimdSpeculation|Utf8Boundary'
  done
}

run_faults() {
  echo "=== faults: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== faults: build ==="
  cmake --build build-asan -j "${JOBS}"
  # The robustness surface (see docs/robustness.md): failpoint semantics,
  # quarantine capture/repair, IPC corruption sweeps, I/O retry — then the
  # chaos harness over a fixed matrix of seed bases so regressions replay
  # deterministically. Each base shifts the whole schedule space; together
  # with the in-test default this covers >4000 distinct seeded schedules.
  for seed_base in 20260806 1 981276341; do
    echo "=== faults: chaos/robustness suites, seed base ${seed_base} ==="
    PARPARAW_CHAOS_SEED_BASE="${seed_base}" \
    PARPARAW_CHAOS_SCHEDULES=1200 \
    ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
        -R 'Chaos|Robust|Failpoint|Quarantine|Reparse|Ipc'
  done
}

run_transpose() {
  echo "=== transpose sweep: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== transpose sweep: build ==="
  cmake --build build-asan -j "${JOBS}"
  # The full suite once per transposition implementation: the env override
  # flips what TransposeMode::kAuto resolves to, so every test that does
  # not pin a mode runs both the field-gather default and the paper's
  # symbol-sort path. Then the dedicated differential harness (10k+ seeded
  # inputs comparing the two bit for bit) with the default resolution.
  for mode in field_gather symbol_sort; do
    echo "=== transpose sweep: full suite, PARPARAW_TRANSPOSE_MODE=${mode} ==="
    PARPARAW_TRANSPOSE_MODE="${mode}" \
    ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
    UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
      ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
  done
  echo "=== transpose sweep: differential harness ==="
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
      -R 'TransposeDifferential|FieldGather|CssIndex|Tagging'
}

run_dialects() {
  echo "=== dialects: configure ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== dialects: build ==="
  cmake --build build-asan -j "${JOBS}"
  # The dialect compiler surface (see docs/dialects.md): the built-in-twin
  # equivalence proofs and minimiser property sweeps, the generated-dialect
  # axes of the SIMD and transpose differential harnesses with the seed
  # count raised well past the in-test default, and the chaos schedule
  # space that now includes dialect.compile/dialect.minimise faults — all
  # under ASan+UBSan, since the compiler allocates per-spec tables the
  # regular suite only exercises for the built-ins.
  echo "=== dialects: equivalence, minimiser, differential, chaos ==="
  PARPARAW_DIALECT_SEEDS=256 \
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
      -R 'Dialect|SimdDifferential|TransposeDifferential|Chaos|Sniffer'
}

run_tuning() {
  echo "=== tuning: configure (ASan+UBSan) ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== tuning: build ==="
  cmake --build build-asan -j "${JOBS}"
  # The adaptive-planner surface (see docs/tuning.md): plan determinism and
  # the decision table, static resolution of every kAuto sentinel, the
  # Tuning env vocabulary, the Validate() contradiction matrix for
  # PlannerMode::kForce, Reader::WithTuning/Explain, the plan.sample/
  # plan.decide failpoints inside the chaos schedule space, and the
  # planner axes of both differential harnesses (planned parses must be
  # bit-identical to their static equivalents) — all under ASan+UBSan,
  # since sampling walks raw input prefixes with its own bounds logic.
  echo "=== tuning: planner suites + differential harnesses ==="
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
      -R 'Planner|Validate|Reader|Tuning|Chaos|SimdDifferential|TransposeDifferential'
  echo "=== tuning: configure (TSan) ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== tuning: build (TSan) ==="
  cmake --build build-tsan -j "${JOBS}"
  # Planning now runs per request inside the daemon and per parse inside
  # the pipelined executor, so the planner's reads of the process-wide
  # kernel dispatch state race-check against concurrent clients here.
  echo "=== tuning: concurrent per-request planning under TSan ==="
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'Planner|Reader|Exec|ServeConcurrency|ServeConformance'
  # The ablation bench runs in the regular (unsanitized) tree: kAuto must
  # land within 5% of the best static row and >=2x the worst somewhere.
  # The bench itself retries a corpus whose measurement hits a host
  # throughput dip, so a FAIL exit here is a real planner regression.
  echo "=== tuning: planner ablation bench (BENCH_autotune.json) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j "${JOBS}" --target bench_ablation_primitives
  ./build/bench/bench_ablation_primitives --planner \
    --json-out=BENCH_autotune.json
}

run_serve() {
  echo "=== serve: configure (ASan+UBSan) ==="
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=address,undefined
  echo "=== serve: build ==="
  cmake --build build-asan -j "${JOBS}"
  # The daemon's memory-safety surface: every protocol encoder/decoder,
  # the 10k-seeded-malformed-frame fuzz plus the 10k bit-flipped
  # checksummed-frame fuzz (CRC-32C wire integrity), the request
  # lifecycle (deadlines, drain, retry, connect/IO timeouts), the
  # admission-controller edges, the robust socket I/O helpers with their
  # serve.* failpoints, the workload generators, and the chaos sweep
  # (whose schedule space includes serve.deadline/serve.drain/
  # serve.corrupt faults and a checksummed loopback daemon entry point).
  echo "=== serve: conformance + fuzz + lifecycle under ASan+UBSan ==="
  ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1 \
  UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
      -R 'ServeProtocol|ServeConformance|ServeFailpoint|ServeFuzz|RequestStream|Chaos|ServeDeadline|ServeDrain|ServeRetry|ServeTimeout|Admission|Crc32c'
  # Kill-and-restart smoke on the real binary: SIGTERM must drain (let
  # in-flight requests finish, then exit 0 reporting a clean drain), and
  # the ASan/LSan runtime must see no leaks on that exit path.
  echo "=== serve: parparawd SIGTERM drain smoke ==="
  local log="build-asan/parparawd-drain-smoke.log"
  ASAN_OPTIONS=detect_leaks=1 \
    ./build-asan/src/parparawd --port 0 --drain-deadline-ms 2000 \
      >"${log}" 2>&1 &
  local daemon_pid=$!
  for _ in $(seq 1 100); do
    grep -q 'listening on 127\.0\.0\.1:' "${log}" && break
    sleep 0.1
  done
  grep -q 'listening on 127\.0\.0\.1:' "${log}" || {
    echo "parparawd never came up:"; cat "${log}"; return 1; }
  kill -TERM "${daemon_pid}"
  wait "${daemon_pid}" || { echo "parparawd exited non-zero:"; cat "${log}"; return 1; }
  grep -q 'drain clean' "${log}" || {
    echo "parparawd did not drain cleanly:"; cat "${log}"; return 1; }
  echo "=== serve: drain smoke clean ==="
  echo "=== serve: configure (TSan) ==="
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPARPARAW_SANITIZE=thread
  echo "=== serve: build (TSan) ==="
  cmake --build build-tsan -j "${JOBS}"
  # The daemon's schedule-sensitive surface: N concurrent clients mixing
  # ingest/query/disconnect against one shared admission controller, the
  # BUSY shedding paths, cancel-on-disconnect slot return, graceful drain
  # racing in-flight requests, deadline expiry racing completion, the
  # retrying client's kill-and-restart soak, and clean shutdown with
  # requests in flight.
  echo "=== serve: concurrency soak under TSan ==="
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -R 'ServeConcurrency|ServeConformance|ServeDeadline|ServeDrain|ServeRetry|Admission'
}

case "${MODE}" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  kernels) run_kernels ;;
  faults) run_faults ;;
  pipeline) run_pipeline ;;
  scaling) run_scaling ;;
  transpose) run_transpose ;;
  dialects) run_dialects ;;
  tuning) run_tuning ;;
  serve) run_serve ;;
  all)
    run_asan
    run_tsan
    run_kernels
    run_faults
    run_pipeline
    run_scaling
    run_transpose
    run_dialects
    run_tuning
    run_serve
    ;;
  *)
    echo "usage: $0 [asan|tsan|kernels|faults|pipeline|scaling|transpose|dialects|tuning|serve|all]" >&2
    exit 2
    ;;
esac

echo "=== all sanitizer passes clean ==="
