// In-situ querying of raw data — the paper's §1 motivation: answer an
// analytical query directly over a raw CSV, with no load phase. Shows the
// full path: (optional) Sparser-style raw prefilter -> ParPaRaw parse ->
// column statistics -> filter/group-by/aggregate.
//
//   ./build/examples/in_situ_query [MB]

#include <cstdio>
#include <cstdlib>

#include "columnar/statistics.h"
#include "core/parser.h"
#include "query/query.h"
#include "query/raw_filter.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace parparaw;  // NOLINT

  const size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::string csv = GenerateTaxiLike(/*seed=*/8, mb << 20);
  std::printf("raw input: %s of taxi CSV\n",
              FormatBytes(csv.size()).c_str());

  // Query: for store-and-forward trips (rare), revenue stats per vendor.
  // The 'Y' flag appears in ~5%% of records, so the raw prefilter drops
  // most bytes before the parser ever sees them (taxi newlines are always
  // record boundaries, the prefilter's applicability condition).
  Stopwatch watch;
  RawFilterStats raw_stats;
  auto prefiltered = RawFilterLines(csv, ",Y,", &raw_stats);
  if (!prefiltered.ok()) return 1;
  std::printf("raw prefilter: kept %lld of %lld lines (%.1f%% of bytes) "
              "in %.1f ms\n",
              static_cast<long long>(raw_stats.kept_lines),
              static_cast<long long>(raw_stats.input_lines),
              raw_stats.Selectivity() * 100, watch.ElapsedMillis());

  ParseOptions options;
  options.schema = TaxiSchema();
  watch.Restart();
  auto parsed = Parser::Parse(*prefiltered, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %lld candidate trips in %.1f ms\n",
              static_cast<long long>(parsed->table.num_rows),
              watch.ElapsedMillis());

  // Post-parse statistics (what a query optimiser would keep).
  auto stats = ComputeTableStatistics(parsed->table);
  if (stats.ok()) {
    std::printf("column stats: total_amount %s\n",
                (*stats)[16].ToString().c_str());
  }

  // Exact predicate resolves the prefilter's false positives.
  QuerySpec spec;
  spec.filter.conjuncts.push_back(
      {6 /*store_and_fwd_flag*/, CompareOp::kEq, "Y"});
  spec.group_by = 0;  // VendorID
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kMean, 16 /*total_amount*/),
                     Aggregate(AggKind::kMax, 4 /*trip_distance*/)};
  watch.Restart();
  auto result = RunQuery(parsed->table, spec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("query in %.1f ms:\n", watch.ElapsedMillis());
  std::printf("  %-8s %10s %18s %18s\n", "vendor", "trips", "mean(total)",
              "max(distance)");
  for (int64_t r = 0; r < result->num_rows; ++r) {
    std::printf("  %-8s %10s %18s %18s\n",
                result->columns[0].ValueToString(r).c_str(),
                result->columns[1].ValueToString(r).c_str(),
                result->columns[2].ValueToString(r).c_str(),
                result->columns[3].ValueToString(r).c_str());
  }
  return 0;
}
