// Command-line converter: CSV file -> serialized columnar table (the
// Arrow-style interchange bytes of columnar/ipc.h), exercising file I/O,
// header skipping, type inference, and the writer round-trip.
//
//   ./build/examples/csv_to_columnar <in.csv> <out.pprw> [--header]
//   ./build/examples/csv_to_columnar --demo       (self-contained demo)

#include <cstdio>
#include <cstring>
#include <string>

#include "api/reader.h"
#include "columnar/ipc.h"
#include "io/csv_writer.h"
#include "io/file.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace {

using namespace parparaw;  // NOLINT

int Convert(const std::string& in_path, const std::string& out_path,
            bool header) {
  auto parsed = Reader::FromFile(in_path).WithHeader(header).ReadDetailed();
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto bytes = SerializeTable(parsed->table);
  if (!bytes.ok()) {
    std::fprintf(stderr, "serialize: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }
  Status write = WriteStringToFile(out_path, *bytes);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("%s (%s) -> %s (%s): %lld rows, %d columns\n",
              in_path.c_str(), FormatBytes(parsed->input_bytes).c_str(),
              out_path.c_str(), FormatBytes(bytes->size()).c_str(),
              static_cast<long long>(parsed->table.num_rows),
              parsed->table.num_columns());
  for (int c = 0; c < parsed->table.num_columns(); ++c) {
    std::printf("  %-4s %s\n",
                parsed->table.schema.field(c).name.c_str(),
                parsed->table.schema.field(c).type.ToString().c_str());
  }
  return 0;
}

int Demo() {
  const std::string csv_path = "/tmp/parparaw_demo.csv";
  const std::string out_path = "/tmp/parparaw_demo.pprw";
  Status st = WriteStringToFile(csv_path, GenerateTaxiLike(1, 256 * 1024));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int rc = Convert(csv_path, out_path, /*header=*/false);
  if (rc != 0) return rc;

  // Read the columnar bytes back and verify the round trip.
  auto bytes = ReadFileToString(out_path);
  if (!bytes.ok()) return 1;
  auto table = DeserializeTable(*bytes);
  if (!table.ok()) {
    std::fprintf(stderr, "deserialize: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("read back %lld rows; first row: %s\n",
              static_cast<long long>(table->num_rows),
              table->RowToString(0).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return Demo();
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <in.csv> <out.pprw> [--header] | --demo\n",
                 argv[0]);
    return 2;
  }
  const bool header = argc > 3 && std::strcmp(argv[3], "--header") == 0;
  return Convert(argv[1], argv[2], header);
}
