// Custom dialect: parse a European-style CSV — ';'-separated fields,
// backslash escapes inside quotes, '#' comment lines — by describing the
// format as a DialectSpec instead of hand-building a DFA. The spec is
// compiled at runtime (DFA construction + Hopcroft-style minimisation +
// equivalence proof) and slots into the same massively parallel pipeline
// as the built-in formats. See docs/dialects.md.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/custom_dialect

#include <cstdio>

#include "api/reader.h"
#include "dialect/dialect.h"

int main() {
  using namespace parparaw;  // NOLINT

  // The same furniture data a European ERP system would export: ';' between
  // fields (',' is the decimal separator), backslash-escaped quotes, and
  // '#' comment lines interleaved with the data.
  const std::string csv =
      "# furniture export, 2026-08\n"
      "1941;199,99;\"Bookcase\"\n"
      "1938;19,99;\"Frame \\\"Ribba\\\"; black\"\n"
      "# prices include VAT\n"
      "2104;89,50;\"Shelf; wall-mounted\"\n";

  dialect::DialectSpec euro;
  euro.name = "euro-csv";
  euro.field_delimiter = ';';
  euro.escape_style = dialect::EscapeStyle::kBackslash;
  euro.comment = '#';
  euro.skip_empty_lines = true;

  // Optional: inspect what the compiler produced. Compile() builds the
  // wide automaton, minimises it, proves the result equivalent, and packs
  // it into the 4-bit-per-state SIMD representation when it fits.
  auto compiled = dialect::Compile(euro);
  if (!compiled.ok()) {
    std::fprintf(stderr, "dialect rejected: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("dialect '%s': %d states minimised to %d, %s\n",
              euro.name.c_str(), compiled->original_states,
              compiled->minimized_states,
              compiled->within_budget ? "within the SIMD register budget"
                                      : "scalar fallback");

  Schema schema;
  schema.AddField(Field("article_id", DataType::Int64()));
  schema.AddField(Field("price", DataType::String()));
  schema.AddField(Field("description", DataType::String()));

  auto result = Reader::FromBuffer(csv)
                    .WithDialect(euro)
                    .WithSchema(schema)
                    .WithHeader(false)
                    .Read();
  if (!result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Table& table = *result;
  std::printf("parsed %lld rows x %d columns\n",
              static_cast<long long>(table.num_rows), table.num_columns());
  for (int64_t row = 0; row < table.num_rows; ++row) {
    std::printf("  article %lld: %s EUR  %s\n",
                static_cast<long long>(table.columns[0].Value<int64_t>(row)),
                std::string(table.columns[1].StringValue(row)).c_str(),
                std::string(table.columns[2].StringValue(row)).c_str());
  }
  return 0;
}
