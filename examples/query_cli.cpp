// One-shot SQL over a raw file: sniff the dialect, parse in situ with
// inferred types, run the query — no load phase, the paper's end-to-end
// promise in a single command.
//
//   ./build/examples/query_cli <file> "SELECT ... FROM t ..."
//   ./build/examples/query_cli --trace-out=/tmp/trace.json <file> "<SQL>"
//   ./build/examples/query_cli --demo
//
// With --trace-out the run records pipeline/query spans and writes them as
// chrome://tracing JSON (open via chrome://tracing or ui.perfetto.dev);
// a metrics summary is printed to stderr.

#include <cstdio>
#include <cstring>

#include <string>
#include <vector>

#include "core/parser.h"
#include "dfa/sniffer.h"
#include "io/file.h"
#include "obs/obs.h"
#include "query/sql.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace {

using namespace parparaw;  // NOLINT

int RunQueryOnFile(const std::string& path, const std::string& sql,
                   const std::string& trace_out) {
  Stopwatch total;
  // Enable the sinks before the read so I/O-side counters (robust.io_retries
  // and friends) land in the summary too.
  if (!trace_out.empty()) {
    obs::MetricsRegistry::Global().SetEnabled(true);
    obs::Tracer::Global().SetEnabled(true);
  }
  auto raw = ReadFileToString(path);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }

  // Sniff the dialect from the head of the file.
  auto sniffed = SniffDsvFormat(
      std::string_view(*raw).substr(0, std::min<size_t>(raw->size(), 64 << 10)));
  if (!sniffed.ok()) {
    std::fprintf(stderr, "sniff: %s\n",
                 sniffed.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "dialect: delimiter=0x%02x quote=%s header=%s columns=%u "
               "(confidence %.2f)\n",
               sniffed->options.field_delimiter,
               sniffed->options.quote ? "yes" : "no",
               sniffed->has_header ? "yes" : "no", sniffed->num_columns,
               sniffed->confidence);

  // Column names from the header row (when present) drive the SQL schema.
  ParseOptions options;
  auto format = DsvFormat(sniffed->options);
  if (!format.ok()) return 1;
  options.format = *format;
  options.infer_types = true;
  if (!trace_out.empty()) {
    options.metrics = &obs::MetricsRegistry::Global();
    options.tracer = &obs::Tracer::Global();
  }
  std::vector<std::string> names;
  if (sniffed->has_header) {
    options.skip_rows = 1;
    const size_t eol = raw->find('\n');
    const std::string header = raw->substr(0, eol);
    for (std::string_view piece :
         SplitString(header, static_cast<char>(
                                 sniffed->options.field_delimiter))) {
      piece = TrimWhitespace(piece);
      if (!piece.empty() && piece.front() == '"' && piece.back() == '"' &&
          piece.size() >= 2) {
        piece = piece.substr(1, piece.size() - 2);
      }
      names.emplace_back(piece);
    }
  }

  Stopwatch parse_watch;
  auto parsed = Parser::Parse(*raw, options);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  // Rename inferred f0..fN to the header names.
  Table& table = parsed->table;
  for (int c = 0;
       c < table.schema.num_fields() && c < static_cast<int>(names.size());
       ++c) {
    table.schema.mutable_field(c)->name = names[c];
  }
  std::fprintf(stderr, "parsed %lld rows (%s) in %.1f ms\n",
               static_cast<long long>(table.num_rows),
               table.schema.ToString().c_str(),
               parse_watch.ElapsedMillis());

  auto result = ExecuteSql(sql, table);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  // Print the result as CSV with a header.
  for (int c = 0; c < result->num_columns(); ++c) {
    std::printf("%s%s", c > 0 ? "," : "",
                result->schema.field(c).name.c_str());
  }
  std::printf("\n");
  const int64_t limit = std::min<int64_t>(result->num_rows, 50);
  for (int64_t r = 0; r < limit; ++r) {
    std::string row = result->RowToString(r);
    std::printf("%s\n", row.c_str());
  }
  if (limit < result->num_rows) {
    std::printf("... (%lld more rows)\n",
                static_cast<long long>(result->num_rows - limit));
  }
  std::fprintf(stderr, "total %.1f ms\n", total.ElapsedMillis());
  if (!trace_out.empty()) {
    const std::string json = obs::Tracer::Global().ChromeTraceJson();
    auto written = WriteStringToFile(trace_out, json);
    if (!written.ok()) {
      std::fprintf(stderr, "trace-out: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s (%zu events)\n",
                 trace_out.c_str(),
                 obs::Tracer::Global().Events().size());
    std::fprintf(stderr, "%s", obs::MetricsRegistry::Global()
                                   .SummaryText()
                                   .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::vector<char*> args;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kTraceFlag[] = "--trace-out=";
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      trace_out = argv[i] + sizeof(kTraceFlag) - 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!args.empty() && std::strcmp(args[0], "--demo") == 0) {
    const std::string path = "/tmp/parparaw_query_demo.csv";
    std::string csv = "id,customer,amount,day\n";
    csv += "1,alice,10.5,2023-01-01\n2,bob,3.25,2023-01-02\n";
    csv += "3,alice,7.0,2023-01-02\n4,bob,12.0,2023-01-03\n";
    if (!WriteStringToFile(path, csv).ok()) return 1;
    return RunQueryOnFile(
        path,
        "SELECT count(*), sum(amount) FROM t WHERE amount > 5 "
        "GROUP BY customer",
        trace_out);
  }
  if (args.size() < 2) {
    std::fprintf(stderr,
                 "usage: %s [--trace-out=<file>] <file> \"<SQL>\" | --demo\n",
                 argv[0]);
    return 2;
  }
  return RunQueryOnFile(args[0], args[1], trace_out);
}
