// End-to-end streaming (§4.4, Fig. 7): parse a yelp-like dataset in
// fixed-size partitions with carry-over of incomplete trailing records,
// and print the modelled overlapped transfer/parse/return timeline.
//
//   ./build/examples/streaming_ingest [MB] [partition_MB]

#include <cstdio>
#include <cstdlib>

#include "stream/streaming_parser.h"
#include "util/string_util.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace parparaw;  // NOLINT

  const size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const size_t partition_mb =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const std::string csv = GenerateYelpLike(/*seed=*/3, mb << 20);
  std::printf("input: %s of review CSV, %zu MB partitions\n",
              FormatBytes(csv.size()).c_str(), partition_mb);

  StreamingOptions options;
  options.base.schema = YelpSchema();
  options.partition_size = partition_mb << 20;

  auto result = StreamingParser::Parse(csv, options);
  if (!result.ok()) {
    std::fprintf(stderr, "streaming parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %lld reviews across %d partitions\n",
              static_cast<long long>(result->table.num_rows),
              result->num_partitions);
  std::printf("CPU-substrate wall time: %.1f ms\n",
              result->wall_seconds * 1e3);
  std::printf("modeled GPU end-to-end:  %.2f ms (overlapped) vs %.2f ms "
              "(serial transfer+parse+return)\n",
              result->modeled_end_to_end_seconds * 1e3,
              result->modeled_serial_seconds * 1e3);
  std::printf("\nFig. 7 schedule (first partitions):\n%s",
              result->timeline.ToString().c_str());
  return 0;
}
