// Bulk ingest: load a NYC-taxi-like CSV (17 numeric/temporal columns, the
// paper's type-conversion-heavy workload) into columnar form and compute
// simple analytics, demonstrating schemas with defaults, reject tracking,
// and column selection (§4.3).
//
//   ./build/examples/taxi_ingest [MB]

#include <cstdio>
#include <cstdlib>

#include "core/parser.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace parparaw;  // NOLINT

  const size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::string csv = GenerateTaxiLike(/*seed=*/2, mb << 20);
  std::printf("input: %s of taxi-trip CSV\n", FormatBytes(csv.size()).c_str());

  ParseOptions options;
  options.schema = TaxiSchema();
  // Default the passenger count (§4.3 "Default values for empty strings").
  options.schema.mutable_field(3)->default_value = "1";
  // Project away columns the analysis below never touches.
  options.skip_columns = {5, 6, 8, 9, 11, 12, 14, 15};

  Stopwatch watch;
  auto result = Parser::Parse(csv, options);
  const double seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const Table& table = result->table;
  std::printf("parsed %lld trips into %d columns in %.1f ms (%s)\n",
              static_cast<long long>(table.num_rows), table.num_columns(),
              seconds * 1e3,
              FormatThroughput(csv.size(), seconds).c_str());
  std::printf("rejected records: %lld\n",
              static_cast<long long>(table.NumRejected()));

  // Columns after projection: VendorID, pickup, dropoff, passengers,
  // distance, PULocation, fare, tip, total.
  const int kDistance = 4;
  const int kFare = 6;
  const int kTip = 7;
  double total_distance = 0;
  double total_fare = 0;
  double total_tip = 0;
  int64_t tipped = 0;
  for (int64_t r = 0; r < table.num_rows; ++r) {
    total_distance += table.columns[kDistance].Value<double>(r);
    total_fare += table.columns[kFare].Value<double>(r);
    const double tip = table.columns[kTip].Value<double>(r);
    total_tip += tip;
    tipped += tip > 0;
  }
  std::printf("mean trip: %.2f mi, $%.2f fare; %.1f%% of trips tipped "
              "(mean tip $%.2f)\n",
              total_distance / table.num_rows, total_fare / table.num_rows,
              100.0 * tipped / table.num_rows, total_tip / table.num_rows);
  return 0;
}
