// JSON-lines analytics: the generic DFA framework pointed at NDJSON event
// logs — record boundaries resolved by the massively parallel pipeline
// (escaped quotes and raw newlines inside strings never split records),
// then shallow typed field extraction and a group-by.
//
//   ./build/examples/jsonl_analytics

#include <cstdio>
#include <random>

#include "json/json_lines.h"
#include "query/query.h"

namespace {

std::string GenerateEvents(int count) {
  std::mt19937_64 rng(4);
  const char* kEvents[] = {"click", "view", "purchase", "signup"};
  std::string out;
  char buf[256];
  for (int i = 0; i < count; ++i) {
    const char* event = kEvents[rng() % 4];
    std::snprintf(buf, sizeof(buf),
                  "{\"event\": \"%s\", \"user\": %llu, \"value\": %.2f, "
                  "\"note\": \"free \\\"text\\\", with commas\"}\n",
                  event, static_cast<unsigned long long>(rng() % 1000),
                  static_cast<double>(rng() % 10000) / 100.0);
    out += buf;
    if (rng() % 10 == 0) {
      out += "{\"event\": \"error\", \"detail\": {\"nested\": [1,2]}, "
             "\"value\": null}\n";
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace parparaw;  // NOLINT

  const std::string jsonl = GenerateEvents(5000);
  std::printf("input: %.1f KB of JSONL events\n",
              static_cast<double>(jsonl.size()) / 1024);

  auto parsed = ParseJsonLines(jsonl, {{"event", DataType::String()},
                                       {"user", DataType::Int64()},
                                       {"value", DataType::Float64()}});
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const Table& table = parsed->table;
  std::printf("parsed %lld events (%lld rejected)\n",
              static_cast<long long>(table.num_rows),
              static_cast<long long>(table.NumRejected()));

  QuerySpec spec;
  spec.group_by = 0;  // event
  spec.aggregates = {Aggregate(AggKind::kCountAll),
                     Aggregate(AggKind::kSum, 2),
                     Aggregate(AggKind::kMean, 2)};
  auto result = RunQuery(table, spec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %8s %12s %10s\n", "event", "count", "sum(value)",
              "mean");
  for (int64_t r = 0; r < result->num_rows; ++r) {
    std::printf("%-10s %8s %12s %10s\n",
                result->columns[0].ValueToString(r).c_str(),
                result->columns[1].ValueToString(r).c_str(),
                result->columns[2].ValueToString(r).c_str(),
                result->columns[3].ValueToString(r).c_str());
  }
  return 0;
}
