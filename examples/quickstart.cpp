// Quickstart: parse an RFC 4180 CSV string — including quoted fields with
// embedded delimiters and escaped quotes — into typed Arrow-style columns,
// through the library's front door: parparaw::Reader.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "api/reader.h"

int main() {
  using namespace parparaw;  // NOLINT

  // The paper's running example (Figs. 3-5): furniture rows whose quoted
  // description contains commas, newlines, and escaped quotes.
  const std::string csv =
      "1941,199.99,\"Bookcase\"\n"
      "1938,19.99,\"Frame\n\"\"Ribba\"\", black\"\n"
      "2104,89.50,\"Shelf, wall-mounted\"\n";

  Schema schema;
  schema.AddField(Field("article_id", DataType::Int64()));
  schema.AddField(Field("price", DataType::Float64()));
  schema.AddField(Field("description", DataType::String()));

  auto result = Reader::FromBuffer(csv)
                    .WithSchema(schema)
                    .WithHeader(false)
                    .ReadDetailed();
  if (!result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Table& table = result->table;
  std::printf("parsed %lld rows x %d columns (%s)\n",
              static_cast<long long>(table.num_rows), table.num_columns(),
              table.schema.ToString().c_str());
  for (int64_t row = 0; row < table.num_rows; ++row) {
    std::printf("  article %lld: $%.2f  %s\n",
                static_cast<long long>(table.columns[0].Value<int64_t>(row)),
                table.columns[1].Value<double>(row),
                std::string(table.columns[2].StringValue(row)).c_str());
  }

  std::printf("\npipeline breakdown: %s\n",
              result->timings.ToString().c_str());
  return 0;
}
