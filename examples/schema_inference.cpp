// Schema-free ingestion (§4.3): infer the number of columns and their
// types from raw data — the column-classification + lattice-join reduction
// — then parse with the inferred schema. Also demonstrates header
// skipping and validation.
//
//   ./build/examples/schema_inference

#include <cstdio>

#include "core/parser.h"

int main() {
  using namespace parparaw;  // NOLINT

  const std::string csv =
      "id,amount,when,active,note\n"
      "1,10.5,2023-04-01,true,\"first, with comma\"\n"
      "2,7,2023-04-02,false,plain\n"
      "3,,2023-04-03 08:15:00,true,\"multi\nline\"\n";

  ParseOptions options;
  options.skip_rows = 1;     // drop the header line
  options.infer_types = true;
  options.validate = true;   // fail on malformed RFC 4180

  auto result = Parser::Parse(csv, options);
  if (!result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const Table& table = result->table;
  std::printf("inferred %d columns (min/max per record: %u/%u)\n",
              table.num_columns(), result->min_columns,
              result->max_columns);
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("  %-4s : %s\n", table.schema.field(c).name.c_str(),
                table.schema.field(c).type.ToString().c_str());
  }
  std::printf("\nrows:\n");
  for (int64_t r = 0; r < table.num_rows; ++r) {
    std::string row = table.RowToString(r);
    for (char& ch : row) {
      if (ch == '\n') ch = ' ';
    }
    std::printf("  %s\n", row.c_str());
  }
  return 0;
}
