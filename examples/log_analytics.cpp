// Log analytics: parse a W3C Extended-Log-Format stream — '#' directive
// lines, space-delimited fields, quoted URIs — with a custom DFA, then run
// a small aggregation over the typed columns. This is the "more expressive
// parsing rules" case (comments/directives) that format-specific
// speculative parsers cannot handle (§1, §2).
//
//   ./build/examples/log_analytics

#include <cstdio>
#include <map>

#include "core/parser.h"
#include "workload/generators.h"

int main() {
  using namespace parparaw;  // NOLINT

  // A synthetic extended log: directives interleaved with request lines.
  const std::string log = GenerateLogLike(/*seed=*/1, /*target_bytes=*/512 * 1024);
  std::printf("input: %.1f KB of extended-log data\n",
              static_cast<double>(log.size()) / 1024);

  auto format = ExtendedLogFormat();
  if (!format.ok()) return 1;

  ParseOptions options;
  options.format = *format;
  options.schema.AddField(Field("date", DataType::Date32()));
  options.schema.AddField(Field("time", DataType::String()));
  options.schema.AddField(Field("method", DataType::String()));
  options.schema.AddField(Field("uri", DataType::String()));
  options.schema.AddField(Field("status", DataType::Int64()));
  options.schema.AddField(Field("time_taken_ms", DataType::Int64()));

  auto result = Parser::Parse(log, options);
  if (!result.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const Table& table = result->table;
  std::printf("parsed %lld requests (directive lines skipped by the DFA)\n",
              static_cast<long long>(table.num_rows));

  // Aggregate: error rate and latency per method.
  std::map<std::string, std::pair<int64_t, int64_t>> by_method;  // count, errors
  int64_t total_latency = 0;
  for (int64_t r = 0; r < table.num_rows; ++r) {
    auto& entry = by_method[std::string(table.columns[2].StringValue(r))];
    ++entry.first;
    if (table.columns[4].Value<int64_t>(r) >= 400) ++entry.second;
    total_latency += table.columns[5].Value<int64_t>(r);
  }
  for (const auto& [method, stats] : by_method) {
    std::printf("  %-5s %8lld requests, %5.1f%% errors\n", method.c_str(),
                static_cast<long long>(stats.first),
                100.0 * stats.second / stats.first);
  }
  std::printf("  mean handling time: %.1f ms\n",
              static_cast<double>(total_latency) / table.num_rows);
  return 0;
}
