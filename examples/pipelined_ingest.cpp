// Pipelined ingestion (§5, Fig. 7 — for real): load a file through the
// staged executor, where partition k's type conversion overlaps k+1's
// parse and k+2's disk read, then stream it again in bounded memory.
//
//   ./build/examples/pipelined_ingest [MB] [partition_MB]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/reader.h"
#include "io/file.h"
#include "util/string_util.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace parparaw;  // NOLINT

  const size_t mb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const size_t partition_mb =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  const std::string path = "/tmp/parparaw_pipelined_demo.csv";
  {
    Status st = WriteStringToFile(path, GenerateTaxiLike(7, mb << 20));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // One call: sniff the dialect, infer types, and ingest through the
  // pipelined executor (the default for every Reader).
  auto loaded = Reader::FromFile(path)
                    .WithPartitionSize(partition_mb << 20)
                    .ReadDetailed();
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld rows x %d columns in %.1f ms (%.3f GB/s)\n",
              static_cast<long long>(loaded->table.num_rows),
              loaded->table.num_columns(), loaded->seconds * 1e3,
              loaded->seconds > 0
                  ? static_cast<double>(loaded->input_bytes) /
                        loaded->seconds / (1 << 30)
                  : 0.0);

  // Bounded-memory streaming: per-partition tables arrive in stream order;
  // only the admission-controlled working set is ever resident.
  int64_t rows = 0;
  int batches = 0;
  auto stats = Reader::FromFile(path)
                   .WithPartitionSize(partition_mb << 20)
                   .WithMemoryBudget(256ll << 20)
                   .ReadStream([&](Table&& batch) {
                     rows += batch.num_rows;
                     ++batches;
                     return Status::OK();
                   });
  if (!stats.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("streamed %lld rows in %d batches, %d partitions "
              "(admission limit %d, max %d in flight)\n",
              static_cast<long long>(rows), batches, stats->num_partitions,
              stats->admission_limit, stats->max_inflight);
  // Per-stage busy time exceeding the wall time is exactly the overlap the
  // pipeline won over the serial read->parse->sort->convert schedule.
  std::printf("stage busy: read %.0f ms, scan %.0f ms, sort %.0f ms, "
              "convert %.0f ms vs wall %.0f ms\n",
              stats->read_seconds * 1e3, stats->scan_seconds * 1e3,
              stats->sort_seconds * 1e3, stats->convert_seconds * 1e3,
              stats->wall_seconds * 1e3);
  return 0;
}
