#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/bit_util.h"

namespace parparaw {
namespace obs {

namespace internal {

int ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards);
  return shard;
}

}  // namespace internal

namespace {

// Bucket index for `value`: 0 for values <= 1, else 1 + floor(log2(v - 1))
// clamped to the last bucket, i.e. bucket i covers (2^(i-1), 2^i].
int BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  const int idx =
      1 + bit_util::Log2Floor(static_cast<uint64_t>(value - 1));
  return std::min(idx, kHistogramBuckets - 1);
}

void AtomicMin(std::atomic<int64_t>* slot, int64_t value) {
  int64_t seen = slot->load(std::memory_order_relaxed);
  while (value < seen && !slot->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>* slot, int64_t value) {
  int64_t seen = slot->load(std::memory_order_relaxed);
  while (value > seen && !slot->compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(count)));
  int64_t seen = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    seen += buckets[i];
    if (seen >= target) {
      // Upper bound of bucket i; clamp into the observed range.
      const int64_t bound = i == 0 ? 1 : (int64_t{1} << i);
      return std::clamp(bound, min, max);
    }
  }
  return max;
}

void Histogram::Record(int64_t value) {
  HistShard& shard = shards_[internal::ThisThreadShard()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&shard.min, value);
  AtomicMax(&shard.max, value);
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kHistogramBuckets, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const HistShard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
    for (int i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count > 0 ? min : 0;
  snap.max = snap.count > 0 ? max : 0;
  return snap;
}

void Histogram::Reset() {
  for (HistShard& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(INT64_MAX, std::memory_order_relaxed);
    shard.max.store(INT64_MIN, std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry& registry =
      *new MetricsRegistry(/*enabled=*/false);
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = instruments_[name];
  if (entry.gauge != nullptr || entry.histogram != nullptr) return nullptr;
  if (entry.counter == nullptr) {
    entry.counter = std::make_unique<Counter>(name);
  }
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = instruments_[name];
  if (entry.counter != nullptr || entry.histogram != nullptr) return nullptr;
  if (entry.gauge == nullptr) {
    entry.gauge = std::make_unique<Gauge>(name);
  }
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = instruments_[name];
  if (entry.counter != nullptr || entry.gauge != nullptr) return nullptr;
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(name);
  }
  return entry.histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(instruments_.size());
  for (const auto& [name, entry] : instruments_) {
    MetricSnapshot snap;
    snap.name = name;
    if (entry.counter != nullptr) {
      snap.kind = MetricSnapshot::Kind::kCounter;
      snap.value = entry.counter->Value();
    } else if (entry.gauge != nullptr) {
      snap.kind = MetricSnapshot::Kind::kGauge;
      snap.value = entry.gauge->Value();
      snap.max = entry.gauge->Max();
    } else if (entry.histogram != nullptr) {
      snap.kind = MetricSnapshot::Kind::kHistogram;
      snap.histogram = entry.histogram->Snapshot();
      snap.value = snap.histogram.count;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : instruments_) {
    if (entry.counter != nullptr) entry.counter->Reset();
    if (entry.gauge != nullptr) entry.gauge->Reset();
    if (entry.histogram != nullptr) entry.histogram->Reset();
  }
}

std::string MetricsRegistry::SummaryText() const {
  std::string out;
  char line[256];
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::snprintf(line, sizeof(line), "%-40s counter %14lld\n",
                      m.name.c_str(), static_cast<long long>(m.value));
        break;
      case MetricSnapshot::Kind::kGauge:
        std::snprintf(line, sizeof(line),
                      "%-40s gauge   %14lld (max %lld)\n", m.name.c_str(),
                      static_cast<long long>(m.value),
                      static_cast<long long>(m.max));
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const HistogramSnapshot& h = m.histogram;
        std::snprintf(line, sizeof(line),
                      "%-40s hist    count=%lld mean=%.1f p50=%lld "
                      "p99=%lld max=%lld\n",
                      m.name.c_str(), static_cast<long long>(h.count),
                      h.Mean(), static_cast<long long>(h.Quantile(0.5)),
                      static_cast<long long>(h.Quantile(0.99)),
                      static_cast<long long>(h.max));
        break;
      }
    }
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace parparaw
