#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace parparaw {
namespace obs {

namespace {

// Per-thread span nesting depth. Shared across tracers: nesting is a
// property of the call stack, not of the sink.
thread_local int32_t t_span_depth = 0;

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace

uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer& tracer = *new Tracer(/*enabled=*/false);
  return tracer;
}

int64_t Tracer::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::RecordComplete(const char* name, const char* category,
                            int64_t ts_ns, int64_t dur_ns, int64_t bytes,
                            int32_t depth) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.tid = ThisThreadTraceId();
  event.bytes = bytes;
  event.depth = depth;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, e.category);
    // Timestamps and durations in microseconds, the format's native unit;
    // three decimals keep sub-microsecond spans distinguishable.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"depth\":%d",
                  static_cast<double>(e.ts_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.tid, e.depth);
    out += buf;
    if (e.bytes >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"bytes\":%lld",
                    static_cast<long long>(e.bytes));
      out += buf;
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::SummaryText() const {
  struct Agg {
    int64_t calls = 0;
    int64_t dur_ns = 0;
    int64_t bytes = 0;
    bool has_bytes = false;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Events()) {
    Agg& agg = by_name[std::string(e.category) + "/" + e.name];
    ++agg.calls;
    agg.dur_ns += e.dur_ns;
    if (e.bytes >= 0) {
      agg.bytes += e.bytes;
      agg.has_bytes = true;
    }
  }
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-36s %8s %12s %12s %10s\n", "span",
                "calls", "total ms", "mean ms", "GB/s");
  out += line;
  for (const auto& [name, agg] : by_name) {
    const double total_ms = static_cast<double>(agg.dur_ns) / 1e6;
    const double mean_ms =
        agg.calls > 0 ? total_ms / static_cast<double>(agg.calls) : 0.0;
    if (agg.has_bytes && agg.dur_ns > 0) {
      const double gbps = static_cast<double>(agg.bytes) /
                          (static_cast<double>(agg.dur_ns) / 1e9) /
                          (1 << 30);
      std::snprintf(line, sizeof(line), "%-36s %8lld %12.3f %12.3f %10.3f\n",
                    name.c_str(), static_cast<long long>(agg.calls),
                    total_ms, mean_ms, gbps);
    } else {
      std::snprintf(line, sizeof(line), "%-36s %8lld %12.3f %12.3f %10s\n",
                    name.c_str(), static_cast<long long>(agg.calls),
                    total_ms, mean_ms, "-");
    }
    out += line;
  }
  return out;
}

TraceSpan::TraceSpan(Tracer* tracer, const char* name, const char* category,
                     int64_t bytes)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      name_(name),
      category_(category),
      bytes_(bytes) {
  if (tracer_ == nullptr) return;
  depth_ = t_span_depth++;
  start_ns_ = tracer_->NowNanos();
}

TraceSpan::~TraceSpan() {
  if (tracer_ == nullptr) return;
  const int64_t end_ns = tracer_->NowNanos();
  --t_span_depth;
  tracer_->RecordComplete(name_, category_, start_ns_, end_ns - start_ns_,
                          bytes_, depth_);
}

}  // namespace obs
}  // namespace parparaw
