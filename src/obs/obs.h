#ifndef PARPARAW_OBS_OBS_H_
#define PARPARAW_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace parparaw {
namespace obs {

/// Convenience umbrella for instrumented code: null-safe, enabled-gated
/// wrappers so call sites stay one line and cost one branch when
/// observability is off.

inline void AddCount(MetricsRegistry* metrics, const char* name,
                     int64_t delta) {
  if (metrics == nullptr || !metrics->enabled()) return;
  metrics->AddCounter(name, delta);
}

inline void SetGauge(MetricsRegistry* metrics, const char* name,
                     int64_t value) {
  if (metrics == nullptr || !metrics->enabled()) return;
  metrics->SetGauge(name, value);
}

/// Records a duration histogram sample in whole microseconds.
inline void RecordUs(MetricsRegistry* metrics, const char* name,
                     double micros) {
  if (metrics == nullptr || !metrics->enabled()) return;
  metrics->RecordHistogram(name, static_cast<int64_t>(micros));
}

inline void RecordMillis(MetricsRegistry* metrics, const char* name,
                         double millis) {
  RecordUs(metrics, name, millis * 1e3);
}

}  // namespace obs
}  // namespace parparaw

#endif  // PARPARAW_OBS_OBS_H_
