#ifndef PARPARAW_OBS_METRICS_H_
#define PARPARAW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parparaw {

/// \brief Process-wide metrics for the parsing pipeline.
///
/// The paper's whole performance story (§5, Fig. 8-13) is told in per-step
/// timings and byte counts; this registry is where the reproduction
/// accumulates them. Three instrument kinds:
///
///   Counter   — monotonically increasing sum (bytes parsed, tasks run).
///   Gauge     — last-written level (queue depth, carry-over backlog).
///   Histogram — distribution of recorded values in power-of-two buckets
///               (per-step microseconds, partition latencies).
///
/// Writes are lock-free after the first lookup: every instrument owns a
/// small array of cache-line-padded per-thread shards; a writer hashes its
/// thread id to a shard and issues a relaxed atomic add/store, so
/// concurrent pipeline workers never contend on a shared line. Reads
/// (Value(), Snapshot()) sum the shards and may race with writers; they
/// are meant for end-of-run reporting, not synchronisation.
///
/// Instruments are created on first use and live as long as their
/// registry. Name lookup takes a mutex — callers on hot paths should
/// resolve the instrument once and reuse the pointer (the pipeline steps
/// do this per parse, which is well off the per-byte fast path).

namespace obs {

/// Number of per-thread shards per instrument. A power of two; larger
/// values reduce false sharing between concurrently-writing threads at the
/// cost of memory (each shard is one cache line).
inline constexpr int kMetricShards = 16;

/// Log2 buckets used by Histogram: bucket i counts values v with
/// 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1). Values are unit-free;
/// the pipeline records microseconds.
inline constexpr int kHistogramBuckets = 48;

namespace internal {

struct alignas(64) Shard {
  std::atomic<int64_t> value{0};
};

/// Shard index for the calling thread: thread-local, assigned round-robin
/// on first use so a small number of threads spread over distinct shards.
int ThisThreadShard();

}  // namespace internal

/// Monotonic counter. Add() is lock-free and wait-free on x86.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t delta) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Zeroes all shards (racy with concurrent writers; for run boundaries).
  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

  /// Sum over all shards. Racy with concurrent writers (by design).
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  internal::Shard shards_[kMetricShards];
};

/// Last-written level. Concurrent writers race; the final value is one of
/// the written values (sufficient for depth/backlog style signals). Also
/// tracks the maximum ever set, which survives the races.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Aggregated view of a histogram at one point in time.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when count == 0
  int64_t max = 0;
  std::vector<int64_t> buckets;  // kHistogramBuckets log2 buckets

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
  /// Upper bound of the bucket containing quantile `q` in [0, 1] — a
  /// log2-resolution estimate, good enough for "p99 partition latency".
  int64_t Quantile(double q) const;
};

/// Distribution of recorded values. Record() touches only the calling
/// thread's shard: a relaxed bucket increment plus sum/count adds and
/// min/max CAS loops on shard-local atomics.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Record(int64_t value);

  HistogramSnapshot Snapshot() const;

  /// Zeroes all shards (racy with concurrent writers; for run boundaries).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) HistShard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
    std::atomic<int64_t> buckets[kHistogramBuckets] = {};
  };

  std::string name_;
  HistShard shards_[kMetricShards];
};

/// One row of MetricsRegistry::Snapshot().
struct MetricSnapshot {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  int64_t value = 0;  // counter value / gauge level
  int64_t max = 0;    // gauge max
  HistogramSnapshot histogram;  // kHistogram only
};

/// \brief Named instrument registry.
///
/// A freshly constructed registry is enabled; the process-wide
/// Global() instance starts *disabled* so un-instrumented programs pay
/// nothing but a relaxed load at each gated site. Instruments handed out
/// remain valid for the registry's lifetime regardless of the enabled
/// flag — the flag only gates the convenience Add*/Record* helpers and
/// the call sites that check it.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (created on first use, never destroyed),
  /// disabled until SetEnabled(true).
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. Requesting an existing name
  /// with a different kind returns nullptr.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Gated one-shot helpers for call sites too cold to cache a pointer.
  void AddCounter(const std::string& name, int64_t delta) {
    if (!enabled()) return;
    if (Counter* c = GetCounter(name)) c->Add(delta);
  }
  void SetGauge(const std::string& name, int64_t value) {
    if (!enabled()) return;
    if (Gauge* g = GetGauge(name)) g->Set(value);
  }
  void RecordHistogram(const std::string& name, int64_t value) {
    if (!enabled()) return;
    if (Histogram* h = GetHistogram(name)) h->Record(value);
  }

  /// All instruments, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every instrument in place. Pointers previously handed out
  /// (e.g. the thread pool's cached counters) stay valid; concurrent
  /// writers race benignly. Use at run boundaries to scope a report.
  void Reset();

  /// Human-readable dump of Snapshot(): one line per counter/gauge,
  /// count/mean/p50/p99/max per histogram.
  std::string SummaryText() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> instruments_;
};

}  // namespace obs
}  // namespace parparaw

#endif  // PARPARAW_OBS_METRICS_H_
