#ifndef PARPARAW_OBS_TRACE_H_
#define PARPARAW_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace parparaw {
namespace obs {

/// \brief Scoped-span tracing for the parsing pipeline.
///
/// Each pipeline step (and streaming partition, query stage, …) opens a
/// TraceSpan; when the span closes, one complete event — name, category,
/// begin timestamp, duration, small sequential thread id, and an optional
/// byte count — is appended to the tracer. Events export either as a
/// chrome://tracing / Perfetto-compatible JSON document or as an
/// aggregated plain-text summary (total/mean duration and throughput per
/// span name).
///
/// Recording is cheap but not contention-free (one short mutex-protected
/// vector append per *span*, not per byte — spans are step-granular).
/// A disabled tracer costs a relaxed atomic load per span; TraceSpan
/// against a null tracer costs a branch.

/// One completed span.
struct TraceEvent {
  /// Span name, e.g. "step.context". Must point at storage that outlives
  /// the tracer (the instrumentation uses string literals).
  const char* name = "";
  /// Category, e.g. "pipeline" / "stream" / "query".
  const char* category = "";
  /// Begin time in nanoseconds since the tracer's epoch.
  int64_t ts_ns = 0;
  /// Duration in nanoseconds.
  int64_t dur_ns = 0;
  /// Small sequential id of the recording thread.
  uint32_t tid = 0;
  /// Bytes processed under the span; -1 when not applicable.
  int64_t bytes = -1;
  /// Span nesting depth on its thread at open time (0 = top level).
  int32_t depth = 0;
};

/// Small sequential id for the calling thread (stable per thread for the
/// process lifetime; shared across tracers).
uint32_t ThisThreadTraceId();

class Tracer {
 public:
  explicit Tracer(bool enabled = true);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer (created on first use, never destroyed),
  /// disabled until SetEnabled(true).
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Nanoseconds since this tracer's epoch (monotonic clock).
  int64_t NowNanos() const;

  /// Appends one completed span. `name`/`category` must outlive the
  /// tracer; the instrumentation passes string literals.
  void RecordComplete(const char* name, const char* category, int64_t ts_ns,
                      int64_t dur_ns, int64_t bytes, int32_t depth);

  /// All recorded events, sorted by begin timestamp.
  std::vector<TraceEvent> Events() const;

  /// Drops all recorded events (keeps the epoch and enabled flag).
  void Clear();

  /// Serialises the events as a chrome://tracing "Trace Event Format"
  /// JSON object: {"traceEvents":[{"name":...,"cat":...,"ph":"X",
  /// "ts":µs,"dur":µs,"pid":1,"tid":n,"args":{...}}, ...],
  /// "displayTimeUnit":"ms"}. Load it via chrome://tracing or
  /// https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;

  /// Aggregated per-span-name table: calls, total/mean milliseconds,
  /// bytes, and GB/s where byte counts were recorded.
  std::string SummaryText() const;

 private:
  std::atomic<bool> enabled_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII span. Opens on construction, records on destruction.
///
/// The enabled check happens once, at construction: a span started while
/// the tracer was enabled records even if tracing is switched off before
/// it closes (and vice versa), keeping begin/end pairing trivially
/// consistent.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category,
            int64_t bytes = -1);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Sets/overrides the byte count reported when the span closes.
  void set_bytes(int64_t bytes) { bytes_ = bytes; }

 private:
  Tracer* tracer_;  // null when tracing was disabled at construction
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
  int64_t bytes_;
  int32_t depth_ = 0;
};

}  // namespace obs
}  // namespace parparaw

#endif  // PARPARAW_OBS_TRACE_H_
