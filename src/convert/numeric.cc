#include "convert/numeric.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/string_util.h"

namespace parparaw {

namespace {

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Consumes an optional sign; returns +1/-1.
inline int ConsumeSign(std::string_view* s) {
  if (!s->empty() && ((*s)[0] == '+' || (*s)[0] == '-')) {
    const int sign = (*s)[0] == '-' ? -1 : 1;
    s->remove_prefix(1);
    return sign;
  }
  return 1;
}

}  // namespace

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  const int sign = ConsumeSign(&s);
  if (s.empty()) return false;
  // Accumulate negatively: the magnitude of INT64_MIN exceeds INT64_MAX.
  int64_t acc = 0;
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  for (char c : s) {
    if (!IsDigit(c)) return false;
    const int digit = c - '0';
    if (acc < (kMin + digit) / 10) return false;  // overflow
    acc = acc * 10 - digit;
  }
  if (sign > 0) {
    if (acc == kMin) return false;  // +9223372036854775808 overflows
    acc = -acc;
  }
  *out = acc;
  return true;
}

bool ParseInt32(std::string_view s, int32_t* out) {
  int64_t wide;
  if (!ParseInt64(s, &wide)) return false;
  if (wide < std::numeric_limits<int32_t>::min() ||
      wide > std::numeric_limits<int32_t>::max()) {
    return false;
  }
  *out = static_cast<int32_t>(wide);
  return true;
}

bool ParseFloat64(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  std::string_view body = s;
  const int sign = ConsumeSign(&body);
  if (body.empty()) return false;

  // Fast path (Clinger): when the mantissa fits in a double exactly
  // (< 2^53) and the power of ten is itself exact (|e| <= 22), one
  // multiply or divide of two exact values rounds once — the result is
  // correctly rounded, bit-identical to strtod. Larger mantissas fall
  // through to strtod; digits <= 18 only bounds uint64 accumulation.
  uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  size_t i = 0;
  bool any_digit = false;
  for (; i < body.size() && IsDigit(body[i]); ++i) {
    mantissa = mantissa * 10 + (body[i] - '0');
    ++digits;
    any_digit = true;
  }
  if (i < body.size() && body[i] == '.') {
    ++i;
    for (; i < body.size() && IsDigit(body[i]); ++i) {
      mantissa = mantissa * 10 + (body[i] - '0');
      ++digits;
      ++frac_digits;
      any_digit = true;
    }
  }
  if (!any_digit) return false;
  int exponent = 0;
  bool has_exp = false;
  if (i < body.size() && (body[i] == 'e' || body[i] == 'E')) {
    has_exp = true;
    ++i;
    int exp_sign = 1;
    if (i < body.size() && (body[i] == '+' || body[i] == '-')) {
      exp_sign = body[i] == '-' ? -1 : 1;
      ++i;
    }
    if (i >= body.size()) return false;
    int exp_acc = 0;
    for (; i < body.size() && IsDigit(body[i]); ++i) {
      exp_acc = exp_acc * 10 + (body[i] - '0');
      if (exp_acc > 10000) return false;
    }
    exponent = exp_sign * exp_acc;
  }
  if (i != body.size()) return false;  // trailing garbage

  const int total_exp = exponent - frac_digits;
  if (digits <= 18 && mantissa < (uint64_t{1} << 53) && total_exp >= -22 &&
      total_exp <= 22 && !has_exp) {
    static constexpr double kPow10[] = {
        1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10,
        1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21,
        1e22};
    double value = static_cast<double>(mantissa);
    if (total_exp >= 0) {
      value *= kPow10[total_exp];
    } else {
      value /= kPow10[-total_exp];
    }
    *out = sign * value;
    return true;
  }

  // Slow path: delegate to strtod for full precision / extreme exponents.
  char buf[512];
  if (s.size() >= sizeof(buf)) return false;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + s.size()) return false;
  if (std::isinf(value) || std::isnan(value)) return false;
  *out = value;
  return true;
}

bool ParseDecimal64(std::string_view s, int32_t scale, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  const int sign = ConsumeSign(&s);
  if (s.empty()) return false;
  uint64_t acc = 0;
  int frac_seen = -1;  // -1: before the point
  bool any_digit = false;
  constexpr uint64_t kMaxBeforeMul =
      std::numeric_limits<int64_t>::max() / 10;
  for (char c : s) {
    if (c == '.') {
      if (frac_seen >= 0) return false;  // second point
      frac_seen = 0;
      continue;
    }
    if (!IsDigit(c)) return false;
    if (frac_seen >= 0) {
      if (frac_seen == scale) return false;  // excess fractional digits
      ++frac_seen;
    }
    if (acc > kMaxBeforeMul) return false;
    acc = acc * 10 + (c - '0');
    any_digit = true;
  }
  if (!any_digit) return false;
  const int pad = scale - (frac_seen < 0 ? 0 : frac_seen);
  for (int d = 0; d < pad; ++d) {
    if (acc > kMaxBeforeMul) return false;
    acc *= 10;
  }
  if (acc > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return false;
  }
  *out = sign * static_cast<int64_t>(acc);
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  s = TrimWhitespace(s);
  if (EqualsIgnoreCase(s, "true") || EqualsIgnoreCase(s, "t") ||
      EqualsIgnoreCase(s, "1") || EqualsIgnoreCase(s, "yes")) {
    *out = true;
    return true;
  }
  if (EqualsIgnoreCase(s, "false") || EqualsIgnoreCase(s, "f") ||
      EqualsIgnoreCase(s, "0") || EqualsIgnoreCase(s, "no")) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace parparaw
