#include "convert/inference.h"

#include "convert/numeric.h"
#include "convert/temporal.h"
#include "util/string_util.h"

namespace parparaw {

InferredKind ClassifyField(std::string_view value) {
  value = TrimWhitespace(value);
  if (value.empty()) return InferredKind::kEmpty;
  // Cheap dispatch on the first character before running full parsers.
  const char c = value[0];
  if (c == '-' || c == '+' || (c >= '0' && c <= '9')) {
    int64_t i64;
    if (ParseInt64(value, &i64)) return InferredKind::kInt64;
    double f64;
    if (ParseFloat64(value, &f64)) return InferredKind::kFloat64;
    int32_t date;
    if (ParseDate32(value, &date)) return InferredKind::kDate;
    int64_t ts;
    if (ParseTimestampMicros(value, &ts)) return InferredKind::kTimestamp;
    return InferredKind::kString;
  }
  bool b;
  if (ParseBool(value, &b)) return InferredKind::kBool;
  return InferredKind::kString;
}

InferredKind Join(InferredKind a, InferredKind b) {
  if (a == b) return a;
  if (a == InferredKind::kEmpty) return b;
  if (b == InferredKind::kEmpty) return a;
  // Numeric chain: int64 ⊑ float64.
  const auto numeric = [](InferredKind k) {
    return k == InferredKind::kInt64 || k == InferredKind::kFloat64;
  };
  if (numeric(a) && numeric(b)) return InferredKind::kFloat64;
  // Temporal chain: date ⊑ timestamp.
  const auto temporal = [](InferredKind k) {
    return k == InferredKind::kDate || k == InferredKind::kTimestamp;
  };
  if (temporal(a) && temporal(b)) return InferredKind::kTimestamp;
  // Everything else joins to string.
  return InferredKind::kString;
}

DataType KindToDataType(InferredKind kind) {
  switch (kind) {
    case InferredKind::kBool:
      return DataType::Bool();
    case InferredKind::kInt64:
      return DataType::Int64();
    case InferredKind::kFloat64:
      return DataType::Float64();
    case InferredKind::kDate:
      return DataType::Date32();
    case InferredKind::kTimestamp:
      return DataType::TimestampMicros();
    case InferredKind::kEmpty:
    case InferredKind::kString:
      return DataType::String();
  }
  return DataType::String();
}

const char* InferredKindToString(InferredKind kind) {
  switch (kind) {
    case InferredKind::kEmpty:
      return "empty";
    case InferredKind::kBool:
      return "bool";
    case InferredKind::kInt64:
      return "int64";
    case InferredKind::kFloat64:
      return "float64";
    case InferredKind::kDate:
      return "date";
    case InferredKind::kTimestamp:
      return "timestamp";
    case InferredKind::kString:
      return "string";
  }
  return "?";
}

}  // namespace parparaw
