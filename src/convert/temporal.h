#ifndef PARPARAW_CONVERT_TEMPORAL_H_
#define PARPARAW_CONVERT_TEMPORAL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace parparaw {

/// Temporal converters for the Arrow date32 / timestamp[us] types.

/// Parses "YYYY-MM-DD" into days since the UNIX epoch (proleptic
/// Gregorian). Validates month/day ranges including leap years.
bool ParseDate32(std::string_view s, int32_t* out);

/// Parses "YYYY-MM-DD HH:MM:SS[.ffffff]" (or with a 'T' separator) into
/// microseconds since the UNIX epoch, UTC.
bool ParseTimestampMicros(std::string_view s, int64_t* out);

/// Days since epoch for a validated (year, month, day); the Howard Hinnant
/// days_from_civil algorithm.
int64_t DaysFromCivil(int64_t year, unsigned month, unsigned day);

/// True if `year` is a leap year (proleptic Gregorian).
bool IsLeapYear(int64_t year);

/// Inverse of DaysFromCivil (Howard Hinnant's civil_from_days).
void CivilFromDays(int64_t days, int64_t* year, unsigned* month,
                   unsigned* day);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate32(int32_t days);

/// Formats microseconds-since-epoch as "YYYY-MM-DD HH:MM:SS[.ffffff]"
/// (fraction omitted when zero).
std::string FormatTimestampMicros(int64_t micros);

}  // namespace parparaw

#endif  // PARPARAW_CONVERT_TEMPORAL_H_
