#ifndef PARPARAW_CONVERT_INFERENCE_H_
#define PARPARAW_CONVERT_INFERENCE_H_

#include <string_view>

#include "columnar/types.h"

namespace parparaw {

/// \brief Lattice element for type inference (§4.3 "Type inference").
///
/// Each field value is classified independently (data-parallel), then a
/// reduction with Join() over a column's classifications yields the minimal
/// type able to back the whole column — exactly the paper's "minimum
/// numerical type per field, then a parallel reduction".
enum class InferredKind : uint8_t {
  kEmpty = 0,  ///< Empty field; joins as the identity.
  kBool,
  kInt64,
  kFloat64,
  kDate,
  kTimestamp,
  kString,  ///< Top of the lattice.
};

/// Classifies a single field value.
InferredKind ClassifyField(std::string_view value);

/// The lattice join: the least kind able to represent both inputs.
/// Associative and commutative with kEmpty as identity, so it is a valid
/// parallel-reduction operator.
InferredKind Join(InferredKind a, InferredKind b);

/// Maps an inferred kind to the output column type (kEmpty -> string).
DataType KindToDataType(InferredKind kind);

const char* InferredKindToString(InferredKind kind);

}  // namespace parparaw

#endif  // PARPARAW_CONVERT_INFERENCE_H_
