#ifndef PARPARAW_CONVERT_NUMERIC_H_
#define PARPARAW_CONVERT_NUMERIC_H_

#include <cstdint>
#include <string_view>

namespace parparaw {

/// String-to-value converters used by the convert step (§3.3).
///
/// All converters are branch-light, allocation-free, locale-independent,
/// and accept optional surrounding ASCII whitespace. They return false on
/// any malformed input (which the parser turns into a NULL or a record
/// reject, Fig. 5).

/// Parses a signed decimal integer. Rejects empty input, overflow, and
/// trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a 32-bit signed integer (range-checked via ParseInt64).
bool ParseInt32(std::string_view s, int32_t* out);

/// Parses a floating-point number: [+-]digits[.digits][(e|E)[+-]digits].
/// Uses an exact fast path for typical short inputs and falls back to
/// strtod for long/extreme ones.
bool ParseFloat64(std::string_view s, double* out);

/// Parses a fixed-point decimal with `scale` fractional digits into a
/// scaled int64 (e.g. "12.5" with scale 2 -> 1250). Excess fractional
/// digits are rejected; missing ones are zero-padded.
bool ParseDecimal64(std::string_view s, int32_t scale, int64_t* out);

/// Parses booleans: true/false, t/f, 1/0, yes/no (case-insensitive).
bool ParseBool(std::string_view s, bool* out);

}  // namespace parparaw

#endif  // PARPARAW_CONVERT_NUMERIC_H_
