#include "convert/temporal.h"

#include <cstdio>

#include "util/string_util.h"

namespace parparaw {

namespace {

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Parses exactly `n` digits at s[pos..pos+n), advancing pos.
bool FixedDigits(std::string_view s, size_t* pos, int n, int* out) {
  if (*pos + n > s.size()) return false;
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    const char c = s[*pos + i];
    if (!IsDigit(c)) return false;
    acc = acc * 10 + (c - '0');
  }
  *pos += n;
  *out = acc;
  return true;
}

constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool ParseCivilDate(std::string_view s, size_t* pos, int* year, int* month,
                    int* day) {
  if (!FixedDigits(s, pos, 4, year)) return false;
  if (*pos >= s.size() || s[*pos] != '-') return false;
  ++*pos;
  if (!FixedDigits(s, pos, 2, month)) return false;
  if (*pos >= s.size() || s[*pos] != '-') return false;
  ++*pos;
  if (!FixedDigits(s, pos, 2, day)) return false;
  if (*month < 1 || *month > 12) return false;
  int max_day = kDaysInMonth[*month - 1];
  if (*month == 2 && IsLeapYear(*year)) max_day = 29;
  if (*day < 1 || *day > max_day) return false;
  return true;
}

}  // namespace

bool IsLeapYear(int64_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  // Howard Hinnant's algorithm, shifting the year so March is month 0.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* year, unsigned* month, unsigned* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp < 10 ? mp + 3 : mp - 9;
  *year = y + (*month <= 2);
}

std::string FormatDate32(int32_t days) {
  int64_t year;
  unsigned month, day;
  CivilFromDays(days, &year, &month, &day);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(year), month, day);
  return buf;
}

std::string FormatTimestampMicros(int64_t micros) {
  const int64_t kDay = int64_t{86400} * 1000000;
  int64_t days = micros / kDay;
  int64_t rem = micros % kDay;
  if (rem < 0) {
    rem += kDay;
    --days;
  }
  const int64_t total_seconds = rem / 1000000;
  const int64_t frac = rem % 1000000;
  int64_t year;
  unsigned month, day;
  CivilFromDays(days, &year, &month, &day);
  char buf[48];
  if (frac == 0) {
    std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u %02lld:%02lld:%02lld",
                  static_cast<long long>(year), month, day,
                  static_cast<long long>(total_seconds / 3600),
                  static_cast<long long>((total_seconds / 60) % 60),
                  static_cast<long long>(total_seconds % 60));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%04lld-%02u-%02u %02lld:%02lld:%02lld.%06lld",
                  static_cast<long long>(year), month, day,
                  static_cast<long long>(total_seconds / 3600),
                  static_cast<long long>((total_seconds / 60) % 60),
                  static_cast<long long>(total_seconds % 60),
                  static_cast<long long>(frac));
  }
  return buf;
}

bool ParseDate32(std::string_view s, int32_t* out) {
  s = TrimWhitespace(s);
  size_t pos = 0;
  int year, month, day;
  if (!ParseCivilDate(s, &pos, &year, &month, &day)) return false;
  if (pos != s.size()) return false;
  *out = static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day)));
  return true;
}

bool ParseTimestampMicros(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  size_t pos = 0;
  int year, month, day;
  if (!ParseCivilDate(s, &pos, &year, &month, &day)) return false;
  int64_t micros = DaysFromCivil(year, static_cast<unsigned>(month),
                                 static_cast<unsigned>(day)) *
                   int64_t{86400} * 1000000;
  if (pos == s.size()) {  // date-only timestamp
    *out = micros;
    return true;
  }
  if (s[pos] != ' ' && s[pos] != 'T') return false;
  ++pos;
  int hour, minute, second;
  if (!FixedDigits(s, &pos, 2, &hour)) return false;
  if (pos >= s.size() || s[pos] != ':') return false;
  ++pos;
  if (!FixedDigits(s, &pos, 2, &minute)) return false;
  if (pos >= s.size() || s[pos] != ':') return false;
  ++pos;
  if (!FixedDigits(s, &pos, 2, &second)) return false;
  if (hour > 23 || minute > 59 || second > 59) return false;
  micros += (int64_t{hour} * 3600 + minute * 60 + second) * 1000000;
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    int64_t frac = 0;
    int digits = 0;
    while (pos < s.size() && IsDigit(s[pos])) {
      if (digits < 6) {
        frac = frac * 10 + (s[pos] - '0');
        ++digits;
      }
      ++pos;
    }
    if (digits == 0) return false;
    for (int d = digits; d < 6; ++d) frac *= 10;
    micros += frac;
  }
  if (pos != s.size()) return false;
  *out = micros;
  return true;
}

}  // namespace parparaw
