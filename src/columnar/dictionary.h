#ifndef PARPARAW_COLUMNAR_DICTIONARY_H_
#define PARPARAW_COLUMNAR_DICTIONARY_H_

#include <cstdint>
#include <vector>

#include "columnar/column.h"
#include "util/result.h"

namespace parparaw {

/// \brief Dictionary-encoded string column (Arrow dictionary type): the
/// distinct values once, plus one int32 code per row (-1 encodes NULL).
///
/// Low-cardinality string columns (flags, categories, ids) shrink by
/// orders of magnitude, and equality predicates reduce to integer
/// comparisons — the standard columnar-DB post-ingest optimisation.
struct DictionaryColumn {
  /// Distinct values in order of first appearance.
  Column dictionary{DataType::String()};
  /// Per-row dictionary index; -1 for NULL.
  std::vector<int32_t> codes;

  int64_t num_rows() const { return static_cast<int64_t>(codes.size()); }
  int64_t cardinality() const { return dictionary.length(); }

  /// Expands back to a plain string column (inverse of DictionaryEncode).
  Column Decode() const;

  /// Total bytes of the encoded representation.
  int64_t TotalBufferBytes() const {
    return dictionary.TotalBufferBytes() +
           static_cast<int64_t>(codes.size() * sizeof(int32_t));
  }
};

/// Encodes a string column; fails with TypeError on other types.
Result<DictionaryColumn> DictionaryEncode(const Column& column);

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_DICTIONARY_H_
