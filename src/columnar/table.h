#ifndef PARPARAW_COLUMNAR_TABLE_H_
#define PARPARAW_COLUMNAR_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/schema.h"

namespace parparaw {

/// \brief Parsed output: a schema, one column per field, and per-record
/// diagnostics (reject flags, Fig. 5).
struct Table {
  Schema schema;
  std::vector<Column> columns;
  int64_t num_rows = 0;
  /// Per-record reject flag: set when a record failed validation (bad
  /// numeric value in a non-nullable column, wrong column count in
  /// rejecting mode, ...). Rejected records keep NULL slots.
  std::vector<uint8_t> rejected;

  int num_columns() const { return static_cast<int>(columns.size()); }

  int64_t NumRejected() const {
    int64_t n = 0;
    for (uint8_t r : rejected) n += r;
    return n;
  }

  /// Deep equality of schema names/types and all column values.
  bool Equals(const Table& other) const;

  /// Total bytes across all column buffers (device→host return size).
  int64_t TotalBufferBytes() const;

  /// Renders row `i` as comma-joined values (debugging/tests).
  std::string RowToString(int64_t i) const;
};

/// Row-wise concatenation of tables with identical schemas (used to merge
/// streaming partitions).
Table ConcatTables(const std::vector<Table>& tables);

/// Gathers `rows` (indices into `table`, in the given order, repeats
/// allowed) into a new table with the same schema. Rejected flags travel
/// with their rows. Used by ErrorPolicy::kSkip to compact malformed rows
/// out of a parse result.
Table TakeRows(const Table& table, const std::vector<int64_t>& rows);

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_TABLE_H_
