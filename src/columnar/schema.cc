#include "columnar/schema.h"

namespace parparaw {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "schema{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += fields_[i].type.ToString();
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += "}";
  return out;
}

}  // namespace parparaw
