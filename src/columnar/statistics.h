#ifndef PARPARAW_COLUMNAR_STATISTICS_H_
#define PARPARAW_COLUMNAR_STATISTICS_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "parallel/thread_pool.h"
#include "util/result.h"

namespace parparaw {

/// \brief Summary statistics of one column, computed with a parallel
/// per-block pass plus a reduction — the post-ingest statistics a query
/// engine builds right after in-situ parsing.
struct ColumnStatistics {
  int64_t null_count = 0;
  /// Numeric min/max as double; string min/max as text. Unset for an
  /// all-NULL column.
  std::optional<double> numeric_min;
  std::optional<double> numeric_max;
  std::optional<std::string> string_min;
  std::optional<std::string> string_max;
  /// Total string bytes (string columns).
  int64_t string_bytes = 0;
  /// Estimated distinct count (HyperLogLog-style probabilistic counter
  /// with 256 registers; within ~10 % for large cardinalities).
  int64_t distinct_estimate = 0;

  std::string ToString() const;
};

/// Computes statistics for one column.
Result<ColumnStatistics> ComputeColumnStatistics(const Column& column,
                                                 ThreadPool* pool = nullptr);

/// Computes statistics for every column of a table.
Result<std::vector<ColumnStatistics>> ComputeTableStatistics(
    const Table& table, ThreadPool* pool = nullptr);

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_STATISTICS_H_
