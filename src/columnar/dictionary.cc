#include "columnar/dictionary.h"

#include <string>
#include <unordered_map>

namespace parparaw {

Result<DictionaryColumn> DictionaryEncode(const Column& column) {
  if (column.type().id != TypeId::kString) {
    return Status::TypeError("dictionary encoding requires a string column");
  }
  DictionaryColumn out;
  out.codes.reserve(column.length());
  std::unordered_map<std::string_view, int32_t> index;
  // string_view keys point into the source column's contiguous buffer,
  // which outlives this function.
  for (int64_t r = 0; r < column.length(); ++r) {
    if (column.IsNull(r)) {
      out.codes.push_back(-1);
      continue;
    }
    const std::string_view value = column.StringValue(r);
    auto [it, inserted] =
        index.try_emplace(value, static_cast<int32_t>(index.size()));
    if (inserted) out.dictionary.AppendString(value);
    out.codes.push_back(it->second);
  }
  if (column.length() == 0) out.dictionary.Allocate(0);
  return out;
}

Column DictionaryColumn::Decode() const {
  Column out(DataType::String());
  for (int32_t code : codes) {
    if (code < 0) {
      out.AppendNull();
    } else {
      out.AppendString(dictionary.StringValue(code));
    }
  }
  if (codes.empty()) out.Allocate(0);
  return out;
}

}  // namespace parparaw
