#include "columnar/column.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace parparaw {

void Column::Allocate(int64_t num_rows, int64_t data_bytes) {
  length_ = num_rows;
  validity_.Resize(static_cast<size_t>(num_rows));
  if (IsFixedWidth(type_.id)) {
    data_.assign(static_cast<size_t>(num_rows) * FixedWidth(type_.id), 0);
  } else {
    offsets_.assign(static_cast<size_t>(num_rows) + 1, 0);
    string_data_.clear();
    string_data_.reserve(static_cast<size_t>(data_bytes));
  }
}

void Column::GrowValidity(int64_t new_length) {
  if (static_cast<size_t>(new_length) > validity_.size()) {
    // Amortised doubling; Bitmap::Resize reallocates, so grow in bulk.
    bit_util::Bitmap grown(
        std::max<size_t>(static_cast<size_t>(new_length) * 2, 64));
    for (size_t i = 0; i < validity_.size(); ++i) {
      if (validity_.Get(i)) grown.Set(i);
    }
    validity_ = std::move(grown);
  }
}

void Column::AppendNull() {
  const int64_t i = length_;
  GrowValidity(i + 1);
  validity_.Clear(i);
  if (IsFixedWidth(type_.id)) {
    data_.resize(data_.size() + FixedWidth(type_.id), 0);
  } else {
    if (offsets_.empty()) offsets_.push_back(0);
    offsets_.push_back(offsets_.back());
  }
  length_ = i + 1;
}

void Column::AppendString(std::string_view value) {
  const int64_t i = length_;
  GrowValidity(i + 1);
  validity_.Set(i);
  if (offsets_.empty()) offsets_.push_back(0);
  string_data_.insert(string_data_.end(), value.begin(), value.end());
  offsets_.push_back(static_cast<int64_t>(string_data_.size()));
  length_ = i + 1;
}

std::string Column::ValueToString(int64_t i) const {
  if (IsNull(i)) return "NULL";
  char buf[64];
  switch (type_.id) {
    case TypeId::kBool:
      return Value<uint8_t>(i) ? "true" : "false";
    case TypeId::kInt32:
      return std::to_string(Value<int32_t>(i));
    case TypeId::kInt64:
      return std::to_string(Value<int64_t>(i));
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%g", Value<double>(i));
      return buf;
    case TypeId::kDecimal64: {
      int64_t scaled = Value<int64_t>(i);
      int64_t pow10 = 1;
      for (int d = 0; d < type_.scale; ++d) pow10 *= 10;
      if (type_.scale == 0) return std::to_string(scaled);
      const char* sign = scaled < 0 ? "-" : "";
      const uint64_t mag = scaled < 0 ? static_cast<uint64_t>(-(scaled + 1)) + 1
                                      : static_cast<uint64_t>(scaled);
      std::snprintf(buf, sizeof(buf), "%s%llu.%0*llu", sign,
                    static_cast<unsigned long long>(mag / pow10), type_.scale,
                    static_cast<unsigned long long>(mag % pow10));
      return buf;
    }
    case TypeId::kDate32:
      return std::to_string(Value<int32_t>(i));
    case TypeId::kTimestampMicros:
      return std::to_string(Value<int64_t>(i));
    case TypeId::kString:
      return std::string(StringValue(i));
  }
  return "?";
}

bool Column::Equals(const Column& other) const {
  if (!(type_ == other.type_) || length_ != other.length_) return false;
  for (int64_t i = 0; i < length_; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    if (type_.id == TypeId::kString) {
      if (StringValue(i) != other.StringValue(i)) return false;
    } else {
      const int width = FixedWidth(type_.id);
      if (std::memcmp(data_.data() + i * width,
                      other.data_.data() + i * width, width) != 0) {
        return false;
      }
    }
  }
  return true;
}

void Column::Concat(const Column& other) {
  const int64_t base = length_;
  GrowValidity(base + other.length_);
  for (int64_t i = 0; i < other.length_; ++i) {
    validity_.SetTo(base + i, other.validity_.Get(i));
  }
  if (IsFixedWidth(type_.id)) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  } else {
    if (offsets_.empty()) offsets_.push_back(0);
    const int64_t shift = offsets_.back();
    for (int64_t i = 1; i <= other.length_; ++i) {
      offsets_.push_back(other.offsets_[i] + shift);
    }
    string_data_.insert(string_data_.end(), other.string_data_.begin(),
                        other.string_data_.end());
  }
  length_ = base + other.length_;
}

int64_t Column::TotalBufferBytes() const {
  return static_cast<int64_t>(data_.size()) +
         static_cast<int64_t>(offsets_.size() * sizeof(int64_t)) +
         static_cast<int64_t>(string_data_.size()) +
         static_cast<int64_t>(validity_.words().size() * sizeof(uint64_t));
}

}  // namespace parparaw
