#include "columnar/ipc.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace parparaw {

namespace {

constexpr char kMagic[4] = {'P', 'P', 'R', 'W'};
constexpr uint32_t kVersion = 1;
constexpr char kQuarantineMagic[4] = {'P', 'P', 'Q', 'R'};
constexpr uint32_t kQuarantineVersion = 1;

// --- writer helpers ---

template <typename T>
void PutScalar(T value, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutBytes(const void* data, size_t size, std::string* out) {
  PutScalar<uint64_t>(size, out);
  out->append(static_cast<const char*>(data), size);
}

// --- reader helpers (bounds-checked cursor) ---

class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(std::string_view* out) {
    uint64_t size;
    if (!Read(&size)) return false;
    if (bytes_.size() - pos_ < size) return false;
    *out = bytes_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

Status Truncated() { return Status::IoError("truncated table bytes"); }

}  // namespace

Result<std::string> SerializeTable(const Table& table) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutScalar<uint32_t>(kVersion, &out);
  PutScalar<uint32_t>(static_cast<uint32_t>(table.num_columns()), &out);
  PutScalar<int64_t>(table.num_rows, &out);
  PutBytes(table.rejected.data(), table.rejected.size(), &out);
  for (int c = 0; c < table.num_columns(); ++c) {
    const Field& field = table.schema.field(c);
    const Column& column = table.columns[c];
    if (column.length() != table.num_rows) {
      return Status::Invalid("column " + field.name +
                             " length does not match the table");
    }
    PutBytes(field.name.data(), field.name.size(), &out);
    PutScalar<uint8_t>(static_cast<uint8_t>(field.type.id), &out);
    PutScalar<int32_t>(field.type.scale, &out);
    PutScalar<uint8_t>(field.nullable ? 1 : 0, &out);
    // Columns grown through Concat carry an amortised-doubled validity
    // buffer; serialize exactly the words the row count needs (the
    // reader rejects anything else).
    const auto& words = column.validity().words();
    const size_t want_words =
        (static_cast<size_t>(table.num_rows) + 63) / 64;
    if (words.size() >= want_words) {
      PutBytes(words.data(), want_words * sizeof(uint64_t), &out);
    } else {
      std::vector<uint64_t> padded(want_words, 0);
      std::copy(words.begin(), words.end(), padded.begin());
      PutBytes(padded.data(), want_words * sizeof(uint64_t), &out);
    }
    if (IsFixedWidth(field.type.id)) {
      PutBytes(column.data().data(), column.data().size(), &out);
    } else {
      PutBytes(column.offsets().data(),
               column.offsets().size() * sizeof(int64_t), &out);
      PutBytes(column.string_data().data(), column.string_data().size(),
               &out);
    }
  }
  return out;
}

Result<Table> DeserializeTable(std::string_view bytes) {
  Cursor cursor(bytes);
  char magic[4];
  for (char& c : magic) {
    if (!cursor.Read(&c)) return Truncated();
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("bad magic; not a serialized ParPaRaw table");
  }
  uint32_t version;
  uint32_t num_columns;
  int64_t num_rows;
  if (!cursor.Read(&version) || !cursor.Read(&num_columns) ||
      !cursor.Read(&num_rows)) {
    return Truncated();
  }
  if (version != kVersion) {
    return Status::IoError("unsupported version " + std::to_string(version));
  }
  if (num_rows < 0) return Status::IoError("negative row count");

  Table table;
  table.num_rows = num_rows;
  std::string_view rejected;
  if (!cursor.ReadBytes(&rejected)) return Truncated();
  if (rejected.size() != static_cast<size_t>(num_rows)) {
    return Status::IoError("reject vector size mismatch");
  }
  table.rejected.assign(rejected.begin(), rejected.end());

  const size_t validity_words =
      (static_cast<size_t>(num_rows) + 63) / 64;
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string_view name;
    uint8_t type_id_raw;
    int32_t scale;
    uint8_t nullable;
    if (!cursor.ReadBytes(&name) || !cursor.Read(&type_id_raw) ||
        !cursor.Read(&scale) || !cursor.Read(&nullable)) {
      return Truncated();
    }
    if (type_id_raw > static_cast<uint8_t>(TypeId::kString)) {
      return Status::IoError("unknown type id");
    }
    DataType type{static_cast<TypeId>(type_id_raw), scale};
    Field field(std::string(name), type, nullable != 0);

    std::string_view validity;
    if (!cursor.ReadBytes(&validity)) return Truncated();
    if (validity.size() != validity_words * sizeof(uint64_t)) {
      return Status::IoError("validity bitmap size mismatch for column " +
                             field.name);
    }
    Column column(type);
    column.Allocate(num_rows);
    if (!validity.empty()) {
      std::memcpy(column.mutable_validity_words()->data(), validity.data(),
                  validity.size());
    }

    if (IsFixedWidth(type.id)) {
      std::string_view data;
      if (!cursor.ReadBytes(&data)) return Truncated();
      if (data.size() !=
          static_cast<size_t>(num_rows) * FixedWidth(type.id)) {
        return Status::IoError("data buffer size mismatch for column " +
                               field.name);
      }
      column.mutable_data()->assign(data.begin(), data.end());
    } else {
      std::string_view offsets_bytes;
      std::string_view str_data;
      if (!cursor.ReadBytes(&offsets_bytes) || !cursor.ReadBytes(&str_data)) {
        return Truncated();
      }
      if (offsets_bytes.size() !=
          (static_cast<size_t>(num_rows) + 1) * sizeof(int64_t)) {
        return Status::IoError("offsets size mismatch for column " +
                               field.name);
      }
      std::vector<int64_t>* offsets = column.mutable_offsets();
      std::memcpy(offsets->data(), offsets_bytes.data(),
                  offsets_bytes.size());
      // Validate offsets: monotone, within the data buffer.
      int64_t prev = (*offsets)[0];
      if (prev != 0) return Status::IoError("offsets must start at 0");
      for (int64_t i = 1; i <= num_rows; ++i) {
        if ((*offsets)[i] < prev) {
          return Status::IoError("non-monotone string offsets in column " +
                                 field.name);
        }
        prev = (*offsets)[i];
      }
      if (prev != static_cast<int64_t>(str_data.size())) {
        return Status::IoError("string data size mismatch for column " +
                               field.name);
      }
      column.mutable_string_data()->assign(str_data.begin(), str_data.end());
    }
    table.schema.AddField(std::move(field));
    table.columns.push_back(std::move(column));
  }
  if (!cursor.AtEnd()) {
    return Status::IoError("trailing bytes after table");
  }
  return table;
}

Result<std::string> SerializeQuarantine(const robust::QuarantineTable& q) {
  std::string out;
  out.append(kQuarantineMagic, sizeof(kQuarantineMagic));
  PutScalar<uint32_t>(kQuarantineVersion, &out);
  PutScalar<uint64_t>(q.size(), &out);
  for (const robust::QuarantineEntry& entry : q.entries()) {
    PutScalar<int64_t>(entry.row, &out);
    PutScalar<int64_t>(entry.record_index, &out);
    PutScalar<int64_t>(entry.begin, &out);
    PutScalar<int64_t>(entry.end, &out);
    PutScalar<int32_t>(entry.column, &out);
    PutScalar<uint8_t>(static_cast<uint8_t>(entry.code), &out);
    PutBytes(entry.stage.data(), entry.stage.size(), &out);
    PutBytes(entry.message.data(), entry.message.size(), &out);
    PutBytes(entry.raw.data(), entry.raw.size(), &out);
  }
  return out;
}

Result<robust::QuarantineTable> DeserializeQuarantine(
    std::string_view bytes) {
  Cursor cursor(bytes);
  char magic[4];
  for (char& c : magic) {
    if (!cursor.Read(&c)) return Truncated();
  }
  if (std::memcmp(magic, kQuarantineMagic, 4) != 0) {
    return Status::IoError("bad magic; not a serialized quarantine table");
  }
  uint32_t version;
  uint64_t count;
  if (!cursor.Read(&version) || !cursor.Read(&count)) return Truncated();
  if (version != kQuarantineVersion) {
    return Status::IoError("unsupported quarantine version " +
                           std::to_string(version));
  }
  // Each entry is at least 61 bytes (five fixed scalars plus three length
  // prefixes); a corrupt count would otherwise loop billions of times
  // before the cursor runs dry.
  if (count > bytes.size() / 61) {
    return Status::IoError("quarantine entry count exceeds payload");
  }
  robust::QuarantineTable q;
  for (uint64_t i = 0; i < count; ++i) {
    robust::QuarantineEntry entry;
    uint8_t code_raw;
    std::string_view stage;
    std::string_view message;
    std::string_view raw;
    if (!cursor.Read(&entry.row) || !cursor.Read(&entry.record_index) ||
        !cursor.Read(&entry.begin) || !cursor.Read(&entry.end) ||
        !cursor.Read(&entry.column) || !cursor.Read(&code_raw) ||
        !cursor.ReadBytes(&stage) || !cursor.ReadBytes(&message) ||
        !cursor.ReadBytes(&raw)) {
      return Truncated();
    }
    if (code_raw > static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
      return Status::IoError("unknown status code in quarantine entry");
    }
    if (entry.begin < 0 || entry.end < entry.begin) {
      return Status::IoError("invalid byte span in quarantine entry");
    }
    if (entry.end - entry.begin != static_cast<int64_t>(raw.size())) {
      return Status::IoError("quarantine span/raw length mismatch");
    }
    entry.code = static_cast<StatusCode>(code_raw);
    entry.stage.assign(stage);
    entry.message.assign(message);
    entry.raw.assign(raw);
    q.Add(std::move(entry));
  }
  if (!cursor.AtEnd()) {
    return Status::IoError("trailing bytes after quarantine table");
  }
  return q;
}

}  // namespace parparaw
