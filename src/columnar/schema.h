#ifndef PARPARAW_COLUMNAR_SCHEMA_H_
#define PARPARAW_COLUMNAR_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/types.h"

namespace parparaw {

/// \brief One column of a schema.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;
  /// Textual default used for empty fields when set (§4.3 "Default values
  /// for empty strings"); when unset, empty fields become NULL (or the
  /// empty string for string columns).
  std::optional<std::string> default_value;

  Field() = default;
  Field(std::string name_in, DataType type_in, bool nullable_in = true)
      : name(std::move(name_in)), type(type_in), nullable(nullable_in) {}
};

/// \brief An ordered collection of fields describing the parsed output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  Field* mutable_field(int i) { return &fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field field) { fields_.push_back(std::move(field)); }

  /// Index of the field named `name`, or -1.
  int FieldIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_SCHEMA_H_
