#include "columnar/table.h"

namespace parparaw {

bool Table::Equals(const Table& other) const {
  if (num_rows != other.num_rows) return false;
  if (columns.size() != other.columns.size()) return false;
  if (schema.num_fields() != other.schema.num_fields()) return false;
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (schema.field(i).name != other.schema.field(i).name) return false;
    if (!(schema.field(i).type == other.schema.field(i).type)) return false;
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns[i].Equals(other.columns[i])) return false;
  }
  return true;
}

int64_t Table::TotalBufferBytes() const {
  int64_t total = 0;
  for (const Column& c : columns) total += c.TotalBufferBytes();
  total += static_cast<int64_t>(rejected.size());
  return total;
}

Table ConcatTables(const std::vector<Table>& tables) {
  Table out;
  bool first = true;
  for (const Table& t : tables) {
    if (first) {
      out = t;
      first = false;
      continue;
    }
    out.num_rows += t.num_rows;
    out.rejected.insert(out.rejected.end(), t.rejected.begin(),
                        t.rejected.end());
    for (size_t c = 0; c < out.columns.size(); ++c) {
      out.columns[c].Concat(t.columns[c]);
    }
  }
  return out;
}

Table TakeRows(const Table& table, const std::vector<int64_t>& rows) {
  Table out;
  out.schema = table.schema;
  out.num_rows = static_cast<int64_t>(rows.size());
  if (!table.rejected.empty()) {
    out.rejected.reserve(rows.size());
    for (int64_t r : rows) {
      out.rejected.push_back(table.rejected[static_cast<size_t>(r)]);
    }
  }
  for (const Column& src : table.columns) {
    Column dst(src.type());
    if (src.type().id == TypeId::kString) {
      for (int64_t r : rows) {
        if (src.IsNull(r)) {
          dst.AppendNull();
        } else {
          dst.AppendString(src.StringValue(r));
        }
      }
    } else {
      const int width = FixedWidth(src.type().id);
      dst.Allocate(static_cast<int64_t>(rows.size()));
      for (size_t i = 0; i < rows.size(); ++i) {
        const int64_t r = rows[i];
        if (src.IsNull(r)) {
          dst.SetNull(static_cast<int64_t>(i));
        } else {
          std::memcpy(dst.mutable_data()->data() +
                          static_cast<int64_t>(i) * width,
                      src.data().data() + r * width, width);
          dst.SetValid(static_cast<int64_t>(i));
        }
      }
    }
    out.columns.push_back(std::move(dst));
  }
  return out;
}

std::string Table::RowToString(int64_t i) const {
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ",";
    out += columns[c].ValueToString(i);
  }
  return out;
}

}  // namespace parparaw
