#ifndef PARPARAW_COLUMNAR_IPC_H_
#define PARPARAW_COLUMNAR_IPC_H_

#include <string>
#include <string_view>

#include "columnar/table.h"
#include "robust/quarantine.h"
#include "util/result.h"

namespace parparaw {

/// \brief Arrow-inspired binary interchange for parsed tables.
///
/// The paper configures ParPaRaw's output "to comply with the format
/// specified by Apache Arrow"; this module provides the matching
/// serialisation layer: the buffers are written exactly as the columns
/// hold them (validity bitmap words, fixed-width value buffer, 64-bit
/// string offsets + data), framed with a small header so a table can be
/// handed to another process or persisted and read back zero-conversion.
///
/// Layout (all integers little-endian):
///   magic "PPRW" | version u32 | num_columns u32 | num_rows i64
///   rejected: u64 byte-length, bytes
///   per column:
///     name  : u32 length, bytes
///     type  : u8 TypeId, i32 scale, u8 nullable
///     validity: u64 word-count, u64 words
///     data  : u64 byte-length, bytes          (fixed-width types)
///     offsets: u64 count, i64 values          (string type)
///     strdata: u64 byte-length, bytes         (string type)

/// Serialises `table` into a self-contained byte string.
Result<std::string> SerializeTable(const Table& table);

/// Parses bytes produced by SerializeTable. Validates framing, buffer
/// sizes, and offset monotonicity before constructing the table.
Result<Table> DeserializeTable(std::string_view bytes);

/// Serialises a quarantine table so rejected records can travel with (or
/// separately from) their parsed table. Layout:
///   magic "PPQR" | version u32 | count u64
///   per entry:
///     row i64 | record_index i64 | begin i64 | end i64 | column i32
///     code u8 | stage, message, raw: u64 byte-length + bytes each
Result<std::string> SerializeQuarantine(const robust::QuarantineTable& q);

/// Parses bytes produced by SerializeQuarantine with the same defensive
/// validation as DeserializeTable (framing, span sanity, known codes).
Result<robust::QuarantineTable> DeserializeQuarantine(std::string_view bytes);

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_IPC_H_
