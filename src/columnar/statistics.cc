#include "columnar/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/bit_util.h"

namespace parparaw {

namespace {

// 64-bit mix (splitmix64 finaliser) for the distinct-count sketch.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t HashBytes(const void* data, size_t size) {
  // FNV-1a, then mixed; adequate for a cardinality sketch.
  uint64_t h = 1469598103934665603ull;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

// HyperLogLog with 2^8 registers.
struct Hll {
  static constexpr int kBits = 8;
  static constexpr int kRegisters = 1 << kBits;
  uint8_t registers[kRegisters] = {};

  void Add(uint64_t hash) {
    const uint32_t idx = static_cast<uint32_t>(hash >> (64 - kBits));
    const uint64_t rest = hash << kBits;
    const int rank =
        rest == 0 ? (64 - kBits + 1)
                  : (std::countl_zero(rest) + 1);
    registers[idx] =
        std::max(registers[idx], static_cast<uint8_t>(rank));
  }

  void Merge(const Hll& other) {
    for (int i = 0; i < kRegisters; ++i) {
      registers[i] = std::max(registers[i], other.registers[i]);
    }
  }

  int64_t Estimate() const {
    const double m = kRegisters;
    double sum = 0;
    int zeros = 0;
    for (int i = 0; i < kRegisters; ++i) {
      sum += std::ldexp(1.0, -registers[i]);
      zeros += registers[i] == 0;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double estimate = alpha * m * m / sum;
    if (estimate <= 2.5 * m && zeros > 0) {
      estimate = m * std::log(m / zeros);  // small-range correction
    }
    return static_cast<int64_t>(estimate + 0.5);
  }
};

struct BlockState {
  int64_t null_count = 0;
  bool any = false;
  double min = 0;
  double max = 0;
  std::string smin;
  std::string smax;
  int64_t string_bytes = 0;
  Hll hll;
};

Result<double> SlotAsDouble(const Column& column, int64_t row) {
  switch (column.type().id) {
    case TypeId::kBool:
      return static_cast<double>(column.Value<uint8_t>(row));
    case TypeId::kInt32:
    case TypeId::kDate32:
      return static_cast<double>(column.Value<int32_t>(row));
    case TypeId::kInt64:
    case TypeId::kDecimal64:
    case TypeId::kTimestampMicros:
      return static_cast<double>(column.Value<int64_t>(row));
    case TypeId::kFloat64:
      return column.Value<double>(row);
    case TypeId::kString:
      return Status::Internal("string slot in numeric path");
  }
  return Status::Internal("unknown type");
}

}  // namespace

std::string ColumnStatistics::ToString() const {
  char buf[160];
  if (string_min.has_value()) {
    std::snprintf(buf, sizeof(buf),
                  "nulls=%lld distinct~%lld bytes=%lld min=\"%.16s\" "
                  "max=\"%.16s\"",
                  static_cast<long long>(null_count),
                  static_cast<long long>(distinct_estimate),
                  static_cast<long long>(string_bytes), string_min->c_str(),
                  string_max->c_str());
  } else if (numeric_min.has_value()) {
    std::snprintf(buf, sizeof(buf), "nulls=%lld distinct~%lld min=%g max=%g",
                  static_cast<long long>(null_count),
                  static_cast<long long>(distinct_estimate), *numeric_min,
                  *numeric_max);
  } else {
    std::snprintf(buf, sizeof(buf), "nulls=%lld (all NULL)",
                  static_cast<long long>(null_count));
  }
  return buf;
}

Result<ColumnStatistics> ComputeColumnStatistics(const Column& column,
                                                 ThreadPool* pool) {
  const int64_t rows = column.length();
  const bool is_string = column.type().id == TypeId::kString;
  const int64_t kBlock = 8192;
  const int64_t num_blocks = rows > 0 ? (rows + kBlock - 1) / kBlock : 0;
  std::vector<BlockState> blocks(num_blocks);
  Status worker_status = Status::OK();

  ParallelForEach(pool, 0, num_blocks, [&](int64_t blk) {
    BlockState& state = blocks[blk];
    const int64_t b = blk * kBlock;
    const int64_t e = std::min(b + kBlock, rows);
    for (int64_t r = b; r < e; ++r) {
      if (column.IsNull(r)) {
        ++state.null_count;
        continue;
      }
      if (is_string) {
        const std::string_view v = column.StringValue(r);
        state.string_bytes += static_cast<int64_t>(v.size());
        if (!state.any || v < state.smin) state.smin = std::string(v);
        if (!state.any || v > state.smax) state.smax = std::string(v);
        state.hll.Add(HashBytes(v.data(), v.size()));
        state.any = true;
      } else {
        auto value = SlotAsDouble(column, r);
        if (!value.ok()) return;  // typed columns cannot fail here
        const double v = *value;
        state.min = state.any ? std::min(state.min, v) : v;
        state.max = state.any ? std::max(state.max, v) : v;
        state.hll.Add(HashBytes(&v, sizeof(v)));
        state.any = true;
      }
    }
  });
  PARPARAW_RETURN_NOT_OK(worker_status);

  ColumnStatistics out;
  Hll merged;
  bool any = false;
  for (const BlockState& state : blocks) {
    out.null_count += state.null_count;
    out.string_bytes += state.string_bytes;
    merged.Merge(state.hll);
    if (!state.any) continue;
    if (is_string) {
      if (!any || state.smin < *out.string_min) out.string_min = state.smin;
      if (!any || state.smax > *out.string_max) out.string_max = state.smax;
    } else {
      out.numeric_min =
          any ? std::min(*out.numeric_min, state.min) : state.min;
      out.numeric_max =
          any ? std::max(*out.numeric_max, state.max) : state.max;
    }
    any = true;
  }
  out.distinct_estimate = any ? merged.Estimate() : 0;
  return out;
}

Result<std::vector<ColumnStatistics>> ComputeTableStatistics(
    const Table& table, ThreadPool* pool) {
  std::vector<ColumnStatistics> out;
  out.reserve(table.columns.size());
  for (const Column& column : table.columns) {
    PARPARAW_ASSIGN_OR_RETURN(ColumnStatistics stats,
                              ComputeColumnStatistics(column, pool));
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace parparaw
