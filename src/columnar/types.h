#ifndef PARPARAW_COLUMNAR_TYPES_H_
#define PARPARAW_COLUMNAR_TYPES_H_

#include <cstdint>
#include <string>

namespace parparaw {

/// Logical column types of the Arrow-style columnar output format.
///
/// The output of the parser is configured to comply with the Apache Arrow
/// columnar memory layout (validity bitmap + data buffer; strings use an
/// offsets buffer plus a contiguous data buffer).
enum class TypeId : uint8_t {
  kBool,
  kInt32,
  kInt64,
  kFloat64,
  /// Fixed-point decimal stored as a scaled int64.
  kDecimal64,
  /// Days since the UNIX epoch, 32-bit (Arrow date32).
  kDate32,
  /// Microseconds since the UNIX epoch, 64-bit (Arrow timestamp[us]).
  kTimestampMicros,
  /// UTF-8 string with 64-bit offsets (Arrow large_utf8).
  kString,
};

/// \brief A logical data type: a TypeId plus its parameters.
struct DataType {
  TypeId id = TypeId::kString;
  /// Decimal scale (number of fractional digits); used by kDecimal64 only.
  int32_t scale = 0;

  static DataType Bool() { return {TypeId::kBool, 0}; }
  static DataType Int32() { return {TypeId::kInt32, 0}; }
  static DataType Int64() { return {TypeId::kInt64, 0}; }
  static DataType Float64() { return {TypeId::kFloat64, 0}; }
  static DataType Decimal64(int32_t scale) {
    return {TypeId::kDecimal64, scale};
  }
  static DataType Date32() { return {TypeId::kDate32, 0}; }
  static DataType TimestampMicros() { return {TypeId::kTimestampMicros, 0}; }
  static DataType String() { return {TypeId::kString, 0}; }

  bool operator==(const DataType& other) const {
    return id == other.id && scale == other.scale;
  }

  std::string ToString() const;
};

/// Width in bytes of a fixed-width type's value slot; 0 for variable-width
/// (string) types.
int FixedWidth(TypeId id);

/// True for types whose values occupy a fixed-width data buffer.
inline bool IsFixedWidth(TypeId id) { return FixedWidth(id) > 0; }

/// True for the numeric types participating in type inference (§4.3).
bool IsNumeric(TypeId id);

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_TYPES_H_
