#ifndef PARPARAW_COLUMNAR_COLUMN_H_
#define PARPARAW_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/types.h"
#include "util/bit_util.h"

namespace parparaw {

/// \brief A single column in the Arrow-style columnar memory layout.
///
/// Fixed-width types use one contiguous data buffer (`FixedWidth(type)`
/// bytes per slot) plus a validity bitmap. Strings use a 64-bit offsets
/// buffer of length `num_rows + 1` into a contiguous byte buffer, plus the
/// validity bitmap — the layout Apache Arrow specifies for large_utf8.
///
/// The parser's convert step writes value slots from many threads at once,
/// so the column supports both positional writes into preallocated buffers
/// (parallel path) and appends (baseline/builder path). The two must not be
/// mixed on the same instance.
class Column {
 public:
  Column() = default;
  explicit Column(DataType type) : type_(type) {}

  const DataType& type() const { return type_; }
  int64_t length() const { return length_; }

  /// Preallocates `num_rows` slots for positional writes. For string
  /// columns `data_bytes` reserves the value buffer (it still grows as
  /// needed on the sequential path; the parallel path sizes it exactly).
  void Allocate(int64_t num_rows, int64_t data_bytes = 0);

  // --- positional writes (parallel convert path) ---

  void SetNull(int64_t i) { validity_.Clear(i); }
  void SetValid(int64_t i) { validity_.Set(i); }

  /// Writes a fixed-width value slot; T must match the physical width.
  template <typename T>
  void SetValue(int64_t i, T value) {
    std::memcpy(data_.data() + i * sizeof(T), &value, sizeof(T));
    validity_.Set(i);
  }

  /// String columns only: sets the offsets entry i (the parallel path
  /// computes all offsets with a prefix sum, then copies bytes).
  void SetStringOffset(int64_t i, int64_t offset) { offsets_[i] = offset; }
  /// Raw string buffer access for parallel byte copies.
  std::vector<uint8_t>* mutable_string_data() { return &string_data_; }
  /// Raw fixed-width buffer access for parallel value writes.
  std::vector<uint8_t>* mutable_data() { return &data_; }

  // --- appends (builder path) ---

  void AppendNull();
  template <typename T>
  void AppendValue(T value) {
    const int64_t i = length_;
    data_.resize(data_.size() + sizeof(T));
    GrowValidity(i + 1);
    length_ = i + 1;
    std::memcpy(data_.data() + i * sizeof(T), &value, sizeof(T));
    validity_.Set(i);
  }
  void AppendString(std::string_view value);

  // --- reads ---

  bool IsNull(int64_t i) const { return !validity_.Get(i); }
  bool IsValid(int64_t i) const { return validity_.Get(i); }

  template <typename T>
  T Value(int64_t i) const {
    T v;
    std::memcpy(&v, data_.data() + i * sizeof(T), sizeof(T));
    return v;
  }

  std::string_view StringValue(int64_t i) const {
    const int64_t begin = offsets_[i];
    const int64_t end = offsets_[i + 1];
    return std::string_view(
        reinterpret_cast<const char*>(string_data_.data()) + begin,
        static_cast<size_t>(end - begin));
  }

  /// Renders slot i as text ("NULL" for nulls); used by examples/tests.
  std::string ValueToString(int64_t i) const;

  /// Deep value equality (type, length, validity, values).
  bool Equals(const Column& other) const;

  /// Appends all of `other`'s rows (types must match); used to merge
  /// streaming partitions.
  void Concat(const Column& other);

  const std::vector<uint8_t>& data() const { return data_; }
  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<uint8_t>& string_data() const { return string_data_; }
  const bit_util::Bitmap& validity() const { return validity_; }
  std::vector<int64_t>* mutable_offsets() { return &offsets_; }
  /// Raw validity words (IPC deserialisation).
  std::vector<uint64_t>* mutable_validity_words() {
    return &validity_.mutable_words();
  }

  /// Total bytes across all buffers (for the PCIe return-transfer model).
  int64_t TotalBufferBytes() const;

 private:
  void GrowValidity(int64_t new_length);

  DataType type_;
  int64_t length_ = 0;
  std::vector<uint8_t> data_;
  std::vector<int64_t> offsets_;
  std::vector<uint8_t> string_data_;
  bit_util::Bitmap validity_;
};

}  // namespace parparaw

#endif  // PARPARAW_COLUMNAR_COLUMN_H_
