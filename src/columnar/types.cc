#include "columnar/types.h"

namespace parparaw {

std::string DataType::ToString() const {
  switch (id) {
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kDecimal64:
      return "decimal64(" + std::to_string(scale) + ")";
    case TypeId::kDate32:
      return "date32";
    case TypeId::kTimestampMicros:
      return "timestamp[us]";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

int FixedWidth(TypeId id) {
  switch (id) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
    case TypeId::kDate32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal64:
    case TypeId::kTimestampMicros:
      return 8;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

bool IsNumeric(TypeId id) {
  switch (id) {
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal64:
      return true;
    default:
      return false;
  }
}

}  // namespace parparaw
