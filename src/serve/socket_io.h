#ifndef PARPARAW_SERVE_SOCKET_IO_H_
#define PARPARAW_SERVE_SOCKET_IO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace parparaw {
namespace serve {

/// \brief Robust POSIX socket plumbing for parparawd and its clients.
///
/// Every daemon byte moves through SendAll/RecvExact, never raw
/// write/read: partial transfers resume where they stopped and
/// EINTR-class interruptions retry with the robust layer's bounded
/// deterministic backoff (robust::RetryPolicy), exactly like the file
/// I/O in io/file.cc. Three failpoints make the layer chaos-testable:
///
///   serve.accept        injected accept failure (server loop)
///   serve.read          injected recv failure; transient => retried
///   serve.write         injected send failure; transient => retried
///   serve.read.short    next recv is clamped to 1 byte (fires = clamp)
///   serve.write.short   next send is clamped to 1 byte (fires = clamp)
///
/// The *.short points do not inject errors — they force the
/// partial-transfer path so tests can prove an IPC frame survives being
/// dribbled through the kernel one byte at a time.
///
/// Metrics (when the process-wide registry is enabled):
///   serve.bytes_in / serve.bytes_out   counters
///   serve.eintr_retries                counter

/// Thin owner of a connected socket fd (-1 = empty). Closes on
/// destruction; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.Release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_.load(std::memory_order_acquire); }
  bool valid() const { return fd() >= 0; }

  /// Releases ownership without closing.
  int Release();

  /// Shuts down both directions without releasing the descriptor: wakes
  /// a thread blocked in recv/accept on this socket while the close —
  /// which must not race with a concurrent recv (fd reuse) — stays with
  /// the owning thread. This is how Server::Stop unblocks connection
  /// threads before joining them.
  void Shutdown();

  /// Shuts down both directions (wakes a peer blocked in recv) and
  /// closes. Idempotent, and safe against a concurrent Close from
  /// another thread: exactly one caller performs the close.
  void Close();

 private:
  std::atomic<int> fd_{-1};
};

/// Writes all of `data`, resuming partial writes and retrying EINTR with
/// bounded backoff. A peer reset surfaces as kIoError.
///
/// `timeout_ms` >= 0 bounds each *attempt* with a poll(2) wait: if the
/// socket stays unwritable that long the call fails with
/// kDeadlineExceeded instead of blocking forever on a hung peer. -1 =
/// block indefinitely (the daemon side, which has the disconnect
/// watchdog instead).
Status SendAll(int fd, std::string_view data, int timeout_ms = -1);

/// Reads exactly `n` bytes into `out` (resized). EOF before `n` bytes is
/// kIoError ("connection closed"); clean EOF at byte 0 sets `*eof` when
/// provided and returns OK with an empty `out`. `timeout_ms` bounds each
/// attempt as for SendAll — a stalled daemon can never block a client
/// forever.
Status RecvExact(int fd, size_t n, std::string* out, bool* eof = nullptr,
                 int timeout_ms = -1);

/// True when the peer has closed: a non-blocking MSG_PEEK sees EOF. Used
/// by the server's cancel-on-disconnect watchdog while a request is in
/// flight.
bool PeerClosed(int fd);

/// Creates a listening TCP socket on 127.0.0.1:`port` (0 = ephemeral).
/// Returns the fd; `*bound_port` receives the actual port.
Result<int> ListenLoopback(uint16_t port, int backlog, uint16_t* bound_port);

/// Accepts one connection, retrying EINTR. Checks the serve.accept
/// failpoint first.
Result<Socket> AcceptConnection(int listen_fd);

/// Connects to 127.0.0.1:`port`. `timeout_ms` >= 0 performs a
/// non-blocking connect bounded by poll(2) — an unresponsive address
/// (e.g. a listener whose accept queue is full and never drained) fails
/// with kDeadlineExceeded instead of blocking in the kernel's SYN
/// retries. -1 = classic blocking connect.
Result<Socket> ConnectLoopback(uint16_t port, int timeout_ms = -1);

}  // namespace serve
}  // namespace parparaw

#endif  // PARPARAW_SERVE_SOCKET_IO_H_
