#ifndef PARPARAW_SERVE_PROTOCOL_H_
#define PARPARAW_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "query/predicate.h"
#include "robust/quarantine.h"
#include "util/result.h"

namespace parparaw {
namespace serve {

/// \brief The parparawd wire protocol (see docs/serving.md for the spec).
///
/// Length-prefixed binary frames over TCP, memcached-binary-style: a
/// fixed 16-byte header followed by an opcode-specific payload. All
/// integers little-endian. One request frame yields one response frame,
/// except streaming parses (kFlagStream), which yield zero or more
/// kTablePart frames terminated by kEnd, and quarantine-carrying
/// responses (kFlagQuarantine), which append one kQuarantine frame.
///
/// The decoder never trusts a length: payloads are capped
/// (`max_payload`), reserved bytes must be zero, unknown opcodes and
/// versions are explicit protocol errors. A malformed frame is answered
/// with kError{kInvalidArgument} and the connection is closed — after
/// garbage the stream cannot be resynchronised. The fuzz suite
/// (tests/serve_protocol_test.cc) drives 10k+ seeded malformed frames
/// through this contract.

/// Frame magic: "PPD1" little-endian.
inline constexpr uint32_t kFrameMagic = 0x31445050u;

/// Fixed frame header size on the wire.
inline constexpr size_t kFrameHeaderSize = 16;

/// Protocol version carried inside request payloads. v2 appends a
/// 4-byte deadline_ms to the RequestHeader and defines the kFlagChecksum
/// frame flag; the daemon still accepts v1 requests (deadline = none).
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr uint8_t kProtocolVersionV1 = 1;

/// Default cap on a single frame payload (requests and responses). The
/// server rejects larger declared lengths *before* allocating.
inline constexpr uint64_t kDefaultMaxPayload = 256ull << 20;

enum class Opcode : uint8_t {
  // --- requests ---
  kPing = 0x01,
  /// Parse uploaded bytes: payload = RequestHeader | data.
  kParseBuffer = 0x02,
  /// Parse a server-local file: payload = RequestHeader | path.
  kParseFile = 0x03,
  /// Pushdown query over uploaded bytes:
  /// payload = RequestHeader | PredicateBlock | data.
  kQueryBuffer = 0x04,
  /// Pushdown query over a server-local file:
  /// payload = RequestHeader | PredicateBlock | path.
  kQueryFile = 0x05,
  /// Server metrics snapshot (text).
  kStats = 0x06,

  // --- responses ---
  /// Payload = table IPC bytes (columnar/ipc.h, "PPRW" framing).
  kOkTable = 0x81,
  /// Payload = u64 records_scanned | u64 records_selected | table IPC.
  kOkQuery = 0x82,
  /// Payload = u8 StatusCode | u32 length | message bytes.
  kError = 0x83,
  /// Shed at the admission limit; payload empty. The client retries.
  kBusy = 0x84,
  kPong = 0x85,
  /// One partition's table IPC bytes (streaming mode).
  kTablePart = 0x86,
  /// Streaming terminator; payload = u64 partitions delivered.
  kEnd = 0x87,
  /// Quarantine IPC bytes ("PPQR" framing), appended after kOkTable/kEnd
  /// when the request set kFlagQuarantine.
  kQuarantine = 0x88,
  /// Payload = metrics summary text.
  kStatsText = 0x89,
};

/// Request flags (frame header `flags` byte).
inline constexpr uint8_t kFlagStream = 0x01;
inline constexpr uint8_t kFlagQuarantine = 0x02;
/// v2: a 4-byte CRC-32C of the payload (util/crc32c.h) follows the
/// payload on the wire; `payload_size` does NOT count the trailer. The
/// daemon mirrors the flag on every response frame of a checksummed
/// request, and a mismatch on either side is a protocol error that
/// closes the connection (a corrupted length-prefixed stream cannot be
/// resynchronised, and a corrupted payload must never become a parse).
inline constexpr uint8_t kFlagChecksum = 0x04;

/// Wire size of the CRC-32C trailer appended to checksummed frames.
inline constexpr size_t kFrameChecksumSize = 4;

/// Decoded frame header.
struct FrameHeader {
  Opcode opcode = Opcode::kPing;
  uint8_t flags = 0;
  uint64_t payload_size = 0;
};

/// Fixed-size options block opening every parse/query request payload.
/// Kept deliberately narrow: the daemon's defaults mirror
/// parparaw::Reader (sniffed dialect, inferred types), so a request only
/// states what it wants to override.
struct RequestHeader {
  uint8_t version = kProtocolVersion;
  /// robust::ErrorPolicy as its uint8_t value.
  uint8_t error_policy = 0;
  /// 0 = no header row, 1 = header row, 2 = auto (sniff).
  uint8_t header = 2;
  /// Soft working-set cap for this request; 0 = the server's
  /// per-connection slice of its global budget.
  int64_t memory_budget = 0;
  /// Partition size; 0 = server default.
  uint64_t partition_size = 0;
  /// v2 only: wall-clock budget for the whole request, measured from the
  /// moment the daemon decodes the header; 0 = no deadline. An expired
  /// deadline — waiting for an admission slot or mid-ingest — answers
  /// kError{kDeadlineExceeded} with every admission slot returned.
  uint32_t deadline_ms = 0;
  /// Bytes the header occupied on the wire (set by the decoder; v1 = 20,
  /// v2 = 24), so the caller can find the data that follows.
  size_t encoded_size = 0;
};

/// Wire sizes of RequestHeader by version.
inline constexpr size_t kRequestHeaderSizeV1 = 1 + 1 + 1 + 1 + 8 + 8;
inline constexpr size_t kRequestHeaderSize = kRequestHeaderSizeV1 + 4;

/// Predicate block of kQueryBuffer/kQueryFile:
/// u32 column | u8 op | u8[3] zero | u32 literal length | literal.
struct PredicateBlock {
  Predicate predicate;
  /// Bytes the block occupied (so the caller can find the data).
  size_t encoded_size = 0;
};

// --- encoding (infallible: writers control their inputs) ---

/// Appends a frame (header + payload) to `out`. When `flags` carries
/// kFlagChecksum the CRC-32C trailer is appended after the payload (and
/// the `serve.corrupt` failpoint, if armed, flips one payload bit *after*
/// the CRC is computed — the receiver must detect the mismatch).
void AppendFrame(Opcode opcode, uint8_t flags, std::string_view payload,
                 std::string* out);

std::string EncodeRequestHeader(const RequestHeader& header);
std::string EncodePredicateBlock(const Predicate& predicate);

/// Error response payload.
std::string EncodeErrorPayload(const Status& status);

// --- decoding (defensive: every length and enum is validated) ---

/// Decodes the 16-byte header. `max_payload` bounds the declared length;
/// a violation (bad magic, nonzero reserved bytes, oversized payload) is
/// an InvalidArgument carrying the reason.
Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint64_t max_payload);

/// True when `opcode` is one a *client* may send.
bool IsRequestOpcode(Opcode opcode);

/// Decodes a RequestHeader from the front of a request payload. Accepts
/// v1 (20 bytes, deadline_ms = 0) and v2 (24 bytes); the decoded
/// `encoded_size` tells the caller where the data starts.
Result<RequestHeader> DecodeRequestHeader(std::string_view payload);

/// Verifies a checksummed frame: `trailer` is the 4-byte CRC read off the
/// wire after `payload`. A mismatch is an InvalidArgument whose message
/// starts with "frame checksum mismatch" — by contract a protocol error.
Status VerifyFrameChecksum(std::string_view payload, std::string_view trailer);

/// Decodes the predicate block that follows the RequestHeader.
Result<PredicateBlock> DecodePredicateBlock(std::string_view after_header);

/// Decodes an error payload back into the remote Status (never OK). A
/// malformed payload instead yields a local InvalidArgument whose message
/// starts with "error payload".
Status DecodeErrorPayload(std::string_view payload);

}  // namespace serve
}  // namespace parparaw

#endif  // PARPARAW_SERVE_PROTOCOL_H_
