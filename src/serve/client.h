#ifndef PARPARAW_SERVE_CLIENT_H_
#define PARPARAW_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/table.h"
#include "query/predicate.h"
#include "robust/quarantine.h"
#include "serve/protocol.h"
#include "serve/socket_io.h"
#include "util/result.h"

namespace parparaw {
namespace serve {

/// Per-request knobs a client sends in the RequestHeader (and flags).
struct RequestOptions {
  /// robust::ErrorPolicy as its wire value (kNull/kFail/kSkip/kQuarantine).
  uint8_t error_policy = 0;
  /// 0 = no header row, 1 = header row, 2 = sniff (server decides).
  uint8_t header = 2;
  /// 0 = server default slice; >0 tightens the request's budget.
  int64_t memory_budget = 0;
  /// 0 = server default partition size.
  uint64_t partition_size = 0;
  /// Request per-partition streaming (kTablePart* then kEnd) instead of
  /// one concatenated kOkTable.
  bool stream = false;
  /// Append the quarantine table (kQuarantine frame) to the response.
  bool want_quarantine = false;
  /// v2: wall-clock budget for the whole request in milliseconds; 0 = no
  /// deadline. An expired request comes back as kDeadlineExceeded.
  uint32_t deadline_ms = 0;
  /// Whether the request may be safely re-issued (parses and queries are
  /// read-only, so the default is true). RetryingClient refuses to retry
  /// a non-idempotent request past its first transport failure.
  bool idempotent = true;
};

/// A parse response. `busy` means the daemon shed the request at its
/// queue-depth limit — no other field is meaningful and the connection
/// is still usable; the client decides whether to retry.
struct ParseReply {
  bool busy = false;
  Table table;                 // non-streaming responses
  std::vector<Table> parts;    // streaming responses, in stream order
  uint64_t parts_declared = 0;  // kEnd's count (streaming)
  robust::QuarantineTable quarantine;
  bool has_quarantine = false;
};

/// A pushdown-query response.
struct QueryReply {
  bool busy = false;
  int64_t records_scanned = 0;
  int64_t records_selected = 0;
  Table table;
};

/// \brief Blocking parparawd client used by the tests, the soak/bench
/// harnesses, and anything else that wants a parse served remotely.
///
/// One request in flight at a time per Client (the daemon itself accepts
/// pipelined frames; tests exercise that path with raw sockets). A
/// server-side request error (kError frame) comes back as that decoded
/// Status; transport problems surface as kIoError.
class Client {
 public:
  Client() = default;

  /// Connects to a parparawd on 127.0.0.1:`port`. `connect_timeout_ms`
  /// >= 0 bounds the handshake (kDeadlineExceeded on expiry) so an
  /// unresponsive address cannot block the caller in SYN retries; -1 =
  /// classic blocking connect.
  static Result<Client> Connect(uint16_t port, int connect_timeout_ms = -1);

  bool connected() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  void Close() { sock_.Close(); }

  /// Per-attempt I/O timeout for every send/recv on this client; a hung
  /// daemon then costs kDeadlineExceeded instead of blocking forever.
  /// -1 (default) = block indefinitely.
  void set_io_timeout_ms(int timeout_ms) { io_timeout_ms_ = timeout_ms; }

  /// Enables v2 frame checksums: every request frame carries a CRC-32C
  /// trailer (kFlagChecksum), the daemon mirrors the flag on responses,
  /// and a response failing verification is a transport error that
  /// closes the connection.
  void set_checksums(bool on) { checksums_ = on; }

  /// True when the most recent failed call died at the transport layer
  /// (send/recv/frame decode/checksum) rather than as a server-reported
  /// request error. After a transport error the stream cannot be
  /// resynchronised — RetryPolicy reconnects before retrying; a request
  /// error leaves the connection usable and is NOT retryable.
  bool last_error_was_transport() const { return last_error_was_transport_; }

  /// Round-trips a kPing; the payload must echo back verbatim.
  Status Ping(std::string_view token = "ping");

  /// Parses `data` server-side and returns the columnar result.
  Result<ParseReply> Parse(std::string_view data,
                           const RequestOptions& options = {});

  /// Parses a *server-local* file by path.
  Result<ParseReply> ParseFile(const std::string& path,
                               const RequestOptions& options = {});

  /// Runs a pushdown query over uploaded bytes.
  Result<QueryReply> Query(std::string_view data, const Predicate& predicate,
                           const RequestOptions& options = {});

  /// Runs a pushdown query over a server-local file.
  Result<QueryReply> QueryFile(const std::string& path,
                               const Predicate& predicate,
                               const RequestOptions& options = {});

  /// Fetches the daemon's metrics summary text.
  Result<std::string> Stats();

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  struct Frame {
    FrameHeader header;
    std::string payload;
  };

  Status SendRequest(Opcode opcode, uint8_t flags, std::string_view body,
                     const RequestOptions& options);
  Result<Frame> ReadFrame();
  Result<ParseReply> DoParse(Opcode opcode, std::string_view body,
                             const RequestOptions& options);
  Result<QueryReply> DoQuery(Opcode opcode, std::string_view body,
                             const Predicate& predicate,
                             const RequestOptions& options);
  /// Marks (and passes through) a transport-layer failure.
  Status Transport(Status status);
  Status SendFrame(Opcode opcode, uint8_t flags, std::string_view payload);

  Socket sock_;
  int io_timeout_ms_ = -1;
  bool checksums_ = false;
  bool last_error_was_transport_ = false;
};

}  // namespace serve
}  // namespace parparaw

#endif  // PARPARAW_SERVE_CLIENT_H_
