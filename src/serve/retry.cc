#include "serve/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.h"

namespace parparaw {
namespace serve {

namespace {

void CountRetryMetric(const char* name) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  if (global.enabled()) global.AddCounter(name, 1);
}

}  // namespace

RetryingClient::RetryingClient(uint16_t port, RetryPolicy policy)
    : port_(port), policy_(policy), rng_(policy.seed) {}

void RetryingClient::Close() {
  if (client_.has_value()) client_->Close();
  client_.reset();
}

Status RetryingClient::EnsureConnected() {
  if (client_.has_value() && client_->connected()) return Status::OK();
  client_.reset();
  Result<Client> connected = Client::Connect(port_, policy_.connect_timeout_ms);
  if (!connected.ok()) return connected.status();
  client_.emplace(std::move(connected).ValueOrDie());
  client_->set_io_timeout_ms(policy_.io_timeout_ms);
  client_->set_checksums(policy_.checksums);
  if (connected_once_) {
    ++stats_.reconnects;
    CountRetryMetric("serve.client.reconnects");
  }
  connected_once_ = true;
  return Status::OK();
}

bool RetryingClient::Backoff(int attempt) {
  // Full jitter: uniform in [0, min(base * 2^k, max)]. The shift is
  // clamped so a large max_attempts cannot overflow the cap.
  const int shift = std::min(attempt - 1, 20);
  const int64_t cap = std::min(policy_.max_delay_us,
                               policy_.base_delay_us << shift);
  const int64_t delay = static_cast<int64_t>(
      rng_.NextRange(static_cast<uint64_t>(std::max<int64_t>(cap, 0)) + 1));
  if (slept_us_ + delay > policy_.budget_us) return false;
  slept_us_ += delay;
  stats_.backoff_us += delay;
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  return true;
}

template <typename Reply, typename Op>
Result<Reply> RetryingClient::Run(bool idempotent, const Op& op) {
  ++stats_.requests;
  slept_us_ = 0;
  Result<Reply> last = Status::Internal("retry loop never ran");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    {
      const Status conn = EnsureConnected();
      if (!conn.ok()) {
        // A failed (re)connect executed nothing server-side, so it is
        // retryable regardless of idempotence.
        last = conn;
        ++stats_.transport_retries;
        CountRetryMetric("serve.client.transport_retries");
        if (attempt == policy_.max_attempts || !Backoff(attempt)) break;
        continue;
      }
    }
    ++stats_.attempts;
    Result<Reply> result = op(*client_);
    if (result.ok() && !result->busy) return result;
    if (result.ok()) {
      // kBusy shed: the daemon refused before doing any work, so the
      // retry is safe even for non-idempotent requests.
      ++stats_.busy_sheds;
      CountRetryMetric("serve.client.busy_retries");
      last = std::move(result);
    } else if (client_->last_error_was_transport()) {
      // Broken stream: nothing after the failure can be trusted. Drop
      // the connection; retry only when the request may be re-executed.
      last = result.status();
      Close();
      if (!policy_.retry_transport || !idempotent) return last;
      ++stats_.transport_retries;
      CountRetryMetric("serve.client.transport_retries");
    } else {
      // Server-reported request error: the connection is usable and a
      // retry would just fail the same way.
      return result;
    }
    if (attempt == policy_.max_attempts || !Backoff(attempt)) break;
  }
  ++stats_.exhausted;
  return last;
}

namespace {
/// Adapter so Status-returning Ping flows through the same retry loop.
struct PingReply {
  bool busy = false;
};
}  // namespace

Status RetryingClient::Ping(std::string_view token) {
  Result<PingReply> result =
      Run<PingReply>(/*idempotent=*/true, [&](Client& client) {
        Result<PingReply> out = PingReply{};
        const Status st = client.Ping(token);
        if (!st.ok()) out = st;
        return out;
      });
  return result.status();
}

Result<ParseReply> RetryingClient::Parse(std::string_view data,
                                         const RequestOptions& options) {
  return Run<ParseReply>(options.idempotent, [&](Client& client) {
    return client.Parse(data, options);
  });
}

Result<ParseReply> RetryingClient::ParseFile(const std::string& path,
                                             const RequestOptions& options) {
  return Run<ParseReply>(options.idempotent, [&](Client& client) {
    return client.ParseFile(path, options);
  });
}

Result<QueryReply> RetryingClient::Query(std::string_view data,
                                         const Predicate& predicate,
                                         const RequestOptions& options) {
  return Run<QueryReply>(options.idempotent, [&](Client& client) {
    return client.Query(data, predicate, options);
  });
}

}  // namespace serve
}  // namespace parparaw
