#ifndef PARPARAW_SERVE_RETRY_H_
#define PARPARAW_SERVE_RETRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/client.h"
#include "workload/request_stream.h"

namespace parparaw {
namespace serve {

/// \brief Seeded, deterministic retry discipline for parparawd clients.
///
/// The daemon sheds load with kBusy instead of queueing (docs/serving.md)
/// — which only works if clients retry with discipline instead of
/// hammering. This policy is the discipline: exponential backoff with
/// *full jitter* (each delay is uniform in [0, min(base·2^k, max)], the
/// AWS-architecture result that de-synchronises retry storms), a total
/// sleep budget per logical request, and reconnect-on-transport-error.
/// The jitter PRNG is the workload generator's seeded xorshift64*, so a
/// soak run replays its exact retry schedule.
///
/// Retry decisions by failure class:
///   kBusy shed            retried always — the server did nothing, so
///                         the retry is safe even for non-idempotent ops
///   transport error       (send/recv/frame decode/checksum — the stream
///                         is broken) reconnect + retry, but only for
///                         idempotent requests: a request that reached
///                         the server may have executed
///   server request error  never retried (kParseError, kIoError from a
///                         bad path, kDeadlineExceeded, ...) — the
///                         connection is fine, the request is just wrong
struct RetryPolicy {
  /// Total wire attempts per logical request (first try included).
  int max_attempts = 6;
  /// Backoff cap sequence: delay k is uniform in [0, min(base·2^k, max)].
  int64_t base_delay_us = 500;
  int64_t max_delay_us = 50'000;
  /// Total backoff sleep allowed per logical request; once the next
  /// delay would overspend it, the client gives up with the last error.
  int64_t budget_us = 2'000'000;
  /// Seed of the full-jitter PRNG (deterministic replay).
  uint64_t seed = 42;
  /// Retry transport errors at all (reconnecting first)? Idempotence is
  /// still required per request (RequestOptions::idempotent).
  bool retry_transport = true;

  // Connection knobs applied to every Client this policy drives.
  int connect_timeout_ms = 1000;
  /// Per-attempt I/O timeout; -1 = block (no hung-daemon protection).
  int io_timeout_ms = -1;
  /// Enable v2 frame checksums on every connection.
  bool checksums = false;
};

/// Counters for one RetryingClient, split so that a bench can report
/// logical requests once while still accounting every shed and retry.
struct RetryStats {
  int64_t requests = 0;        ///< logical requests issued
  int64_t attempts = 0;        ///< wire attempts (>= requests)
  int64_t busy_sheds = 0;      ///< kBusy frames received
  int64_t transport_retries = 0;
  int64_t reconnects = 0;      ///< successful connects after the first
  int64_t exhausted = 0;       ///< gave up: attempts or budget spent
  int64_t backoff_us = 0;      ///< total jittered sleep
};

/// \brief serve::Client wrapped in RetryPolicy: connects lazily,
/// re-issues shed/transport-failed requests with jittered backoff, and
/// reconnects when the stream breaks — so a daemon restart (drain +
/// relaunch) is invisible to the caller. Blocking, single-threaded, like
/// the Client it owns.
class RetryingClient {
 public:
  explicit RetryingClient(uint16_t port, RetryPolicy policy = {});

  /// Round-trips a ping (retrying per policy).
  Status Ping(std::string_view token = "ping");

  Result<ParseReply> Parse(std::string_view data,
                           const RequestOptions& options = {});
  Result<ParseReply> ParseFile(const std::string& path,
                               const RequestOptions& options = {});
  Result<QueryReply> Query(std::string_view data, const Predicate& predicate,
                           const RequestOptions& options = {});

  const RetryStats& stats() const { return stats_; }
  void Close();

 private:
  template <typename Reply, typename Op>
  Result<Reply> Run(bool idempotent, const Op& op);

  /// Connects (or reconnects) the underlying client; applies the
  /// policy's timeouts and checksum setting.
  Status EnsureConnected();

  /// Sleeps the jittered delay for retry `attempt` (1-based). False when
  /// the budget is spent — the caller returns the last error instead.
  bool Backoff(int attempt);

  uint16_t port_;
  RetryPolicy policy_;
  StreamRng rng_;
  std::optional<Client> client_;
  bool connected_once_ = false;
  int64_t slept_us_ = 0;
  RetryStats stats_;
};

}  // namespace serve
}  // namespace parparaw

#endif  // PARPARAW_SERVE_RETRY_H_
