#include "serve/protocol.h"

#include <cstdio>
#include <cstring>

#include "robust/failpoint.h"
#include "util/crc32c.h"

namespace parparaw {
namespace serve {

namespace {

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

bool KnownOpcode(uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kPing:
    case Opcode::kParseBuffer:
    case Opcode::kParseFile:
    case Opcode::kQueryBuffer:
    case Opcode::kQueryFile:
    case Opcode::kStats:
    case Opcode::kOkTable:
    case Opcode::kOkQuery:
    case Opcode::kError:
    case Opcode::kBusy:
    case Opcode::kPong:
    case Opcode::kTablePart:
    case Opcode::kEnd:
    case Opcode::kQuarantine:
    case Opcode::kStatsText:
      return true;
  }
  return false;
}

bool KnownCompareOp(uint8_t raw) {
  return raw <= static_cast<uint8_t>(CompareOp::kIsNotNull);
}

bool KnownStatusCode(uint8_t raw) {
  return raw <= static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
}

}  // namespace

void AppendFrame(Opcode opcode, uint8_t flags, std::string_view payload,
                 std::string* out) {
  AppendU32(kFrameMagic, out);
  out->push_back(static_cast<char>(opcode));
  out->push_back(static_cast<char>(flags));
  out->push_back(0);  // reserved
  out->push_back(0);
  AppendU64(payload.size(), out);
  const size_t payload_at = out->size();
  out->append(payload);
  if ((flags & kFlagChecksum) != 0) {
    const uint32_t crc = Crc32c(payload);
    // serve.corrupt simulates a flipped bit on the wire: the CRC above is
    // honest, the payload underneath it is not, so the receiver MUST
    // reject the frame. Only armed for checksummed frames — corrupting
    // an unchecksummed frame would be silent, which is the very failure
    // mode this flag exists to rule out.
    if (!robust::CheckFailpoint("serve.corrupt").ok() && !payload.empty()) {
      (*out)[payload_at + payload.size() / 2] ^= 0x01;
    }
    AppendU32(crc, out);
  }
}

std::string EncodeRequestHeader(const RequestHeader& header) {
  std::string out;
  out.reserve(kRequestHeaderSize);
  out.push_back(static_cast<char>(header.version));
  out.push_back(static_cast<char>(header.error_policy));
  out.push_back(static_cast<char>(header.header));
  out.push_back(0);  // reserved
  AppendU64(static_cast<uint64_t>(header.memory_budget), &out);
  AppendU64(header.partition_size, &out);
  if (header.version >= kProtocolVersion) {
    AppendU32(header.deadline_ms, &out);
  }
  return out;
}

std::string EncodePredicateBlock(const Predicate& predicate) {
  std::string out;
  AppendU32(static_cast<uint32_t>(predicate.column), &out);
  out.push_back(static_cast<char>(predicate.op));
  out.append(3, '\0');
  AppendU32(static_cast<uint32_t>(predicate.literal.size()), &out);
  out.append(predicate.literal);
  return out;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  AppendU32(static_cast<uint32_t>(status.message().size()), &out);
  out.append(status.message());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint64_t max_payload) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::Invalid("frame header truncated (" +
                           std::to_string(bytes.size()) + " of " +
                           std::to_string(kFrameHeaderSize) + " bytes)");
  }
  const char* p = bytes.data();
  if (ReadU32(p) != kFrameMagic) {
    return Status::Invalid("bad frame magic");
  }
  const uint8_t opcode = static_cast<uint8_t>(p[4]);
  if (!KnownOpcode(opcode)) {
    return Status::Invalid("unknown opcode " + std::to_string(opcode));
  }
  if (p[6] != 0 || p[7] != 0) {
    return Status::Invalid("reserved header bytes must be zero");
  }
  FrameHeader header;
  header.opcode = static_cast<Opcode>(opcode);
  header.flags = static_cast<uint8_t>(p[5]);
  header.payload_size = ReadU64(p + 8);
  // A u64 length also catches "negative" lengths from signed writers:
  // they arrive as huge values and fail this cap.
  if (header.payload_size > max_payload) {
    return Status::Invalid("declared payload of " +
                           std::to_string(header.payload_size) +
                           " bytes exceeds the " +
                           std::to_string(max_payload) + "-byte cap");
  }
  return header;
}

bool IsRequestOpcode(Opcode opcode) {
  switch (opcode) {
    case Opcode::kPing:
    case Opcode::kParseBuffer:
    case Opcode::kParseFile:
    case Opcode::kQueryBuffer:
    case Opcode::kQueryFile:
    case Opcode::kStats:
      return true;
    default:
      return false;
  }
}

Result<RequestHeader> DecodeRequestHeader(std::string_view payload) {
  if (payload.empty()) {
    return Status::Invalid("request header truncated");
  }
  const char* p = payload.data();
  RequestHeader header;
  header.version = static_cast<uint8_t>(p[0]);
  if (header.version != kProtocolVersionV1 &&
      header.version != kProtocolVersion) {
    return Status::Invalid("unsupported protocol version " +
                           std::to_string(header.version));
  }
  header.encoded_size = header.version == kProtocolVersionV1
                            ? kRequestHeaderSizeV1
                            : kRequestHeaderSize;
  if (payload.size() < header.encoded_size) {
    return Status::Invalid("request header truncated");
  }
  header.error_policy = static_cast<uint8_t>(p[1]);
  if (header.error_policy >
      static_cast<uint8_t>(robust::ErrorPolicy::kQuarantine)) {
    return Status::Invalid("unknown error policy " +
                           std::to_string(header.error_policy));
  }
  header.header = static_cast<uint8_t>(p[2]);
  if (header.header > 2) {
    return Status::Invalid("header byte must be 0, 1 or 2");
  }
  if (p[3] != 0) {
    return Status::Invalid("reserved request byte must be zero");
  }
  header.memory_budget = static_cast<int64_t>(ReadU64(p + 4));
  if (header.memory_budget < 0) {
    return Status::Invalid("negative memory budget");
  }
  header.partition_size = ReadU64(p + 12);
  if (header.version >= kProtocolVersion) {
    header.deadline_ms = ReadU32(p + 20);
  }
  return header;
}

Status VerifyFrameChecksum(std::string_view payload,
                           std::string_view trailer) {
  if (trailer.size() != kFrameChecksumSize) {
    return Status::Invalid("frame checksum trailer truncated");
  }
  const uint32_t declared = ReadU32(trailer.data());
  const uint32_t actual = Crc32c(payload);
  if (declared != actual) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%08x, computed %08x", declared, actual);
    return Status::Invalid(std::string("frame checksum mismatch: declared ") +
                           hex);
  }
  return Status::OK();
}

Result<PredicateBlock> DecodePredicateBlock(std::string_view after_header) {
  constexpr size_t kFixed = 4 + 1 + 3 + 4;
  if (after_header.size() < kFixed) {
    return Status::Invalid("predicate block truncated");
  }
  const char* p = after_header.data();
  PredicateBlock block;
  const uint32_t column = ReadU32(p);
  if (column > (1u << 20)) {
    return Status::Invalid("predicate column out of range");
  }
  block.predicate.column = static_cast<int>(column);
  const uint8_t op = static_cast<uint8_t>(p[4]);
  if (!KnownCompareOp(op)) {
    return Status::Invalid("unknown predicate operator " +
                           std::to_string(op));
  }
  block.predicate.op = static_cast<CompareOp>(op);
  if (p[5] != 0 || p[6] != 0 || p[7] != 0) {
    return Status::Invalid("reserved predicate bytes must be zero");
  }
  const uint32_t literal_size = ReadU32(p + 8);
  if (literal_size > after_header.size() - kFixed) {
    return Status::Invalid("predicate literal overruns the payload");
  }
  block.predicate.literal.assign(after_header.substr(kFixed, literal_size));
  block.encoded_size = kFixed + literal_size;
  return block;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.size() < 5) {
    return Status::Invalid("error payload truncated");
  }
  const uint8_t code = static_cast<uint8_t>(payload[0]);
  if (!KnownStatusCode(code) || code == 0) {
    return Status::Invalid("error payload carries invalid code " +
                           std::to_string(code));
  }
  const uint32_t length = ReadU32(payload.data() + 1);
  if (length != payload.size() - 5) {
    return Status::Invalid("error payload length mismatch");
  }
  return Status(static_cast<StatusCode>(code),
                std::string(payload.substr(5, length)));
}

}  // namespace serve
}  // namespace parparaw
