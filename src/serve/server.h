#ifndef PARPARAW_SERVE_SERVER_H_
#define PARPARAW_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/admission.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "serve/protocol.h"
#include "serve/socket_io.h"
#include "util/result.h"

namespace parparaw {
namespace serve {

/// Configuration of a parparawd instance.
struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (tests, benches).
  uint16_t port = 0;
  int backlog = 64;

  /// Concurrent connections; a connection beyond the cap is answered
  /// kBusy and closed.
  int max_connections = 64;

  /// Parse/query requests admitted at once across all connections — the
  /// daemon's queue depth. A request arriving at the limit is shed with
  /// kBusy instead of queueing (the client decides whether to retry), so
  /// a saturated daemon degrades by refusing work, never by growing an
  /// unbounded backlog.
  int max_inflight_requests = 8;

  /// Global parse working-set budget in bytes, 0 = unlimited. Split two
  /// ways, both derived from ParseOptions::memory_budget semantics:
  /// every admitted request parses under a per-connection slice
  /// (budget / max_inflight_requests, so partitions shrink to fit), and
  /// the *sum* of resident partitions across all requests is capped by a
  /// single exec::AdmissionController shared by every request's
  /// PipelineExecutor.
  int64_t memory_budget = 0;

  /// Hard cap on a single frame payload; larger declared lengths are
  /// protocol errors (never allocated).
  uint64_t max_payload = kDefaultMaxPayload;

  /// Default partition size for request parses (a request may override).
  size_t partition_size = 8 * 1024 * 1024;

  /// Worker pool shared by request parses; nullptr = ThreadPool::Default.
  ThreadPool* pool = nullptr;

  /// Metrics sink (serve.* taxonomy); nullptr = none.
  obs::MetricsRegistry* metrics = nullptr;

  /// Cancel-on-disconnect poll interval for in-flight requests.
  int watchdog_interval_ms = 2;
};

/// Occupancy counters for tests and the stats endpoint.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;
  int64_t busy_shed = 0;
  int64_t protocol_errors = 0;
  int64_t cancelled_disconnects = 0;
  /// Requests answered kError{kDeadlineExceeded}: shed waiting for a
  /// slot past their deadline, or cancelled mid-ingest by an expired one.
  int64_t deadline_exceeded = 0;
  /// Checksummed frames (kFlagChecksum) whose CRC-32C did not match —
  /// each one is also a protocol error and closes its connection.
  int64_t checksum_errors = 0;
  /// Requests that completed (response delivered) while draining.
  int64_t drained = 0;
  /// Requests still in flight when the drain deadline expired; they were
  /// cancelled by the final Stop().
  int64_t drain_cancelled = 0;
};

/// \brief parparawd — the parse-serving TCP daemon.
///
/// A memcached-style loop: one acceptor thread, one thread per
/// connection, length-prefixed binary frames (serve/protocol.h). Clients
/// upload delimiter-separated bytes (or name a server-local file) and
/// get back columnar results over the existing IPC framing, pushdown
/// query answers, or a stream of per-partition tables.
///
/// Multi-tenancy is real, not per-connection: every request runs a
/// PipelineExecutor bound to ONE shared exec::AdmissionController, so
/// the global number of resident partitions — and with it the working
/// set — respects `memory_budget` no matter how many clients push at
/// once. Above that sits queue-depth shedding (kBusy at
/// max_inflight_requests) and per-connection budget slices. A client
/// that disconnects mid-request is detected by a watchdog poll; the
/// request's executor is cancelled and its admission slots return to the
/// pool (tests/serve_concurrency_test.cc asserts the gauge drains to
/// zero).
class Server {
 public:
  // Out-of-line: Connection is incomplete here and the members need it.
  explicit Server(ServeOptions options);
  ~Server();  // stops the daemon

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the acceptor. Returns the bound port.
  Result<uint16_t> Start();

  /// Stops accepting, cancels in-flight requests, closes every
  /// connection and joins all threads. Idempotent.
  void Stop();

  /// Graceful shutdown: stops accepting immediately, lets in-flight
  /// requests run to completion for up to `deadline_ms`, then cancels
  /// whatever is left and Stop()s. Idle connections are closed right
  /// away; a connection finishing a request closes after its response.
  /// Returns true when every in-flight request completed (none
  /// cancelled); counts land in ServerStats::drained / drain_cancelled.
  /// This is what SIGTERM does in parparawd_main (SIGINT = hard Stop).
  bool Drain(int deadline_ms);

  /// True once Drain() has begun (new parse/query requests are answered
  /// kBusy and their connections closed).
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The shared partition-admission controller (tests assert its
  /// inflight count returns to zero after disconnect storms).
  exec::AdmissionController* exec_admission() { return &exec_admission_; }

  /// The queue-depth semaphore. Tests occupy slots through it to make
  /// BUSY shedding deterministic.
  exec::AdmissionController* request_admission() { return &request_slots_; }

  /// In-flight parse/query requests right now.
  int inflight_requests() const { return request_slots_.inflight(); }

  ServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  /// Handles one decoded request frame; returns false when the
  /// connection must close (protocol error or peer gone).
  bool Dispatch(Connection* conn, const FrameHeader& header,
                std::string_view payload);
  bool HandleParse(Connection* conn, const FrameHeader& header,
                   std::string_view payload);
  bool HandleQuery(Connection* conn, const FrameHeader& header,
                   std::string_view payload);
  bool SendFrame(Connection* conn, Opcode opcode, uint8_t flags,
                 std::string_view payload);
  bool SendError(Connection* conn, const Status& status);
  void Count(const char* name, int64_t delta);
  /// Answers kError{kDeadlineExceeded} and bumps the stat. Returns
  /// whether the connection is still usable (a deadline is a request
  /// error, not a protocol error).
  bool SendDeadlineExceeded(Connection* conn, const std::string& what);
  /// Stops the listener and joins the acceptor (shared by Stop/Drain).
  void StopAccepting();
  /// Records one drained request when a response lands during a drain.
  void CountDrained();

  ServeOptions options_;
  uint16_t port_ = 0;
  /// Written by Stop() while AcceptLoop() reads it for accept().
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread acceptor_;

  /// Partition admission shared by every request's executor.
  exec::AdmissionController exec_admission_;
  /// Per-request admission limit fed to every ExecOptions (derived from
  /// memory_budget at Start).
  int exec_partition_limit_ = 0;
  /// Queue-depth semaphore for whole requests.
  mutable exec::AdmissionController request_slots_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<int> open_conns_{0};

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace serve
}  // namespace parparaw

#endif  // PARPARAW_SERVE_SERVER_H_
