// parparawd — the ParPaRaw parse-serving daemon.
//
// Binds 127.0.0.1:<port> and serves the serve/protocol.h frame protocol:
// clients upload delimiter-separated bytes (or name a server-local file)
// and receive columnar IPC tables, pushdown query answers, or a
// partition stream. See docs/serving.md.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "serve/server.h"

namespace {

// 1 = drain (SIGTERM: finish in-flight requests), 2 = hard stop (SIGINT).
volatile std::sig_atomic_t g_stop = 0;

void HandleDrainSignal(int) { g_stop = 1; }
void HandleStopSignal(int) { g_stop = 2; }

int64_t ParseBytes(const char* text) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || value < 0) return -1;
  switch (*end) {
    case 'k': case 'K': return static_cast<int64_t>(value * (1LL << 10));
    case 'm': case 'M': return static_cast<int64_t>(value * (1LL << 20));
    case 'g': case 'G': return static_cast<int64_t>(value * (1LL << 30));
    case '\0': return static_cast<int64_t>(value);
    default: return -1;
  }
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N             listen port on 127.0.0.1 (default 7070;\n"
      "                       0 = ephemeral, printed on startup)\n"
      "  --max-connections N  concurrent connections (default 64)\n"
      "  --max-inflight N     admitted requests before BUSY shedding\n"
      "                       (default 8)\n"
      "  --memory-budget B    global parse working-set budget, e.g. 512M\n"
      "                       (default 0 = unlimited)\n"
      "  --partition-size B   default parse partition size (default 8M)\n"
      "  --drain-deadline-ms N  SIGTERM grace: in-flight requests get N ms\n"
      "                       to finish before being cancelled\n"
      "                       (default 5000; SIGINT stops immediately)\n"
      "  --no-metrics         disable the serve.*/exec.* metrics registry\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  parparaw::serve::ServeOptions options;
  options.port = 7070;
  bool metrics_enabled = true;
  int drain_deadline_ms = 5000;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--help") == 0) {
      Usage(argv[0]);
      return 0;
    }
    if (std::strcmp(arg, "--no-metrics") == 0) {
      metrics_enabled = false;
      continue;
    }
    if (!has_value) {
      Usage(argv[0]);
      return 2;
    }
    const char* value = argv[++i];
    if (std::strcmp(arg, "--port") == 0) {
      options.port = static_cast<uint16_t>(std::atoi(value));
    } else if (std::strcmp(arg, "--max-connections") == 0) {
      options.max_connections = std::atoi(value);
    } else if (std::strcmp(arg, "--max-inflight") == 0) {
      options.max_inflight_requests = std::atoi(value);
    } else if (std::strcmp(arg, "--memory-budget") == 0) {
      options.memory_budget = ParseBytes(value);
      if (options.memory_budget < 0) {
        std::fprintf(stderr, "bad --memory-budget '%s'\n", value);
        return 2;
      }
    } else if (std::strcmp(arg, "--partition-size") == 0) {
      const int64_t parsed = ParseBytes(value);
      if (parsed <= 0) {
        std::fprintf(stderr, "bad --partition-size '%s'\n", value);
        return 2;
      }
      options.partition_size = static_cast<size_t>(parsed);
    } else if (std::strcmp(arg, "--drain-deadline-ms") == 0) {
      drain_deadline_ms = std::atoi(value);
      if (drain_deadline_ms < 0) {
        std::fprintf(stderr, "bad --drain-deadline-ms '%s'\n", value);
        return 2;
      }
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  parparaw::obs::MetricsRegistry metrics(metrics_enabled);
  if (metrics_enabled) options.metrics = &metrics;

  parparaw::serve::Server server(options);
  const auto port = server.Start();
  if (!port.ok()) {
    std::fprintf(stderr, "parparawd: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "parparawd listening on 127.0.0.1:%u\n", *port);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    sigsuspend(&empty);  // wake only on a signal
  }

  if (g_stop == 1) {
    std::fprintf(stderr, "parparawd: draining (deadline %dms)\n",
                 drain_deadline_ms);
    const bool clean = server.Drain(drain_deadline_ms);
    const auto stats = server.stats();
    std::fprintf(stderr,
                 "parparawd: drain %s (%lld completed, %lld cancelled)\n",
                 clean ? "clean" : "cancelled stragglers",
                 static_cast<long long>(stats.drained),
                 static_cast<long long>(stats.drain_cancelled));
  } else {
    std::fprintf(stderr, "parparawd: shutting down\n");
    server.Stop();
  }
  if (metrics_enabled) {
    std::fputs(metrics.SummaryText().c_str(), stderr);
  }
  return 0;
}
