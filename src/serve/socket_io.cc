#include "serve/socket_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/obs.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"

namespace parparaw {
namespace serve {

namespace {

std::string ErrnoMessage(const char* prefix) {
  return std::string(prefix) + ": " + std::strerror(errno);
}

void CountRetry() {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  if (global.enabled()) global.AddCounter("serve.eintr_retries", 1);
}

void CountBytes(const char* name, int64_t n) {
  obs::MetricsRegistry& global = obs::MetricsRegistry::Global();
  if (global.enabled()) global.AddCounter(name, n);
}

/// Bounded deterministic backoff for EINTR-class transients, the same
/// policy io/file.cc uses for stdio streams.
struct TransientRetry {
  robust::RetryPolicy policy;
  int attempt = 0;

  bool Next() {
    if (attempt + 1 >= policy.max_attempts) return false;
    ++attempt;
    robust::internal::BackoffSleepAndCount(policy.DelayUs(attempt));
    CountRetry();
    return true;
  }
};

/// The *.short failpoints clamp (not fail) the next transfer: a fired
/// check means "move one byte this iteration", which drives the
/// partial-transfer resume paths deterministically.
size_t MaybeClampShort(const char* site, size_t want) {
  if (!robust::FailpointRegistry::AnyArmed()) return want;
  bool transient = false;
  if (!robust::FailpointRegistry::Instance().CheckSlow(site, &transient).ok()) {
    return want == 0 ? 0 : 1;
  }
  return want;
}

/// Per-attempt readiness wait: blocks until `fd` is ready for `events`
/// (POLLIN/POLLOUT) or `timeout_ms` elapses. timeout_ms < 0 = no wait
/// (the subsequent blocking syscall waits instead). A timeout is
/// kDeadlineExceeded — the caller's transfer loop propagates it, so a
/// hung peer costs one timeout, not an eternity.
Status WaitReady(int fd, short events, int timeout_ms, const char* what) {
  if (timeout_ms < 0) return Status::OK();
  TransientRetry retry;
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (errno == EINTR && retry.Next()) continue;
    return Status::IoError(ErrnoMessage("poll failed"));
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.Release(), std::memory_order_release);
  }
  return *this;
}

int Socket::Release() {
  return fd_.exchange(-1, std::memory_order_acq_rel);
}

void Socket::Shutdown() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Status SendAll(int fd, std::string_view data, int timeout_ms) {
  size_t sent = 0;
  TransientRetry retry;
  while (sent < data.size()) {
    bool transient = false;
    const Status injected = robust::CheckFailpoint("serve.write", &transient);
    if (!injected.ok()) {
      if (transient && retry.Next()) continue;
      return injected;
    }
    PARPARAW_RETURN_NOT_OK(WaitReady(fd, POLLOUT, timeout_ms, "send"));
    const size_t want =
        MaybeClampShort("serve.write.short", data.size() - sent);
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
    // process with SIGPIPE — mandatory for a daemon.
    const ssize_t n =
        ::send(fd, data.data() + sent, want, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR && retry.Next()) continue;
    return Status::IoError(ErrnoMessage("send failed"));
  }
  CountBytes("serve.bytes_out", static_cast<int64_t>(sent));
  return Status::OK();
}

Status RecvExact(int fd, size_t n, std::string* out, bool* eof,
                 int timeout_ms) {
  if (eof != nullptr) *eof = false;
  out->clear();
  out->resize(n);
  size_t received = 0;
  TransientRetry retry;
  while (received < n) {
    bool transient = false;
    const Status injected = robust::CheckFailpoint("serve.read", &transient);
    if (!injected.ok()) {
      if (transient && retry.Next()) continue;
      return injected;
    }
    {
      const Status ready = WaitReady(fd, POLLIN, timeout_ms, "recv");
      if (!ready.ok()) {
        out->resize(received);
        return ready;
      }
    }
    const size_t want = MaybeClampShort("serve.read.short", n - received);
    const ssize_t got = ::recv(fd, out->data() + received, want, 0);
    if (got > 0) {
      received += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      // Clean EOF on a frame boundary is a normal disconnect; mid-frame
      // it is a truncation error the caller must not paper over.
      if (received == 0 && eof != nullptr) {
        *eof = true;
        out->clear();
        return Status::OK();
      }
      out->resize(received);
      return Status::IoError("connection closed mid-frame (" +
                             std::to_string(received) + " of " +
                             std::to_string(n) + " bytes)");
    }
    if (errno == EINTR && retry.Next()) continue;
    return Status::IoError(ErrnoMessage("recv failed"));
  }
  CountBytes("serve.bytes_in", static_cast<int64_t>(received));
  return Status::OK();
}

bool PeerClosed(int fd) {
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;                      // orderly shutdown
  if (n < 0 && (errno == ECONNRESET || errno == ENOTCONN)) return true;
  return false;
}

Result<int> ListenLoopback(uint16_t port, int backlog, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket failed"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IoError(ErrnoMessage("bind failed"));
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Status::IoError(ErrnoMessage("listen failed"));
    ::close(fd);
    return st;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status st = Status::IoError(ErrnoMessage("getsockname failed"));
      ::close(fd);
      return st;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<Socket> AcceptConnection(int listen_fd) {
  PARPARAW_FAILPOINT("serve.accept");
  TransientRetry retry;
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR && retry.Next()) continue;
    return Status::IoError(ErrnoMessage("accept failed"));
  }
}

Result<Socket> ConnectLoopback(uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket failed"));
  Socket socket(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (timeout_ms >= 0) {
    // Non-blocking connect bounded by poll: an address that never
    // completes the handshake (full accept queue, dropped SYNs) costs
    // one timeout instead of the kernel's minutes of SYN retries.
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
      return Status::IoError(ErrnoMessage("fcntl failed"));
    }
    const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0) {
      if (errno != EINPROGRESS && errno != EINTR) {
        return Status::IoError(ErrnoMessage("connect failed"));
      }
      PARPARAW_RETURN_NOT_OK(WaitReady(fd, POLLOUT, timeout_ms, "connect"));
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        return Status::IoError(ErrnoMessage("getsockopt failed"));
      }
      if (err != 0) {
        return Status::IoError(std::string("connect failed: ") +
                               std::strerror(err));
      }
    }
    if (::fcntl(fd, F_SETFL, fl) < 0) {
      return Status::IoError(ErrnoMessage("fcntl failed"));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return socket;
  }
  TransientRetry retry;
  while (true) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return socket;
    }
    if (errno == EINTR && retry.Next()) continue;
    return Status::IoError(ErrnoMessage("connect failed"));
  }
}

}  // namespace serve
}  // namespace parparaw
