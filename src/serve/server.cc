#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "columnar/ipc.h"
#include "exec/executor.h"
#include "io/file.h"
#include "loader/bulk_loader.h"
#include "obs/obs.h"
#include "query/pushdown.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"
#include "util/stopwatch.h"

namespace parparaw {
namespace serve {

namespace {

void AppendU64Le(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Returns the queue-depth slot on every exit path and keeps the
/// serve.inflight_requests gauge honest (it must drain to zero).
class SlotReturn {
 public:
  SlotReturn(exec::AdmissionController* slots,
             obs::MetricsRegistry* metrics)
      : slots_(slots), metrics_(metrics) {}
  ~SlotReturn() {
    const int now = slots_->Release();
    obs::SetGauge(metrics_, "serve.inflight_requests", now);
  }
  SlotReturn(const SlotReturn&) = delete;
  SlotReturn& operator=(const SlotReturn&) = delete;

 private:
  exec::AdmissionController* slots_;
  obs::MetricsRegistry* metrics_;
};

/// Polls the connection for a peer disconnect — and the request deadline
/// for expiry — while a request is in flight; either event fires the
/// request executor's cooperative Cancel() so the ingest aborts at its
/// next stage boundary and its admission slots return to the shared
/// controller. A disconnect closes the connection; an expired deadline
/// is answered kError{kDeadlineExceeded} and the connection stays
/// usable. (The executor also checks the deadline itself at partition
/// hand-offs; the watchdog covers the stretches between them — a slow
/// sink, serialization, a stuck file read.)
class RequestWatchdog {
 public:
  RequestWatchdog(int fd, exec::PipelineExecutor* executor, int interval_ms,
                  std::chrono::steady_clock::time_point deadline)
      : fd_(fd),
        executor_(executor),
        interval_ms_(interval_ms),
        deadline_(deadline) {
    thread_ = std::thread([this] { Loop(); });
  }

  /// Joins the poll thread; poll the accessors afterwards.
  void Finish() {
    done_.store(true, std::memory_order_release);
    thread_.join();
  }

  bool disconnected() const {
    return disconnected_.load(std::memory_order_acquire);
  }
  bool deadline_fired() const {
    return deadline_fired_.load(std::memory_order_acquire);
  }

 private:
  void Loop() {
    while (!done_.load(std::memory_order_acquire)) {
      if (PeerClosed(fd_)) {
        disconnected_.store(true, std::memory_order_release);
        executor_->Cancel();
        return;
      }
      if (std::chrono::steady_clock::now() >= deadline_) {
        deadline_fired_.store(true, std::memory_order_release);
        executor_->Cancel();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
    }
  }

  int fd_;
  exec::PipelineExecutor* executor_;
  int interval_ms_;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<bool> done_{false};
  std::atomic<bool> disconnected_{false};
  std::atomic<bool> deadline_fired_{false};
  std::thread thread_;
};

}  // namespace

/// One accepted connection: its socket, its thread, and the executor of
/// its in-flight request (if any) so Stop() can cancel it.
struct Server::Connection {
  Socket sock;
  std::thread thread;
  std::atomic<bool> done{false};
  /// True while a request frame is being served; Drain() closes only
  /// idle connections and lets these finish their response.
  std::atomic<bool> in_request{false};
  /// The in-flight request declared kFlagChecksum, so every response
  /// frame mirrors it (connection thread only).
  bool checksum = false;
  std::mutex exec_mu;
  exec::PipelineExecutor* active_exec = nullptr;  // guarded by exec_mu
};

Server::Server(ServeOptions options) : options_(options) {}

Server::~Server() { Stop(); }

Result<uint16_t> Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Invalid("server already running");
  }
  if (options_.max_inflight_requests <= 0) {
    return Status::Invalid("max_inflight_requests must be positive");
  }
  if (options_.max_connections <= 0) {
    return Status::Invalid("max_connections must be positive");
  }
  if (options_.partition_size == 0) {
    return Status::Invalid("partition size must be positive");
  }

  // Derive the shared partition-admission limit once: how many resident
  // partitions the whole daemon may hold. Each request's partitions are
  // already clamped to its per-connection budget slice, so the limit is
  // the global budget divided by one sliced partition's working set.
  ParseOptions probe;
  const int64_t factor = ParseWorkingSetFactor(probe);
  if (options_.memory_budget > 0) {
    const int64_t slice =
        options_.memory_budget / options_.max_inflight_requests;
    const int64_t sliced_partition = robust::ClampPartitionSizeForBudget(
        static_cast<int64_t>(options_.partition_size), slice,
        /*floor_bytes=*/256, factor);
    const int64_t per_partition = std::max<int64_t>(
        1, robust::EstimateParseMemory(sliced_partition, factor));
    exec_partition_limit_ = static_cast<int>(std::max<int64_t>(
        1, options_.memory_budget / per_partition));
  } else {
    // Unbudgeted: one pipeline's worth of slots per admissible request.
    exec_partition_limit_ = 4 * options_.max_inflight_requests;
  }

  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  PARPARAW_ASSIGN_OR_RETURN(
      int listen_fd, ListenLoopback(options_.port, options_.backlog, &port_));
  listen_fd_.store(listen_fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void Server::StopAccepting() {
  // Shutting down the listener kicks the acceptor out of accept();
  // the fd is only closed once the acceptor has been joined so the
  // close cannot race an in-flight accept (fd reuse).
  {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) Socket(listen_fd).Close();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Requests parked in a deadline-aware admission wait must observe
  // stopping_ now, not at their deadline.
  request_slots_.Wake();
  StopAccepting();
  // Cancel in-flight requests, then unblock and join every connection.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    {
      std::lock_guard<std::mutex> lock(conn->exec_mu);
      if (conn->active_exec != nullptr) conn->active_exec->Cancel();
    }
    // Wake a blocked recv without closing: the connection thread owns
    // the fd's close (a concurrent close would race the recv).
    conn->sock.Shutdown();
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

bool Server::Drain(int deadline_ms) {
  if (!running_.load(std::memory_order_acquire)) return true;
  if (!draining_.exchange(true, std::memory_order_acq_rel)) {
    Count("serve.drain", 1);
    StopAccepting();
    // Deadline-waiters parked in AcquireFor shed now instead of burning
    // their remaining deadline against a server that will not admit.
    request_slots_.Wake();
    // Nudge idle connections out of their header recv; a connection
    // serving a request closes itself right after its response.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (!conn->in_request.load(std::memory_order_acquire)) {
        conn->sock.Shutdown();
      }
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (inflight_requests() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int remaining = inflight_requests();
  if (remaining > 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.drain_cancelled += remaining;
    }
    Count("serve.drain_cancelled", remaining);
  }
  Stop();
  return remaining == 0;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Server::Count(const char* name, int64_t delta) {
  obs::AddCount(options_.metrics, name, delta);
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire)) {
    Result<Socket> accepted =
        AcceptConnection(listen_fd_.load(std::memory_order_acquire));
    // Reap finished connections so a churny client (the fuzz suite's
    // 10k+ one-shot connections) does not accumulate joinable threads.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto& conn : conns_) {
        if (conn->done.load(std::memory_order_acquire) &&
            conn->thread.joinable()) {
          conn->thread.join();
        }
      }
      conns_.erase(
          std::remove_if(conns_.begin(), conns_.end(),
                         [](const std::unique_ptr<Connection>& c) {
                           return c->done.load(std::memory_order_acquire) &&
                                  !c->thread.joinable();
                         }),
          conns_.end());
    }
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire) ||
          draining_.load(std::memory_order_acquire)) {
        return;
      }
      Count("serve.accept_errors", 1);
      // An injected serve.accept fault or a transient accept error must
      // not kill the daemon; keep listening.
      continue;
    }
    if (open_conns_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Over the connection cap: one BUSY frame, then the door.
      std::string frame;
      AppendFrame(Opcode::kBusy, 0, {}, &frame);
      (void)SendAll(accepted->fd(), frame);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.busy_shed;
      }
      Count("serve.busy", 1);
      continue;  // Socket destructor closes
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(*accepted);
    Connection* raw = conn.get();
    open_conns_.fetch_add(1, std::memory_order_acq_rel);
    obs::SetGauge(options_.metrics, "serve.connections",
                  open_conns_.load(std::memory_order_acquire));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    Count("serve.accepted", 1);
    conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void Server::ConnectionLoop(Connection* conn) {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::string header_bytes;
    bool eof = false;
    const Status received =
        RecvExact(conn->sock.fd(), kFrameHeaderSize, &header_bytes, &eof);
    if (!received.ok() || eof) {
      if (!received.ok() && !stopping_.load(std::memory_order_acquire)) {
        Count("serve.read_errors", 1);
      }
      break;  // orderly disconnect, mid-header truncation, or shutdown
    }
    Result<FrameHeader> header =
        DecodeFrameHeader(header_bytes, options_.max_payload);
    if (header.ok() && !IsRequestOpcode(header->opcode)) {
      header = Status::Invalid(
          "opcode " +
          std::to_string(static_cast<int>(header->opcode)) +
          " is not a request");
    }
    if (!header.ok()) {
      // Unframeable garbage: answer (best-effort) and close — there is
      // no way to resynchronise a length-prefixed stream.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      Count("serve.protocol_errors", 1);
      (void)SendError(conn, header.status());  // best-effort
      break;
    }
    conn->in_request.store(true, std::memory_order_release);
    std::string payload;
    if (header->payload_size > 0) {
      const Status body = RecvExact(
          conn->sock.fd(), static_cast<size_t>(header->payload_size),
          &payload);
      if (!body.ok()) {
        // Mid-frame disconnect or injected fault: nothing to answer.
        Count("serve.read_errors", 1);
        conn->in_request.store(false, std::memory_order_release);
        break;
      }
    }
    // v2 integrity: a checksummed request carries a CRC-32C trailer; the
    // response frames mirror the flag. A mismatch means the stream is
    // corrupt — there is nothing trustworthy left to parse, so it is a
    // protocol error and the connection closes.
    conn->checksum = (header->flags & kFlagChecksum) != 0;
    if (conn->checksum) {
      std::string trailer;
      const Status got =
          RecvExact(conn->sock.fd(), kFrameChecksumSize, &trailer);
      if (!got.ok()) {
        Count("serve.read_errors", 1);
        conn->in_request.store(false, std::memory_order_release);
        break;
      }
      const Status verified = VerifyFrameChecksum(payload, trailer);
      if (!verified.ok()) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
          ++stats_.checksum_errors;
        }
        Count("serve.protocol_errors", 1);
        Count("serve.checksum_errors", 1);
        (void)SendError(conn, verified);  // best-effort
        conn->in_request.store(false, std::memory_order_release);
        break;
      }
    }
    const bool keep = Dispatch(conn, *header, payload);
    conn->in_request.store(false, std::memory_order_release);
    if (!keep) break;
    // A drain lets the in-flight response finish, then closes; the
    // serve.drain failpoint forces the same post-response close to let
    // the chaos suite rehearse clients racing a drain.
    if (draining_.load(std::memory_order_acquire)) break;
    if (!robust::CheckFailpoint("serve.drain").ok()) break;
  }
  conn->sock.Close();
  open_conns_.fetch_sub(1, std::memory_order_acq_rel);
  obs::SetGauge(options_.metrics, "serve.connections",
                open_conns_.load(std::memory_order_acquire));
  conn->done.store(true, std::memory_order_release);
}

bool Server::SendFrame(Connection* conn, Opcode opcode, uint8_t flags,
                       std::string_view payload) {
  if (conn->checksum) flags |= kFlagChecksum;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameChecksumSize);
  AppendFrame(opcode, flags, payload, &frame);
  const Status sent = SendAll(conn->sock.fd(), frame);
  if (!sent.ok()) {
    Count("serve.write_errors", 1);
    return false;
  }
  return true;
}

bool Server::SendError(Connection* conn, const Status& status) {
  return SendFrame(conn, Opcode::kError, 0, EncodeErrorPayload(status));
}

bool Server::SendDeadlineExceeded(Connection* conn, const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.deadline_exceeded;
  }
  Count("serve.deadline_exceeded", 1);
  return SendError(conn, Status::DeadlineExceeded(what));
}

void Server::CountDrained() {
  if (!draining_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.drained;
  }
  Count("serve.drained", 1);
}

bool Server::Dispatch(Connection* conn, const FrameHeader& header,
                      std::string_view payload) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  Count("serve.requests", 1);
  switch (header.opcode) {
    case Opcode::kPing:
      return SendFrame(conn, Opcode::kPong, 0, payload);
    case Opcode::kStats: {
      std::string text = options_.metrics != nullptr
                             ? options_.metrics->SummaryText()
                             : std::string("metrics disabled\n");
      return SendFrame(conn, Opcode::kStatsText, 0, text);
    }
    case Opcode::kParseBuffer:
    case Opcode::kParseFile:
    case Opcode::kQueryBuffer:
    case Opcode::kQueryFile: {
      if (draining_.load(std::memory_order_acquire)) {
        // Raced the drain: shed like a queue-full BUSY (the client's
        // retry lands on the restarted daemon) and close.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.busy_shed;
        }
        Count("serve.busy", 1);
        (void)SendFrame(conn, Opcode::kBusy, 0, {});
        return false;
      }
      if (header.opcode == Opcode::kParseBuffer ||
          header.opcode == Opcode::kParseFile) {
        return HandleParse(conn, header, payload);
      }
      return HandleQuery(conn, header, payload);
    }
    default:
      // Unreachable: Dispatch is gated on IsRequestOpcode.
      return SendError(conn, Status::Internal("unhandled opcode"));
  }
}

namespace {

/// Per-request parse configuration: the request header resolved against
/// the server's defaults and budget slices.
struct RequestConfig {
  LoadOptions load;
  std::string_view rest;  // payload after the request header
  /// v2 deadline: resolved to an absolute steady_clock point at decode
  /// time so admission waits, the executor and the watchdog all race the
  /// same instant. max() = no deadline (v1 requests, deadline_ms == 0).
  uint32_t deadline_ms = 0;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

Result<RequestConfig> ResolveRequest(std::string_view payload,
                                     const ServeOptions& server) {
  PARPARAW_ASSIGN_OR_RETURN(RequestHeader header,
                            DecodeRequestHeader(payload));
  RequestConfig config;
  config.load.error_policy =
      static_cast<robust::ErrorPolicy>(header.error_policy);
  config.load.header = header.header == 2 ? -1 : header.header;
  config.load.collect_statistics = false;
  config.load.pool = server.pool;
  config.load.partition_size = header.partition_size > 0
                                   ? static_cast<size_t>(header.partition_size)
                                   : server.partition_size;
  // Per-connection budget: the request may tighten its slice of the
  // server budget, never widen it.
  const int64_t slice =
      server.memory_budget > 0
          ? server.memory_budget / server.max_inflight_requests
          : 0;
  config.load.memory_budget = header.memory_budget;
  if (slice > 0) {
    config.load.memory_budget =
        config.load.memory_budget > 0
            ? std::min(config.load.memory_budget, slice)
            : slice;
  }
  config.deadline_ms = header.deadline_ms;
  if (header.deadline_ms > 0) {
    config.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(header.deadline_ms);
  }
  // The header is version-sized: v1 frames carry 20 bytes, v2 24.
  config.rest = payload.substr(header.encoded_size);
  return config;
}

/// The serve.deadline failpoint makes a request behave as if its
/// deadline had already expired at admission, deterministically.
bool DeadlineForced() {
  return !robust::CheckFailpoint("serve.deadline").ok();
}

}  // namespace

bool Server::HandleParse(Connection* conn, const FrameHeader& header,
                         std::string_view payload) {
  const auto config = ResolveRequest(payload, options_);
  if (!config.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    Count("serve.protocol_errors", 1);
    (void)SendError(conn, config.status());
    return false;  // malformed request payload: close
  }
  if (DeadlineForced()) {
    return SendDeadlineExceeded(
        conn, "serve.admission: deadline expired before admission");
  }
  if (config->has_deadline()) {
    // Deadlined requests may wait for a slot — but only until their
    // deadline, which they then report as kDeadlineExceeded.
    const int acquired = request_slots_.AcquireFor(
        options_.max_inflight_requests,
        [this] {
          return stopping_.load(std::memory_order_acquire) ||
                 draining_.load(std::memory_order_acquire);
        },
        config->deadline);
    if (acquired == exec::AdmissionController::kStopped) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.busy_shed;
      }
      Count("serve.busy", 1);
      (void)SendFrame(conn, Opcode::kBusy, 0, {});
      return false;  // shutting down or draining
    }
    if (acquired == exec::AdmissionController::kTimedOut) {
      return SendDeadlineExceeded(
          conn,
          "serve.admission: deadline expired after waiting " +
              std::to_string(config->deadline_ms) +
              "ms for a request slot");
    }
  } else if (request_slots_.TryAcquire(options_.max_inflight_requests) < 0) {
    // Queue-depth shedding: without a deadline the daemon answers BUSY
    // immediately instead of queueing unbounded work.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.busy_shed;
    }
    Count("serve.busy", 1);
    return SendFrame(conn, Opcode::kBusy, 0, {});
  }
  SlotReturn slot(&request_slots_, options_.metrics);
  obs::SetGauge(options_.metrics, "serve.inflight_requests",
                request_slots_.inflight());
  Stopwatch watch;

  const bool from_file = header.opcode == Opcode::kParseFile;
  const bool stream = (header.flags & kFlagStream) != 0;
  const bool want_quarantine = (header.flags & kFlagQuarantine) != 0;
  const std::string path(from_file ? config->rest : std::string_view());

  // Resolve dialect/header/types from the input head, exactly like
  // parparaw::Reader, so responses are bit-identical to a local read.
  LoadResult resolution;
  std::string file_sample;
  std::string_view sample = config->rest;
  bool truncated = false;
  if (from_file) {
    FileChunkReader head;
    const Status opened = head.Open(path);
    if (!opened.ok()) {
      return SendError(conn, opened.WithContext("serve.open"));
    }
    if (head.file_size() > 0) {
      bool eof = false;
      const Status sampled = head.ReadNext(
          std::min<size_t>(static_cast<size_t>(head.file_size()), 256 * 1024),
          &file_sample, &eof);
      if (!sampled.ok()) {
        return SendError(conn, sampled.WithContext("serve.sample"));
      }
    }
    sample = file_sample;
    truncated = static_cast<int64_t>(file_sample.size()) < head.file_size();
  }
  Result<ParseOptions> base = BulkLoader::ResolveBaseOptions(
      sample, truncated, config->load, &resolution);
  if (!base.ok()) {
    return SendError(conn, base.status().WithContext("serve.resolve"));
  }

  exec::ExecOptions exec_options;
  exec_options.base = std::move(*base);
  // Per-request adaptive planning happens inside the executor (each
  // request's stream is sampled and planned independently); pointing the
  // request's options at the server registry makes the plan.* counters —
  // alongside parse.*/exec.* — visible through the kStats opcode.
  exec_options.base.metrics = options_.metrics;
  exec_options.partition_size = config->load.partition_size;
  // All requests draw from ONE admission controller; this limit caps the
  // daemon-wide resident partitions, not this request's.
  exec_options.max_inflight_partitions = exec_partition_limit_;
  // The executor races the same absolute deadline: expiry at any
  // partition hand-off or admission wait fails the ingest with
  // kDeadlineExceeded and returns the request's slots.
  exec_options.deadline = config->deadline;

  exec::PipelineExecutor executor(&exec_admission_);
  {
    std::lock_guard<std::mutex> lock(conn->exec_mu);
    conn->active_exec = &executor;
  }
  RequestWatchdog watchdog(conn->sock.fd(), &executor,
                           options_.watchdog_interval_ms, config->deadline);

  bool send_failed = false;
  uint64_t parts = 0;
  Result<exec::IngestResult> ingested = [&]() -> Result<exec::IngestResult> {
    if (!stream) {
      return from_file ? executor.IngestFile(path, exec_options)
                       : executor.IngestBuffer(config->rest, exec_options);
    }
    const exec::PartitionSink sink = [&](Table&& part) -> Status {
      PARPARAW_ASSIGN_OR_RETURN(const std::string ipc,
                                SerializeTable(part));
      if (!SendFrame(conn, Opcode::kTablePart, 0, ipc)) {
        send_failed = true;
        return Status::IoError("client went away mid-stream");
      }
      ++parts;
      return Status::OK();
    };
    return from_file ? executor.StreamFile(path, exec_options, sink)
                     : executor.StreamBuffer(config->rest, exec_options, sink);
  }();

  watchdog.Finish();
  {
    std::lock_guard<std::mutex> lock(conn->exec_mu);
    conn->active_exec = nullptr;
  }
  obs::RecordUs(options_.metrics, "serve.request_us",
                watch.ElapsedMillis() * 1e3);

  if (watchdog.disconnected() || send_failed) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cancelled_disconnects;
    }
    Count("serve.cancelled_disconnects", 1);
    return false;  // peer is gone; nothing to answer
  }
  if (!ingested.ok()) {
    // Deadline expiry surfaces two ways: typed from the executor's own
    // checks, or as kCancelled when the watchdog fired Cancel(). Both
    // are the same event and answer the same typed error; the
    // connection stays usable.
    const StatusCode code = ingested.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        (watchdog.deadline_fired() && code == StatusCode::kCancelled)) {
      return SendDeadlineExceeded(
          conn, "serve.parse: " + std::string(ingested.status().message()));
    }
    return SendError(conn, ingested.status().WithContext("serve.parse"));
  }

  const uint8_t response_flags = want_quarantine ? kFlagQuarantine : 0;
  if (stream) {
    std::string end_payload;
    AppendU64Le(parts, &end_payload);
    if (!SendFrame(conn, Opcode::kEnd, response_flags, end_payload)) {
      return false;
    }
  } else {
    const Result<std::string> ipc = SerializeTable(ingested->table);
    if (!ipc.ok()) {
      return SendError(conn, ipc.status().WithContext("serve.serialize"));
    }
    if (!SendFrame(conn, Opcode::kOkTable, response_flags, *ipc)) {
      return false;
    }
  }
  if (want_quarantine) {
    const Result<std::string> ppqr =
        SerializeQuarantine(ingested->quarantine);
    if (!ppqr.ok()) {
      return SendError(conn, ppqr.status().WithContext("serve.serialize"));
    }
    if (!SendFrame(conn, Opcode::kQuarantine, 0, *ppqr)) return false;
  }
  CountDrained();
  return true;
}

bool Server::HandleQuery(Connection* conn, const FrameHeader& header,
                         std::string_view payload) {
  const auto config = ResolveRequest(payload, options_);
  Result<PredicateBlock> block =
      config.ok() ? DecodePredicateBlock(config->rest)
                  : Result<PredicateBlock>(config.status());
  if (!block.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    Count("serve.protocol_errors", 1);
    (void)SendError(conn, block.status());
    return false;
  }
  if (DeadlineForced()) {
    return SendDeadlineExceeded(
        conn, "serve.admission: deadline expired before admission");
  }
  if (config->has_deadline()) {
    const int acquired = request_slots_.AcquireFor(
        options_.max_inflight_requests,
        [this] {
          return stopping_.load(std::memory_order_acquire) ||
                 draining_.load(std::memory_order_acquire);
        },
        config->deadline);
    if (acquired == exec::AdmissionController::kStopped) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.busy_shed;
      }
      Count("serve.busy", 1);
      (void)SendFrame(conn, Opcode::kBusy, 0, {});
      return false;
    }
    if (acquired == exec::AdmissionController::kTimedOut) {
      return SendDeadlineExceeded(
          conn,
          "serve.admission: deadline expired after waiting " +
              std::to_string(config->deadline_ms) +
              "ms for a request slot");
    }
  } else if (request_slots_.TryAcquire(options_.max_inflight_requests) < 0) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.busy_shed;
    }
    Count("serve.busy", 1);
    return SendFrame(conn, Opcode::kBusy, 0, {});
  }
  SlotReturn slot(&request_slots_, options_.metrics);
  obs::SetGauge(options_.metrics, "serve.inflight_requests",
                request_slots_.inflight());
  Stopwatch watch;

  const std::string_view rest = config->rest.substr(block->encoded_size);
  std::string file_bytes;
  std::string_view data = rest;
  if (header.opcode == Opcode::kQueryFile) {
    Result<std::string> read = ReadFileToString(std::string(rest));
    if (!read.ok()) {
      return SendError(conn, read.status().WithContext("serve.open"));
    }
    file_bytes = std::move(*read);
    data = file_bytes;
  }

  // Pushdown needs a schema: resolve one from the head (types inferred)
  // with the same machinery as the parse path, then parse only the
  // predicate column in phase 1 (query/pushdown.h).
  LoadResult resolution;
  Result<ParseOptions> base = BulkLoader::ResolveBaseOptions(
      data, /*sample_truncated=*/false, config->load, &resolution);
  if (!base.ok()) {
    return SendError(conn, base.status().WithContext("serve.resolve"));
  }
  base->column_count_policy = ColumnCountPolicy::kRobust;
  if (block->predicate.column < 0 ||
      block->predicate.column >= base->schema.num_fields()) {
    return SendError(conn, Status::Invalid(
                               "predicate column " +
                               std::to_string(block->predicate.column) +
                               " out of range for " +
                               std::to_string(base->schema.num_fields()) +
                               " resolved columns"));
  }

  PushdownStats stats;
  Result<ParseOutput> output =
      ParseWithPushdown(data, *base, block->predicate, &stats);
  obs::RecordUs(options_.metrics, "serve.request_us",
                watch.ElapsedMillis() * 1e3);
  if (!output.ok()) {
    return SendError(conn, output.status().WithContext("serve.query"));
  }
  // Queries run on the pushdown path (no executor), so the deadline is
  // enforced at completion: a result computed past its deadline is
  // answered as expired, never returned late as success.
  if (config->has_deadline() &&
      std::chrono::steady_clock::now() >= config->deadline) {
    return SendDeadlineExceeded(
        conn, "serve.query: deadline expired during pushdown");
  }
  const Result<std::string> ipc = SerializeTable(output->table);
  if (!ipc.ok()) {
    return SendError(conn, ipc.status().WithContext("serve.serialize"));
  }
  std::string response;
  AppendU64Le(static_cast<uint64_t>(stats.records_scanned), &response);
  AppendU64Le(static_cast<uint64_t>(stats.records_selected), &response);
  response.append(*ipc);
  if (!SendFrame(conn, Opcode::kOkQuery, 0, response)) return false;
  CountDrained();
  return true;
}

}  // namespace serve
}  // namespace parparaw
