#include "serve/client.h"

#include <utility>

#include "columnar/ipc.h"

namespace parparaw {
namespace serve {

namespace {

uint64_t ReadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint8_t RequestFlags(const RequestOptions& options) {
  uint8_t flags = 0;
  if (options.stream) flags |= kFlagStream;
  if (options.want_quarantine) flags |= kFlagQuarantine;
  return flags;
}

RequestHeader ToHeader(const RequestOptions& options) {
  RequestHeader header;
  header.error_policy = options.error_policy;
  header.header = options.header;
  header.memory_budget = options.memory_budget;
  header.partition_size = options.partition_size;
  header.deadline_ms = options.deadline_ms;
  return header;
}

}  // namespace

Result<Client> Client::Connect(uint16_t port, int connect_timeout_ms) {
  PARPARAW_ASSIGN_OR_RETURN(Socket sock,
                            ConnectLoopback(port, connect_timeout_ms));
  return Client(std::move(sock));
}

Status Client::Transport(Status status) {
  if (!status.ok()) last_error_was_transport_ = true;
  return status;
}

Status Client::SendFrame(Opcode opcode, uint8_t flags,
                         std::string_view payload) {
  last_error_was_transport_ = false;
  if (checksums_) flags |= kFlagChecksum;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size() + kFrameChecksumSize);
  AppendFrame(opcode, flags, payload, &frame);
  return Transport(SendAll(sock_.fd(), frame, io_timeout_ms_));
}

Status Client::SendRequest(Opcode opcode, uint8_t flags,
                           std::string_view body,
                           const RequestOptions& options) {
  std::string payload = EncodeRequestHeader(ToHeader(options));
  payload.append(body);
  return SendFrame(opcode, flags, payload);
}

Result<Client::Frame> Client::ReadFrame() {
  std::string header_bytes;
  PARPARAW_RETURN_NOT_OK(Transport(RecvExact(
      sock_.fd(), kFrameHeaderSize, &header_bytes, nullptr, io_timeout_ms_)));
  Frame frame;
  {
    Result<FrameHeader> decoded =
        DecodeFrameHeader(header_bytes, kDefaultMaxPayload);
    if (!decoded.ok()) return Transport(decoded.status());
    frame.header = *decoded;
  }
  if (frame.header.payload_size > 0) {
    PARPARAW_RETURN_NOT_OK(Transport(RecvExact(
        sock_.fd(), static_cast<size_t>(frame.header.payload_size),
        &frame.payload, nullptr, io_timeout_ms_)));
  }
  if ((frame.header.flags & kFlagChecksum) != 0) {
    std::string trailer;
    PARPARAW_RETURN_NOT_OK(Transport(RecvExact(
        sock_.fd(), kFrameChecksumSize, &trailer, nullptr, io_timeout_ms_)));
    // A mismatch means the stream carried a flipped bit: nothing after
    // this frame can be trusted, so it is a transport error (the caller
    // must reconnect), never a silently different table.
    PARPARAW_RETURN_NOT_OK(Transport(
        VerifyFrameChecksum(frame.payload, trailer)));
  }
  return frame;
}

Status Client::Ping(std::string_view token) {
  PARPARAW_RETURN_NOT_OK(SendFrame(Opcode::kPing, 0, token));
  PARPARAW_ASSIGN_OR_RETURN(const Frame reply, ReadFrame());
  if (reply.header.opcode != Opcode::kPong) {
    return Status::IoError("expected kPong, got opcode " +
                           std::to_string(
                               static_cast<int>(reply.header.opcode)));
  }
  if (reply.payload != token) {
    return Status::IoError("ping payload did not echo back");
  }
  return Status::OK();
}

Result<ParseReply> Client::Parse(std::string_view data,
                                 const RequestOptions& options) {
  return DoParse(Opcode::kParseBuffer, data, options);
}

Result<ParseReply> Client::ParseFile(const std::string& path,
                                     const RequestOptions& options) {
  return DoParse(Opcode::kParseFile, path, options);
}

Result<ParseReply> Client::DoParse(Opcode opcode, std::string_view body,
                                   const RequestOptions& options) {
  PARPARAW_RETURN_NOT_OK(
      SendRequest(opcode, RequestFlags(options), body, options));
  ParseReply reply;
  bool expect_quarantine = false;
  while (true) {
    PARPARAW_ASSIGN_OR_RETURN(const Frame frame, ReadFrame());
    switch (frame.header.opcode) {
      case Opcode::kBusy:
        reply.busy = true;
        return reply;
      case Opcode::kError:
        return DecodeErrorPayload(frame.payload);
      case Opcode::kOkTable: {
        PARPARAW_ASSIGN_OR_RETURN(reply.table,
                                  DeserializeTable(frame.payload));
        if ((frame.header.flags & kFlagQuarantine) == 0) return reply;
        expect_quarantine = true;
        break;
      }
      case Opcode::kTablePart: {
        PARPARAW_ASSIGN_OR_RETURN(Table part,
                                  DeserializeTable(frame.payload));
        reply.parts.push_back(std::move(part));
        break;
      }
      case Opcode::kEnd: {
        if (frame.payload.size() != 8) {
          return Status::IoError("kEnd payload must be 8 bytes");
        }
        reply.parts_declared = ReadU64Le(frame.payload.data());
        if (reply.parts_declared != reply.parts.size()) {
          return Status::IoError(
              "stream declared " + std::to_string(reply.parts_declared) +
              " partitions but sent " + std::to_string(reply.parts.size()));
        }
        if ((frame.header.flags & kFlagQuarantine) == 0) return reply;
        expect_quarantine = true;
        break;
      }
      case Opcode::kQuarantine: {
        if (!expect_quarantine) {
          return Status::IoError("unexpected kQuarantine frame");
        }
        PARPARAW_ASSIGN_OR_RETURN(reply.quarantine,
                                  DeserializeQuarantine(frame.payload));
        reply.has_quarantine = true;
        return reply;
      }
      default:
        return Status::IoError(
            "unexpected response opcode " +
            std::to_string(static_cast<int>(frame.header.opcode)));
    }
  }
}

Result<QueryReply> Client::Query(std::string_view data,
                                 const Predicate& predicate,
                                 const RequestOptions& options) {
  return DoQuery(Opcode::kQueryBuffer, data, predicate, options);
}

Result<QueryReply> Client::QueryFile(const std::string& path,
                                     const Predicate& predicate,
                                     const RequestOptions& options) {
  return DoQuery(Opcode::kQueryFile, path, predicate, options);
}

Result<QueryReply> Client::DoQuery(Opcode opcode, std::string_view body,
                                   const Predicate& predicate,
                                   const RequestOptions& options) {
  std::string request = EncodePredicateBlock(predicate);
  request.append(body);
  PARPARAW_RETURN_NOT_OK(SendRequest(opcode, 0, request, options));
  PARPARAW_ASSIGN_OR_RETURN(const Frame frame, ReadFrame());
  QueryReply reply;
  switch (frame.header.opcode) {
    case Opcode::kBusy:
      reply.busy = true;
      return reply;
    case Opcode::kError:
      return DecodeErrorPayload(frame.payload);
    case Opcode::kOkQuery: {
      if (frame.payload.size() < 16) {
        return Status::IoError("kOkQuery payload too small");
      }
      reply.records_scanned =
          static_cast<int64_t>(ReadU64Le(frame.payload.data()));
      reply.records_selected =
          static_cast<int64_t>(ReadU64Le(frame.payload.data() + 8));
      PARPARAW_ASSIGN_OR_RETURN(
          reply.table,
          DeserializeTable(
              std::string_view(frame.payload).substr(16)));
      return reply;
    }
    default:
      return Status::IoError(
          "unexpected response opcode " +
          std::to_string(static_cast<int>(frame.header.opcode)));
  }
}

Result<std::string> Client::Stats() {
  PARPARAW_RETURN_NOT_OK(SendFrame(Opcode::kStats, 0, {}));
  PARPARAW_ASSIGN_OR_RETURN(const Frame reply, ReadFrame());
  if (reply.header.opcode == Opcode::kError) {
    return DecodeErrorPayload(reply.payload);
  }
  if (reply.header.opcode != Opcode::kStatsText) {
    return Status::IoError("expected kStatsText");
  }
  return reply.payload;
}

}  // namespace serve
}  // namespace parparaw
