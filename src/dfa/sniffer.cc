#include "dfa/sniffer.h"

#include <algorithm>
#include <map>

#include "baseline/row_buffer.h"
#include "convert/inference.h"
#include "dialect/dialect.h"

namespace parparaw {

namespace {

struct Candidate {
  DsvOptions options;
  RecordBuffer records;
  uint32_t modal_columns = 0;
  double consistency = 0;
  int64_t num_records = 0;
};

// Parses the sample with a candidate format and scores column-count
// consistency.
Status EvaluateFormat(std::string_view sample, const Format& format,
                      Candidate* candidate) {
  AppendParsedRange(format,
                    reinterpret_cast<const uint8_t*>(sample.data()), 0,
                    sample.size(), /*emit_trailing=*/true,
                    &candidate->records);
  candidate->num_records = candidate->records.num_records();
  if (candidate->num_records == 0) return Status::OK();
  std::map<int64_t, int64_t> histogram;
  for (int64_t r = 0; r < candidate->num_records; ++r) {
    ++histogram[candidate->records.FieldCount(r)];
  }
  int64_t best_count = 0;
  for (const auto& [columns, count] : histogram) {
    if (count > best_count ||
        (count == best_count &&
         static_cast<uint32_t>(columns) > candidate->modal_columns)) {
      best_count = count;
      candidate->modal_columns = static_cast<uint32_t>(columns);
    }
  }
  candidate->consistency =
      static_cast<double>(best_count) / candidate->num_records;
  return Status::OK();
}

Status Evaluate(std::string_view sample, Candidate* candidate) {
  PARPARAW_ASSIGN_OR_RETURN(Format format, DsvFormat(candidate->options));
  return EvaluateFormat(sample, format, candidate);
}

// True when `sv`'s classification is a concrete non-string type.
bool LooksTyped(InferredKind kind) {
  return kind == InferredKind::kInt64 || kind == InferredKind::kFloat64 ||
         kind == InferredKind::kDate || kind == InferredKind::kTimestamp ||
         kind == InferredKind::kBool;
}

}  // namespace

Result<SniffResult> SniffDsvFormat(std::string_view sample, int max_rows) {
  if (sample.empty()) {
    return Status::Invalid("cannot sniff an empty sample");
  }
  // Cap the sample at max_rows raw lines (a quoted newline may split a
  // record, which only costs the header check a row).
  int lines = 0;
  size_t end = sample.size();
  for (size_t i = 0; i < sample.size(); ++i) {
    if (sample[i] == '\n' && ++lines >= max_rows) {
      end = i + 1;
      break;
    }
  }
  sample = sample.substr(0, end);

  // CRLF detection over raw lines.
  int64_t crlf = 0;
  int64_t lf = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    if (sample[i] == '\n') {
      ++lf;
      if (i > 0 && sample[i - 1] == '\r') ++crlf;
    }
  }
  const bool use_crlf = lf > 0 && crlf * 2 > lf;

  std::vector<Candidate> candidates;
  std::vector<std::optional<dialect::DialectSpec>> candidate_specs;
  for (uint8_t delimiter : {',', '\t', ';', '|', ' '}) {
    for (uint8_t quote : {'"', '\0'}) {
      Candidate candidate;
      candidate.options.field_delimiter = delimiter;
      candidate.options.quote = quote;
      candidate.options.strict_quotes = false;  // lenient while sniffing
      candidate.options.ignore_carriage_return = use_crlf;
      PARPARAW_RETURN_NOT_OK(Evaluate(sample, &candidate));
      candidates.push_back(std::move(candidate));
      candidate_specs.emplace_back();
    }
  }

  // User-registered dialects compete on the same score. Only dialects
  // within the register budget are scored (the packed format drives the
  // same reference walk as the DSV candidates); a spec that no longer
  // compiles is skipped rather than failing the sniff.
  for (const dialect::DialectSpec& spec : dialect::RegisteredDialects()) {
    Result<dialect::CompiledDialect> compiled = dialect::Compile(spec);
    if (!compiled.ok() || !compiled->within_budget) continue;
    Candidate candidate;
    candidate.options.field_delimiter = spec.field_delimiter != 0
                                            ? spec.field_delimiter
                                            : spec.record_delimiter_final();
    candidate.options.record_delimiter = spec.record_delimiter_final();
    candidate.options.quote = spec.quote;
    candidate.options.comment = spec.comment;
    candidate.options.skip_empty_lines = spec.skip_empty_lines;
    candidate.options.strict_quotes = spec.strict_quotes;
    PARPARAW_RETURN_NOT_OK(
        EvaluateFormat(sample, compiled->format, &candidate));
    candidates.push_back(std::move(candidate));
    candidate_specs.emplace_back(spec);
  }

  // Pick the most consistent multi-column dialect; prefer a registered
  // dialect on ties (explicit user intent), then quote support (a
  // superset for well-formed data) and more columns.
  const Candidate* best = nullptr;
  size_t best_index = 0;
  auto score = [](const Candidate& c) {
    const double multi_column = c.modal_columns > 1 ? 1.0 : 0.05;
    return c.consistency * multi_column;
  };
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& candidate = candidates[i];
    if (candidate.num_records == 0) continue;
    const bool wins =
        best == nullptr || score(candidate) > score(*best) ||
        (score(candidate) == score(*best) &&
         ((candidate_specs[i].has_value() &&
           !candidate_specs[best_index].has_value()) ||
          (candidate_specs[i].has_value() ==
               candidate_specs[best_index].has_value() &&
           candidate.modal_columns > best->modal_columns)));
    if (wins) {
      best = &candidate;
      best_index = i;
    }
  }
  if (best == nullptr) {
    return Status::ParseError("sample contains no records");
  }

  SniffResult result;
  result.options = best->options;
  result.dialect_spec = candidate_specs[best_index];
  result.num_columns = best->modal_columns;
  result.confidence = best->consistency;

  // Header heuristic: some column whose body is typed but whose first row
  // is not.
  if (best->num_records >= 2) {
    for (uint32_t j = 0; j < best->modal_columns && !result.has_header;
         ++j) {
      if (j >= static_cast<uint32_t>(best->records.FieldCount(0))) break;
      const InferredKind head = ClassifyField(
          best->records.FieldValue(best->records.FirstField(0) + j));
      if (head != InferredKind::kString) continue;
      InferredKind body = InferredKind::kEmpty;
      for (int64_t r = 1; r < best->num_records; ++r) {
        if (j < static_cast<uint32_t>(best->records.FieldCount(r))) {
          body = Join(body, ClassifyField(best->records.FieldValue(
                                best->records.FirstField(r) + j)));
        }
      }
      if (LooksTyped(body)) result.has_header = true;
    }
  }
  return result;
}

}  // namespace parparaw
