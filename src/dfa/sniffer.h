#ifndef PARPARAW_DFA_SNIFFER_H_
#define PARPARAW_DFA_SNIFFER_H_

#include <optional>
#include <string_view>

#include "dfa/formats.h"
#include "dialect/spec.h"
#include "util/result.h"

namespace parparaw {

/// Outcome of format sniffing.
struct SniffResult {
  DsvOptions options;
  /// Engaged when a user-registered dialect (dialect::RegisterDialect)
  /// out-scored every built-in DSV candidate on the sample; `options` then
  /// mirrors the dialect's delimiters for legacy consumers. Registered
  /// dialects over the SIMD register budget are not scored.
  std::optional<dialect::DialectSpec> dialect_spec;
  /// Records observed per sampled candidate parse.
  uint32_t num_columns = 0;
  /// True when the first row looks like a header (all-string row over a
  /// body that parses to non-string types).
  bool has_header = false;
  /// Confidence in [0, 1]: column-count consistency of the winning
  /// delimiter over the sample.
  double confidence = 0;
};

/// \brief Dialect detection from a raw sample (the convenience CSV readers
/// like pandas/cuDF provide).
///
/// Tries the common delimiters (',', '\t', ';', '|', ' ') with and without
/// quote support over the first rows of `sample`, scores each candidate by
/// how consistent the per-record column counts are (and how many columns
/// it yields), and checks whether the first row is a header by comparing
/// inferred types of row 0 against the rest. Carriage-return tolerance is
/// switched on when CRLF line ends dominate.
Result<SniffResult> SniffDsvFormat(std::string_view sample,
                                   int max_rows = 64);

}  // namespace parparaw

#endif  // PARPARAW_DFA_SNIFFER_H_
