#include "dfa/dfa.h"

#include <utility>

namespace parparaw {

int DfaBuilder::AddState(std::string name, bool accepting) {
  state_names_.push_back(std::move(name));
  accepting_.push_back(accepting);
  for (auto& group : transitions_) group.emplace_back();
  default_transitions_.emplace_back();
  return static_cast<int>(state_names_.size()) - 1;
}

int DfaBuilder::AddSymbol(uint8_t symbol) {
  symbols_.push_back(symbol);
  group_of_symbol_.push_back(num_groups_);
  transitions_.emplace_back(state_names_.size());
  return num_groups_++;
}

void DfaBuilder::AddSymbolToGroup(uint8_t symbol, int group) {
  symbols_.push_back(symbol);
  group_of_symbol_.push_back(group);
}

void DfaBuilder::SetTransition(int from_state, int group, int to_state,
                               uint8_t flags) {
  transitions_[group][from_state] = Transition{to_state, flags};
}

void DfaBuilder::SetDefaultTransition(int from_state, int to_state,
                                      uint8_t flags) {
  default_transitions_[from_state] = Transition{to_state, flags};
}

Result<Dfa> DfaBuilder::Build() const {
  const int num_states = static_cast<int>(state_names_.size());
  if (num_states == 0) {
    return Status::Invalid("DFA requires at least one state");
  }
  if (num_states > kMaxDfaStates) {
    return Status::Invalid("DFA supports at most 16 states");
  }
  if (start_state_ < 0 || start_state_ >= num_states) {
    return Status::Invalid("start state out of range");
  }
  if (symbols_.size() > 16) {
    return Status::Invalid("DFA supports at most 16 distinct symbols");
  }
  for (size_t i = 0; i < symbols_.size(); ++i) {
    for (size_t j = i + 1; j < symbols_.size(); ++j) {
      if (symbols_[i] == symbols_[j]) {
        return Status::Invalid("duplicate symbol in DFA definition");
      }
    }
  }

  Dfa dfa;
  dfa.num_states_ = num_states;
  dfa.start_state_ = start_state_;
  dfa.invalid_state_ = invalid_state_;
  dfa.num_groups_ = num_groups_ + 1;  // + catch-all
  dfa.state_names_ = state_names_;
  dfa.state_names_.shrink_to_fit();
  dfa.accepting_ = accepting_;
  dfa.matcher_ = SwarMatcher(symbols_);
  // matcher index -> group; the matcher's catch-all maps to the catch-all
  // group.
  dfa.group_of_symbol_ = group_of_symbol_;
  dfa.group_of_symbol_.push_back(num_groups_);

  dfa.rows_.assign(dfa.num_groups_, 0);
  dfa.flags_.assign(dfa.num_groups_ * kMaxDfaStates, 0);
  for (int g = 0; g < dfa.num_groups_; ++g) {
    for (int s = 0; s < num_states; ++s) {
      const Transition& t = (g == num_groups_) ? default_transitions_[s]
                                               : transitions_[g][s];
      if (t.to_state < 0 || t.to_state >= num_states) {
        return Status::Invalid("missing transition for state '" +
                               state_names_[s] + "', symbol group " +
                               std::to_string(g));
      }
      dfa.rows_[g] |= static_cast<Dfa::Row>(t.to_state) << (s * 4);
      dfa.flags_[g * kMaxDfaStates + s] = t.flags;
    }
  }
  return dfa;
}

}  // namespace parparaw
