#ifndef PARPARAW_DFA_FORMATS_H_
#define PARPARAW_DFA_FORMATS_H_

#include <cstdint>
#include <string>

#include "dfa/dfa.h"
#include "util/result.h"

namespace parparaw {

/// \brief A parsing format: the DFA plus the metadata the pipeline needs to
/// finish the last record and to materialise terminators.
struct Format {
  Dfa dfa;
  /// The canonical record-delimiter symbol (for carry-over splitting and
  /// synthetic termination of a trailing record).
  uint8_t record_delimiter = '\n';
  /// The canonical field-delimiter symbol.
  uint8_t field_delimiter = ',';
  /// Bitmask over states: bit s set means ending the input in state s
  /// leaves an unterminated trailing record that the parser must still
  /// emit (e.g. FLD/EOF/ESC for RFC 4180, but not EOR).
  uint16_t mid_record_state_mask = 0;
  std::string name;

  bool IsMidRecordState(int state) const {
    return (mid_record_state_mask >> state) & 1;
  }
};

/// Options for the configurable delimiter-separated-values format family.
struct DsvOptions {
  uint8_t field_delimiter = ',';
  uint8_t record_delimiter = '\n';
  /// Quote character enclosing fields that may contain delimiters;
  /// 0 disables quoting support.
  uint8_t quote = '"';
  /// Line-comment marker recognised at the start of a record ('#' for many
  /// log formats); 0 disables comments.
  uint8_t comment = 0;
  /// When true, a record delimiter immediately following another record
  /// delimiter is consumed without emitting an (empty) record.
  bool skip_empty_lines = false;
  /// When true, a quote inside an unquoted field transitions to the invalid
  /// state (strict RFC 4180); otherwise it is treated as field data.
  bool strict_quotes = true;
  /// When true, carriage returns outside quoted fields are consumed as
  /// control symbols, so CRLF-terminated records parse cleanly ('\r'
  /// inside quotes remains data).
  bool ignore_carriage_return = false;
  /// Escape character active inside quoted fields (e.g. '\\'): the symbol
  /// after it is taken literally. 0 disables escape handling.
  uint8_t escape = 0;
};

/// The exact six-state RFC 4180 DFA of the paper (Fig. 2 / Table 1):
/// states EOR, ENC, FLD, EOF, ESC, INV; symbol groups '\n', '"', ',', *.
Result<Format> Rfc4180Format();

/// A configurable DSV format built from DsvOptions (TSV, pipe-separated,
/// CSV-with-comments, ...).
Result<Format> DsvFormat(const DsvOptions& options);

/// W3C Extended Log Format: space-delimited fields, '#' directive lines,
/// double-quoted strings.
Result<Format> ExtendedLogFormat();

/// State indices of the RFC 4180 DFA, in the column order of Table 1.
namespace rfc4180 {
inline constexpr int kEor = 0;  ///< Just consumed a record delimiter (start).
inline constexpr int kEnc = 1;  ///< Inside an enclosed (quoted) field.
inline constexpr int kFld = 2;  ///< Inside an unquoted field.
inline constexpr int kEof = 3;  ///< Just consumed a field delimiter.
inline constexpr int kEsc = 4;  ///< Just saw a quote inside a quoted field.
inline constexpr int kInv = 5;  ///< Invalid input trap state.
}  // namespace rfc4180

}  // namespace parparaw

#endif  // PARPARAW_DFA_FORMATS_H_
