#include "dfa/formats.h"

namespace parparaw {

namespace {

constexpr uint8_t kFlagsRec = kSymbolRecordDelimiter | kSymbolControl;
constexpr uint8_t kFlagsFld = kSymbolFieldDelimiter | kSymbolControl;
constexpr uint8_t kFlagsCtl = kSymbolControl;
constexpr uint8_t kFlagsDat = kSymbolData;

}  // namespace

Result<Format> Rfc4180Format() {
  using rfc4180::kEnc;
  using rfc4180::kEof;
  using rfc4180::kEor;
  using rfc4180::kEsc;
  using rfc4180::kFld;
  using rfc4180::kInv;
  DfaBuilder b;
  // State order matches Table 1's columns; verified by constants in
  // formats.h.
  b.AddState("EOR", /*accepting=*/true);
  b.AddState("ENC", /*accepting=*/false);
  b.AddState("FLD", /*accepting=*/true);
  b.AddState("EOF", /*accepting=*/true);
  b.AddState("ESC", /*accepting=*/true);
  b.AddState("INV", /*accepting=*/false);
  b.SetStartState(kEor);
  b.SetInvalidState(kInv);

  const int g_nl = b.AddSymbol('\n');
  const int g_quote = b.AddSymbol('"');
  const int g_comma = b.AddSymbol(',');

  // Row '\n' of Table 1: EOR ENC EOR EOR EOR INV.
  b.SetTransition(kEor, g_nl, kEor, kFlagsRec);
  b.SetTransition(kEnc, g_nl, kEnc, kFlagsDat);
  b.SetTransition(kFld, g_nl, kEor, kFlagsRec);
  b.SetTransition(kEof, g_nl, kEor, kFlagsRec);
  b.SetTransition(kEsc, g_nl, kEor, kFlagsRec);
  b.SetTransition(kInv, g_nl, kInv, kFlagsCtl);

  // Row '"' of Table 1: ENC ESC INV ENC ENC INV.
  b.SetTransition(kEor, g_quote, kEnc, kFlagsCtl);   // opening quote
  b.SetTransition(kEnc, g_quote, kEsc, kFlagsCtl);   // possibly closing quote
  b.SetTransition(kFld, g_quote, kInv, kFlagsCtl);   // quote in unquoted field
  b.SetTransition(kEof, g_quote, kEnc, kFlagsCtl);   // opening quote
  b.SetTransition(kEsc, g_quote, kEnc, kFlagsDat);   // "" escape: literal quote
  b.SetTransition(kInv, g_quote, kInv, kFlagsCtl);

  // Row ',' of Table 1: EOF ENC EOF EOF EOF INV.
  b.SetTransition(kEor, g_comma, kEof, kFlagsFld);
  b.SetTransition(kEnc, g_comma, kEnc, kFlagsDat);
  b.SetTransition(kFld, g_comma, kEof, kFlagsFld);
  b.SetTransition(kEof, g_comma, kEof, kFlagsFld);
  b.SetTransition(kEsc, g_comma, kEof, kFlagsFld);
  b.SetTransition(kInv, g_comma, kInv, kFlagsCtl);

  // Row '*' of Table 1: FLD ENC FLD FLD INV INV.
  b.SetDefaultTransition(kEor, kFld, kFlagsDat);
  b.SetDefaultTransition(kEnc, kEnc, kFlagsDat);
  b.SetDefaultTransition(kFld, kFld, kFlagsDat);
  b.SetDefaultTransition(kEof, kFld, kFlagsDat);
  b.SetDefaultTransition(kEsc, kInv, kFlagsCtl);  // garbage after closing quote
  b.SetDefaultTransition(kInv, kInv, kFlagsCtl);

  PARPARAW_ASSIGN_OR_RETURN(Dfa dfa, b.Build());
  Format format;
  format.dfa = std::move(dfa);
  format.record_delimiter = '\n';
  format.field_delimiter = ',';
  format.mid_record_state_mask = static_cast<uint16_t>(
      (1u << kFld) | (1u << kEof) | (1u << kEsc) | (1u << kEnc));
  format.name = "rfc4180";
  return format;
}

Result<Format> DsvFormat(const DsvOptions& options) {
  if (options.field_delimiter == options.record_delimiter) {
    return Status::Invalid("field and record delimiter must differ");
  }
  const bool quoting = options.quote != 0;
  const bool comments = options.comment != 0;
  const bool escapes = quoting && options.escape != 0;
  const bool crlf = options.ignore_carriage_return;
  if (escapes &&
      (options.escape == options.quote ||
       options.escape == options.field_delimiter ||
       options.escape == options.record_delimiter ||
       (comments && options.escape == options.comment))) {
    return Status::Invalid("escape character collides with another symbol");
  }
  if (crlf && (options.record_delimiter == '\r' ||
               options.field_delimiter == '\r')) {
    return Status::Invalid("'\\r' cannot be both ignored and a delimiter");
  }

  DfaBuilder b;
  const int eor = b.AddState("EOR", true);
  const int fld = b.AddState("FLD", true);
  const int eof = b.AddState("EOF", true);
  const int enc = quoting ? b.AddState("ENC", false) : -1;
  const int esc = quoting ? b.AddState("ESC", true) : -1;
  const int cmt = comments ? b.AddState("CMT", true) : -1;
  const int bsl = escapes ? b.AddState("BSL", false) : -1;
  const int inv = b.AddState("INV", false);
  b.SetStartState(eor);
  b.SetInvalidState(inv);

  const int g_rec = b.AddSymbol(options.record_delimiter);
  const int g_fld = b.AddSymbol(options.field_delimiter);
  const int g_quote = quoting ? b.AddSymbol(options.quote) : -1;
  const int g_cmt = comments ? b.AddSymbol(options.comment) : -1;
  const int g_esc = escapes ? b.AddSymbol(options.escape) : -1;
  const int g_cr = crlf ? b.AddSymbol('\r') : -1;

  const uint8_t eor_on_rec = options.skip_empty_lines ? kFlagsCtl : kFlagsRec;

  // Record delimiter.
  b.SetTransition(eor, g_rec, eor, eor_on_rec);
  b.SetTransition(fld, g_rec, eor, kFlagsRec);
  b.SetTransition(eof, g_rec, eor, kFlagsRec);
  if (quoting) {
    b.SetTransition(enc, g_rec, enc, kFlagsDat);
    b.SetTransition(esc, g_rec, eor, kFlagsRec);
  }
  if (comments) {
    // End of a comment line: control only, no record is emitted.
    b.SetTransition(cmt, g_rec, eor, kFlagsCtl);
  }
  if (escapes) b.SetTransition(bsl, g_rec, enc, kFlagsDat);
  b.SetTransition(inv, g_rec, inv, kFlagsCtl);

  // Field delimiter.
  b.SetTransition(eor, g_fld, eof, kFlagsFld);
  b.SetTransition(fld, g_fld, eof, kFlagsFld);
  b.SetTransition(eof, g_fld, eof, kFlagsFld);
  if (quoting) {
    b.SetTransition(enc, g_fld, enc, kFlagsDat);
    b.SetTransition(esc, g_fld, eof, kFlagsFld);
  }
  if (comments) b.SetTransition(cmt, g_fld, cmt, kFlagsCtl);
  if (escapes) b.SetTransition(bsl, g_fld, enc, kFlagsDat);
  b.SetTransition(inv, g_fld, inv, kFlagsCtl);

  // Quote.
  if (quoting) {
    b.SetTransition(eor, g_quote, enc, kFlagsCtl);
    b.SetTransition(eof, g_quote, enc, kFlagsCtl);
    if (options.strict_quotes) {
      b.SetTransition(fld, g_quote, inv, kFlagsCtl);
    } else {
      b.SetTransition(fld, g_quote, fld, kFlagsDat);
    }
    b.SetTransition(enc, g_quote, esc, kFlagsCtl);
    b.SetTransition(esc, g_quote, enc, kFlagsDat);
    if (comments) b.SetTransition(cmt, g_quote, cmt, kFlagsCtl);
    if (escapes) b.SetTransition(bsl, g_quote, enc, kFlagsDat);
    b.SetTransition(inv, g_quote, inv, kFlagsCtl);
  }

  // Comment marker: starts a comment only at the beginning of a record.
  if (comments) {
    b.SetTransition(eor, g_cmt, cmt, kFlagsCtl);
    b.SetTransition(fld, g_cmt, fld, kFlagsDat);
    b.SetTransition(eof, g_cmt, fld, kFlagsDat);
    if (quoting) {
      b.SetTransition(enc, g_cmt, enc, kFlagsDat);
      b.SetTransition(esc, g_cmt, inv, kFlagsCtl);
    }
    if (escapes) b.SetTransition(bsl, g_cmt, enc, kFlagsDat);
    b.SetTransition(cmt, g_cmt, cmt, kFlagsCtl);
    b.SetTransition(inv, g_cmt, inv, kFlagsCtl);
  }

  // Escape character (active inside quoted fields only, §4.3-style
  // expressiveness beyond RFC 4180).
  if (escapes) {
    b.SetTransition(eor, g_esc, fld, kFlagsDat);
    b.SetTransition(fld, g_esc, fld, kFlagsDat);
    b.SetTransition(eof, g_esc, fld, kFlagsDat);
    b.SetTransition(enc, g_esc, bsl, kFlagsCtl);  // consume, escape next
    b.SetTransition(esc, g_esc, inv, kFlagsCtl);  // garbage after close
    b.SetTransition(bsl, g_esc, enc, kFlagsDat);  // escaped escape
    if (comments) b.SetTransition(cmt, g_esc, cmt, kFlagsCtl);
    b.SetTransition(inv, g_esc, inv, kFlagsCtl);
  }

  // Carriage return tolerance: '\r' outside quotes is consumed silently,
  // so CRLF-terminated records parse cleanly.
  if (crlf) {
    b.SetTransition(eor, g_cr, eor, kFlagsCtl);
    b.SetTransition(fld, g_cr, fld, kFlagsCtl);
    b.SetTransition(eof, g_cr, eof, kFlagsCtl);
    if (quoting) {
      b.SetTransition(enc, g_cr, enc, kFlagsDat);
      b.SetTransition(esc, g_cr, esc, kFlagsCtl);
    }
    if (escapes) b.SetTransition(bsl, g_cr, enc, kFlagsDat);
    if (comments) b.SetTransition(cmt, g_cr, cmt, kFlagsCtl);
    b.SetTransition(inv, g_cr, inv, kFlagsCtl);
  }

  // Catch-all.
  b.SetDefaultTransition(eor, fld, kFlagsDat);
  b.SetDefaultTransition(fld, fld, kFlagsDat);
  b.SetDefaultTransition(eof, fld, kFlagsDat);
  if (quoting) {
    b.SetDefaultTransition(enc, enc, kFlagsDat);
    b.SetDefaultTransition(esc, inv, kFlagsCtl);
  }
  if (comments) b.SetDefaultTransition(cmt, cmt, kFlagsCtl);
  if (escapes) b.SetDefaultTransition(bsl, enc, kFlagsDat);
  b.SetDefaultTransition(inv, inv, kFlagsCtl);

  PARPARAW_ASSIGN_OR_RETURN(Dfa dfa, b.Build());
  Format format;
  format.dfa = std::move(dfa);
  format.record_delimiter = options.record_delimiter;
  format.field_delimiter = options.field_delimiter;
  uint16_t mask = static_cast<uint16_t>((1u << fld) | (1u << eof));
  if (quoting) mask |= static_cast<uint16_t>((1u << enc) | (1u << esc));
  if (escapes) mask |= static_cast<uint16_t>(1u << bsl);
  format.mid_record_state_mask = mask;
  format.name = "dsv";
  return format;
}

Result<Format> ExtendedLogFormat() {
  DsvOptions options;
  options.field_delimiter = ' ';
  options.record_delimiter = '\n';
  options.quote = '"';
  options.comment = '#';
  options.skip_empty_lines = true;
  options.strict_quotes = false;
  PARPARAW_ASSIGN_OR_RETURN(Format format, DsvFormat(options));
  format.name = "extended-log";
  return format;
}

}  // namespace parparaw
