#ifndef PARPARAW_DFA_DFA_H_
#define PARPARAW_DFA_DFA_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dfa/state_vector.h"
#include "mfira/swar.h"
#include "util/result.h"
#include "util/status.h"

namespace parparaw {

/// Per-transition symbol classification, driving the three bitmap indexes
/// of §3.1 (record-delimiter, field-delimiter, control) and value
/// extraction. A symbol with no flags set is part of the field's value.
enum SymbolFlags : uint8_t {
  kSymbolData = 0,
  /// The symbol delimits a record (also implies control).
  kSymbolRecordDelimiter = 1 << 0,
  /// The symbol delimits a field. Combined with kSymbolControl (every
  /// delimited format) the byte is pure punctuation; WITHOUT
  /// kSymbolControl it is an *inclusive* boundary — the byte both ends
  /// the field and is the last byte of its value, the fixed-width shape
  /// compiled by src/dialect. Record delimiters have no inclusive form:
  /// they always carry kSymbolControl (the asymmetry keeps carry-over
  /// splitting and synthetic termination byte-exact).
  kSymbolFieldDelimiter = 1 << 1,
  /// The symbol is a control symbol (quote, escape, comment marker, ...)
  /// and not part of the field's value.
  kSymbolControl = 1 << 2,
};

/// \brief A deterministic finite automaton describing a delimiter-separated
/// format's parsing rules (§3.1, Fig. 2, Table 1).
///
/// The transition table is organised with one row per *symbol group*
/// (distinct symbols with identical transition behaviour are collapsed,
/// Table 1) and one 4-bit slot per state within a row, so that a thread can
/// fetch the whole row for a read symbol at once and transition all its DFA
/// instances with bit-field extracts. Symbols are mapped to groups by the
/// branchless SWAR matcher (Table 2). Instances are immutable after Build().
class Dfa {
 public:
  /// Row type: 16 states x 4 bits, the "coalesced" row of Table 1.
  using Row = uint64_t;

  /// An empty DFA (num_states() == 0); callers treat it as "use the RFC
  /// 4180 default". Populated instances come from DfaBuilder::Build().
  Dfa() = default;

  int num_states() const { return num_states_; }
  int start_state() const { return start_state_; }
  /// Number of symbol groups including the trailing catch-all group.
  int num_symbol_groups() const { return num_groups_; }
  /// The designated trap state for invalid inputs, or -1 when the format
  /// defines none.
  int invalid_state() const { return invalid_state_; }

  const std::string& state_name(int state) const {
    return state_names_[state];
  }

  /// Maps a raw input symbol to its symbol-group index (branchless SWAR).
  int SymbolGroup(uint8_t symbol) const {
    return group_of_symbol_[matcher_.Match(symbol)];
  }

  /// The packed transition row for a symbol group.
  Row row(int group) const { return rows_[group]; }

  /// Next state for (state, group); a single shift+mask on the packed row.
  uint8_t NextState(int state, int group) const {
    return static_cast<uint8_t>((rows_[group] >> (state * 4)) & 0xF);
  }

  /// Convenience: next state for a raw symbol.
  uint8_t NextStateForSymbol(int state, uint8_t symbol) const {
    return NextState(state, SymbolGroup(symbol));
  }

  /// Classification flags for consuming `group` while in `state`.
  uint8_t Flags(int state, int group) const {
    return flags_[group * kMaxDfaStates + state];
  }

  bool IsAccepting(int state) const { return accepting_[state]; }

  /// Runs every DFA instance of a state-transition vector one step.
  void Step(StateVector* vector, uint8_t symbol) const {
    const Row row_bits = rows_[SymbolGroup(symbol)];
    for (int i = 0; i < vector->size(); ++i) {
      vector->Set(i, static_cast<uint8_t>((row_bits >> (vector->Get(i) * 4)) &
                                          0xF));
    }
  }

  /// Simulates one DFA instance over `data`, returning the end state.
  uint8_t Run(int state, const uint8_t* data, size_t size) const {
    uint8_t s = static_cast<uint8_t>(state);
    for (size_t i = 0; i < size; ++i) {
      s = NextStateForSymbol(s, data[i]);
    }
    return s;
  }

  /// Computes the state-transition vector of a chunk: entry i is the end
  /// state of the instance that started in state i (§3.1, Fig. 3).
  StateVector TransitionVector(const uint8_t* data, size_t size) const {
    StateVector v = StateVector::Identity(num_states_);
    for (size_t i = 0; i < size; ++i) Step(&v, data[i]);
    return v;
  }

 private:
  friend class DfaBuilder;

  int num_states_ = 0;
  int start_state_ = 0;
  int invalid_state_ = -1;
  int num_groups_ = 0;
  std::vector<std::string> state_names_;
  std::vector<bool> accepting_;
  SwarMatcher matcher_;
  /// matcher index (symbol position or catch-all) -> symbol group.
  std::vector<int> group_of_symbol_;
  std::vector<Row> rows_;
  std::vector<uint8_t> flags_;
};

/// \brief Incremental builder for Dfa instances.
///
/// Usage:
///   DfaBuilder b;
///   int fld = b.AddState("FLD", /*accepting=*/true);
///   ...
///   int g_nl = b.AddSymbol('\n');
///   b.SetTransition(eor, g_nl, eor, kSymbolRecordDelimiter | kSymbolControl);
///   b.SetDefaultTransition(eor, fld, kSymbolData);   // catch-all group
///   PARPARAW_ASSIGN_OR_RETURN(Dfa dfa, b.Build());
class DfaBuilder {
 public:
  DfaBuilder() = default;

  /// Adds a state; returns its index. At most kMaxDfaStates states.
  int AddState(std::string name, bool accepting);

  /// Marks the start state (default: state 0).
  void SetStartState(int state) { start_state_ = state; }

  /// Marks the trap state entered on invalid input, used by format
  /// validation (§4.3).
  void SetInvalidState(int state) { invalid_state_ = state; }

  /// Registers a symbol with its own symbol group; returns the group index.
  /// Symbols registered via AddSymbolToGroup share an existing group.
  int AddSymbol(uint8_t symbol);

  /// Registers an additional symbol for an existing group (Table 1 collapses
  /// symbols with identical transitions into one group).
  void AddSymbolToGroup(uint8_t symbol, int group);

  /// Transition for (from_state, group) with its symbol classification.
  void SetTransition(int from_state, int group, int to_state, uint8_t flags);

  /// Transition for the catch-all group ("*" row of Table 1).
  void SetDefaultTransition(int from_state, int to_state, uint8_t flags);

  /// Validates completeness and produces the immutable Dfa.
  Result<Dfa> Build() const;

 private:
  struct Transition {
    int to_state = -1;
    uint8_t flags = 0;
  };

  std::vector<std::string> state_names_;
  std::vector<bool> accepting_;
  std::vector<uint8_t> symbols_;          // matcher order
  std::vector<int> group_of_symbol_;      // per symbol
  int num_groups_ = 0;
  int start_state_ = 0;
  int invalid_state_ = -1;
  // transitions_[group][state]; the catch-all group is stored last at
  // index num_groups_ when building.
  std::vector<std::vector<Transition>> transitions_;
  std::vector<Transition> default_transitions_;
};

}  // namespace parparaw

#endif  // PARPARAW_DFA_DFA_H_
