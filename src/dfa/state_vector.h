#ifndef PARPARAW_DFA_STATE_VECTOR_H_
#define PARPARAW_DFA_STATE_VECTOR_H_

#include <array>
#include <cstdint>

namespace parparaw {

/// Upper bound on DFA states supported by the packed representations
/// (4 bits per state in transition-table rows and MFIRA-backed vectors).
inline constexpr int kMaxDfaStates = 16;

/// \brief State-transition vector (§3.1).
///
/// Entry i holds the state a DFA instance ends in after reading a chunk's
/// symbols, given that it started in state i. These vectors form a monoid
/// under the composite operation
///
///   (a ∘ b)[i] = b[a[i]]
///
/// ("first apply a's chunk, then b's"), whose associativity is what lets
/// ParPaRaw resolve every chunk's true entry state with a single exclusive
/// parallel prefix scan instead of a sequential pass.
class StateVector {
 public:
  StateVector() = default;

  /// The identity vector over `num_states` states: v[i] = i.
  static StateVector Identity(int num_states) {
    StateVector v;
    v.size_ = static_cast<uint8_t>(num_states);
    for (int i = 0; i < num_states; ++i) v.states_[i] = static_cast<uint8_t>(i);
    return v;
  }

  int size() const { return size_; }

  uint8_t Get(int i) const { return states_[i]; }
  void Set(int i, uint8_t state) { states_[i] = state; }

  /// The composite operation a ∘ b of §3.1: the result of running chunk A
  /// then chunk B. Associative; identity is Identity(size).
  friend StateVector Compose(const StateVector& a, const StateVector& b) {
    StateVector r;
    r.size_ = a.size_;
    for (int i = 0; i < a.size_; ++i) r.states_[i] = b.states_[a.states_[i]];
    return r;
  }

  bool operator==(const StateVector& other) const {
    if (size_ != other.size_) return false;
    for (int i = 0; i < size_; ++i) {
      if (states_[i] != other.states_[i]) return false;
    }
    return true;
  }

 private:
  std::array<uint8_t, kMaxDfaStates> states_ = {};
  uint8_t size_ = 0;
};

}  // namespace parparaw

#endif  // PARPARAW_DFA_STATE_VECTOR_H_
