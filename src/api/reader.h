#ifndef PARPARAW_API_READER_H_
#define PARPARAW_API_READER_H_

#include <functional>
#include <string>
#include <string_view>

#include "exec/executor.h"
#include "loader/bulk_loader.h"
#include "util/result.h"

namespace parparaw {

/// \brief The one front door of the library.
///
/// Unifies what used to require picking between Parser::Parse (in-memory,
/// no dialect resolution), BulkLoader::LoadFile/LoadBuffer (sniffing +
/// statistics) and StreamingParser/PipelineExecutor (bounded memory)
/// behind a single options-validated builder:
///
///   PARPARAW_ASSIGN_OR_RETURN(Table table,
///       Reader::FromFile("data.csv").Read());
///
///   auto result = Reader::FromBuffer(csv)
///                     .WithErrorPolicy(robust::ErrorPolicy::kQuarantine)
///                     .WithMemoryBudget(1 << 30)
///                     .ReadDetailed();
///
///   // Bounded-memory streaming: per-partition tables in stream order.
///   auto stats = Reader::FromFile("huge.csv").ReadStream(
///       [&](Table&& batch) { return Append(std::move(batch)); });
///
/// Every Read* entry point validates the option combination up front
/// (ParseOptions::Validate) and runs the pipelined ingestion executor by
/// default, so reads overlap parsing and type conversion across
/// partitions. The old entry points remain as the stable low-level API;
/// new code should start here.
class Reader {
 public:
  /// Reads a delimiter-separated file from disk, partition by partition.
  static Reader FromFile(std::string path);

  /// Reads from caller-owned memory. The buffer must stay alive and
  /// unchanged until the Read* call returns.
  static Reader FromBuffer(std::string_view buffer);

  // --- configuration (each moves the builder through for chaining) ---

  /// Explicit column types; skips type inference.
  Reader&& WithSchema(Schema schema) &&;
  /// Explicit format; skips dialect sniffing.
  Reader&& WithFormat(Format format) &&;
  /// User-defined dialect (src/dialect), compiled at runtime into the
  /// format; skips sniffing. Mutually exclusive with WithFormat.
  Reader&& WithDialect(dialect::DialectSpec spec) &&;
  /// First row is (true) / is not (false) a header. Default: sniffed.
  Reader&& WithHeader(bool has_header) &&;
  /// What to do with malformed records (kNull/kFail/kSkip/kQuarantine).
  Reader&& WithErrorPolicy(robust::ErrorPolicy policy) &&;
  /// Soft cap on the parse working set; the executor degrades (smaller
  /// partitions, fewer in flight) instead of refusing.
  Reader&& WithMemoryBudget(int64_t bytes) &&;
  Reader&& WithPartitionSize(size_t bytes) &&;
  Reader&& WithThreadPool(ThreadPool* pool) &&;
  /// Assigns the consolidated tuning surface (plan/tuning.h) wholesale:
  /// kernel, chunk size, tagging/transpose modes, planner engagement.
  /// The default Tuning leaves every knob at its auto sentinel, so the
  /// adaptive planner decides them from the input's head sample.
  Reader&& WithTuning(Tuning tuning) &&;
  /// Collect per-column statistics into LoadResult (Read() ignores them;
  /// off by default — BulkLoader's default is on).
  Reader&& WithStatistics(bool enabled) &&;
  /// false = serial partition-at-a-time schedule (differential testing,
  /// single-thread debugging). Default: pipelined.
  Reader&& Pipelined(bool enabled) &&;

  // --- terminal operations ---

  /// The table, materialised.
  Result<Table> Read() &&;

  /// The table plus dialect, quarantine, statistics and timings.
  Result<LoadResult> ReadDetailed() &&;

  /// Bounded-memory streaming: `sink` receives each partition's table in
  /// stream order; only the admission-controlled working set is ever
  /// resident. The sink returning an error cancels the ingest. Returns
  /// scheduling stats (partitions, stage overlap).
  Result<exec::IngestStats> ReadStream(
      const std::function<Status(Table&&)>& sink) &&;

  /// What *would* this read do? Resolves dialect/schema from the head
  /// sample and runs the adaptive planner without executing the parse.
  /// The returned plan's Explain() renders the decision, its evidence and
  /// the per-knob reasoning; with planning disabled (or a scalar dialect
  /// fallback) the static resolution is reported instead.
  Result<plan::ParsePlan> Explain() &&;

 private:
  Reader() = default;

  bool from_file_ = false;
  std::string path_;
  std::string_view buffer_;
  LoadOptions options_;
};

}  // namespace parparaw

#endif  // PARPARAW_API_READER_H_
