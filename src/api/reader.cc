#include "api/reader.h"

#include <algorithm>
#include <utility>

#include "dialect/dialect.h"
#include "io/file.h"
#include "plan/planner.h"

namespace parparaw {

Reader Reader::FromFile(std::string path) {
  Reader reader;
  reader.from_file_ = true;
  reader.path_ = std::move(path);
  reader.options_.collect_statistics = false;
  return reader;
}

Reader Reader::FromBuffer(std::string_view buffer) {
  Reader reader;
  reader.buffer_ = buffer;
  reader.options_.collect_statistics = false;
  return reader;
}

Reader&& Reader::WithSchema(Schema schema) && {
  options_.schema = std::move(schema);
  return std::move(*this);
}

Reader&& Reader::WithFormat(Format format) && {
  options_.format = std::move(format);
  return std::move(*this);
}

Reader&& Reader::WithDialect(dialect::DialectSpec spec) && {
  options_.dialect = std::move(spec);
  return std::move(*this);
}

Reader&& Reader::WithHeader(bool has_header) && {
  options_.header = has_header ? 1 : 0;
  return std::move(*this);
}

Reader&& Reader::WithErrorPolicy(robust::ErrorPolicy policy) && {
  options_.error_policy = policy;
  return std::move(*this);
}

Reader&& Reader::WithMemoryBudget(int64_t bytes) && {
  options_.memory_budget = bytes;
  return std::move(*this);
}

Reader&& Reader::WithPartitionSize(size_t bytes) && {
  options_.partition_size = bytes;
  return std::move(*this);
}

Reader&& Reader::WithThreadPool(ThreadPool* pool) && {
  options_.pool = pool;
  return std::move(*this);
}

Reader&& Reader::WithTuning(Tuning tuning) && {
  options_.tuning = tuning;
  return std::move(*this);
}

Reader&& Reader::WithStatistics(bool enabled) && {
  options_.collect_statistics = enabled;
  return std::move(*this);
}

Reader&& Reader::Pipelined(bool enabled) && {
  options_.pipelined = enabled;
  return std::move(*this);
}

Result<Table> Reader::Read() && {
  LoadOptions options = options_;
  options.collect_statistics = false;  // Read() returns only the table
  Result<LoadResult> loaded =
      from_file_ ? BulkLoader::LoadFile(path_, options)
                 : BulkLoader::LoadBuffer(buffer_, options);
  PARPARAW_RETURN_NOT_OK(loaded.status());
  return std::move(loaded->table);
}

Result<LoadResult> Reader::ReadDetailed() && {
  return from_file_ ? BulkLoader::LoadFile(path_, options_)
                    : BulkLoader::LoadBuffer(buffer_, options_);
}

Result<exec::IngestStats> Reader::ReadStream(
    const std::function<Status(Table&&)>& sink) && {
  LoadResult resolution;
  std::string file_sample;
  std::string_view sample = buffer_;
  bool truncated = false;
  if (from_file_) {
    FileChunkReader head;
    PARPARAW_RETURN_NOT_OK_CTX(head.Open(path_), "reader.open");
    if (head.file_size() > 0) {
      bool eof = false;
      PARPARAW_RETURN_NOT_OK_CTX(
          head.ReadNext(std::min<size_t>(
                            static_cast<size_t>(head.file_size()),
                            256 * 1024),
                        &file_sample, &eof),
          "reader.sample");
    }
    sample = file_sample;
    truncated = static_cast<int64_t>(file_sample.size()) < head.file_size();
  }
  PARPARAW_ASSIGN_OR_RETURN(
      ParseOptions base,
      BulkLoader::ResolveBaseOptions(sample, truncated, options_,
                                     &resolution));

  exec::PipelineExecutor executor;
  exec::ExecOptions exec_options;
  exec_options.base = base;
  exec_options.partition_size = options_.partition_size;
  Result<exec::IngestResult> ingested =
      from_file_ ? executor.StreamFile(path_, exec_options, sink)
                 : executor.StreamBuffer(buffer_, exec_options, sink);
  PARPARAW_RETURN_NOT_OK(ingested.status());
  return ingested->stats;
}

Result<plan::ParsePlan> Reader::Explain() && {
  LoadResult resolution;
  std::string file_sample;
  std::string_view sample = buffer_;
  bool truncated = false;
  if (from_file_) {
    FileChunkReader head;
    PARPARAW_RETURN_NOT_OK_CTX(head.Open(path_), "reader.open");
    if (head.file_size() > 0) {
      bool eof = false;
      PARPARAW_RETURN_NOT_OK_CTX(
          head.ReadNext(
              std::min<size_t>(static_cast<size_t>(head.file_size()),
                               std::max<size_t>(256 * 1024,
                                                options_.tuning.sample_budget)),
              &file_sample, &eof),
          "reader.sample");
    }
    sample = file_sample;
    truncated = static_cast<int64_t>(file_sample.size()) < head.file_size();
  }
  PARPARAW_ASSIGN_OR_RETURN(
      ParseOptions base,
      BulkLoader::ResolveBaseOptions(sample, truncated, options_,
                                     &resolution));
  PARPARAW_RETURN_NOT_OK(base.Validate());
  // The planner wants the packed format a real parse would run with; an
  // over-budget dialect parses on the scalar fallback, which has no
  // plannable knobs.
  PARPARAW_ASSIGN_OR_RETURN(std::optional<dialect::CompiledDialect> fallback,
                            dialect::ResolveParseDialect(&base));
  if (fallback.has_value()) return plan::StaticPlan(base);
  return plan::PlanStream(sample, truncated, &base);
}

}  // namespace parparaw
