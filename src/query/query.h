#ifndef PARPARAW_QUERY_QUERY_H_
#define PARPARAW_QUERY_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace parparaw {

/// Aggregate functions over a (numeric) column; kCount works on any
/// column and counts non-NULL rows, kCountAll counts all selected rows.
enum class AggKind : uint8_t {
  kCountAll,
  kCount,
  kSum,
  kMin,
  kMax,
  kMean,
};

/// One aggregate expression. `column` is ignored for kCountAll.
struct Aggregate {
  AggKind kind = AggKind::kCountAll;
  int column = 0;

  Aggregate() = default;
  Aggregate(AggKind kind_in, int column_in = 0)
      : kind(kind_in), column(column_in) {}
};

/// \brief A small in-situ query: WHERE filter, then either a projection
/// (SELECT cols) or aggregates with an optional GROUP BY.
///
/// This is the "in-situ querying of raw data" use case the paper motivates
/// (§1): parse raw bytes straight into columns and answer the query
/// without a load phase.
struct QuerySpec {
  Filter filter;
  /// Columns to keep (projection); empty keeps all. Ignored when
  /// aggregates are present.
  std::vector<int> projection;
  /// Aggregates; when non-empty the result is one row (or one per group).
  std::vector<Aggregate> aggregates;
  /// GROUP BY column (int64-family or string); unset = global aggregates.
  std::optional<int> group_by;
};

/// Materialises the rows selected by `selection` (0/1 per row).
Result<Table> GatherRows(const Table& table,
                         const std::vector<uint8_t>& selection,
                         ThreadPool* pool = nullptr);

/// Runs `spec` against a parsed table.
Result<Table> RunQuery(const Table& table, const QuerySpec& spec,
                       ThreadPool* pool = nullptr);

}  // namespace parparaw

#endif  // PARPARAW_QUERY_QUERY_H_
