#ifndef PARPARAW_QUERY_RAW_FILTER_H_
#define PARPARAW_QUERY_RAW_FILTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "parallel/thread_pool.h"
#include "util/result.h"

namespace parparaw {

/// Statistics of a raw prefilter pass.
struct RawFilterStats {
  int64_t input_bytes = 0;
  int64_t kept_bytes = 0;
  int64_t input_lines = 0;
  int64_t kept_lines = 0;

  double Selectivity() const {
    return input_bytes > 0
               ? static_cast<double>(kept_bytes) / input_bytes
               : 0.0;
  }
};

/// \brief Sparser-style raw filtering ("Filter Before You Parse", §2):
/// discard raw lines that cannot possibly satisfy a substring predicate
/// *before* running the full parser, then let the exact predicate re-check
/// the survivors after parsing (false positives are fine, false negatives
/// are not).
///
/// Contract: applicable to formats whose record delimiter never occurs
/// inside a record (e.g. the NYC-taxi-style data; NOT quoted yelp text) —
/// the same restriction the raw-filtering literature carries. Lines are
/// raw `record_delimiter`-separated spans. Matching is a plain substring
/// search over each line, parallelised over line blocks.
Result<std::string> RawFilterLines(std::string_view input,
                                   std::string_view needle,
                                   RawFilterStats* stats = nullptr,
                                   ThreadPool* pool = nullptr,
                                   uint8_t record_delimiter = '\n');

}  // namespace parparaw

#endif  // PARPARAW_QUERY_RAW_FILTER_H_
