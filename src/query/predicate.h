#ifndef PARPARAW_QUERY_PREDICATE_H_
#define PARPARAW_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "parallel/thread_pool.h"
#include "util/result.h"

namespace parparaw {

/// Comparison operators for column predicates. String columns support all
/// operators (lexicographic ordering); kContains/kStartsWith are
/// string-only.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
  kStartsWith,
  kIsNull,
  kIsNotNull,
};

/// \brief A single column-vs-literal predicate.
///
/// The literal is textual and converted once to the column's type when the
/// predicate is bound (so "12.5" works against float64/decimal columns and
/// "2020-01-01" against date columns). NULL slots never match except under
/// kIsNull.
struct Predicate {
  int column = 0;
  CompareOp op = CompareOp::kEq;
  std::string literal;

  Predicate() = default;
  Predicate(int column_in, CompareOp op_in, std::string literal_in = "")
      : column(column_in), op(op_in), literal(std::move(literal_in)) {}
};

/// A conjunction of predicates (rows must satisfy all of them).
struct Filter {
  std::vector<Predicate> conjuncts;
};

/// Evaluates one predicate over a table into a 0/1 selection vector.
Result<std::vector<uint8_t>> EvaluatePredicate(const Table& table,
                                               const Predicate& predicate,
                                               ThreadPool* pool = nullptr);

/// Evaluates a conjunction into a selection vector (all-ones when empty).
Result<std::vector<uint8_t>> EvaluateFilter(const Table& table,
                                            const Filter& filter,
                                            ThreadPool* pool = nullptr);

}  // namespace parparaw

#endif  // PARPARAW_QUERY_PREDICATE_H_
