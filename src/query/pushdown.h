#ifndef PARPARAW_QUERY_PUSHDOWN_H_
#define PARPARAW_QUERY_PUSHDOWN_H_

#include <string_view>

#include "core/options.h"
#include "query/predicate.h"
#include "util/result.h"

namespace parparaw {

/// Diagnostics of a pushdown parse.
struct PushdownStats {
  int64_t records_scanned = 0;
  int64_t records_selected = 0;

  double Selectivity() const {
    return records_scanned > 0
               ? static_cast<double>(records_selected) / records_scanned
               : 0.0;
  }
};

/// \brief Selection pushdown into the parser (§4.3 "Skipping records and
/// selecting columns" turned into a WHERE clause).
///
/// Phase 1 parses *only* the predicate column (every other column's
/// symbols are dropped right after tagging, so their conversion cost is
/// never paid) and evaluates the predicate. Phase 2 re-parses with the
/// non-matching records in the skip set, materialising full rows only for
/// matches. For selective predicates this avoids converting the bulk of
/// the data — the same economics as the raw prefilter, but exact and
/// format-agnostic (quoted fields, comments, any DFA).
///
/// Requirements: a schema, the robust column-count policy, and empty
/// skip_records/skip_columns in `options` (they would change record
/// numbering between the phases).
Result<ParseOutput> ParseWithPushdown(std::string_view input,
                                      const ParseOptions& options,
                                      const Predicate& predicate,
                                      PushdownStats* stats = nullptr);

}  // namespace parparaw

#endif  // PARPARAW_QUERY_PUSHDOWN_H_
