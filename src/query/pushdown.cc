#include "query/pushdown.h"

#include "core/parser.h"
#include "obs/obs.h"
#include "query/query.h"
#include "util/stopwatch.h"

namespace parparaw {

Result<ParseOutput> ParseWithPushdown(std::string_view input,
                                      const ParseOptions& options,
                                      const Predicate& predicate,
                                      PushdownStats* stats) {
  if (options.schema.num_fields() == 0) {
    return Status::Invalid("pushdown requires a schema");
  }
  if (predicate.column < 0 ||
      predicate.column >= options.schema.num_fields()) {
    return Status::Invalid("predicate column out of range");
  }
  if (!options.skip_records.empty() || !options.skip_columns.empty()) {
    return Status::Invalid(
        "pushdown cannot be combined with explicit skip sets");
  }
  if (options.column_count_policy != ColumnCountPolicy::kRobust) {
    return Status::Invalid("pushdown requires the robust column policy");
  }

  obs::TraceSpan span(options.tracer, "pushdown", "query",
                      static_cast<int64_t>(input.size()));
  Stopwatch probe_watch;

  // Phase 1: parse only the predicate column.
  ParseOptions phase1 = options;
  for (int j = 0; j < options.schema.num_fields(); ++j) {
    if (j != predicate.column) phase1.skip_columns.push_back(j);
  }
  PARPARAW_ASSIGN_OR_RETURN(ParseOutput probe,
                            Parser::Parse(input, phase1));

  // Evaluate against the single-column probe table.
  Predicate remapped = predicate;
  remapped.column = 0;
  PARPARAW_ASSIGN_OR_RETURN(
      std::vector<uint8_t> selection,
      EvaluatePredicate(probe.table, remapped, options.pool));
  obs::RecordMillis(options.metrics, "pushdown.probe_us",
                    probe_watch.ElapsedMillis());

  // With the robust policy and no skip sets, probe rows == records, so
  // row indices are valid skip_records entries for phase 2.
  ParseOptions phase2 = options;
  int64_t selected = 0;
  for (int64_t r = 0; r < probe.table.num_rows; ++r) {
    if (selection[r]) {
      ++selected;
    } else {
      phase2.skip_records.push_back(r);
    }
  }
  if (stats != nullptr) {
    stats->records_scanned = probe.table.num_rows;
    stats->records_selected = selected;
  }
  obs::AddCount(options.metrics, "pushdown.records_scanned",
                probe.table.num_rows);
  obs::AddCount(options.metrics, "pushdown.records_selected", selected);
  Stopwatch materialise_watch;
  PARPARAW_ASSIGN_OR_RETURN(ParseOutput out, Parser::Parse(input, phase2));
  obs::RecordMillis(options.metrics, "pushdown.materialise_us",
                    materialise_watch.ElapsedMillis());
  // Fold the probe's work into the reported counters.
  out.work += probe.work;
  out.timings += probe.timings;
  return out;
}

}  // namespace parparaw
