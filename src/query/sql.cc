#include "query/sql.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace parparaw {

namespace {

// --- tokenizer ---

enum class TokenKind {
  kWord,      // identifier or keyword
  kNumber,    // bare numeric/temporal literal chunk
  kString,    // 'quoted literal'
  kSymbol,    // punctuation / operator
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token token = current_;
    Advance();
    return token;
  }

  bool TakeKeyword(std::string_view keyword) {
    if (current_.kind == TokenKind::kWord &&
        EqualsIgnoreCase(current_.text, keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  bool TakeSymbol(std::string_view symbol) {
    if (current_.kind == TokenKind::kSymbol && current_.text == symbol) {
      Advance();
      return true;
    }
    return false;
  }

 private:
  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      current_ = {TokenKind::kEnd, ""};
      return;
    }
    const char c = input_[pos_];
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != '\'') {
        text.push_back(input_[pos_++]);
      }
      if (pos_ < input_.size()) ++pos_;  // closing quote
      current_ = {TokenKind::kString, std::move(text)};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        text.push_back(input_[pos_++]);
      }
      current_ = {TokenKind::kWord, std::move(text)};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+') {
      // Bare literal: digits plus the characters of numbers, dates, and
      // timestamps (2020-01-01 10:00:00 — the time part needs a space, so
      // quote timestamps).
      std::string text;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == '-' ||
              input_[pos_] == '+' || input_[pos_] == 'e' ||
              input_[pos_] == 'E' || input_[pos_] == ':')) {
        text.push_back(input_[pos_++]);
      }
      current_ = {TokenKind::kNumber, std::move(text)};
      return;
    }
    // Multi-char operators first.
    for (std::string_view op : {"<=", ">=", "!=", "<>"}) {
      if (input_.substr(pos_, 2) == op) {
        pos_ += 2;
        current_ = {TokenKind::kSymbol, std::string(op)};
        return;
      }
    }
    current_ = {TokenKind::kSymbol, std::string(1, c)};
    ++pos_;
  }

  std::string_view input_;
  size_t pos_ = 0;
  Token current_;
};

// --- parser helpers ---

Result<int> ResolveColumn(const std::string& name, const Schema& schema) {
  const int index = schema.FieldIndex(name);
  if (index < 0) {
    return Status::Invalid("unknown column '" + name + "'");
  }
  return index;
}

Result<AggKind> AggKindFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "count")) return AggKind::kCount;
  if (EqualsIgnoreCase(name, "sum")) return AggKind::kSum;
  if (EqualsIgnoreCase(name, "min")) return AggKind::kMin;
  if (EqualsIgnoreCase(name, "max")) return AggKind::kMax;
  if (EqualsIgnoreCase(name, "mean") || EqualsIgnoreCase(name, "avg")) {
    return AggKind::kMean;
  }
  return Status::Invalid("unknown aggregate '" + name + "'");
}

Result<CompareOp> OpFromSymbol(const std::string& symbol) {
  if (symbol == "=") return CompareOp::kEq;
  if (symbol == "!=" || symbol == "<>") return CompareOp::kNe;
  if (symbol == "<") return CompareOp::kLt;
  if (symbol == "<=") return CompareOp::kLe;
  if (symbol == ">") return CompareOp::kGt;
  if (symbol == ">=") return CompareOp::kGe;
  return Status::Invalid("unknown operator '" + symbol + "'");
}

Status ParseCondition(Lexer* lexer, const Schema& schema, Filter* filter) {
  Token column_token = lexer->Take();
  if (column_token.kind != TokenKind::kWord) {
    return Status::Invalid("expected a column name in WHERE");
  }
  PARPARAW_ASSIGN_OR_RETURN(int column,
                            ResolveColumn(column_token.text, schema));
  if (lexer->TakeKeyword("IS")) {
    const bool negated = lexer->TakeKeyword("NOT");
    if (!lexer->TakeKeyword("NULL")) {
      return Status::Invalid("expected NULL after IS");
    }
    filter->conjuncts.emplace_back(
        column, negated ? CompareOp::kIsNotNull : CompareOp::kIsNull);
    return Status::OK();
  }
  CompareOp op;
  if (lexer->TakeKeyword("CONTAINS")) {
    op = CompareOp::kContains;
  } else if (lexer->TakeKeyword("STARTSWITH")) {
    op = CompareOp::kStartsWith;
  } else {
    Token op_token = lexer->Take();
    if (op_token.kind != TokenKind::kSymbol) {
      return Status::Invalid("expected an operator after '" +
                             column_token.text + "'");
    }
    PARPARAW_ASSIGN_OR_RETURN(op, OpFromSymbol(op_token.text));
  }
  Token literal = lexer->Take();
  if (literal.kind != TokenKind::kString &&
      literal.kind != TokenKind::kNumber &&
      literal.kind != TokenKind::kWord) {
    return Status::Invalid("expected a literal");
  }
  filter->conjuncts.emplace_back(column, op, literal.text);
  return Status::OK();
}

}  // namespace

Result<QuerySpec> ParseSql(std::string_view sql, const Schema& schema) {
  Lexer lexer(sql);
  QuerySpec spec;
  if (!lexer.TakeKeyword("SELECT")) {
    return Status::Invalid("query must start with SELECT");
  }

  // Select list: '*', columns, or aggregates.
  bool star = false;
  if (lexer.TakeSymbol("*")) {
    star = true;
  } else {
    while (true) {
      Token token = lexer.Take();
      if (token.kind != TokenKind::kWord) {
        return Status::Invalid("expected a column or aggregate in SELECT");
      }
      if (lexer.TakeSymbol("(")) {
        // Aggregate call.
        if (EqualsIgnoreCase(token.text, "count") && lexer.TakeSymbol("*")) {
          if (!lexer.TakeSymbol(")")) {
            return Status::Invalid("expected ')'");
          }
          spec.aggregates.emplace_back(AggKind::kCountAll);
        } else {
          PARPARAW_ASSIGN_OR_RETURN(AggKind kind,
                                    AggKindFromName(token.text));
          Token arg = lexer.Take();
          if (arg.kind != TokenKind::kWord) {
            return Status::Invalid("expected a column in " + token.text);
          }
          PARPARAW_ASSIGN_OR_RETURN(int column,
                                    ResolveColumn(arg.text, schema));
          if (!lexer.TakeSymbol(")")) {
            return Status::Invalid("expected ')'");
          }
          spec.aggregates.emplace_back(kind, column);
        }
      } else {
        PARPARAW_ASSIGN_OR_RETURN(int column,
                                  ResolveColumn(token.text, schema));
        spec.projection.push_back(column);
      }
      if (!lexer.TakeSymbol(",")) break;
    }
  }
  if (!spec.aggregates.empty() && !spec.projection.empty()) {
    return Status::Invalid(
        "mixing plain columns and aggregates requires GROUP BY semantics "
        "this dialect does not support; select either columns or "
        "aggregates");
  }
  if (star) spec.projection.clear();

  if (!lexer.TakeKeyword("FROM")) {
    return Status::Invalid("expected FROM");
  }
  if (lexer.Take().kind != TokenKind::kWord) {
    return Status::Invalid("expected a table name after FROM");
  }

  if (lexer.TakeKeyword("WHERE")) {
    do {
      PARPARAW_RETURN_NOT_OK(ParseCondition(&lexer, schema, &spec.filter));
    } while (lexer.TakeKeyword("AND"));
  }

  if (lexer.TakeKeyword("GROUP")) {
    if (!lexer.TakeKeyword("BY")) return Status::Invalid("expected BY");
    Token column = lexer.Take();
    if (column.kind != TokenKind::kWord) {
      return Status::Invalid("expected a column after GROUP BY");
    }
    PARPARAW_ASSIGN_OR_RETURN(int index,
                              ResolveColumn(column.text, schema));
    spec.group_by = index;
    if (spec.aggregates.empty()) {
      return Status::Invalid("GROUP BY requires aggregates in SELECT");
    }
  }

  if (lexer.Peek().kind != TokenKind::kEnd) {
    return Status::Invalid("unexpected trailing input: '" +
                           lexer.Peek().text + "'");
  }
  return spec;
}

Result<Table> ExecuteSql(std::string_view sql, const Table& table,
                         ThreadPool* pool) {
  PARPARAW_ASSIGN_OR_RETURN(QuerySpec spec, ParseSql(sql, table.schema));
  return RunQuery(table, spec, pool);
}

}  // namespace parparaw
