#include "query/raw_filter.h"

#include <algorithm>
#include <cstring>

#include "parallel/scan.h"

namespace parparaw {

Result<std::string> RawFilterLines(std::string_view input,
                                   std::string_view needle,
                                   RawFilterStats* stats, ThreadPool* pool,
                                   uint8_t record_delimiter) {
  if (needle.empty()) {
    return Status::Invalid("raw filter needle must be non-empty");
  }
  RawFilterStats local;
  local.input_bytes = static_cast<int64_t>(input.size());

  // Split into raw lines (cheap memchr walk). A trailing piece without a
  // delimiter is treated as a line.
  std::vector<std::pair<size_t, size_t>> lines;  // [begin, end) incl. delim
  size_t begin = 0;
  while (begin < input.size()) {
    const void* hit = std::memchr(input.data() + begin, record_delimiter,
                                  input.size() - begin);
    const size_t end =
        hit == nullptr
            ? input.size()
            : static_cast<size_t>(static_cast<const char*>(hit) -
                                  input.data()) +
                  1;
    lines.emplace_back(begin, end);
    begin = end;
  }
  local.input_lines = static_cast<int64_t>(lines.size());

  // Parallel match pass.
  const int64_t n = static_cast<int64_t>(lines.size());
  std::vector<uint8_t> keep(n, 0);
  ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      const std::string_view line =
          input.substr(lines[i].first, lines[i].second - lines[i].first);
      keep[i] = line.find(needle) != std::string_view::npos ? 1 : 0;
    }
  });

  // Sizes + exclusive prefix sum, then a parallel compaction write — the
  // same two-pass pattern as the tag step.
  std::vector<int64_t> sizes(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    sizes[i] = keep[i] ? static_cast<int64_t>(lines[i].second -
                                              lines[i].first)
                       : 0;
  }
  std::vector<int64_t> offsets(n, 0);
  const int64_t total =
      ExclusivePrefixSum(pool, sizes.data(), offsets.data(), n);
  std::string out(static_cast<size_t>(total), '\0');
  ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      if (!keep[i]) continue;
      std::memcpy(out.data() + offsets[i], input.data() + lines[i].first,
                  lines[i].second - lines[i].first);
    }
  });

  local.kept_bytes = total;
  for (int64_t i = 0; i < n; ++i) local.kept_lines += keep[i];
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace parparaw
