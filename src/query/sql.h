#ifndef PARPARAW_QUERY_SQL_H_
#define PARPARAW_QUERY_SQL_H_

#include <string>
#include <string_view>

#include "columnar/table.h"
#include "query/query.h"
#include "util/result.h"

namespace parparaw {

/// \brief A miniature SQL dialect over parsed tables, for the interactive
/// examples and quick exploration:
///
///   SELECT <cols | aggs> FROM t [WHERE <conjunction>] [GROUP BY <col>]
///
///   cols  := name (',' name)*        -- projection
///   aggs  := agg (',' agg)*          -- count(*), count(c), sum(c),
///                                       min(c), max(c), mean(c)/avg(c)
///   cond  := name op literal | name IS [NOT] NULL |
///            name CONTAINS 'text' | name STARTSWITH 'text'
///   op    := = | != | <> | < | <= | > | >=
///   conjunction := cond (AND cond)*
///
/// Literals may be single-quoted ('New York') or bare (42, 1.5,
/// 2020-01-01). The table name after FROM is syntactic only — the query
/// always runs against the supplied table. Keywords are case-insensitive;
/// column names are matched exactly.
Result<QuerySpec> ParseSql(std::string_view sql, const Schema& schema);

/// Convenience: parse and run in one step.
Result<Table> ExecuteSql(std::string_view sql, const Table& table,
                         ThreadPool* pool = nullptr);

}  // namespace parparaw

#endif  // PARPARAW_QUERY_SQL_H_
