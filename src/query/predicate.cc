#include "query/predicate.h"

#include <algorithm>
#include <cstring>

#include "convert/numeric.h"
#include "convert/temporal.h"

namespace parparaw {

namespace {

// Typed literal bound to a column's physical representation.
struct BoundLiteral {
  int64_t i64 = 0;       // int64/decimal/timestamp/bool(0/1)/date(widened)
  double f64 = 0;        // float64
  std::string text;      // string
};

Status BindLiteral(const DataType& type, const std::string& literal,
                   BoundLiteral* out) {
  switch (type.id) {
    case TypeId::kBool: {
      bool v;
      if (!ParseBool(literal, &v)) {
        return Status::TypeError("'" + literal + "' is not a bool");
      }
      out->i64 = v ? 1 : 0;
      return Status::OK();
    }
    case TypeId::kInt32:
    case TypeId::kInt64: {
      if (!ParseInt64(literal, &out->i64)) {
        return Status::TypeError("'" + literal + "' is not an integer");
      }
      return Status::OK();
    }
    case TypeId::kFloat64: {
      if (!ParseFloat64(literal, &out->f64)) {
        return Status::TypeError("'" + literal + "' is not a float");
      }
      return Status::OK();
    }
    case TypeId::kDecimal64: {
      if (!ParseDecimal64(literal, type.scale, &out->i64)) {
        return Status::TypeError("'" + literal + "' is not a decimal(" +
                                 std::to_string(type.scale) + ")");
      }
      return Status::OK();
    }
    case TypeId::kDate32: {
      int32_t days;
      if (!ParseDate32(literal, &days)) {
        return Status::TypeError("'" + literal + "' is not a date");
      }
      out->i64 = days;
      return Status::OK();
    }
    case TypeId::kTimestampMicros: {
      if (!ParseTimestampMicros(literal, &out->i64)) {
        return Status::TypeError("'" + literal + "' is not a timestamp");
      }
      return Status::OK();
    }
    case TypeId::kString:
      out->text = literal;
      return Status::OK();
  }
  return Status::TypeError("unsupported column type");
}

// Maps a three-way comparison result through the operator.
inline bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

template <typename T>
inline int ThreeWay(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

Result<std::vector<uint8_t>> EvaluatePredicate(const Table& table,
                                               const Predicate& predicate,
                                               ThreadPool* pool) {
  if (predicate.column < 0 || predicate.column >= table.num_columns()) {
    return Status::Invalid("predicate column out of range");
  }
  const Column& column = table.columns[predicate.column];
  const DataType& type = column.type();
  const int64_t rows = table.num_rows;
  std::vector<uint8_t> selection(rows, 0);

  if (predicate.op == CompareOp::kIsNull ||
      predicate.op == CompareOp::kIsNotNull) {
    const bool want_null = predicate.op == CompareOp::kIsNull;
    ParallelFor(pool, 0, rows, [&](int64_t b, int64_t e) {
      for (int64_t r = b; r < e; ++r) {
        selection[r] = column.IsNull(r) == want_null ? 1 : 0;
      }
    });
    return selection;
  }

  const bool string_only = predicate.op == CompareOp::kContains ||
                           predicate.op == CompareOp::kStartsWith;
  if (string_only && type.id != TypeId::kString) {
    return Status::TypeError("contains/starts-with require a string column");
  }

  BoundLiteral literal;
  PARPARAW_RETURN_NOT_OK(BindLiteral(type, predicate.literal, &literal));

  const CompareOp op = predicate.op;
  ParallelFor(pool, 0, rows, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) {
      if (column.IsNull(r)) continue;  // NULL never matches comparisons
      bool match = false;
      switch (type.id) {
        case TypeId::kBool:
          match = ApplyOp(op, ThreeWay<int64_t>(column.Value<uint8_t>(r),
                                                literal.i64));
          break;
        case TypeId::kInt32:
          match = ApplyOp(op, ThreeWay<int64_t>(column.Value<int32_t>(r),
                                                literal.i64));
          break;
        case TypeId::kDate32:
          match = ApplyOp(op, ThreeWay<int64_t>(column.Value<int32_t>(r),
                                                literal.i64));
          break;
        case TypeId::kInt64:
        case TypeId::kDecimal64:
        case TypeId::kTimestampMicros:
          match = ApplyOp(op, ThreeWay<int64_t>(column.Value<int64_t>(r),
                                                literal.i64));
          break;
        case TypeId::kFloat64:
          match = ApplyOp(op,
                          ThreeWay<double>(column.Value<double>(r),
                                           literal.f64));
          break;
        case TypeId::kString: {
          const std::string_view value = column.StringValue(r);
          if (op == CompareOp::kContains) {
            match = value.find(literal.text) != std::string_view::npos;
          } else if (op == CompareOp::kStartsWith) {
            match = value.substr(0, literal.text.size()) == literal.text;
          } else {
            match = ApplyOp(op, value.compare(literal.text) < 0
                                    ? -1
                                    : (value == literal.text ? 0 : 1));
          }
          break;
        }
      }
      selection[r] = match ? 1 : 0;
    }
  });
  return selection;
}

Result<std::vector<uint8_t>> EvaluateFilter(const Table& table,
                                            const Filter& filter,
                                            ThreadPool* pool) {
  std::vector<uint8_t> selection(table.num_rows, 1);
  for (const Predicate& predicate : filter.conjuncts) {
    PARPARAW_ASSIGN_OR_RETURN(std::vector<uint8_t> one,
                              EvaluatePredicate(table, predicate, pool));
    for (int64_t r = 0; r < table.num_rows; ++r) selection[r] &= one[r];
  }
  return selection;
}

}  // namespace parparaw
