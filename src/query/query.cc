#include "query/query.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "obs/obs.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

// Numeric view of a column slot as double (for sum/mean/min/max).
Result<double> NumericValue(const Column& column, int64_t row) {
  switch (column.type().id) {
    case TypeId::kBool:
      return static_cast<double>(column.Value<uint8_t>(row));
    case TypeId::kInt32:
    case TypeId::kDate32:
      return static_cast<double>(column.Value<int32_t>(row));
    case TypeId::kInt64:
    case TypeId::kDecimal64:
    case TypeId::kTimestampMicros:
      return static_cast<double>(column.Value<int64_t>(row));
    case TypeId::kFloat64:
      return column.Value<double>(row);
    case TypeId::kString:
      return Status::TypeError("aggregate over a string column");
  }
  return Status::TypeError("unsupported aggregate input");
}

struct AggState {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  bool any = false;

  void Accumulate(double v) {
    ++count;
    sum += v;
    min = any ? std::min(min, v) : v;
    max = any ? std::max(max, v) : v;
    any = true;
  }
};

std::string AggName(const Aggregate& agg, const Schema& schema) {
  const char* fn = "";
  switch (agg.kind) {
    case AggKind::kCountAll:
      return "count(*)";
    case AggKind::kCount:
      fn = "count";
      break;
    case AggKind::kSum:
      fn = "sum";
      break;
    case AggKind::kMin:
      fn = "min";
      break;
    case AggKind::kMax:
      fn = "max";
      break;
    case AggKind::kMean:
      fn = "mean";
      break;
  }
  return std::string(fn) + "(" + schema.field(agg.column).name + ")";
}

}  // namespace

Result<Table> GatherRows(const Table& table,
                         const std::vector<uint8_t>& selection,
                         ThreadPool* pool) {
  if (static_cast<int64_t>(selection.size()) != table.num_rows) {
    return Status::Invalid("selection vector size mismatch");
  }
  // The query layer records into the process-wide sinks: its entry points
  // carry no options struct (see docs/observability.md).
  obs::TraceSpan span(&obs::Tracer::Global(), "gather", "query");
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::Global();
  Stopwatch watch;
  // Row index mapping.
  std::vector<int64_t> rows;
  rows.reserve(selection.size());
  for (int64_t r = 0; r < table.num_rows; ++r) {
    if (selection[r]) rows.push_back(r);
  }
  Table out;
  out.schema = table.schema;
  out.num_rows = static_cast<int64_t>(rows.size());
  out.rejected.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out.rejected[i] = table.rejected.empty() ? 0 : table.rejected[rows[i]];
  }
  out.columns.reserve(table.columns.size());
  for (const Column& src : table.columns) {
    Column dst(src.type());
    if (src.type().id == TypeId::kString) {
      for (int64_t r : rows) {
        if (src.IsNull(r)) {
          dst.AppendNull();
        } else {
          dst.AppendString(src.StringValue(r));
        }
      }
      if (rows.empty()) dst.Allocate(0);
    } else {
      const int width = FixedWidth(src.type().id);
      dst.Allocate(static_cast<int64_t>(rows.size()));
      uint8_t* data = dst.mutable_data()->data();
      const int64_t n = static_cast<int64_t>(rows.size());
      ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          std::memcpy(data + i * width, src.data().data() + rows[i] * width,
                      width);
        }
      });
      // Validity sequentially (word-sharing across gather is irregular).
      for (int64_t i = 0; i < n; ++i) {
        if (src.IsNull(rows[i])) {
          dst.SetNull(i);
        } else {
          dst.SetValid(i);
        }
      }
    }
    out.columns.push_back(std::move(dst));
  }
  obs::RecordMillis(metrics, "query.gather_us", watch.ElapsedMillis());
  obs::AddCount(metrics, "query.rows_gathered", out.num_rows);
  return out;
}

Result<Table> RunQuery(const Table& table, const QuerySpec& spec,
                       ThreadPool* pool) {
  obs::TraceSpan run_span(&obs::Tracer::Global(), "run", "query");
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::Global();
  obs::AddCount(metrics, "query.runs", 1);
  obs::AddCount(metrics, "query.rows_in", table.num_rows);
  Stopwatch filter_watch;
  Result<std::vector<uint8_t>> filtered = [&] {
    obs::TraceSpan filter_span(&obs::Tracer::Global(), "filter", "query");
    return EvaluateFilter(table, spec.filter, pool);
  }();
  PARPARAW_ASSIGN_OR_RETURN(std::vector<uint8_t> selection,
                            std::move(filtered));
  obs::RecordMillis(metrics, "query.filter_us",
                    filter_watch.ElapsedMillis());

  if (spec.aggregates.empty()) {
    PARPARAW_ASSIGN_OR_RETURN(Table filtered,
                              GatherRows(table, selection, pool));
    if (spec.projection.empty()) return filtered;
    Table projected;
    projected.num_rows = filtered.num_rows;
    projected.rejected = filtered.rejected;
    for (int column : spec.projection) {
      if (column < 0 || column >= filtered.num_columns()) {
        return Status::Invalid("projection column out of range");
      }
      projected.schema.AddField(filtered.schema.field(column));
      projected.columns.push_back(filtered.columns[column]);
    }
    return projected;
  }

  // Validate aggregate columns up front.
  for (const Aggregate& agg : spec.aggregates) {
    if (agg.kind == AggKind::kCountAll) continue;
    if (agg.column < 0 || agg.column >= table.num_columns()) {
      return Status::Invalid("aggregate column out of range");
    }
  }

  obs::TraceSpan agg_span(&obs::Tracer::Global(), "aggregate", "query");
  Stopwatch agg_watch;
  // Group keys: one implicit global group, or the group_by column values.
  std::map<std::string, std::vector<AggState>> groups;
  std::map<std::string, int64_t> group_count_all;
  const int num_aggs = static_cast<int>(spec.aggregates.size());
  const Column* key_column = nullptr;
  if (spec.group_by.has_value()) {
    if (*spec.group_by < 0 || *spec.group_by >= table.num_columns()) {
      return Status::Invalid("group-by column out of range");
    }
    key_column = &table.columns[*spec.group_by];
  }

  for (int64_t r = 0; r < table.num_rows; ++r) {
    if (!selection[r]) continue;
    std::string key;
    if (key_column != nullptr) {
      key = key_column->IsNull(r) ? std::string("\x01NULL")
                                  : key_column->ValueToString(r);
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) it->second.resize(num_aggs);
    ++group_count_all[key];
    for (int a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = spec.aggregates[a];
      if (agg.kind == AggKind::kCountAll) continue;
      const Column& column = table.columns[agg.column];
      if (column.IsNull(r)) continue;
      if (agg.kind == AggKind::kCount) {
        ++it->second[a].count;
        it->second[a].any = true;
        continue;
      }
      PARPARAW_ASSIGN_OR_RETURN(double v, NumericValue(column, r));
      it->second[a].Accumulate(v);
    }
  }

  // Materialise the result table: optional key column + one float64 (or
  // int64 for counts) column per aggregate.
  Table out;
  if (key_column != nullptr) {
    out.schema.AddField(Field(table.schema.field(*spec.group_by).name,
                              DataType::String()));
    out.columns.emplace_back(DataType::String());
  }
  for (const Aggregate& agg : spec.aggregates) {
    const bool integral =
        agg.kind == AggKind::kCountAll || agg.kind == AggKind::kCount;
    out.schema.AddField(Field(AggName(agg, table.schema),
                              integral ? DataType::Int64()
                                       : DataType::Float64()));
    out.columns.emplace_back(integral ? DataType::Int64()
                                      : DataType::Float64());
  }
  for (const auto& [key, states] : groups) {
    int c = 0;
    if (key_column != nullptr) {
      if (key == "\x01NULL") {
        out.columns[c++].AppendNull();
      } else {
        out.columns[c++].AppendString(key);
      }
    }
    for (int a = 0; a < num_aggs; ++a) {
      const Aggregate& agg = spec.aggregates[a];
      const AggState& st = states[a];
      Column& column = out.columns[c++];
      switch (agg.kind) {
        case AggKind::kCountAll:
          column.AppendValue<int64_t>(group_count_all.at(key));
          break;
        case AggKind::kCount:
          column.AppendValue<int64_t>(st.count);
          break;
        case AggKind::kSum:
          column.AppendValue<double>(st.sum);
          break;
        case AggKind::kMin:
          if (st.any) {
            column.AppendValue<double>(st.min);
          } else {
            column.AppendNull();
          }
          break;
        case AggKind::kMax:
          if (st.any) {
            column.AppendValue<double>(st.max);
          } else {
            column.AppendNull();
          }
          break;
        case AggKind::kMean:
          if (st.count > 0) {
            column.AppendValue<double>(st.sum / st.count);
          } else {
            column.AppendNull();
          }
          break;
      }
    }
  }
  out.num_rows = static_cast<int64_t>(groups.size());
  out.rejected.assign(out.num_rows, 0);
  obs::RecordMillis(metrics, "query.aggregate_us",
                    agg_watch.ElapsedMillis());
  return out;
}

}  // namespace parparaw
