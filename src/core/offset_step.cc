#include "core/offset_step.h"

#include "obs/obs.h"
#include "parallel/scan.h"
#include "util/stopwatch.h"

namespace parparaw {

Status OffsetStep::Run(PipelineState* state, StepTimings* timings) {
  obs::TraceSpan span(state->options->tracer, "step.offset", "pipeline");
  Stopwatch watch;
  const int64_t num_chunks = state->num_chunks;

  // Record offsets: exclusive prefix sum over the per-chunk record counts.
  std::vector<int64_t> counts(num_chunks);
  for (int64_t c = 0; c < num_chunks; ++c) counts[c] = state->record_counts[c];
  state->record_offsets.assign(num_chunks, 0);
  const int64_t terminated_records = ExclusivePrefixSum(
      state->pool, counts.data(), state->record_offsets.data(), num_chunks);
  state->num_records =
      terminated_records + (state->has_trailing_record ? 1 : 0);

  // Column offsets: exclusive ⊕-scan (identity: relative 0, which matches
  // "column 0 at the very start of the input").
  std::vector<ColumnOffset> scanned(num_chunks);
  ExclusiveScan(state->pool, state->column_offsets.data(), scanned.data(),
                num_chunks, CombineColumnOffsets, ColumnOffset{});
  state->entry_columns.resize(num_chunks);
  for (int64_t c = 0; c < num_chunks; ++c) {
    state->entry_columns[c] = scanned[c].value;
  }
  const double elapsed_ms = watch.ElapsedMillis();
  timings->scan_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.offset_us", elapsed_ms);
  return Status::OK();
}

}  // namespace parparaw
