#ifndef PARPARAW_CORE_CONTEXT_STEP_H_
#define PARPARAW_CORE_CONTEXT_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 1 (§3.1): determine every chunk's parsing context.
///
/// Each chunk simulates |S| DFA instances — one per possible entry state —
/// producing its state-transition vector (the "parse" work). An exclusive
/// prefix scan with the composite operator ∘ then yields each chunk's true
/// entry state without any sequential pass over the input (the "scan"
/// work). Fills: transition_vectors, entry_states, final_state,
/// has_trailing_record.
class ContextStep {
 public:
  /// Runs the step; timings->parse_ms / scan_ms are incremented.
  static Status Run(PipelineState* state, StepTimings* timings);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_CONTEXT_STEP_H_
