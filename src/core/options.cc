#include "core/options.h"

#include <cstdio>

namespace parparaw {

StepTimings& StepTimings::operator+=(const StepTimings& other) {
  parse_ms += other.parse_ms;
  scan_ms += other.scan_ms;
  tag_ms += other.tag_ms;
  partition_ms += other.partition_ms;
  convert_ms += other.convert_ms;
  return *this;
}

std::string StepTimings::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "parse=%.2fms scan=%.2fms tag=%.2fms partition=%.2fms "
                "convert=%.2fms total=%.2fms",
                parse_ms, scan_ms, tag_ms, partition_ms, convert_ms,
                TotalMs());
  return buf;
}

WorkCounters& WorkCounters::operator+=(const WorkCounters& other) {
  input_bytes += other.input_bytes;
  parse_bytes_read += other.parse_bytes_read;
  dfa_transitions += other.dfa_transitions;
  tag_bytes_written += other.tag_bytes_written;
  sort_passes += other.sort_passes;
  sort_bytes_moved += other.sort_bytes_moved;
  scan_elements += other.scan_elements;
  convert_bytes += other.convert_bytes;
  output_bytes += other.output_bytes;
  return *this;
}

}  // namespace parparaw
