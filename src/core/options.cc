#include "core/options.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "robust/resource_guard.h"

namespace parparaw {

namespace {

std::string ByteName(uint8_t byte) {
  char buf[16];
  if (byte >= 0x21 && byte <= 0x7E) {
    std::snprintf(buf, sizeof(buf), "'%c'", static_cast<char>(byte));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%02X", byte);
  }
  return buf;
}

}  // namespace

Status ParseOptions::Validate() const {
  if (dialect.has_value()) {
    if (format.dfa.num_states() != 0) {
      return Status::Invalid(
          "ParseOptions sets both a format and a dialect; pick one (the "
          "dialect compiles into the format)");
    }
    PARPARAW_RETURN_NOT_OK(dialect->Validate());
  }
  // Chunk bounds and the planner contradiction taxonomy live with the
  // consolidated tuning surface.
  PARPARAW_RETURN_NOT_OK(ValidateTuning());
  if (skip_rows < 0) {
    return Status::Invalid("skip_rows must be non-negative, got " +
                           std::to_string(skip_rows));
  }
  for (int64_t record : skip_records) {
    if (record < 0) {
      return Status::Invalid("skip_records contains negative index " +
                             std::to_string(record));
    }
  }
  for (int column : skip_columns) {
    if (column < 0) {
      return Status::Invalid("skip_columns contains negative index " +
                             std::to_string(column));
    }
  }
  if (memory_budget < 0) {
    return Status::Invalid("memory_budget must be non-negative, got " +
                           std::to_string(memory_budget));
  }
  if (block_collaboration_threshold > device_collaboration_threshold) {
    return Status::Invalid(
        "block_collaboration_threshold (" +
        std::to_string(block_collaboration_threshold) +
        ") exceeds device_collaboration_threshold (" +
        std::to_string(device_collaboration_threshold) +
        "); the block-level path must engage before the device-level one");
  }
  if (tagging_mode == TaggingMode::kInlineTerminated) {
    if (terminator == 0) {
      return Status::Invalid(
          "TaggingMode::kInlineTerminated needs a non-zero terminator byte "
          "(the default is the ASCII unit separator 0x1F)");
    }
    // With no explicit format the RFC 4180 defaults apply; a dialect
    // contributes its own delimiters before it is even compiled.
    const uint8_t field = format.dfa.num_states() > 0 ? format.field_delimiter
                          : dialect.has_value()
                              ? dialect->field_delimiter
                              : static_cast<uint8_t>(',');
    const uint8_t record = format.dfa.num_states() > 0
                               ? format.record_delimiter
                           : dialect.has_value()
                               ? dialect->record_delimiter_final()
                               : static_cast<uint8_t>('\n');
    if (terminator == field || terminator == record) {
      return Status::Invalid(
          "inline terminator " + ByteName(terminator) +
          " collides with the format's " +
          (terminator == field ? "field" : "record") +
          " delimiter; pick a byte that cannot occur as a delimiter");
    }
  }
  if (max_record_columns == 0) {
    return Status::Invalid(
        "max_record_columns must be positive; it bounds the per-record "
        "column tables against adversarial delimiter-dense inputs");
  }
  if (column_count_policy == ColumnCountPolicy::kValidate &&
      error_policy == robust::ErrorPolicy::kQuarantine) {
    return Status::Invalid(
        "ColumnCountPolicy::kValidate aborts on the first inconsistent "
        "record, so ErrorPolicy::kQuarantine can never capture it; use "
        "kReject (quarantines mismatched records) or a non-quarantine "
        "error policy");
  }
  return Status::OK();
}

StepTimings& StepTimings::operator+=(const StepTimings& other) {
  parse_ms += other.parse_ms;
  scan_ms += other.scan_ms;
  tag_ms += other.tag_ms;
  partition_ms += other.partition_ms;
  convert_ms += other.convert_ms;
  return *this;
}

std::string StepTimings::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "parse=%.2fms scan=%.2fms tag=%.2fms partition=%.2fms "
                "convert=%.2fms total=%.2fms",
                parse_ms, scan_ms, tag_ms, partition_ms, convert_ms,
                TotalMs());
  return buf;
}

WorkCounters& WorkCounters::operator+=(const WorkCounters& other) {
  input_bytes += other.input_bytes;
  parse_bytes_read += other.parse_bytes_read;
  dfa_transitions += other.dfa_transitions;
  tag_bytes_written += other.tag_bytes_written;
  sort_passes += other.sort_passes;
  sort_bytes_moved += other.sort_bytes_moved;
  scan_elements += other.scan_elements;
  convert_bytes += other.convert_bytes;
  output_bytes += other.output_bytes;
  // Peak footprints do not sum across partitions: the next partition's
  // transpose reuses the buffers the previous one released.
  transpose_peak_bytes = std::max(transpose_peak_bytes,
                                  other.transpose_peak_bytes);
  return *this;
}

TransposeMode EffectiveTransposeMode(const ParseOptions& options) {
  if (options.transpose_mode != TransposeMode::kAuto) {
    return options.transpose_mode;
  }
  // Centralized, once-per-process env parsing (plan/tuning.h): the sweep
  // scripts set this for a whole process, and a per-parse getenv would be
  // a race under TSan anyway.
  return plan::EnvTransposeMode().value_or(TransposeMode::kFieldGather);
}

TaggingMode EffectiveTaggingMode(const ParseOptions& options) {
  return options.tagging_mode == TaggingMode::kAuto ? TaggingMode::kRecordTags
                                                    : options.tagging_mode;
}

int64_t ParseWorkingSetFactor(const ParseOptions& options) {
  return EffectiveTransposeMode(options) == TransposeMode::kSymbolSort
             ? robust::kParseMemoryFactor
             : robust::kParseMemoryFactorFieldGather;
}

}  // namespace parparaw
