#include "core/convert_step.h"

#include <algorithm>
#include <cstring>

#include "columnar/table.h"
#include "convert/inference.h"
#include "convert/numeric.h"
#include "convert/temporal.h"
#include "core/css_index.h"
#include "obs/obs.h"
#include "parallel/scan.h"
#include "robust/resource_guard.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

// Row-blocked parallel loop: blocks are multiples of 64 rows so concurrent
// validity-bitmap word writes never straddle workers.
constexpr int64_t kRowBlock = 4096;

Status ParallelOverRowBlocks(
    ThreadPool* pool, int64_t num_rows,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t num_blocks = (num_rows + kRowBlock - 1) / kRowBlock;
  return ParallelForEach(pool, 0, num_blocks, [&](int64_t blk) {
    const int64_t b = blk * kRowBlock;
    const int64_t e = std::min(b + kRowBlock, num_rows);
    body(b, e);
  });
}

std::string_view FieldView(const PipelineState& state,
                           const FieldEntry& field) {
  return std::string_view(
      reinterpret_cast<const char*>(state.css.data()) + field.offset,
      static_cast<size_t>(field.length));
}

// Parses `sv` into column slot `row`; returns false on malformed input.
bool ConvertValue(const DataType& type, std::string_view sv, Column* column,
                  int64_t row) {
  switch (type.id) {
    case TypeId::kBool: {
      bool v;
      if (!ParseBool(sv, &v)) return false;
      column->SetValue<uint8_t>(row, v ? 1 : 0);
      return true;
    }
    case TypeId::kInt32: {
      int32_t v;
      if (!ParseInt32(sv, &v)) return false;
      column->SetValue<int32_t>(row, v);
      return true;
    }
    case TypeId::kInt64: {
      int64_t v;
      if (!ParseInt64(sv, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kFloat64: {
      double v;
      if (!ParseFloat64(sv, &v)) return false;
      column->SetValue<double>(row, v);
      return true;
    }
    case TypeId::kDecimal64: {
      int64_t v;
      if (!ParseDecimal64(sv, type.scale, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kDate32: {
      int32_t v;
      if (!ParseDate32(sv, &v)) return false;
      column->SetValue<int32_t>(row, v);
      return true;
    }
    case TypeId::kTimestampMicros: {
      int64_t v;
      if (!ParseTimestampMicros(sv, &v)) return false;
      column->SetValue<int64_t>(row, v);
      return true;
    }
    case TypeId::kString:
      return false;  // handled by the string path
  }
  return false;
}

struct ColumnPlan {
  int source_index = 0;  // column tag in the input
  Field field;           // resolved output field (name/type/default)
};

}  // namespace

Status ConvertStep::Run(PipelineState* state, StepTimings* timings,
                        WorkCounters* work, ParseOutput* output) {
  obs::TraceSpan span(state->options->tracer, "step.convert", "pipeline",
                      static_cast<int64_t>(state->css.size()));
  Stopwatch watch;
  const ParseOptions& options = *state->options;
  const int64_t rows = state->num_out_rows;
  const bool schema_given = options.schema.num_fields() > 0;
  const uint32_t num_data_cols =
      schema_given ? static_cast<uint32_t>(options.schema.num_fields())
                   : state->max_columns;

  // Map output rows back to their original records (for the empty-vs-
  // missing field distinction below).
  std::vector<int64_t> record_of_row(rows, 0);
  for (int64_t r = 0; r < state->num_records; ++r) {
    if (!state->record_dropped.empty() && state->record_dropped[r]) continue;
    record_of_row[state->out_row_of_record[r]] = r;
  }

  // Select output columns.
  std::vector<uint8_t> skipped(num_data_cols, 0);
  for (int col : options.skip_columns) {
    if (col >= 0 && static_cast<uint32_t>(col) < num_data_cols) {
      skipped[col] = 1;
    }
  }
  std::vector<ColumnPlan> plans;
  for (uint32_t j = 0; j < num_data_cols; ++j) {
    if (skipped[j]) continue;
    ColumnPlan plan;
    plan.source_index = static_cast<int>(j);
    if (schema_given) {
      plan.field = options.schema.field(static_cast<int>(j));
    } else {
      plan.field = Field("f" + std::to_string(j), DataType::String());
    }
    plans.push_back(std::move(plan));
  }

  Table& table = output->table;
  table.num_rows = rows;
  table.rejected.assign(rows, 0);
  table.columns.clear();

  // Error provenance for the facade's ErrorPolicy handling: why each row
  // was rejected and which source column did it. First error per row wins;
  // columns are converted sequentially and rows within a column are
  // block-partitioned, so the writes never race.
  state->reject_kind.assign(rows, 0);
  state->reject_column.assign(rows, -1);
  const auto mark_rejected = [&](int64_t row, uint8_t kind, int32_t col) {
    table.rejected[row] = 1;
    if (state->reject_kind[row] == 0) {
      state->reject_kind[row] = kind;
      state->reject_column[row] = col;
    }
  };

  std::vector<FieldEntry> fields;
  for (ColumnPlan& plan : plans) {
    const uint32_t j = static_cast<uint32_t>(plan.source_index);
    PARPARAW_RETURN_NOT_OK(BuildCssIndex(*state, j, &fields));
    const int64_t num_fields = static_cast<int64_t>(fields.size());

    // Type inference (§4.3): classify each field, then reduce with the
    // lattice join.
    if (!schema_given && options.infer_types && num_fields > 0) {
      std::vector<InferredKind> kinds(num_fields);
      PARPARAW_RETURN_NOT_OK(
          ParallelForEach(state->pool, 0, num_fields, [&](int64_t k) {
            kinds[k] = ClassifyField(FieldView(*state, fields[k]));
          }));
      const InferredKind joined =
          Reduce(state->pool, kinds.data(), num_fields, Join,
                 InferredKind::kEmpty);
      plan.field.type = KindToDataType(joined);
    }

    // Field-of-row lookup (rows without a field keep -1).
    std::vector<int64_t> field_of_row(rows, -1);
    PARPARAW_RETURN_NOT_OK(
        ParallelForEach(state->pool, 0, num_fields, [&](int64_t k) {
          field_of_row[fields[k].row] = k;
        }));

    // Typed default value (§4.3 "Default values for empty strings").
    const bool has_default = plan.field.default_value.has_value();
    Column column(plan.field.type);
    Column default_holder(plan.field.type);
    if (has_default && plan.field.type.id != TypeId::kString) {
      default_holder.Allocate(1);
      if (!ConvertValue(plan.field.type, *plan.field.default_value,
                        &default_holder, 0)) {
        return Status::Invalid("default value '" +
                               *plan.field.default_value +
                               "' is not a valid " +
                               plan.field.type.ToString());
      }
    }

    const bool nullable = plan.field.nullable;
    // "Field exists but is empty" vs "record is too short": an empty field
    // exists when the record has more than `j` columns.
    const auto field_exists = [&](int64_t row) {
      return state->record_column_counts[record_of_row[row]] > j;
    };

    if (plan.field.type.id != TypeId::kString) {
      const int width = FixedWidth(plan.field.type.id);
      column.Allocate(rows);
      PARPARAW_RETURN_NOT_OK(ParallelOverRowBlocks(
          state->pool, rows, [&](int64_t b, int64_t e) {
            for (int64_t row = b; row < e; ++row) {
              const int64_t k = field_of_row[row];
              std::string_view sv =
                  k >= 0 ? FieldView(*state, fields[k]) : std::string_view();
              bool ok = false;
              if (!sv.empty()) {
                ok = ConvertValue(plan.field.type, sv, &column, row);
                if (!ok) {
                  // Malformed value (Fig. 5).
                  mark_rejected(row, 1, plan.source_index);
                }
              } else if (has_default) {
                std::memcpy(column.mutable_data()->data() + row * width,
                            default_holder.data().data(), width);
                column.SetValid(row);
                ok = true;
              }
              if (!ok) {
                column.SetNull(row);
                if (!nullable) mark_rejected(row, 2, plan.source_index);
              }
            }
          }));
      work->convert_bytes +=
          (state->column_css_offsets.size() > j + 1
               ? state->column_css_offsets[j + 1] - state->column_css_offsets[j]
               : 0) +
          rows * width;
    } else {
      // String path: lengths + validity, prefix sum, then the copy passes
      // with the three collaboration levels.
      const std::string default_str =
          has_default ? *plan.field.default_value : std::string();
      std::vector<int64_t> lengths(rows, 0);
      std::vector<uint8_t> valid(rows, 0);
      PARPARAW_RETURN_NOT_OK(ParallelOverRowBlocks(
          state->pool, rows, [&](int64_t b, int64_t e) {
        for (int64_t row = b; row < e; ++row) {
          const int64_t k = field_of_row[row];
          if (k >= 0 && fields[k].length > 0) {
            lengths[row] = fields[k].length;
            valid[row] = 1;
          } else if (k >= 0 || field_exists(row)) {
            // Present but empty: the default if given, else a valid "".
            lengths[row] = has_default ? static_cast<int64_t>(default_str.size())
                                       : 0;
            valid[row] = 1;
          } else if (has_default) {
            lengths[row] = static_cast<int64_t>(default_str.size());
            valid[row] = 1;
          } else {
            valid[row] = 0;  // missing field, no default -> NULL
          }
        }
      }));
      column.Allocate(rows);
      std::vector<int64_t>* offsets = column.mutable_offsets();
      const int64_t total_bytes = ExclusivePrefixSum(
          state->pool, lengths.data(), offsets->data(), rows);
      (*offsets)[rows] = total_bytes;
      PARPARAW_RETURN_NOT_OK(robust::GuardedAssign(
          "alloc.convert", column.mutable_string_data(), total_bytes,
          uint8_t{0}));
      uint8_t* out = column.mutable_string_data()->data();

      // Thread-exclusive + block-level copies; device-level fields are
      // deferred (§3.3).
      const size_t block_threshold = options.block_collaboration_threshold;
      const size_t device_threshold = options.device_collaboration_threshold;
      std::vector<std::vector<int64_t>> deferred_per_block(
          (rows + kRowBlock - 1) / kRowBlock);
      PARPARAW_RETURN_NOT_OK(ParallelOverRowBlocks(
          state->pool, rows, [&](int64_t b, int64_t e) {
        for (int64_t row = b; row < e; ++row) {
          const int64_t k = field_of_row[row];
          const uint8_t* src;
          int64_t len;
          if (k >= 0 && fields[k].length > 0) {
            src = state->css.data() + fields[k].offset;
            len = fields[k].length;
          } else if (valid[row] && has_default) {
            src = reinterpret_cast<const uint8_t*>(default_str.data());
            len = static_cast<int64_t>(default_str.size());
          } else {
            continue;
          }
          if (static_cast<size_t>(len) > device_threshold) {
            deferred_per_block[b / kRowBlock].push_back(row);
            continue;
          }
          uint8_t* dst = out + (*offsets)[row];
          if (static_cast<size_t>(len) <= block_threshold) {
            std::memcpy(dst, src, len);  // thread-exclusive
          } else {
            // Block-level collaboration: the block's threads copy the field
            // in segments (modelled as a segmented loop on the CPU).
            for (int64_t seg = 0; seg < len;
                 seg += static_cast<int64_t>(block_threshold)) {
              const int64_t seg_len =
                  std::min<int64_t>(block_threshold, len - seg);
              std::memcpy(dst + seg, src + seg, seg_len);
            }
          }
          if (valid[row]) column.SetValid(row);
        }
      }));
      // Device-level collaboration: each oversized field gets a
      // device-wide parallel copy of its own.
      for (const auto& block_rows : deferred_per_block) {
        for (int64_t row : block_rows) {
          const int64_t k = field_of_row[row];
          const uint8_t* src = state->css.data() + fields[k].offset;
          uint8_t* dst = out + (*offsets)[row];
          const int64_t len = fields[k].length;
          PARPARAW_RETURN_NOT_OK(ParallelFor(
              state->pool, 0, len, [&](int64_t sb, int64_t se) {
                std::memcpy(dst + sb, src + sb, se - sb);
              }));
        }
      }
      // Validity for rows handled outside the copy loop (empty strings,
      // deferred fields) — block-aligned, race-free.
      PARPARAW_RETURN_NOT_OK(ParallelOverRowBlocks(
          state->pool, rows, [&](int64_t b, int64_t e) {
            for (int64_t row = b; row < e; ++row) {
              if (valid[row]) {
                column.SetValid(row);
              } else {
                column.SetNull(row);
                if (!nullable) mark_rejected(row, 2, plan.source_index);
              }
            }
          }));
      work->convert_bytes += total_bytes + rows * 8;
    }

    table.schema.AddField(plan.field);
    table.columns.push_back(std::move(column));
  }

  output->min_columns = state->min_columns;
  output->max_columns = state->max_columns;
  output->records_dropped = state->num_records - rows;
  work->output_bytes += table.TotalBufferBytes();
  const double elapsed_ms = watch.ElapsedMillis();
  timings->convert_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.convert_us", elapsed_ms);
  return Status::OK();
}

}  // namespace parparaw
