#include "core/partition_step.h"

#include <algorithm>
#include <cstring>

#include "obs/obs.h"
#include "parallel/radix_sort.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"
#include "text/unicode.h"
#include "util/bit_util.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

inline size_t AdjustBegin(const PipelineState& state, size_t pos) {
  pos = std::min(pos, state.size);
  if (state.options->encoding == TextEncoding::kUtf8) {
    return AdjustChunkBeginUtf8(state.data, state.size, pos);
  }
  return pos;
}

// Deterministic model of the transposition phase's peak resident bytes,
// derived from container sizes rather than allocator introspection so it is
// identical across platforms and runs. Symbol sort: the CSS, the per-symbol
// tag sidebands, the permutation, and the sort's key/payload scratch all
// live at once at the final scatter. Field gather: the source-order
// extents, the bucketed entries with their offsets, and the final CSS.
int64_t ModelTransposePeakBytes(const PipelineState& state) {
  if (state.transpose_mode == TransposeMode::kFieldGather) {
    return static_cast<int64_t>(
        state.gather_extents.size() * sizeof(FieldExtent) +
        state.gather_entries.size() * sizeof(FieldEntry) +
        state.gather_entry_offsets.size() * sizeof(int64_t) +
        state.css.size());
  }
  const int64_t n = static_cast<int64_t>(state.css.size());
  const int64_t sideband =
      static_cast<int64_t>(state.col_tags.size()) * 4 +
      static_cast<int64_t>(state.rec_tags.size()) * 4 +
      static_cast<int64_t>(state.field_end.size());
  // css + sidebands + permutation + radix scratch + sorted-key copy +
  // sorted-payload copy.
  return n + sideband + n * 4 + n * 4 + n * 4 + n;
}

// One stable partitioning pass over O(fields) column keys (§3.3 recast at
// field granularity): per-tile histograms of field counts and CSS slot
// bytes, a bucket-major x tile-major exclusive scan (the same stability
// argument as the radix sort's), then a stable scatter that copies each
// field's value bytes into its column's CSS with one memcpy — or a
// filtered walk when control bytes (quotes, escapes) interleave the field.
Status RunFieldGather(PipelineState* state, WorkCounters* work) {
  const ParseOptions& options = *state->options;
  const TaggingMode mode = options.tagging_mode;
  const bool slot_per_field = mode != TaggingMode::kRecordTags;
  const uint32_t num_partitions = state->num_partitions;
  const std::vector<FieldExtent>& extents = state->gather_extents;
  const int64_t n_fields = static_cast<int64_t>(extents.size());
  state->permutation.clear();

  if (num_partitions == 0) {
    state->column_histogram.assign(num_partitions, 0);
    state->column_css_offsets.assign(num_partitions + 1, 0);
    state->gather_entries.clear();
    state->gather_entry_offsets.assign(num_partitions + 1, 0);
    return Status::OK();
  }

  // The entry/CSS buffers are the gather's big allocations; the failpoint
  // models them failing (GuardedResize re-checks it per buffer).
  PARPARAW_FAILPOINT("alloc.gather");

  const int num_workers = state->pool ? state->pool->num_threads() : 1;
  const int64_t num_tiles = std::max<int64_t>(
      1, std::min<int64_t>(num_workers, n_fields / 1024 + 1));
  const int64_t tile = (n_fields + num_tiles - 1) / num_tiles;

  // (1) Per-tile histograms: kept fields and CSS slot bytes per column.
  std::vector<std::vector<int64_t>> tile_fields(
      num_tiles, std::vector<int64_t>(num_partitions, 0));
  std::vector<std::vector<int64_t>> tile_bytes(
      num_tiles, std::vector<int64_t>(num_partitions, 0));
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_tiles, [&](int64_t t) {
        const int64_t b = t * tile;
        const int64_t e = std::min<int64_t>(b + tile, n_fields);
        std::vector<int64_t>& fields = tile_fields[t];
        std::vector<int64_t>& bytes = tile_bytes[t];
        for (int64_t i = b; i < e; ++i) {
          const FieldExtent& ex = extents[i];
          if (ex.column == kDroppedColumn) continue;
          ++fields[ex.column];
          bytes[ex.column] += ex.length + (slot_per_field ? 1 : 0);
        }
      }));

  // (2) Bucket-major then tile-major exclusive scan, turning the per-tile
  // counts into stable write cursors and yielding the per-column totals the
  // CSS offsets come from (the gather's equivalent of the sort histogram).
  state->column_histogram.assign(num_partitions, 0);
  state->column_css_offsets.assign(num_partitions + 1, 0);
  PARPARAW_RETURN_NOT_OK(robust::GuardedAssign(
      "alloc.gather", &state->gather_entry_offsets,
      static_cast<size_t>(num_partitions) + 1, int64_t{0}));
  int64_t entry_running = 0;
  int64_t byte_running = 0;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    state->gather_entry_offsets[p] = entry_running;
    state->column_css_offsets[p] = byte_running;
    for (int64_t t = 0; t < num_tiles; ++t) {
      const int64_t f = tile_fields[t][p];
      const int64_t by = tile_bytes[t][p];
      tile_fields[t][p] = entry_running;
      tile_bytes[t][p] = byte_running;
      entry_running += f;
      byte_running += by;
    }
    state->column_histogram[p] =
        static_cast<uint64_t>(byte_running - state->column_css_offsets[p]);
  }
  state->gather_entry_offsets[num_partitions] = entry_running;
  state->column_css_offsets[num_partitions] = byte_running;

  // (3) Stable scatter + whole-field gather copy.
  PARPARAW_RETURN_NOT_OK(robust::GuardedResize(
      "alloc.gather", &state->gather_entries,
      static_cast<size_t>(entry_running)));
  PARPARAW_RETURN_NOT_OK(robust::GuardedResize(
      "alloc.gather", &state->css, static_cast<size_t>(byte_running)));
  const uint8_t* data = state->data;
  const uint8_t* flags = state->symbol_flags.data();
  uint8_t* css = state->css.data();
  // The very first field starts where the first chunk starts — under UTF-8
  // chunking that can be past byte 0 (a leading continuation byte is
  // outside every chunk and was never tagged, so it must not be gathered).
  const int64_t input_begin =
      static_cast<int64_t>(AdjustBegin(*state, 0));
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_tiles, [&](int64_t t) {
        const int64_t b = t * tile;
        const int64_t e = std::min<int64_t>(b + tile, n_fields);
        std::vector<int64_t>& entry_cursor = tile_fields[t];
        std::vector<int64_t>& byte_cursor = tile_bytes[t];
        for (int64_t i = b; i < e; ++i) {
          const FieldExtent& ex = extents[i];
          if (ex.column == kDroppedColumn) continue;
          const int64_t out = byte_cursor[ex.column];
          const int64_t src_begin =
              i == 0 ? input_begin : extents[i - 1].src_end + 1;
          // An inclusive boundary (kSymbolFieldDelimiter without
          // kSymbolControl) is the field's last value byte: the copy
          // window extends over it. src_end == size is the trailing
          // record's virtual end, never inclusive.
          const bool inclusive_end =
              ex.src_end < static_cast<int64_t>(state->size) &&
              (flags[ex.src_end] & kSymbolFieldDelimiter) != 0 &&
              (flags[ex.src_end] & kSymbolControl) == 0;
          const int64_t copy_end = ex.src_end + (inclusive_end ? 1 : 0);
          if (copy_end - src_begin == ex.length) {
            std::memcpy(css + out, data + src_begin,
                        static_cast<size_t>(ex.length));
          } else {
            int64_t w = out;
            const int64_t w_end = out + ex.length;
            for (int64_t s = src_begin; s < copy_end && w < w_end; ++s) {
              if ((flags[s] &
                   (kSymbolRecordDelimiter | kSymbolControl)) == 0) {
                css[w++] = data[s];
              }
            }
          }
          if (slot_per_field) {
            // The terminator slot the per-symbol path emits at each field
            // end: the terminator byte inline, the delimiter byte itself in
            // the vector mode (the trailing record's virtual end uses the
            // format's record delimiter).
            css[out + ex.length] =
                mode == TaggingMode::kInlineTerminated
                    ? options.terminator
                    : (ex.src_end < static_cast<int64_t>(state->size)
                           ? data[ex.src_end]
                           : options.format.record_delimiter);
          }
          state->gather_entries[entry_cursor[ex.column]] =
              FieldEntry{ex.row, out, ex.length};
          ++entry_cursor[ex.column];
          byte_cursor[ex.column] =
              out + ex.length + (slot_per_field ? 1 : 0);
        }
      }));

  work->sort_passes += 1;
  work->sort_bytes_moved +=
      byte_running + n_fields * static_cast<int64_t>(sizeof(FieldExtent));
  obs::AddCount(state->options->metrics, "partition.sort_bytes_moved",
                byte_running +
                    n_fields * static_cast<int64_t>(sizeof(FieldExtent)));
  return Status::OK();
}

}  // namespace

Status PartitionStep::Run(PipelineState* state, StepTimings* timings,
                          WorkCounters* work) {
  obs::TraceSpan span(state->options->tracer, "step.partition", "pipeline",
                      static_cast<int64_t>(state->css.size()));
  Stopwatch watch;

  if (state->transpose_mode == TransposeMode::kFieldGather) {
    PARPARAW_RETURN_NOT_OK(RunFieldGather(state, work));
    work->transpose_peak_bytes = std::max(work->transpose_peak_bytes,
                                          ModelTransposePeakBytes(*state));
    const double elapsed_ms = watch.ElapsedMillis();
    timings->partition_ms += elapsed_ms;
    obs::RecordMillis(state->options->metrics, "step.partition_us",
                      elapsed_ms);
    span.set_bytes(static_cast<int64_t>(state->css.size()));
    return Status::OK();
  }

  const int64_t n = static_cast<int64_t>(state->css.size());
  if (n == 0 || state->num_partitions == 0) {
    state->column_histogram.assign(state->num_partitions, 0);
    state->column_css_offsets.assign(state->num_partitions + 1, 0);
    const double elapsed_ms = watch.ElapsedMillis();
    timings->partition_ms += elapsed_ms;
    obs::RecordMillis(state->options->metrics, "step.partition_us",
                      elapsed_ms);
    return Status::OK();
  }

  // The sort's scratch buffers (key + payload copies per pass) are the
  // partition step's big allocations; the failpoint models them failing.
  PARPARAW_FAILPOINT("alloc.partition");

  RadixSortOptions sort_options;
  PARPARAW_RETURN_NOT_OK(StableRadixSortWithHistogram(
      state->pool, &state->col_tags, &state->permutation,
      state->num_partitions, &state->column_histogram, sort_options));

  // Move the symbols and their side arrays along with the sort key (§3.3:
  // "the symbols and the record-tags are moved along with the associated
  // sort-key").
  std::vector<uint8_t> sorted_css;
  ApplyPermutation(state->pool, state->permutation, state->css, &sorted_css);
  state->css = std::move(sorted_css);
  int64_t bytes_moved = n * (1 + 4);  // symbol + key per pass output
  if (!state->rec_tags.empty()) {
    std::vector<uint32_t> sorted_tags;
    ApplyPermutation(state->pool, state->permutation, state->rec_tags,
                     &sorted_tags);
    state->rec_tags = std::move(sorted_tags);
    bytes_moved += n * 4;
  }
  if (!state->field_end.empty()) {
    std::vector<uint8_t> sorted_end;
    ApplyPermutation(state->pool, state->permutation, state->field_end,
                     &sorted_end);
    state->field_end = std::move(sorted_end);
    bytes_moved += n;
  }

  // The histogram's exclusive prefix sum locates every column's CSS.
  state->column_css_offsets.assign(state->num_partitions + 1, 0);
  for (uint32_t p = 0; p < state->num_partitions; ++p) {
    state->column_css_offsets[p + 1] =
        state->column_css_offsets[p] +
        static_cast<int64_t>(state->column_histogram[p]);
  }

  const int sort_passes =
      state->num_partitions > 1
          ? (bit_util::Log2Floor(state->num_partitions - 1) + 8) / 8
          : 1;
  work->sort_passes += sort_passes;
  work->sort_bytes_moved += bytes_moved * sort_passes;
  work->transpose_peak_bytes = std::max(work->transpose_peak_bytes,
                                        ModelTransposePeakBytes(*state));
  const double elapsed_ms = watch.ElapsedMillis();
  timings->partition_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.partition_us", elapsed_ms);
  obs::AddCount(state->options->metrics, "partition.sort_bytes_moved",
                bytes_moved * sort_passes);
  return Status::OK();
}

}  // namespace parparaw
