#include "core/partition_step.h"

#include "obs/obs.h"
#include "parallel/radix_sort.h"
#include "robust/failpoint.h"
#include "util/bit_util.h"
#include "util/stopwatch.h"

namespace parparaw {

Status PartitionStep::Run(PipelineState* state, StepTimings* timings,
                          WorkCounters* work) {
  obs::TraceSpan span(state->options->tracer, "step.partition", "pipeline",
                      static_cast<int64_t>(state->css.size()));
  Stopwatch watch;
  const int64_t n = static_cast<int64_t>(state->css.size());
  if (n == 0 || state->num_partitions == 0) {
    state->column_histogram.assign(state->num_partitions, 0);
    state->column_css_offsets.assign(state->num_partitions + 1, 0);
    const double elapsed_ms = watch.ElapsedMillis();
    timings->partition_ms += elapsed_ms;
    obs::RecordMillis(state->options->metrics, "step.partition_us",
                      elapsed_ms);
    return Status::OK();
  }

  // The sort's scratch buffers (key + payload copies per pass) are the
  // partition step's big allocations; the failpoint models them failing.
  PARPARAW_FAILPOINT("alloc.partition");

  RadixSortOptions sort_options;
  StableRadixSortWithHistogram(state->pool, &state->col_tags,
                               &state->permutation, state->num_partitions,
                               &state->column_histogram, sort_options);

  // Move the symbols and their side arrays along with the sort key (§3.3:
  // "the symbols and the record-tags are moved along with the associated
  // sort-key").
  std::vector<uint8_t> sorted_css;
  ApplyPermutation(state->pool, state->permutation, state->css, &sorted_css);
  state->css = std::move(sorted_css);
  int64_t bytes_moved = n * (1 + 4);  // symbol + key per pass output
  if (!state->rec_tags.empty()) {
    std::vector<uint32_t> sorted_tags;
    ApplyPermutation(state->pool, state->permutation, state->rec_tags,
                     &sorted_tags);
    state->rec_tags = std::move(sorted_tags);
    bytes_moved += n * 4;
  }
  if (!state->field_end.empty()) {
    std::vector<uint8_t> sorted_end;
    ApplyPermutation(state->pool, state->permutation, state->field_end,
                     &sorted_end);
    state->field_end = std::move(sorted_end);
    bytes_moved += n;
  }

  // The histogram's exclusive prefix sum locates every column's CSS.
  state->column_css_offsets.assign(state->num_partitions + 1, 0);
  for (uint32_t p = 0; p < state->num_partitions; ++p) {
    state->column_css_offsets[p + 1] =
        state->column_css_offsets[p] +
        static_cast<int64_t>(state->column_histogram[p]);
  }

  const int sort_passes =
      state->num_partitions > 1
          ? (bit_util::Log2Floor(state->num_partitions - 1) + 8) / 8
          : 1;
  work->sort_passes += sort_passes;
  work->sort_bytes_moved += bytes_moved * sort_passes;
  const double elapsed_ms = watch.ElapsedMillis();
  timings->partition_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.partition_us", elapsed_ms);
  obs::AddCount(state->options->metrics, "partition.sort_bytes_moved",
                bytes_moved * sort_passes);
  return Status::OK();
}

}  // namespace parparaw
