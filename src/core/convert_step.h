#ifndef PARPARAW_CORE_CONVERT_STEP_H_
#define PARPARAW_CORE_CONVERT_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 7 (§3.3/§4.3): generate typed columnar field values.
///
/// Per column: build the CSS index, optionally infer the column type
/// (parallel classify + lattice-join reduction), pre-initialise rows with
/// the default value / NULL (§4.3), then convert fields in parallel.
/// Conversion failures yield NULL and set the record's reject flag
/// (Fig. 5). String materialisation uses the three collaboration levels of
/// §3.3: short fields are copied thread-exclusively, medium ones with a
/// segmented block-level loop, and fields above the device threshold are
/// deferred and copied with a device-wide parallel loop.
class ConvertStep {
 public:
  static Status Run(PipelineState* state, StepTimings* timings,
                    WorkCounters* work, ParseOutput* output);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_CONVERT_STEP_H_
