#include "core/context_step.h"

#include <algorithm>

#include "obs/obs.h"
#include "parallel/scan.h"
#include "robust/resource_guard.h"
#include "simd/simd_kernels.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

// First symbol boundary at or after `pos` for the configured encoding.
inline size_t AdjustBegin(const PipelineState& state, size_t pos) {
  pos = std::min(pos, state.size);
  if (state.options->encoding == TextEncoding::kUtf8) {
    return AdjustChunkBeginUtf8(state.data, state.size, pos);
  }
  return pos;
}

}  // namespace

Status ContextStep::Run(PipelineState* state, StepTimings* timings) {
  const Dfa& dfa = state->options->format.dfa;
  const size_t chunk_size = state->options->chunk_size;
  const int64_t num_chunks = state->num_chunks;
  obs::TraceSpan span(state->options->tracer, "step.context", "pipeline",
                      static_cast<int64_t>(state->size));

  // Kernel selection (src/simd): the scalar reference path below, or the
  // fused vectorized path that also emits speculative bitmap flags for
  // each chunk's entry-state-independent suffix.
  simd::KernelLevel level = simd::ResolveKernelLevel(state->options->kernel);
  if (dfa.num_states() == 0) level = simd::KernelLevel::kScalar;
  state->kernel_level = level;

  // Parse: one state-transition vector per chunk (Fig. 3).
  Stopwatch parse_watch;
  state->transition_vectors.assign(num_chunks,
                                   StateVector::Identity(dfa.num_states()));
  if (level == simd::KernelLevel::kScalar) {
    PARPARAW_RETURN_NOT_OK(
        ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
          const size_t begin =
              AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
          const size_t end =
              AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
          state->transition_vectors[c] =
              dfa.TransitionVector(state->data + begin, end - begin);
        }));
  } else {
    state->kernel_plan =
        std::make_shared<simd::KernelPlan>(simd::BuildKernelPlan(dfa));
    PARPARAW_RETURN_NOT_OK(robust::GuardedAssign(
        "alloc.context", &state->symbol_flags, state->size, uint8_t{0}));
    state->spec_offsets.assign(num_chunks, -1);
    state->spec_states.assign(num_chunks, 0);
    state->spec_invalids.assign(num_chunks, -1);
    const simd::ChunkKernelFn kernel = simd::GetChunkKernel(level);
    const simd::KernelPlan& plan = *state->kernel_plan;

    // Hot-path instruments resolved once (name lookup takes a mutex).
    obs::MetricsRegistry* metrics = state->options->metrics;
    obs::Counter* converged_counter = nullptr;
    obs::Counter* unconverged_counter = nullptr;
    obs::Histogram* fastpath_bytes = nullptr;
    if (metrics != nullptr && metrics->enabled()) {
      converged_counter = metrics->GetCounter("simd.chunks_converged");
      unconverged_counter = metrics->GetCounter("simd.chunks_unconverged");
      fastpath_bytes = metrics->GetHistogram("simd.fastpath_bytes");
      metrics->SetGauge("simd.kernel_level", static_cast<int64_t>(level));
    }

    PARPARAW_RETURN_NOT_OK(
        ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
      const size_t begin =
          AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
      const size_t end =
          AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
      const simd::ChunkKernelResult result =
          kernel(plan, state->data, begin, end, state->symbol_flags.data());
      state->transition_vectors[c] = result.vector;
      state->spec_offsets[c] = result.spec_offset;
      state->spec_states[c] = result.spec_state;
      state->spec_invalids[c] = result.first_invalid;
      if (result.spec_offset >= 0) {
        if (converged_counter != nullptr) converged_counter->Increment();
        if (fastpath_bytes != nullptr) {
          fastpath_bytes->Record(static_cast<int64_t>(end) -
                                 result.spec_offset);
        }
      } else if (unconverged_counter != nullptr) {
        unconverged_counter->Increment();
      }
    }));
  }
  const double parse_ms = parse_watch.ElapsedMillis();
  timings->parse_ms += parse_ms;
  obs::RecordMillis(state->options->metrics, "step.context.parse_us",
                    parse_ms);

  // Scan: exclusive prefix scan with the composite operator, seeded with
  // the identity vector. Entry i of chunk c's scanned vector is the state
  // the DFA is in at c's start, had the sequential DFA started in state i.
  Stopwatch scan_watch;
  std::vector<StateVector> scanned(num_chunks,
                                   StateVector::Identity(dfa.num_states()));
  ExclusiveScan(
      state->pool, state->transition_vectors.data(), scanned.data(),
      num_chunks,
      [](const StateVector& a, const StateVector& b) { return Compose(a, b); },
      StateVector::Identity(dfa.num_states()));

  state->entry_states.resize(num_chunks);
  const int start = dfa.start_state();
  for (int64_t c = 0; c < num_chunks; ++c) {
    state->entry_states[c] = scanned[c].Get(start);
  }
  if (num_chunks > 0) {
    const StateVector last =
        Compose(scanned[num_chunks - 1], state->transition_vectors[num_chunks - 1]);
    state->final_state = last.Get(start);
  } else {
    state->final_state = static_cast<uint8_t>(start);
  }
  state->has_trailing_record =
      state->options->format.IsMidRecordState(state->final_state);
  const double scan_ms = scan_watch.ElapsedMillis();
  timings->scan_ms += scan_ms;
  obs::RecordMillis(state->options->metrics, "step.context.scan_us", scan_ms);
  return Status::OK();
}

}  // namespace parparaw
