#ifndef PARPARAW_CORE_PIPELINE_STATE_H_
#define PARPARAW_CORE_PIPELINE_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/options.h"
#include "dfa/state_vector.h"
#include "simd/simd_kernels.h"

namespace parparaw {

/// Per-chunk column-offset contribution (§3.2, Fig. 4). `absolute` is true
/// when the chunk contains at least one record delimiter, in which case
/// `value` counts the field delimiters after the last record delimiter;
/// otherwise `value` is the chunk's total field-delimiter count, relative
/// to the preceding chunk's offset.
struct ColumnOffset {
  uint32_t value = 0;
  bool absolute = false;
};

/// The paper's associative column-offset operator ⊕:
///   a ⊕ b = b                     if b is absolute
///   a ⊕ b = {a.value + b.value, a.absolute}   if b is relative
/// Identity: {0, relative}.
inline ColumnOffset CombineColumnOffsets(const ColumnOffset& a,
                                         const ColumnOffset& b) {
  if (b.absolute) return b;
  return ColumnOffset{a.value + b.value, a.absolute};
}

/// One field inside a column's concatenated symbol string (§3.3, Fig. 5).
struct FieldEntry {
  /// Output row this field belongs to.
  int64_t row = 0;
  /// Offset of the field's first symbol in the global CSS buffer.
  int64_t offset = 0;
  /// Number of value symbols (terminator slots excluded).
  int64_t length = 0;
};

/// One field of the *source* buffer, in source order — the O(fields) unit of
/// the TransposeMode::kFieldGather path. Produced by the tag step's extent
/// pass, consumed by the partition step's column bucketing + gather copy.
struct FieldExtent {
  /// Byte offset one past the field's last byte: the delimiter that ended
  /// it, or the end of input for the trailing field.
  int64_t src_end = 0;
  /// Kept value bytes in [src_begin, src_end) (flags==0 bytes only, so
  /// quotes/escapes/comment bytes are already excluded from the count).
  int64_t length = 0;
  /// Output row of the field's record, or -1 when the record was dropped
  /// (reject policy / skip_records) — dropped extents still occupy a slot
  /// so src_begin can be derived from the predecessor's src_end.
  int64_t row = -1;
  /// Column index, or kDroppedColumn when the field is dropped or its
  /// column is skipped / beyond the lookup width.
  uint32_t column = 0;
};

/// FieldExtent::column sentinel: the field is not part of the output.
inline constexpr uint32_t kDroppedColumn = 0xFFFFFFFFu;

/// Per-input-byte symbol classification produced by the bitmap step — the
/// paper's three bitmap indexes (§3.1), stored byte-per-symbol so parallel
/// chunk writers never share a word. Bit values match SymbolFlags.
using SymbolFlagsArray = std::vector<uint8_t>;

/// \brief All intermediate state threaded through the pipeline steps.
///
/// Each step consumes fields produced by earlier steps and fills its own;
/// the facade (core/parser.h) owns one instance per parse. The struct is
/// exposed so tests and benchmarks can run and inspect steps in isolation.
struct PipelineState {
  // --- immutable inputs ---
  const uint8_t* data = nullptr;
  size_t size = 0;
  const ParseOptions* options = nullptr;
  ThreadPool* pool = nullptr;
  int64_t num_chunks = 0;

  // --- kernel selection (src/simd) ---
  /// Level resolved by the context step for this parse; kScalar means the
  /// reference pipeline ran and none of the fields below are populated.
  simd::KernelLevel kernel_level = simd::KernelLevel::kScalar;
  /// DFA-derived lookup tables shared by the context and bitmap steps.
  std::shared_ptr<const simd::KernelPlan> kernel_plan;
  /// Per-chunk absolute byte offset where the fused kernel's lanes
  /// converged and speculative flag emission began; -1 when they never did.
  std::vector<int64_t> spec_offsets;
  /// Converged state at spec_offsets[c] — the bitmap step's verification
  /// token: its own walk must arrive there in exactly this state.
  std::vector<uint8_t> spec_states;
  /// Earliest invalid transition the fused kernel saw at/after
  /// spec_offsets[c], or -1.
  std::vector<int64_t> spec_invalids;

  // --- context step (§3.1) ---
  /// Per-chunk state-transition vectors (the "parse" bucket of Fig. 9).
  std::vector<StateVector> transition_vectors;
  /// Per-chunk DFA entry state after the composite-operator scan.
  std::vector<uint8_t> entry_states;
  /// DFA state after the whole input.
  uint8_t final_state = 0;
  /// True when the input ends inside an unterminated record.
  bool has_trailing_record = false;

  // --- bitmap step (§3.1/§3.2) ---
  SymbolFlagsArray symbol_flags;
  /// Per-chunk number of record delimiters.
  std::vector<uint32_t> record_counts;
  /// Per-chunk column-offset contribution.
  std::vector<ColumnOffset> column_offsets;
  /// Global byte offset of the first invalid transition, or -1.
  int64_t first_invalid_offset = -1;

  // --- offset step (§3.2) ---
  /// Record index at each chunk's start (exclusive prefix sum).
  std::vector<int64_t> record_offsets;
  /// Column index at each chunk's start (exclusive ⊕-scan).
  std::vector<uint32_t> entry_columns;
  /// Total records, including a trailing unterminated one.
  int64_t num_records = 0;

  // --- count pass (tag step, §4.3) ---
  /// Per-record column count (field delimiters + 1).
  std::vector<uint32_t> record_column_counts;
  /// Per-record drop flag (reject policy or skip_records).
  std::vector<uint8_t> record_dropped;
  /// Output row of each kept record (exclusive prefix sum of keeps).
  std::vector<int64_t> out_row_of_record;
  int64_t num_out_rows = 0;
  uint32_t min_columns = 0;
  uint32_t max_columns = 0;
  /// Partitions for the radix sort: max observed column index + 1.
  uint32_t num_partitions = 0;
  /// Expected column count applied by kReject/kValidate (0 when the robust
  /// policy ran).
  uint32_t expected_columns = 0;
  /// Per-record wrong-column-count flag. Only filled under
  /// ErrorPolicy::kQuarantine + ColumnCountPolicy::kReject, where the
  /// mismatched records are *kept* (marked rejected, quarantined for
  /// repair) instead of dropped.
  std::vector<uint8_t> record_column_mismatch;

  // --- error provenance (ErrorPolicy machinery; convert step + facade) ---
  /// Why output row r was rejected: 0 = not rejected, 1 = malformed value,
  /// 2 = NULL in a non-nullable column, 3 = wrong column count. First
  /// error per row wins.
  std::vector<uint8_t> reject_kind;
  /// Source column index of row r's first error; -1 for record-level
  /// problems.
  std::vector<int32_t> reject_column;

  // --- tag step outputs (§3.2/§4.1) ---
  /// Concatenated kept symbols (field data; plus one terminator slot per
  /// field in the inline/vector modes).
  std::vector<uint8_t> css;
  /// Column tag per kept symbol.
  std::vector<uint32_t> col_tags;
  /// Record tag (output row) per kept symbol; filled in kRecordTags mode.
  std::vector<uint32_t> rec_tags;
  /// Field-end marker per kept symbol; filled in kVectorDelimited mode.
  std::vector<uint8_t> field_end;

  // --- partition step (§3.3) ---
  /// Stable order after sorting by column tag.
  std::vector<uint32_t> permutation;
  /// Symbols per column (the sort's histogram, reused for CSS offsets).
  std::vector<uint64_t> column_histogram;
  /// Exclusive prefix sum of the histogram: each column's CSS offset.
  std::vector<int64_t> column_css_offsets;

  // --- field-gather transposition (TransposeMode::kFieldGather) ---
  /// The transpose mode the tag step resolved for this parse; the partition
  /// and CSS-index steps follow it so a parse never mixes paths.
  TransposeMode transpose_mode = TransposeMode::kSymbolSort;
  /// Every field of the buffer in source order, including dropped ones
  /// (their column is kDroppedColumn); field i starts at
  /// extents[i-1].src_end + 1 (0 for i == 0).
  std::vector<FieldExtent> gather_extents;
  /// Field entries bucketed by column (stable within a column), ready to
  /// slice per partition via gather_entry_offsets. FieldEntry::offset is
  /// already global-CSS-relative, matching the symbol-sort layout.
  std::vector<FieldEntry> gather_entries;
  /// Exclusive prefix: gather_entries[gather_entry_offsets[p] ..
  /// gather_entry_offsets[p+1]) are column p's fields (num_partitions + 1).
  std::vector<int64_t> gather_entry_offsets;
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_PIPELINE_STATE_H_
