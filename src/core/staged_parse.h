#ifndef PARPARAW_CORE_STAGED_PARSE_H_
#define PARPARAW_CORE_STAGED_PARSE_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/options.h"
#include "core/pipeline_state.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/stopwatch.h"

namespace parparaw {

/// \brief The parse pipeline cut into its three coarse stages, so the
/// pipelined executor (src/exec) can overlap them across partitions the
/// way the paper's Fig. 7 schedule overlaps its GPU streams:
///
///   Scan       context resolution + bitmap indexes (+ remainder offset)
///              + record/column offset scans + symbol tagging —
///              everything that must see the partition's raw bytes. After
///              Scan, the carry-over for the *next* partition is known
///              (remainder_offset()), so its Scan can start while this
///              partition continues downstream.
///   Partition  the stable radix sort into per-column symbol runs.
///   Convert    CSS indexing + typed value generation + error policy.
///
/// Parser::Parse runs the three stages back to back on one thread; the
/// executor runs each stage on its own thread with partitions flowing
/// between them, which is exactly why the split exists. Stage methods
/// must be called in order, each at most once. The instance must not
/// move between Scan and TakeOutput (the pipeline state points into it),
/// so the executor heap-allocates its per-partition tasks.
class StagedParse {
 public:
  StagedParse() = default;
  StagedParse(const StagedParse&) = delete;
  StagedParse& operator=(const StagedParse&) = delete;

  /// Runs the scan stage over `input` under `options`. `input` must stay
  /// alive and unmoved until TakeOutput()/destruction. Empty (or fully
  /// row-skipped) inputs complete immediately — see finished().
  Status Scan(std::string_view input, const ParseOptions& options);

  /// True when Scan already produced the final output (empty input):
  /// callers skip Partition/Convert and go straight to TakeOutput().
  bool finished() const { return finished_; }

  /// Byte offset (in the caller's original buffer) where the unterminated
  /// trailing record starts. Valid after Scan when
  /// options.exclude_trailing_record was set; -1 otherwise.
  int64_t remainder_offset() const { return output_.remainder_offset; }

  /// Runs the partition stage (radix sort by column tag).
  Status Partition();

  /// Runs the convert stage (CSS indexing, value generation, error
  /// policy) and finalises metrics.
  Status Convert();

  /// Moves the accumulated output out. Call once, after Convert (or after
  /// a finished() Scan).
  ParseOutput TakeOutput() { return std::move(output_); }

 private:
  ParseOptions resolved_;
  /// Owns the UTF-8 bytes when the input needed transcoding (§4.2).
  std::string transcoded_;
  /// Post-row-skip view of the (possibly transcoded) input.
  std::string_view input_;
  int64_t skip_offset_ = 0;
  bool finished_ = false;
  PipelineState state_;
  ParseOutput output_;
  Stopwatch parse_watch_;
  std::optional<obs::TraceSpan> parse_span_;
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_STAGED_PARSE_H_
