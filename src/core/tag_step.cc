#include "core/tag_step.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "parallel/scan.h"
#include "robust/resource_guard.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

inline size_t AdjustBegin(const PipelineState& state, size_t pos) {
  pos = std::min(pos, state.size);
  if (state.options->encoding == TextEncoding::kUtf8) {
    return AdjustChunkBeginUtf8(state.data, state.size, pos);
  }
  return pos;
}

// Dense lookup for skipped columns (columns above the largest skipped index
// are never skipped). Bounded by max_record_columns: a column at or beyond
// the limit cannot survive the count pass, so the lookup never needs to
// grow past it either.
std::vector<uint8_t> BuildSkipColumnLookup(const ParseOptions& options) {
  std::vector<uint8_t> lookup;
  for (int col : options.skip_columns) {
    if (col < 0) continue;
    if (static_cast<uint32_t>(col) >= options.max_record_columns) continue;
    if (static_cast<size_t>(col) >= lookup.size()) lookup.resize(col + 1, 0);
    lookup[col] = 1;
  }
  return lookup;
}

inline bool IsSkippedColumn(const std::vector<uint8_t>& lookup, uint32_t col) {
  return col < lookup.size() && lookup[col];
}

// Walks chunk `c` over the bitmap indexes and invokes
// `emit(symbol, col, rec, is_field_end)` for every kept CSS slot: field
// data always; one terminator slot per field end in the inline/vector
// modes. Drop flags and skipped columns are applied here so the sizing and
// write passes stay in exact agreement.
template <typename Emit>
void ForEachEmission(const PipelineState& state,
                     const std::vector<uint8_t>& skip_lookup, int64_t c,
                     Emit&& emit) {
  const ParseOptions& options = *state.options;
  const bool slot_per_field =
      options.tagging_mode != TaggingMode::kRecordTags;
  const size_t chunk_size = options.chunk_size;
  const size_t begin = AdjustBegin(state, static_cast<size_t>(c) * chunk_size);
  const size_t end =
      AdjustBegin(state, static_cast<size_t>(c + 1) * chunk_size);
  uint32_t col = state.entry_columns[c];
  int64_t rec = state.record_offsets[c];
  // Symbols past the last record delimiter belong to a trailing record
  // only when the input ends in a mid-record state; otherwise (e.g. the
  // input trails off in the invalid state) they belong to no record at all
  // and are discarded, matching the sequential semantics.
  const auto dropped = [&](int64_t r) {
    if (r >= state.num_records) return true;
    return !state.record_dropped.empty() && state.record_dropped[r] != 0;
  };
  for (size_t i = begin; i < end; ++i) {
    const uint8_t flags = state.symbol_flags[i];
    if (flags & kSymbolRecordDelimiter) {
      if (slot_per_field && !dropped(rec) && !IsSkippedColumn(skip_lookup, col)) {
        emit(state.data[i], col, rec, true);
      }
      ++rec;
      col = 0;
    } else if (flags & kSymbolFieldDelimiter) {
      const bool keep = !dropped(rec) && !IsSkippedColumn(skip_lookup, col);
      // An inclusive boundary (no control bit, see SymbolFlags) is the
      // field's last *value* byte as well as its end.
      if (keep && (flags & kSymbolControl) == 0) {
        emit(state.data[i], col, rec, false);
      }
      if (slot_per_field && keep) {
        emit(state.data[i], col, rec, true);
      }
      ++col;
    } else if (flags & kSymbolControl) {
      // Quotes, escapes, comment bytes: not part of any field's value.
    } else {
      if (!dropped(rec) && !IsSkippedColumn(skip_lookup, col)) {
        emit(state.data[i], col, rec, false);
      }
    }
  }
  // The last chunk terminates a trailing unterminated record (§3: the
  // record and its final field end at end-of-input).
  if (slot_per_field && c == state.num_chunks - 1 &&
      state.has_trailing_record && !dropped(rec) &&
      !IsSkippedColumn(skip_lookup, col)) {
    emit(options.format.record_delimiter, col, rec, true);
  }
}

// Field-gather transposition (TransposeMode::kFieldGather): instead of a
// per-symbol tag sideband for the radix sort, derive one FieldExtent per
// field — including dropped ones, whose predecessor link recovers field
// starts — with the same chunk-parallel count + exclusive-scan + fill
// structure as the symbol path. The partition step buckets the extents by
// column and gathers each column's CSS with whole-field copies.
Status RunFieldGatherTag(PipelineState* state, StepTimings* timings,
                         const std::vector<uint8_t>& skip_lookup,
                         uint32_t max_col_index, Stopwatch* watch,
                         obs::TraceSpan* span) {
  const ParseOptions& options = *state->options;
  const int64_t num_chunks = state->num_chunks;
  const TaggingMode mode = options.tagging_mode;
  const bool slot_per_field = mode != TaggingMode::kRecordTags;
  const auto dropped = [state](int64_t r) {
    if (r >= state->num_records) return true;
    return !state->record_dropped.empty() && state->record_dropped[r] != 0;
  };

  // --- 3. Sizing pass: field ends + open-field tail data per chunk. ---
  std::vector<int64_t> chunk_fields(num_chunks, 0);
  std::vector<int64_t> chunk_tail_data(num_chunks, 0);
  std::vector<uint8_t> chunk_has_end(num_chunks, 0);
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
        const size_t chunk_size = options.chunk_size;
        const size_t begin =
            AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
        const size_t end =
            AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
        int64_t fields = 0;
        int64_t tail = 0;
        bool has_end = false;
        for (size_t i = begin; i < end; ++i) {
          const uint8_t flags = state->symbol_flags[i];
          if (flags & (kSymbolRecordDelimiter | kSymbolFieldDelimiter)) {
            ++fields;
            tail = 0;
            has_end = true;
          } else if (flags & kSymbolControl) {
            // Quotes, escapes, comment bytes: excluded from field values.
          } else {
            ++tail;
          }
        }
        // The trailing unterminated record's final field ends at EOF.
        if (c == num_chunks - 1 && state->has_trailing_record) ++fields;
        chunk_fields[c] = fields;
        chunk_tail_data[c] = tail;
        chunk_has_end[c] = has_end ? 1 : 0;
      }));
  {
    const double elapsed_ms = watch->ElapsedMillis();
    timings->tag_ms += elapsed_ms;
    obs::RecordMillis(options.metrics, "step.tag.count_us", elapsed_ms);
  }

  Stopwatch scan_watch;
  std::vector<int64_t> chunk_extent_offsets(num_chunks, 0);
  const int64_t total_fields =
      ExclusivePrefixSum(state->pool, chunk_fields.data(),
                         chunk_extent_offsets.data(), num_chunks);
  // carry_in[c]: value bytes before chunk c belonging to the field still
  // open at its boundary; the first field end inside c closes them.
  std::vector<int64_t> carry_in(num_chunks, 0);
  for (int64_t c = 1; c < num_chunks; ++c) {
    carry_in[c] =
        chunk_tail_data[c - 1] + (chunk_has_end[c - 1] ? 0 : carry_in[c - 1]);
  }
  {
    const double elapsed_ms = scan_watch.ElapsedMillis();
    timings->scan_ms += elapsed_ms;
    obs::RecordMillis(options.metrics, "step.tag.scan_us", elapsed_ms);
  }

  // --- 4. Fill pass. ---
  watch->Restart();
  PARPARAW_RETURN_NOT_OK(robust::GuardedResize(
      "alloc.gather", &state->gather_extents, total_fields));
  std::vector<int64_t> chunk_kept_fields(num_chunks, 0);
  std::vector<int64_t> chunk_kept_bytes(num_chunks, 0);
  std::atomic<bool> terminator_collision{false};
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
        const size_t chunk_size = options.chunk_size;
        const size_t begin =
            AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
        const size_t end =
            AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
        uint32_t col = state->entry_columns[c];
        int64_t rec = state->record_offsets[c];
        int64_t out = chunk_extent_offsets[c];
        int64_t data_count = 0;
        bool first_end = true;
        int64_t kept_fields = 0;
        int64_t kept_bytes = 0;
        const auto emit_extent = [&](int64_t src_end) {
          const int64_t length = data_count + (first_end ? carry_in[c] : 0);
          first_end = false;
          data_count = 0;
          const bool keep =
              !dropped(rec) && !IsSkippedColumn(skip_lookup, col);
          FieldExtent& ex = state->gather_extents[out++];
          ex.src_end = src_end;
          ex.length = length;
          ex.row = keep ? state->out_row_of_record[rec] : -1;
          ex.column = keep ? col : kDroppedColumn;
          if (keep) {
            ++kept_fields;
            kept_bytes += length;
          }
        };
        for (size_t i = begin; i < end; ++i) {
          const uint8_t flags = state->symbol_flags[i];
          if (flags & kSymbolRecordDelimiter) {
            emit_extent(static_cast<int64_t>(i));
            ++rec;
            col = 0;
          } else if (flags & kSymbolFieldDelimiter) {
            // An inclusive boundary is counted into the closing field's
            // length; src_end still points at the boundary byte, so the
            // next field's src_begin (src_end + 1) is unchanged.
            if ((flags & kSymbolControl) == 0) {
              if (mode == TaggingMode::kInlineTerminated &&
                  state->data[i] == options.terminator && !dropped(rec) &&
                  !IsSkippedColumn(skip_lookup, col)) {
                terminator_collision.store(true, std::memory_order_relaxed);
              }
              ++data_count;
            }
            emit_extent(static_cast<int64_t>(i));
            ++col;
          } else if (flags & kSymbolControl) {
            // Not part of any field's value.
          } else {
            if (mode == TaggingMode::kInlineTerminated &&
                state->data[i] == options.terminator && !dropped(rec) &&
                !IsSkippedColumn(skip_lookup, col)) {
              terminator_collision.store(true, std::memory_order_relaxed);
            }
            ++data_count;
          }
        }
        if (c == num_chunks - 1 && state->has_trailing_record) {
          emit_extent(static_cast<int64_t>(state->size));
        }
        chunk_kept_fields[c] = kept_fields;
        chunk_kept_bytes[c] = kept_bytes;
      }));
  if (terminator_collision.load()) {
    return Status::ParseError(
        "terminator byte occurs in field data; use the vector-delimited or "
        "record-tag mode");
  }

  // Kept totals decide num_partitions exactly as the symbol path's
  // total_slots does: value bytes, plus one terminator slot per kept field
  // end in the inline/vector modes.
  int64_t kept_fields_total = 0;
  int64_t kept_bytes_total = 0;
  for (int64_t c = 0; c < num_chunks; ++c) {
    kept_fields_total += chunk_kept_fields[c];
    kept_bytes_total += chunk_kept_bytes[c];
  }
  const int64_t total_slots =
      kept_bytes_total + (slot_per_field ? kept_fields_total : 0);
  state->num_partitions = total_slots > 0 ? max_col_index + 1 : 0;

  // The symbol-path sidebands stay empty; the partition step builds the
  // CSS directly from the extents.
  state->css.clear();
  state->col_tags.clear();
  state->rec_tags.clear();
  state->field_end.clear();

  const double write_ms = watch->ElapsedMillis();
  timings->tag_ms += write_ms;
  obs::RecordMillis(options.metrics, "step.tag.write_us", write_ms);
  span->set_bytes(static_cast<int64_t>(state->gather_extents.size() *
                                       sizeof(FieldExtent)));
  return Status::OK();
}

}  // namespace

Status TagStep::Run(PipelineState* state, StepTimings* timings) {
  obs::TraceSpan span(state->options->tracer, "step.tag", "pipeline",
                      static_cast<int64_t>(state->size));
  Stopwatch watch;
  const ParseOptions& options = *state->options;
  const int64_t num_chunks = state->num_chunks;
  const int64_t num_records = state->num_records;
  const std::vector<uint8_t> skip_lookup = BuildSkipColumnLookup(options);

  // --- 1. Count pass: per-record column counts + max column index. ---
  // A record tagging more than max_record_columns columns fails the parse:
  // every per-column table downstream (skip lookup, sort histogram, CSS
  // offsets) is sized by max_col_index + 1, so an adversarial
  // delimiter-dense row must not be allowed to size them unbounded (or to
  // march the uint32 column counter toward overflow). Each chunk records
  // its first violation; the earliest record wins.
  const uint32_t column_limit = options.max_record_columns;
  state->record_column_counts.assign(num_records, 0);
  std::vector<uint32_t> chunk_max_col(num_chunks, 0);
  std::vector<int64_t> chunk_violation_rec(num_chunks, -1);
  std::vector<int64_t> chunk_violation_pos(num_chunks, -1);
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
    const size_t chunk_size = options.chunk_size;
    const size_t begin =
        AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
    const size_t end =
        AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
    uint32_t col = state->entry_columns[c];
    int64_t rec = state->record_offsets[c];
    uint32_t max_col = col;
    for (size_t i = begin; i < end; ++i) {
      const uint8_t flags = state->symbol_flags[i];
      if (flags & kSymbolRecordDelimiter) {
        state->record_column_counts[rec] = col + 1;
        max_col = std::max(max_col, col);
        ++rec;
        col = 0;
      } else if (flags & kSymbolFieldDelimiter) {
        ++col;
        max_col = std::max(max_col, col);
        if (col >= column_limit && chunk_violation_rec[c] < 0) {
          chunk_violation_rec[c] = rec;
          chunk_violation_pos[c] = static_cast<int64_t>(i);
        }
      }
    }
    if (c == num_chunks - 1 && state->has_trailing_record) {
      state->record_column_counts[rec] = col + 1;
      max_col = std::max(max_col, col);
    }
    chunk_max_col[c] = max_col;
  }));
  int64_t violation_rec = -1;
  int64_t violation_pos = -1;
  for (int64_t c = 0; c < num_chunks; ++c) {
    if (chunk_violation_rec[c] < 0) continue;
    if (violation_rec < 0 || chunk_violation_rec[c] < violation_rec ||
        (chunk_violation_rec[c] == violation_rec &&
         chunk_violation_pos[c] < violation_pos)) {
      violation_rec = chunk_violation_rec[c];
      violation_pos = chunk_violation_pos[c];
    }
  }
  if (violation_rec >= 0) {
    // Recover the offending record's byte span for the error: back to the
    // previous record delimiter, forward to the next one (or EOF).
    int64_t span_begin = violation_pos;
    while (span_begin > 0 &&
           !(state->symbol_flags[span_begin - 1] & kSymbolRecordDelimiter)) {
      --span_begin;
    }
    int64_t span_end = violation_pos;
    while (span_end < static_cast<int64_t>(state->size) &&
           !(state->symbol_flags[span_end] & kSymbolRecordDelimiter)) {
      ++span_end;
    }
    return Status::ParseError(
        "record " + std::to_string(violation_rec) + " (bytes " +
        std::to_string(span_begin) + ".." + std::to_string(span_end) +
        ") has more than " + std::to_string(column_limit) +
        " columns (ParseOptions::max_record_columns); raise the limit for "
        "genuinely wide data");
  }
  uint32_t max_col_index = 0;
  for (uint32_t m : chunk_max_col) max_col_index = std::max(max_col_index, m);

  // --- 2. Drop resolution (§4.3 skip records / column-count policy). ---
  state->record_dropped.assign(num_records, 0);
  int64_t dropped_count = 0;
  if (options.exclude_trailing_record && state->has_trailing_record &&
      num_records > 0) {
    // Streaming carry-over (§4.4): the unterminated trailing record belongs
    // to the next partition.
    state->record_dropped[num_records - 1] = 1;
    ++dropped_count;
  }
  for (int64_t idx : options.skip_records) {
    if (idx >= 0 && idx < num_records && !state->record_dropped[idx]) {
      state->record_dropped[idx] = 1;
      ++dropped_count;
    }
  }
  state->record_column_mismatch.clear();
  state->expected_columns = 0;
  if (options.column_count_policy != ColumnCountPolicy::kRobust &&
      num_records > 0) {
    uint32_t expected = options.schema.num_fields() > 0
                            ? static_cast<uint32_t>(options.schema.num_fields())
                            : 0;
    if (expected == 0) {
      // No schema: expect the maximum observed count among non-skipped
      // records (the inferred number of columns, §4.3).
      for (int64_t r = 0; r < num_records; ++r) {
        if (!state->record_dropped[r]) {
          expected = std::max(expected, state->record_column_counts[r]);
        }
      }
    }
    state->expected_columns = expected;
    // Under quarantine, kReject keeps mismatched records — as rejected rows
    // with byte spans — so ReparseQuarantined() can repair them; dropping
    // them would lose the bytes a repair needs.
    const bool keep_for_quarantine =
        options.column_count_policy == ColumnCountPolicy::kReject &&
        options.error_policy == robust::ErrorPolicy::kQuarantine;
    if (keep_for_quarantine) {
      state->record_column_mismatch.assign(num_records, 0);
    }
    for (int64_t r = 0; r < num_records; ++r) {
      if (state->record_dropped[r]) continue;
      if (state->record_column_counts[r] != expected) {
        if (options.column_count_policy == ColumnCountPolicy::kValidate) {
          return Status::ParseError(
              "record " + std::to_string(r) + " has " +
              std::to_string(state->record_column_counts[r]) +
              " columns, expected " + std::to_string(expected));
        }
        if (keep_for_quarantine) {
          state->record_column_mismatch[r] = 1;
        } else {
          state->record_dropped[r] = 1;
          ++dropped_count;
        }
      }
    }
  }

  // Kept-record -> output-row mapping and min/max over kept records.
  state->out_row_of_record.assign(num_records, 0);
  int64_t out_row = 0;
  uint32_t min_cols = 0;
  uint32_t max_cols = 0;
  bool any_kept = false;
  for (int64_t r = 0; r < num_records; ++r) {
    state->out_row_of_record[r] = out_row;
    if (!state->record_dropped[r]) {
      ++out_row;
      const uint32_t count = state->record_column_counts[r];
      min_cols = any_kept ? std::min(min_cols, count) : count;
      max_cols = any_kept ? std::max(max_cols, count) : count;
      any_kept = true;
    }
  }
  state->num_out_rows = out_row;
  state->min_columns = min_cols;
  state->max_columns = max_cols;
  (void)dropped_count;

  state->transpose_mode = EffectiveTransposeMode(options);
  if (state->transpose_mode == TransposeMode::kFieldGather) {
    return RunFieldGatherTag(state, timings, skip_lookup, max_col_index,
                             &watch, &span);
  }
  state->gather_extents.clear();
  state->gather_entries.clear();
  state->gather_entry_offsets.clear();

  // --- 3. Sizing pass + exclusive prefix sum. ---
  std::vector<int64_t> chunk_emit(num_chunks, 0);
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
        int64_t count = 0;
        ForEachEmission(*state, skip_lookup, c,
                        [&](uint8_t, uint32_t, int64_t, bool) { ++count; });
        chunk_emit[c] = count;
      }));
  {
    const double elapsed_ms = watch.ElapsedMillis();
    timings->tag_ms += elapsed_ms;
    obs::RecordMillis(state->options->metrics, "step.tag.count_us",
                      elapsed_ms);
  }

  Stopwatch scan_watch;
  std::vector<int64_t> chunk_write_offsets(num_chunks, 0);
  const int64_t total_slots = ExclusivePrefixSum(
      state->pool, chunk_emit.data(), chunk_write_offsets.data(), num_chunks);
  {
    const double elapsed_ms = scan_watch.ElapsedMillis();
    timings->scan_ms += elapsed_ms;
    obs::RecordMillis(state->options->metrics, "step.tag.scan_us",
                      elapsed_ms);
  }

  // --- 4. Write pass. ---
  watch.Restart();
  const TaggingMode mode = options.tagging_mode;
  PARPARAW_RETURN_NOT_OK(robust::GuardedAssign("alloc.tag", &state->css,
                                               total_slots, uint8_t{0}));
  PARPARAW_RETURN_NOT_OK(robust::GuardedAssign("alloc.tag", &state->col_tags,
                                               total_slots, uint32_t{0}));
  if (mode == TaggingMode::kRecordTags) {
    PARPARAW_RETURN_NOT_OK(robust::GuardedAssign("alloc.tag", &state->rec_tags,
                                                 total_slots, uint32_t{0}));
  } else {
    state->rec_tags.clear();
  }
  if (mode == TaggingMode::kVectorDelimited) {
    PARPARAW_RETURN_NOT_OK(robust::GuardedAssign(
        "alloc.tag", &state->field_end, total_slots, uint8_t{0}));
  } else {
    state->field_end.clear();
  }
  std::atomic<bool> terminator_collision{false};
  PARPARAW_RETURN_NOT_OK(
      ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
        int64_t out = chunk_write_offsets[c];
        ForEachEmission(
            *state, skip_lookup, c,
            [&](uint8_t symbol, uint32_t col, int64_t rec, bool is_field_end) {
              uint8_t stored = symbol;
              if (mode == TaggingMode::kInlineTerminated) {
                if (is_field_end) {
                  stored = options.terminator;
                } else if (symbol == options.terminator) {
                  terminator_collision.store(true, std::memory_order_relaxed);
                }
              }
              state->css[out] = stored;
              state->col_tags[out] = col;
              if (mode == TaggingMode::kRecordTags) {
                state->rec_tags[out] =
                    static_cast<uint32_t>(state->out_row_of_record[rec]);
              } else if (mode == TaggingMode::kVectorDelimited) {
                state->field_end[out] = is_field_end ? 1 : 0;
              }
              ++out;
            });
      }));
  if (terminator_collision.load()) {
    return Status::ParseError(
        "terminator byte occurs in field data; use the vector-delimited or "
        "record-tag mode");
  }

  state->num_partitions =
      total_slots > 0 ? max_col_index + 1 : 0;
  const double write_ms = watch.ElapsedMillis();
  timings->tag_ms += write_ms;
  obs::RecordMillis(state->options->metrics, "step.tag.write_us", write_ms);
  span.set_bytes(static_cast<int64_t>(state->css.size()));
  return Status::OK();
}

}  // namespace parparaw
