#ifndef PARPARAW_CORE_TAG_STEP_H_
#define PARPARAW_CORE_TAG_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 4 (§3.2/§4.1/§4.3): tag symbols with their column and
/// record, and compact them for partitioning.
///
/// Sub-passes, all chunk-parallel over the bitmap indexes (the DFA is never
/// re-run):
///  1. *Count pass*: derives every record's column count (field delimiters
///     + 1), feeding column-count inference/validation and the reject
///     policy (§4.3); also finds the maximum column index (partition
///     count).
///  2. *Drop resolution*: merges skip_records and the column-count policy
///     into per-record drop flags; an exclusive prefix sum maps kept
///     records to output rows.
///  3. *Sizing pass + scan*: per-chunk kept-symbol counts and their
///     exclusive prefix sum give every chunk's write offset.
///  4. *Write pass*: emits the kept symbols with their column tags and,
///     depending on the tagging mode (Fig. 6), record tags
///     (kRecordTags), terminator bytes replacing delimiters
///     (kInlineTerminated), or an auxiliary field-end vector
///     (kVectorDelimited).
///
/// Passes 3-4 describe TransposeMode::kSymbolSort. Under the default
/// kFieldGather the step instead derives one FieldExtent per field (the
/// same count + exclusive-scan + fill structure, but over O(fields) units)
/// and leaves css/col_tags/rec_tags/field_end empty — the partition step
/// builds the CSS from the extents. A record tagging more than
/// ParseOptions::max_record_columns columns fails the parse with a
/// ParseError carrying the record's byte span (both modes).
///
/// Fills: record_column_counts, record_dropped, out_row_of_record,
/// num_out_rows, min/max_columns, num_partitions, transpose_mode, and
/// css/col_tags/rec_tags/field_end (kSymbolSort) or gather_extents
/// (kFieldGather).
class TagStep {
 public:
  /// Runs the step; the work is accounted to timings->tag_ms (the prefix
  /// sums to scan_ms).
  static Status Run(PipelineState* state, StepTimings* timings);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_TAG_STEP_H_
