#include "core/staged_parse.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/bitmap_step.h"
#include "core/context_step.h"
#include "core/convert_step.h"
#include "core/offset_step.h"
#include "core/partition_step.h"
#include "core/tag_step.h"
#include "dialect/dialect.h"
#include "obs/obs.h"
#include "robust/resource_guard.h"
#include "text/unicode.h"
#include "util/bit_util.h"

namespace parparaw {

namespace {

// Skips the first `skip_rows` physical lines (§4.3 "Skipping rows": rows
// are raw lines, pruned by an initial pass before any context is built, so
// they cannot interfere with the record/column assignment).
std::string_view SkipLeadingRows(std::string_view input, int64_t skip_rows,
                                 uint8_t row_delimiter) {
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos = input.find(static_cast<char>(row_delimiter));
    if (pos == std::string_view::npos) return std::string_view();
    input.remove_prefix(pos + 1);
    --skip_rows;
  }
  return input;
}

// The error a rejected row stands for, composed from the convert/tag
// provenance (PipelineState::reject_kind / reject_column).
Status RowError(const PipelineState& state, const ParseOptions& options,
                int64_t row) {
  const uint8_t kind = state.reject_kind.empty()
                           ? 0
                           : state.reject_kind[static_cast<size_t>(row)];
  const int32_t col = state.reject_column.empty()
                          ? -1
                          : state.reject_column[static_cast<size_t>(row)];
  std::string where = "row " + std::to_string(row);
  if (col >= 0) where += ", column " + std::to_string(col);
  switch (kind) {
    case 1: {
      std::string type = "string";
      if (col >= 0 && col < options.schema.num_fields()) {
        type = options.schema.field(col).type.ToString();
      }
      return Status::ParseError(where + ": value is not a valid " + type);
    }
    case 2:
      return Status::TypeError(where + ": NULL in non-nullable column");
    case 3:
      return Status::ParseError(where + ": wrong number of columns");
    default:
      return Status::ParseError(where + ": record rejected");
  }
}

// Applies ParseOptions::error_policy to the convert step's rejected set:
// fails (kFail), compacts rejected rows away (kSkip), or captures each
// rejected record with its byte span into output->quarantine (kQuarantine).
// `input` is the post-skip buffer the pipeline parsed; `skip_offset` is the
// byte count SkipLeadingRows trimmed, added back so spans land in the
// caller's original buffer.
Status ApplyErrorPolicy(PipelineState* state, const ParseOptions& options,
                        std::string_view input, int64_t skip_offset,
                        ParseOutput* output) {
  using robust::ErrorPolicy;
  Table& table = output->table;
  const int64_t rows = table.num_rows;

  // Column-count mismatches kept by the tag step (kQuarantine + kReject)
  // become rejected rows here, record-level provenance attached.
  if (!state->record_column_mismatch.empty()) {
    for (int64_t r = 0; r < state->num_records; ++r) {
      if (!state->record_column_mismatch[r]) continue;
      if (!state->record_dropped.empty() && state->record_dropped[r]) continue;
      const int64_t row = state->out_row_of_record[r];
      table.rejected[row] = 1;
      if (state->reject_kind[row] == 0) {
        state->reject_kind[row] = 3;
        state->reject_column[row] = -1;
      }
    }
  }

  const ErrorPolicy policy = options.error_policy;
  if (policy == ErrorPolicy::kNull) return Status::OK();

  int64_t num_rejected = 0;
  for (uint8_t b : table.rejected) num_rejected += b;
  if (num_rejected == 0) return Status::OK();

  if (policy == ErrorPolicy::kFail) {
    for (int64_t row = 0; row < rows; ++row) {
      if (table.rejected[row]) return RowError(*state, options, row);
    }
    return Status::OK();
  }

  if (policy == ErrorPolicy::kSkip) {
    std::vector<int64_t> keep;
    keep.reserve(static_cast<size_t>(rows - num_rejected));
    for (int64_t row = 0; row < rows; ++row) {
      if (!table.rejected[row]) keep.push_back(row);
    }
    table = TakeRows(table, keep);
    table.rejected.assign(keep.size(), 0);
    output->records_dropped += num_rejected;
    return Status::OK();
  }

  // kQuarantine: byte-accurate spans for every rejected row. One linear
  // walk over the symbol flags recovers the record boundaries — the flags
  // mark only syntactic record delimiters, so quoted delimiters inside
  // fields cannot split a span.
  std::vector<int64_t> rec_of_row(static_cast<size_t>(rows), -1);
  for (int64_t r = 0; r < state->num_records; ++r) {
    if (!state->record_dropped.empty() && state->record_dropped[r]) continue;
    rec_of_row[state->out_row_of_record[r]] = r;
  }
  std::vector<int64_t> rec_end(static_cast<size_t>(state->num_records),
                               static_cast<int64_t>(state->size));
  {
    int64_t rec = 0;
    for (size_t i = 0; i < state->size && rec < state->num_records; ++i) {
      if (state->symbol_flags[i] & kSymbolRecordDelimiter) {
        rec_end[rec++] = static_cast<int64_t>(i);
      }
    }
  }
  for (int64_t row = 0; row < rows; ++row) {
    if (!table.rejected[row]) continue;
    const int64_t rec = rec_of_row[row];
    if (rec < 0) continue;  // defensive: rejected row with no record
    const int64_t begin = rec == 0 ? 0 : rec_end[rec - 1] + 1;
    const int64_t end = rec_end[rec];
    robust::QuarantineEntry entry;
    entry.row = row;
    entry.record_index = rec;
    entry.begin = begin + skip_offset;
    entry.end = end + skip_offset;
    entry.raw.assign(input.data() + begin, static_cast<size_t>(end - begin));
    entry.column = state->reject_column.empty()
                       ? -1
                       : state->reject_column[static_cast<size_t>(row)];
    const uint8_t kind = state->reject_kind.empty()
                             ? 0
                             : state->reject_kind[static_cast<size_t>(row)];
    entry.stage = kind == 3 ? "tag" : "convert";
    const Status why = RowError(*state, options, row);
    entry.code = why.code();
    entry.message = why.message();
    output->quarantine.Add(std::move(entry));
  }
  obs::AddCount(options.metrics, "robust.quarantined_rows",
                output->quarantine.size());
  return Status::OK();
}

// An empty parse result carrying the schema's columns with zero rows.
ParseOutput EmptyOutput(const ParseOptions& options) {
  ParseOutput output;
  for (int j = 0; j < options.schema.num_fields(); ++j) {
    bool is_skipped = false;
    for (int s : options.skip_columns) is_skipped |= (s == j);
    if (is_skipped) continue;
    output.table.schema.AddField(options.schema.field(j));
    Column column(options.schema.field(j).type);
    column.Allocate(0);
    output.table.columns.push_back(std::move(column));
  }
  return output;
}

}  // namespace

Status StagedParse::Scan(std::string_view input, const ParseOptions& options) {
  // Resolve defaults that the options struct cannot carry statically.
  resolved_ = options;
  if (resolved_.dialect.has_value()) {
    // Entry points resolve dialects up front (Parser::Parse routes
    // over-budget dialects to the scalar fallback); this defensive path
    // covers direct StagedParse users, for whom an over-budget dialect is
    // an error rather than a silent fallback.
    PARPARAW_ASSIGN_OR_RETURN(
        std::optional<dialect::CompiledDialect> fallback,
        dialect::ResolveParseDialect(&resolved_));
    if (fallback.has_value()) {
      return Status::Invalid(
          "dialect '" + fallback->spec.name + "' needs " +
          std::to_string(fallback->minimized_states) +
          " DFA states, over the SIMD register budget; use Parser::Parse, "
          "which falls back to the scalar dialect walk");
    }
  }
  if (resolved_.format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(resolved_.format, Rfc4180Format());
  }
  if (resolved_.pool == nullptr) resolved_.pool = ThreadPool::Default();
  // Auto sentinels an upstream planner did not fill resolve to the static
  // defaults here, so direct StagedParse users and planner fallbacks run
  // the pre-planner configuration.
  if (resolved_.chunk_size == 0) resolved_.chunk_size = 31;
  resolved_.tagging_mode = EffectiveTaggingMode(resolved_);

  // UTF-16 input: data-parallel transcode pre-pass (§4.2), then parse the
  // UTF-8 bytes.
  if (resolved_.encoding == TextEncoding::kUtf16Le) {
    PARPARAW_ASSIGN_OR_RETURN(
        transcoded_,
        TranscodeUtf16LeToUtf8(resolved_.pool, input));
    input = transcoded_;
    resolved_.encoding = TextEncoding::kUtf8;
  }

  skip_offset_ = 0;
  if (resolved_.skip_rows > 0) {
    const size_t before = input.size();
    input = SkipLeadingRows(input, resolved_.skip_rows,
                            resolved_.format.record_delimiter);
    skip_offset_ = static_cast<int64_t>(before - input.size());
  }
  input_ = input;
  if (input.empty()) {
    output_ = EmptyOutput(resolved_);
    // Everything (if anything) was consumed by the row skip: the remainder
    // is empty and starts at the end of the caller's buffer.
    if (resolved_.exclude_trailing_record) {
      output_.remainder_offset = skip_offset_;
    }
    finished_ = true;
    return Status::OK();
  }

  // Resource guard: refuse up front when the monolithic working set cannot
  // fit the budget. The streaming parser, bulk loader and executor degrade
  // (smaller partitions / streaming / fewer in flight) instead of
  // surfacing this.
  // The envelope depends on the transpose mode: the symbol sort carries
  // per-byte tag metadata (16x), the field gather O(fields) extents (8x).
  const int64_t working_set_factor = ParseWorkingSetFactor(resolved_);
  if (resolved_.memory_budget > 0 &&
      robust::EstimateParseMemory(static_cast<int64_t>(input.size()),
                                  working_set_factor) >
          resolved_.memory_budget) {
    return Status::ResourceExhausted(
        "parsing " + std::to_string(input.size()) + " bytes needs ~" +
        std::to_string(
            robust::EstimateParseMemory(static_cast<int64_t>(input.size()),
                                        working_set_factor)) +
        " working-set bytes, over the " +
        std::to_string(resolved_.memory_budget) +
        "-byte budget; use StreamingParser or BulkLoader to degrade");
  }

  parse_span_.emplace(resolved_.tracer, "parse", "pipeline",
                      static_cast<int64_t>(input.size()));
  parse_watch_.Restart();

  state_.data = reinterpret_cast<const uint8_t*>(input.data());
  state_.size = input.size();
  state_.options = &resolved_;
  state_.pool = resolved_.pool;
  state_.num_chunks = static_cast<int64_t>(
      bit_util::CeilDiv(input.size(), resolved_.chunk_size));

  output_.work.input_bytes = static_cast<int64_t>(input.size());
  output_.work.parse_bytes_read = static_cast<int64_t>(input.size());
  output_.work.dfa_transitions = static_cast<int64_t>(input.size()) *
                                 resolved_.format.dfa.num_states();
  output_.work.scan_elements = state_.num_chunks * 3;  // context + 2 offsets

  PARPARAW_RETURN_NOT_OK_CTX(ContextStep::Run(&state_, &output_.timings),
                             "step.context");
  PARPARAW_RETURN_NOT_OK_CTX(BitmapStep::Run(&state_, &output_.timings),
                             "step.bitmap");

  if (resolved_.exclude_trailing_record) {
    // Locate where the (possibly excluded) trailing record starts: one past
    // the last true record delimiter.
    if (!state_.has_trailing_record) {
      output_.remainder_offset = static_cast<int64_t>(state_.size);
    } else {
      output_.remainder_offset = 0;
      for (int64_t c = state_.num_chunks - 1; c >= 0; --c) {
        if (state_.record_counts[c] == 0) continue;
        const size_t begin = static_cast<size_t>(c) * resolved_.chunk_size;
        // UTF-8 chunk-boundary adjustment can shift a chunk's effective
        // range by up to three bytes; include them in the backward scan.
        const size_t end =
            std::min(begin + resolved_.chunk_size + 3, state_.size);
        for (size_t i = end; i > begin; --i) {
          if (state_.symbol_flags[i - 1] & kSymbolRecordDelimiter) {
            output_.remainder_offset = static_cast<int64_t>(i);
            break;
          }
        }
        break;
      }
    }
    // Like the quarantine spans, the remainder offset is reported in the
    // caller's coordinate space, including any skipped leading rows — the
    // streaming parser slices its carry-over from the original buffer.
    output_.remainder_offset += skip_offset_;
  }

  PARPARAW_RETURN_NOT_OK_CTX(OffsetStep::Run(&state_, &output_.timings),
                             "step.offset");
  PARPARAW_RETURN_NOT_OK_CTX(TagStep::Run(&state_, &output_.timings),
                             "step.tag");
  output_.work.tag_bytes_written =
      state_.transpose_mode == TransposeMode::kFieldGather
          ? static_cast<int64_t>(state_.gather_extents.size() *
                                 sizeof(FieldExtent))
          : static_cast<int64_t>(state_.css.size()) *
                (resolved_.tagging_mode == TaggingMode::kRecordTags ? 9 : 5);
  return Status::OK();
}

Status StagedParse::Partition() {
  PARPARAW_RETURN_NOT_OK_CTX(
      PartitionStep::Run(&state_, &output_.timings, &output_.work),
      "step.partition");
  return Status::OK();
}

Status StagedParse::Convert() {
  PARPARAW_RETURN_NOT_OK_CTX(
      ConvertStep::Run(&state_, &output_.timings, &output_.work, &output_),
      "step.convert");
  PARPARAW_RETURN_NOT_OK(
      ApplyErrorPolicy(&state_, resolved_, input_, skip_offset_, &output_));

  if (resolved_.metrics != nullptr && resolved_.metrics->enabled()) {
    obs::MetricsRegistry* m = resolved_.metrics;
    obs::AddCount(m, "parse.runs", 1);
    obs::AddCount(m, "parse.bytes", output_.work.input_bytes);
    obs::AddCount(m, "parse.chunks", state_.num_chunks);
    obs::AddCount(m, "parse.records", state_.num_records);
    obs::AddCount(m, "parse.out_rows", output_.table.num_rows);
    obs::AddCount(m, "parse.css_symbols",
                  static_cast<int64_t>(state_.css.size()));
    obs::RecordMillis(m, "parse.total_us", parse_watch_.ElapsedMillis());
  }
  return Status::OK();
}

}  // namespace parparaw
