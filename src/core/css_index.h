#ifndef PARPARAW_CORE_CSS_INDEX_H_
#define PARPARAW_CORE_CSS_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

// FieldEntry lives in core/pipeline_state.h (the gather transpose path
// stores entries in PipelineState, which this header includes).

/// \brief Step 6 (§3.3/§4.1): generate a column's CSS index.
///
/// kRecordTags: run-length encode the column's record tags; each run is one
/// field (its value the record, its length the symbol count); an exclusive
/// prefix sum yields the offsets. Empty fields produce no run — the convert
/// step fills them from defaults (§4.3).
///
/// kInlineTerminated / kVectorDelimited: collect the terminator slots (or
/// the auxiliary field-end marks); field k belongs to output row k, which
/// requires a consistent column count (enforced by returning ParseError on
/// a count mismatch).
Status BuildCssIndex(const PipelineState& state, uint32_t column,
                     std::vector<FieldEntry>* fields);

/// Collects the positions i in [0, n) where pred(i) is true, in order,
/// using a chunked count + exclusive-prefix-sum + fill pattern (the GPU
/// compaction idiom shared with the tag step).
template <typename Pred>
void CollectPositions(ThreadPool* pool, int64_t n, Pred pred,
                      std::vector<int64_t>* positions);

}  // namespace parparaw

#include "core/css_index_inl.h"

#endif  // PARPARAW_CORE_CSS_INDEX_H_
