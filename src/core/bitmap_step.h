#ifndef PARPARAW_CORE_BITMAP_STEP_H_
#define PARPARAW_CORE_BITMAP_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 2 (§3.1/§3.2): per-symbol bitmap indexes and per-chunk
/// offsets.
///
/// With its true entry state resolved, each chunk simulates a single DFA
/// instance once more and records, per symbol, whether it delimits a
/// record, delimits a field, or is a control symbol (the three bitmap
/// indexes; subsequent steps never re-run the DFA). Alongside, the chunk
/// derives its record-delimiter count and its relative/absolute
/// column-offset contribution (Fig. 4), and flags invalid transitions for
/// validation (§4.3). Fills: symbol_flags, record_counts, column_offsets,
/// first_invalid_offset.
class BitmapStep {
 public:
  /// Runs the step; the work is accounted to timings->tag_ms.
  static Status Run(PipelineState* state, StepTimings* timings);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_BITMAP_STEP_H_
