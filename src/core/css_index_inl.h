#ifndef PARPARAW_CORE_CSS_INDEX_INL_H_
#define PARPARAW_CORE_CSS_INDEX_INL_H_

#include <algorithm>

#include "parallel/scan.h"

namespace parparaw {

template <typename Pred>
void CollectPositions(ThreadPool* pool, int64_t n, Pred pred,
                      std::vector<int64_t>* positions) {
  positions->clear();
  if (n <= 0) return;
  const int num_workers = pool ? pool->num_threads() : 1;
  const int64_t num_tiles =
      std::max<int64_t>(1, std::min<int64_t>(num_workers * 4, n / 4096 + 1));
  const int64_t tile = (n + num_tiles - 1) / num_tiles;
  std::vector<int64_t> counts(num_tiles, 0);
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min(b + tile, n);
    int64_t count = 0;
    for (int64_t i = b; i < e; ++i) count += pred(i) ? 1 : 0;
    counts[t] = count;
  });
  std::vector<int64_t> offsets(num_tiles, 0);
  const int64_t total =
      ExclusivePrefixSum(pool, counts.data(), offsets.data(), num_tiles);
  positions->resize(total);
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min(b + tile, n);
    int64_t out = offsets[t];
    for (int64_t i = b; i < e; ++i) {
      if (pred(i)) (*positions)[out++] = i;
    }
  });
}

}  // namespace parparaw

#endif  // PARPARAW_CORE_CSS_INDEX_INL_H_
