#ifndef PARPARAW_CORE_OPTIONS_H_
#define PARPARAW_CORE_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "columnar/schema.h"
#include "columnar/table.h"
#include "dfa/formats.h"
#include "dialect/spec.h"
#include "parallel/thread_pool.h"
#include "plan/tuning.h"
#include "robust/quarantine.h"
#include "simd/dispatch.h"
#include "text/unicode.h"

namespace parparaw {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

// TaggingMode, TransposeMode, PlannerMode and the Tuning struct (the
// consolidated performance-tuning surface ParseOptions inherits) live in
// plan/tuning.h.

/// How records with an inconsistent number of columns are handled (§4.1,
/// §4.3 "Inferring or validating number of columns").
enum class ColumnCountPolicy : uint8_t {
  /// Keep everything: short records yield NULLs, excess fields are ignored.
  kRobust,
  /// Drop records whose column count differs from the expected count
  /// (schema size, or the inferred maximum when no schema is given).
  kReject,
  /// Fail parsing with a ParseError on the first inconsistent record.
  kValidate,
};

/// Wall-clock breakdown of the pipeline steps, the buckets of Fig. 9/11:
/// parse (multi-DFA simulation), scan (context + offset prefix scans), tag
/// (bitmaps + symbol tagging/compaction), partition (radix sort by column),
/// convert (CSS indexing + type conversion).
struct StepTimings {
  double parse_ms = 0;
  double scan_ms = 0;
  double tag_ms = 0;
  double partition_ms = 0;
  double convert_ms = 0;

  double TotalMs() const {
    return parse_ms + scan_ms + tag_ms + partition_ms + convert_ms;
  }
  StepTimings& operator+=(const StepTimings& other);
  std::string ToString() const;
};

/// Abstract work counters accumulated by the pipeline, consumed by the
/// analytical device model (see sim/device_model.h): bytes moved through
/// memory per step and the number of scan/sort passes executed.
struct WorkCounters {
  int64_t input_bytes = 0;
  int64_t parse_bytes_read = 0;
  /// Multi-DFA transitions executed (input bytes x DFA states): the
  /// "constant factor" of extra work §3.1 trades for scalability.
  int64_t dfa_transitions = 0;
  int64_t tag_bytes_written = 0;
  int64_t sort_passes = 0;
  int64_t sort_bytes_moved = 0;
  int64_t scan_elements = 0;
  int64_t convert_bytes = 0;
  int64_t output_bytes = 0;
  /// Peak bytes resident for the transposition phase (tag sideband +
  /// partition metadata + CSS), modelled deterministically from container
  /// sizes by PartitionStep. Combined with max() under operator+= — the
  /// partitions of a streaming parse reuse the footprint, they do not sum.
  int64_t transpose_peak_bytes = 0;

  WorkCounters& operator+=(const WorkCounters& other);
};

/// \brief Everything configurable about a parse (§3, §4.1, §4.3).
///
/// Inherits the consolidated tuning surface (plan/tuning.h): `kernel`,
/// `chunk_size`, `tagging_mode`, `transpose_mode`, `partition_size`,
/// `planner` and `sample_budget` are Tuning members, accessed exactly as
/// before. With every tuning knob at its auto sentinel (the default), the
/// adaptive planner samples a bounded input prefix at each entry point and
/// decides them per stream; pin any knob to take it out of the planner's
/// hands, or set `planner = PlannerMode::kDisabled` for the static
/// defaults.
struct ParseOptions : public Tuning {
  /// Parsing rules; defaults to RFC 4180 CSV when left empty (no states).
  Format format;

  /// A user-defined dialect compiled at runtime into `format` (see
  /// src/dialect). Mutually exclusive with an explicit format: every entry
  /// point resolves an engaged dialect exactly once — compiling, minimising
  /// and equivalence-proving it — before parsing, replacing `format` with
  /// the packed result or falling back to the scalar wide-automaton walk
  /// when the minimised state count exceeds the SIMD register budget
  /// (counted by the "dialect.fallback" metric).
  std::optional<dialect::DialectSpec> dialect;

  /// Output schema. Empty schema: the number of columns is inferred and
  /// every column is parsed as a string (or inferred, see infer_types).
  Schema schema;

  /// Upper bound on columns a single record may tag. Adversarial inputs (a
  /// million-delimiter row) would otherwise grow O(columns) lookup/count
  /// tables without bound inside the tagging pass; a record exceeding the
  /// limit fails the parse with a ParseError carrying the record's byte
  /// span. Must be positive.
  uint32_t max_record_columns = 1u << 16;

  /// Terminator byte for TaggingMode::kInlineTerminated; the ASCII unit
  /// separator by default (§4.1).
  uint8_t terminator = 0x1F;

  ColumnCountPolicy column_count_policy = ColumnCountPolicy::kRobust;

  /// When true, invalid DFA transitions or a non-accepting end state fail
  /// the parse with ParseError (§4.3 "Validating format").
  bool validate = false;

  /// When true and the schema is empty, column types are inferred (§4.3);
  /// otherwise inferred columns are strings.
  bool infer_types = false;

  /// Leading physical rows to prune before parsing (headers, preambles).
  /// Rows are raw lines, not records (§4.3 "Skipping rows").
  int64_t skip_rows = 0;

  /// Record indices (post row-skip) to ignore (§4.3 "Skipping records").
  std::vector<int64_t> skip_records;

  /// Column indices to ignore; their symbols are dropped after tagging and
  /// they do not appear in the output table (§4.3 "Selecting columns").
  std::vector<int> skip_columns;

  /// Input encoding; kUtf16Le inputs are transcoded by a data-parallel
  /// pre-pass (§4.2).
  TextEncoding encoding = TextEncoding::kUtf8;

  /// Field length thresholds selecting the collaboration level for value
  /// generation (§3.3): fields longer than block_collaboration_threshold
  /// use the block-level path; longer than device_collaboration_threshold
  /// the device-level path.
  size_t block_collaboration_threshold = 256;
  size_t device_collaboration_threshold = 64 * 1024;

  /// Worker pool; nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;

  /// Observability sinks (src/obs). Both default to null: with no sink the
  /// pipeline's instrumentation reduces to one pointer test per step, so a
  /// plain parse costs the same as before the subsystem existed. Point
  /// them at obs::MetricsRegistry::Global() / obs::Tracer::Global() (or at
  /// private instances) to collect per-step histograms, byte counters, and
  /// chrome://tracing spans; see docs/observability.md for the taxonomy.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Streaming support (§4.4): when true, an unterminated trailing record
  /// is not emitted; instead ParseOutput::remainder_offset reports where it
  /// starts so the caller can prepend it to the next partition as the
  /// carry-over.
  bool exclude_trailing_record = false;

  /// What to do with malformed records (values that do not convert,
  /// non-nullable NULLs, wrong column counts under kReject). See
  /// robust::ErrorPolicy; kNull reproduces the historical behaviour
  /// (NULL value + rejected bit). kQuarantine additionally captures the
  /// record in ParseOutput::quarantine for ReparseQuarantined().
  robust::ErrorPolicy error_policy = robust::ErrorPolicy::kNull;

  /// Peak working-set budget in bytes; 0 means unlimited. A monolithic
  /// Parse() whose estimated working set (~16x input, see
  /// robust::EstimateParseMemory) exceeds the budget fails with
  /// kResourceExhausted instead of attempting the allocations; the
  /// streaming parser, bulk loader and pipelined executor degrade instead
  /// — smaller partitions / streaming the file / fewer in-flight
  /// partitions — and never return kResourceExhausted for the budget
  /// alone.
  int64_t memory_budget = 0;

  /// Validates the option *combination* without looking at any input.
  /// Returns an actionable InvalidArgument for conflicts that a parse
  /// would otherwise discover midway (or silently mis-handle): chunk_size
  /// bounds and the tuning contradiction taxonomy (Tuning::ValidateTuning
  /// — a forced planner with pinned knobs), inline-terminator collisions
  /// with the format's delimiters, negative skips/budget,
  /// collaboration-threshold ordering, and policy pairs that contradict
  /// each other. Every entry point (Parser::Parse, StreamingParser,
  /// BulkLoader, Reader, exec::PipelineExecutor) calls this exactly once
  /// up front, so deeper layers can assume a coherent configuration.
  Status Validate() const;
};

/// Resolves TransposeMode::kAuto to a concrete mode. kAuto picks
/// kFieldGather unless the PARPARAW_TRANSPOSE_MODE environment variable
/// ("field_gather" / "symbol_sort", read once per process via
/// plan::EnvTransposeMode) says otherwise; an explicitly requested mode is
/// returned unchanged so differential tests can pin both sides regardless
/// of the environment.
TransposeMode EffectiveTransposeMode(const ParseOptions& options);

/// Resolves TaggingMode::kAuto to its static default (kRecordTags); an
/// explicitly requested mode is returned unchanged. The adaptive planner
/// may instead resolve kAuto to kVectorDelimited when the sampled prefix
/// proves it safe — this helper is the planless fallback every direct
/// StagedParse/Parser user gets.
TaggingMode EffectiveTaggingMode(const ParseOptions& options);

/// Multiplier over input bytes for the parse's peak working set under the
/// options' effective transpose mode: robust::kParseMemoryFactor (16) for
/// kSymbolSort — per-symbol tags, permutation and scratch — and
/// robust::kParseMemoryFactorFieldGather (8) for kFieldGather, whose
/// metadata is O(fields) rather than O(bytes). Feed the result to
/// robust::EstimateParseMemory / ClampPartitionSizeForBudget.
int64_t ParseWorkingSetFactor(const ParseOptions& options);

/// \brief Result of a parse: the columnar table plus instrumentation.
struct ParseOutput {
  Table table;
  StepTimings timings;
  WorkCounters work;
  /// Observed min/max columns per record (before policy application).
  uint32_t min_columns = 0;
  uint32_t max_columns = 0;
  /// Records dropped by kReject / skip_records.
  int64_t records_dropped = 0;
  /// With exclude_trailing_record: byte offset where the unterminated
  /// trailing record starts (== input size when the input ends exactly on
  /// a record boundary); -1 otherwise. Relative to the caller-provided
  /// buffer — skipped leading rows are included in the offset.
  int64_t remainder_offset = -1;
  /// Under ErrorPolicy::kQuarantine: every malformed record with its byte
  /// span and provenance. table.rejected is a view over this (bit r set
  /// iff an entry with row == r exists). Empty under other policies.
  robust::QuarantineTable quarantine;
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_OPTIONS_H_
