#include "core/css_index.h"

#include "obs/obs.h"
#include "util/stopwatch.h"

namespace parparaw {

Status BuildCssIndex(const PipelineState& state, uint32_t column,
                     std::vector<FieldEntry>* fields) {
  obs::TraceSpan span(state.options->tracer, "step.css_index", "pipeline");
  Stopwatch watch;
  fields->clear();
  if (column >= state.num_partitions) return Status::OK();
  const TaggingMode mode = state.options->tagging_mode;

  if (state.transpose_mode == TransposeMode::kFieldGather) {
    // The partition step already bucketed the field entries by column with
    // offsets relative to the global CSS; slicing them is the whole index.
    const int64_t entry_begin = state.gather_entry_offsets[column];
    const int64_t entry_end = state.gather_entry_offsets[column + 1];
    if (mode == TaggingMode::kRecordTags) {
      // Parity with the run-length encoding of the record tags: an empty
      // field contributes no symbols, hence no run — the convert step
      // fills it from defaults (§4.3).
      fields->reserve(static_cast<size_t>(entry_end - entry_begin));
      for (int64_t k = entry_begin; k < entry_end; ++k) {
        const FieldEntry& entry = state.gather_entries[k];
        if (entry.length == 0) continue;
        fields->push_back(entry);
      }
    } else {
      const int64_t count = entry_end - entry_begin;
      if (count != state.num_out_rows) {
        return Status::ParseError(
            "column " + std::to_string(column) + " has " +
            std::to_string(count) + " fields for " +
            std::to_string(state.num_out_rows) +
            " records; inconsistent column counts require the record-tag "
            "mode or the reject policy");
      }
      fields->assign(state.gather_entries.begin() + entry_begin,
                     state.gather_entries.begin() + entry_end);
    }
    obs::RecordMillis(state.options->metrics, "step.css_index_us",
                      watch.ElapsedMillis());
    obs::AddCount(state.options->metrics, "css_index.fields",
                  static_cast<int64_t>(fields->size()));
    return Status::OK();
  }

  const int64_t begin = state.column_css_offsets[column];
  const int64_t end = state.column_css_offsets[column + 1];
  const int64_t n = end - begin;

  if (mode == TaggingMode::kRecordTags) {
    // Run-length encode the record tags: run starts where the tag differs
    // from its predecessor.
    std::vector<int64_t> heads;
    CollectPositions(
        state.pool, n,
        [&](int64_t i) {
          return i == 0 ||
                 state.rec_tags[begin + i] != state.rec_tags[begin + i - 1];
        },
        &heads);
    fields->resize(heads.size());
    for (size_t k = 0; k < heads.size(); ++k) {
      const int64_t start = heads[k];
      const int64_t stop = (k + 1 < heads.size()) ? heads[k + 1] : n;
      (*fields)[k] = FieldEntry{
          static_cast<int64_t>(state.rec_tags[begin + start]), begin + start,
          stop - start};
    }
    obs::RecordMillis(state.options->metrics, "step.css_index_us",
                      watch.ElapsedMillis());
    obs::AddCount(state.options->metrics, "css_index.fields",
                  static_cast<int64_t>(fields->size()));
    return Status::OK();
  }

  // Inline-terminated / vector-delimited: one terminator slot per field,
  // field k belongs to output row k.
  std::vector<int64_t> ends;
  if (mode == TaggingMode::kInlineTerminated) {
    const uint8_t terminator = state.options->terminator;
    CollectPositions(
        state.pool, n,
        [&](int64_t i) { return state.css[begin + i] == terminator; }, &ends);
  } else {
    CollectPositions(
        state.pool, n, [&](int64_t i) { return state.field_end[begin + i] != 0; },
        &ends);
  }
  if (static_cast<int64_t>(ends.size()) != state.num_out_rows) {
    return Status::ParseError(
        "column " + std::to_string(column) + " has " +
        std::to_string(ends.size()) + " fields for " +
        std::to_string(state.num_out_rows) +
        " records; inconsistent column counts require the record-tag mode "
        "or the reject policy");
  }
  fields->resize(ends.size());
  for (size_t k = 0; k < ends.size(); ++k) {
    const int64_t start = (k == 0) ? 0 : ends[k - 1] + 1;
    (*fields)[k] = FieldEntry{static_cast<int64_t>(k), begin + start,
                              ends[k] - start};
  }
  obs::RecordMillis(state.options->metrics, "step.css_index_us",
                    watch.ElapsedMillis());
  obs::AddCount(state.options->metrics, "css_index.fields",
                static_cast<int64_t>(fields->size()));
  return Status::OK();
}

}  // namespace parparaw
