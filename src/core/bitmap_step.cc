#include "core/bitmap_step.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "robust/resource_guard.h"
#include "simd/simd_kernels.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

inline size_t AdjustBegin(const PipelineState& state, size_t pos) {
  pos = std::min(pos, state.size);
  if (state.options->encoding == TextEncoding::kUtf8) {
    return AdjustChunkBeginUtf8(state.data, state.size, pos);
  }
  return pos;
}

}  // namespace

Status BitmapStep::Run(PipelineState* state, StepTimings* timings) {
  obs::TraceSpan span(state->options->tracer, "step.bitmap", "pipeline",
                      static_cast<int64_t>(state->size));
  Stopwatch watch;
  const Dfa& dfa = state->options->format.dfa;
  const size_t chunk_size = state->options->chunk_size;
  const int64_t num_chunks = state->num_chunks;
  const int invalid = dfa.invalid_state();

  state->record_counts.assign(num_chunks, 0);
  state->column_offsets.assign(num_chunks, ColumnOffset{});
  std::atomic<int64_t> first_invalid{-1};

  // Records the earliest invalid transition across all chunks.
  auto record_invalid = [&first_invalid](int64_t offset) {
    int64_t expected = first_invalid.load(std::memory_order_relaxed);
    while ((expected == -1 || offset < expected) &&
           !first_invalid.compare_exchange_weak(expected, offset,
                                                std::memory_order_relaxed)) {
    }
  };

  const bool fused =
      state->kernel_level != simd::KernelLevel::kScalar &&
      state->kernel_plan != nullptr &&
      state->spec_offsets.size() == static_cast<size_t>(num_chunks);

  if (fused) {
    // The context step's fused kernel already wrote the flags for every
    // chunk suffix whose states were entry-state-independent; this pass
    // walks only each chunk's pre-convergence prefix from the now-known
    // entry state, verifies the speculation token, and counts the rest
    // from the emitted flags. A token mismatch (mis-speculation) falls
    // back to re-walking the suffix — results are then still exact.
    const simd::KernelPlan& plan = *state->kernel_plan;
    obs::Counter* mis_speculations = nullptr;
    if (state->options->metrics != nullptr &&
        state->options->metrics->enabled()) {
      mis_speculations =
          state->options->metrics->GetCounter("simd.mis_speculations");
    }
    PARPARAW_RETURN_NOT_OK(
        ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
      const size_t begin =
          AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
      const size_t end =
          AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
      const int64_t spec = state->spec_offsets[c];
      const size_t pre_end =
          spec >= 0 ? std::min(static_cast<size_t>(spec), end) : end;
      simd::FlagWalkResult head = simd::WalkEmitFlags(
          plan, state->data, begin, pre_end, state->entry_states[c],
          state->symbol_flags.data());
      uint32_t records = head.records;
      uint32_t fields_since_record = head.fields_since_record;
      bool saw_record_delim = head.saw_record_delimiter;
      int64_t chunk_invalid = head.first_invalid;
      if (spec >= 0) {
        simd::FlagWalkResult tail;
        int64_t tail_invalid;
        if (head.end_state == state->spec_states[c]) {
          // Speculation verified: the already-emitted flags are exact.
          tail = simd::CountEmittedFlags(state->symbol_flags.data(), pre_end,
                                         end);
          tail_invalid = state->spec_invalids[c];
        } else {
          // Mis-speculation detected: discard the speculative flags and
          // re-walk the suffix from the verified state.
          if (mis_speculations != nullptr) mis_speculations->Increment();
          tail = simd::WalkEmitFlags(plan, state->data, pre_end, end,
                                     head.end_state,
                                     state->symbol_flags.data());
          tail_invalid = tail.first_invalid;
        }
        records += tail.records;
        if (tail.saw_record_delimiter) {
          fields_since_record = tail.fields_since_record;
          saw_record_delim = true;
        } else {
          fields_since_record += tail.fields_since_record;
        }
        if (chunk_invalid < 0) chunk_invalid = tail_invalid;
      }
      state->record_counts[c] = records;
      state->column_offsets[c] =
          ColumnOffset{fields_since_record, saw_record_delim};
      if (chunk_invalid >= 0) record_invalid(chunk_invalid);
    }));
  } else {
    PARPARAW_RETURN_NOT_OK(robust::GuardedAssign(
        "alloc.bitmap", &state->symbol_flags, state->size, uint8_t{0}));
    PARPARAW_RETURN_NOT_OK(
        ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
      const size_t begin =
          AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
      const size_t end =
          AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
      int current = state->entry_states[c];
      uint32_t records = 0;
      uint32_t fields_since_record = 0;
      bool saw_record_delim = false;
      for (size_t i = begin; i < end; ++i) {
        const int group = dfa.SymbolGroup(state->data[i]);
        const uint8_t flags = dfa.Flags(current, group);
        const int next = dfa.NextState(current, group);
        state->symbol_flags[i] = flags;
        if (flags & kSymbolRecordDelimiter) {
          ++records;
          fields_since_record = 0;
          saw_record_delim = true;
        } else if (flags & kSymbolFieldDelimiter) {
          ++fields_since_record;
        }
        if (invalid >= 0 && next == invalid && current != invalid) {
          record_invalid(static_cast<int64_t>(i));
        }
        current = next;
      }
      state->record_counts[c] = records;
      state->column_offsets[c] = ColumnOffset{fields_since_record,
                                              saw_record_delim};
    }));
  }

  state->first_invalid_offset = first_invalid.load();
  const double elapsed_ms = watch.ElapsedMillis();
  timings->tag_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.bitmap_us", elapsed_ms);

  if (state->options->validate && state->first_invalid_offset >= 0) {
    return Status::ParseError(
        "invalid symbol at byte offset " +
        std::to_string(state->first_invalid_offset));
  }
  if (state->options->validate &&
      !dfa.IsAccepting(state->final_state)) {
    return Status::ParseError("input ends in non-accepting state '" +
                              dfa.state_name(state->final_state) + "'");
  }
  return Status::OK();
}

}  // namespace parparaw
