#include "core/bitmap_step.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

inline size_t AdjustBegin(const PipelineState& state, size_t pos) {
  pos = std::min(pos, state.size);
  if (state.options->encoding == TextEncoding::kUtf8) {
    return AdjustChunkBeginUtf8(state.data, state.size, pos);
  }
  return pos;
}

}  // namespace

Status BitmapStep::Run(PipelineState* state, StepTimings* timings) {
  obs::TraceSpan span(state->options->tracer, "step.bitmap", "pipeline",
                      static_cast<int64_t>(state->size));
  Stopwatch watch;
  const Dfa& dfa = state->options->format.dfa;
  const size_t chunk_size = state->options->chunk_size;
  const int64_t num_chunks = state->num_chunks;
  const int invalid = dfa.invalid_state();

  state->symbol_flags.assign(state->size, 0);
  state->record_counts.assign(num_chunks, 0);
  state->column_offsets.assign(num_chunks, ColumnOffset{});
  std::atomic<int64_t> first_invalid{-1};

  ParallelForEach(state->pool, 0, num_chunks, [&](int64_t c) {
    const size_t begin = AdjustBegin(*state, static_cast<size_t>(c) * chunk_size);
    const size_t end =
        AdjustBegin(*state, static_cast<size_t>(c + 1) * chunk_size);
    int current = state->entry_states[c];
    uint32_t records = 0;
    uint32_t fields_since_record = 0;
    bool saw_record_delim = false;
    for (size_t i = begin; i < end; ++i) {
      const int group = dfa.SymbolGroup(state->data[i]);
      const uint8_t flags = dfa.Flags(current, group);
      const int next = dfa.NextState(current, group);
      state->symbol_flags[i] = flags;
      if (flags & kSymbolRecordDelimiter) {
        ++records;
        fields_since_record = 0;
        saw_record_delim = true;
      } else if (flags & kSymbolFieldDelimiter) {
        ++fields_since_record;
      }
      if (invalid >= 0 && next == invalid && current != invalid) {
        // Record the earliest invalid transition across all chunks.
        int64_t expected = first_invalid.load(std::memory_order_relaxed);
        const int64_t offset = static_cast<int64_t>(i);
        while ((expected == -1 || offset < expected) &&
               !first_invalid.compare_exchange_weak(
                   expected, offset, std::memory_order_relaxed)) {
        }
      }
      current = next;
    }
    state->record_counts[c] = records;
    state->column_offsets[c] = ColumnOffset{fields_since_record,
                                            saw_record_delim};
  });

  state->first_invalid_offset = first_invalid.load();
  const double elapsed_ms = watch.ElapsedMillis();
  timings->tag_ms += elapsed_ms;
  obs::RecordMillis(state->options->metrics, "step.bitmap_us", elapsed_ms);

  if (state->options->validate && state->first_invalid_offset >= 0) {
    return Status::ParseError(
        "invalid symbol at byte offset " +
        std::to_string(state->first_invalid_offset));
  }
  if (state->options->validate &&
      !dfa.IsAccepting(state->final_state)) {
    return Status::ParseError("input ends in non-accepting state '" +
                              dfa.state_name(state->final_state) + "'");
  }
  return Status::OK();
}

}  // namespace parparaw
