#ifndef PARPARAW_CORE_PARTITION_STEP_H_
#define PARPARAW_CORE_PARTITION_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 5 (§3.3): partition symbols by column.
///
/// TransposeMode::kSymbolSort: a stable LSD radix sort over the column tags
/// moves every kept symbol — together with its record tag / field-end
/// marker — into its column's concatenated symbol string (CSS). The sort's
/// histogram doubles as the per-column CSS offsets. Fills: permutation,
/// column_histogram, column_css_offsets, and reorders css / rec_tags /
/// field_end in place.
///
/// TransposeMode::kFieldGather (default): one stable partitioning pass over
/// the O(fields) gather_extents buckets field entries by column, then a
/// parallel whole-field memcpy gather builds the CSS directly from the
/// source buffer (terminator slots folded into the copy). Fills:
/// column_histogram, column_css_offsets, gather_entries,
/// gather_entry_offsets, css. Both modes produce byte-identical CSS
/// layouts; WorkCounters::transpose_peak_bytes records each mode's modelled
/// peak footprint.
class PartitionStep {
 public:
  /// Runs the step; accounted to timings->partition_ms. Work counters
  /// record the number of partitioning passes and bytes moved.
  static Status Run(PipelineState* state, StepTimings* timings,
                    WorkCounters* work);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_PARTITION_STEP_H_
