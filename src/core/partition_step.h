#ifndef PARPARAW_CORE_PARTITION_STEP_H_
#define PARPARAW_CORE_PARTITION_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 5 (§3.3): partition symbols by column.
///
/// A stable LSD radix sort over the column tags moves every kept symbol —
/// together with its record tag / field-end marker — into its column's
/// concatenated symbol string (CSS). The sort's histogram doubles as the
/// per-column CSS offsets. Fills: permutation, column_histogram,
/// column_css_offsets, and reorders css / rec_tags / field_end in place.
class PartitionStep {
 public:
  /// Runs the step; accounted to timings->partition_ms. Work counters
  /// record the number of partitioning passes and bytes moved.
  static Status Run(PipelineState* state, StepTimings* timings,
                    WorkCounters* work);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_PARTITION_STEP_H_
