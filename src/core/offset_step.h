#ifndef PARPARAW_CORE_OFFSET_STEP_H_
#define PARPARAW_CORE_OFFSET_STEP_H_

#include "core/pipeline_state.h"
#include "util/status.h"

namespace parparaw {

/// \brief Step 3 (§3.2): resolve each chunk's record and column offsets.
///
/// The record offsets are the exclusive prefix sum of the per-chunk record
/// counts. The column offsets are an exclusive prefix scan with the
/// relative/absolute operator ⊕ (Fig. 4): an absolute contribution (chunk
/// contains a record delimiter) resets the running offset; a relative one
/// adds to it. Fills: record_offsets, entry_columns, num_records.
class OffsetStep {
 public:
  /// Runs the step; the work is accounted to timings->scan_ms.
  static Status Run(PipelineState* state, StepTimings* timings);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_OFFSET_STEP_H_
