#ifndef PARPARAW_CORE_PARSER_H_
#define PARPARAW_CORE_PARSER_H_

#include <string_view>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {

/// \brief ParPaRaw's public entry point: massively parallel parsing of
/// delimiter-separated raw data (§3).
///
/// The parse runs as a fixed sequence of data-parallel steps over
/// equal-sized chunks of the input — context resolution via multi-DFA
/// simulation and a composite-operator prefix scan, bitmap-index
/// construction, record/column offset scans, symbol tagging and
/// compaction, a stable radix-sort partition into per-column concatenated
/// symbol strings, CSS indexing, and typed value generation — with no
/// sequential pass over the input at any point.
///
/// Example:
///   ParseOptions options;
///   options.schema.AddField(Field("id", DataType::Int64()));
///   options.schema.AddField(Field("name", DataType::String()));
///   PARPARAW_ASSIGN_OR_RETURN(ParseOutput out,
///                             Parser::Parse("1,Apples\n2,Pears\n", options));
///   // out.table.columns[0].Value<int64_t>(1) == 2
class Parser {
 public:
  /// Parses `input` according to `options`. The input must stay alive for
  /// the duration of the call; the returned table owns its buffers.
  static Result<ParseOutput> Parse(std::string_view input,
                                   const ParseOptions& options);
};

}  // namespace parparaw

#endif  // PARPARAW_CORE_PARSER_H_
