#include "core/parser.h"

#include "core/staged_parse.h"

namespace parparaw {

Result<ParseOutput> Parser::Parse(std::string_view input,
                                  const ParseOptions& options) {
  PARPARAW_RETURN_NOT_OK(options.Validate());
  // The monolithic entry point is the staged pipeline run back to back on
  // the calling thread; src/exec overlaps the same stages across
  // partitions.
  StagedParse staged;
  PARPARAW_RETURN_NOT_OK(staged.Scan(input, options));
  if (!staged.finished()) {
    PARPARAW_RETURN_NOT_OK(staged.Partition());
    PARPARAW_RETURN_NOT_OK(staged.Convert());
  }
  return staged.TakeOutput();
}

}  // namespace parparaw
