#include "core/parser.h"

#include <algorithm>
#include <string>

#include "core/bitmap_step.h"
#include "core/context_step.h"
#include "core/convert_step.h"
#include "core/offset_step.h"
#include "core/partition_step.h"
#include "core/tag_step.h"
#include "obs/obs.h"
#include "text/unicode.h"
#include "util/bit_util.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

// Skips the first `skip_rows` physical lines (§4.3 "Skipping rows": rows
// are raw lines, pruned by an initial pass before any context is built, so
// they cannot interfere with the record/column assignment).
std::string_view SkipLeadingRows(std::string_view input, int64_t skip_rows,
                                 uint8_t row_delimiter) {
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos = input.find(static_cast<char>(row_delimiter));
    if (pos == std::string_view::npos) return std::string_view();
    input.remove_prefix(pos + 1);
    --skip_rows;
  }
  return input;
}

// An empty parse result carrying the schema's columns with zero rows.
ParseOutput EmptyOutput(const ParseOptions& options) {
  ParseOutput output;
  for (int j = 0; j < options.schema.num_fields(); ++j) {
    bool is_skipped = false;
    for (int s : options.skip_columns) is_skipped |= (s == j);
    if (is_skipped) continue;
    output.table.schema.AddField(options.schema.field(j));
    Column column(options.schema.field(j).type);
    column.Allocate(0);
    output.table.columns.push_back(std::move(column));
  }
  return output;
}

}  // namespace

Result<ParseOutput> Parser::Parse(std::string_view input,
                                  const ParseOptions& options) {
  // Resolve defaults that the options struct cannot carry statically.
  ParseOptions resolved = options;
  if (resolved.format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(resolved.format, Rfc4180Format());
  }
  if (resolved.pool == nullptr) resolved.pool = ThreadPool::Default();
  if (resolved.chunk_size == 0) resolved.chunk_size = 31;

  // UTF-16 input: data-parallel transcode pre-pass (§4.2), then parse the
  // UTF-8 bytes.
  std::string transcoded;
  if (resolved.encoding == TextEncoding::kUtf16Le) {
    PARPARAW_ASSIGN_OR_RETURN(
        transcoded,
        TranscodeUtf16LeToUtf8(resolved.pool, input));
    input = transcoded;
    resolved.encoding = TextEncoding::kUtf8;
  }

  if (resolved.skip_rows > 0) {
    input = SkipLeadingRows(input, resolved.skip_rows,
                            resolved.format.record_delimiter);
  }
  if (input.empty()) return EmptyOutput(resolved);

  obs::TraceSpan parse_span(resolved.tracer, "parse", "pipeline",
                            static_cast<int64_t>(input.size()));
  Stopwatch parse_watch;

  PipelineState state;
  state.data = reinterpret_cast<const uint8_t*>(input.data());
  state.size = input.size();
  state.options = &resolved;
  state.pool = resolved.pool;
  state.num_chunks = static_cast<int64_t>(
      bit_util::CeilDiv(input.size(), resolved.chunk_size));

  ParseOutput output;
  output.work.input_bytes = static_cast<int64_t>(input.size());
  output.work.parse_bytes_read = static_cast<int64_t>(input.size());
  output.work.dfa_transitions = static_cast<int64_t>(input.size()) *
                                resolved.format.dfa.num_states();
  output.work.scan_elements = state.num_chunks * 3;  // context + two offsets

  PARPARAW_RETURN_NOT_OK(ContextStep::Run(&state, &output.timings));
  PARPARAW_RETURN_NOT_OK(BitmapStep::Run(&state, &output.timings));

  if (resolved.exclude_trailing_record) {
    // Locate where the (possibly excluded) trailing record starts: one past
    // the last true record delimiter.
    if (!state.has_trailing_record) {
      output.remainder_offset = static_cast<int64_t>(state.size);
    } else {
      output.remainder_offset = 0;
      for (int64_t c = state.num_chunks - 1; c >= 0; --c) {
        if (state.record_counts[c] == 0) continue;
        const size_t begin = static_cast<size_t>(c) * resolved.chunk_size;
        // UTF-8 chunk-boundary adjustment can shift a chunk's effective
        // range by up to three bytes; include them in the backward scan.
        const size_t end =
            std::min(begin + resolved.chunk_size + 3, state.size);
        for (size_t i = end; i > begin; --i) {
          if (state.symbol_flags[i - 1] & kSymbolRecordDelimiter) {
            output.remainder_offset = static_cast<int64_t>(i);
            break;
          }
        }
        break;
      }
    }
  }

  PARPARAW_RETURN_NOT_OK(OffsetStep::Run(&state, &output.timings));
  PARPARAW_RETURN_NOT_OK(TagStep::Run(&state, &output.timings));
  output.work.tag_bytes_written =
      static_cast<int64_t>(state.css.size()) *
      (resolved.tagging_mode == TaggingMode::kRecordTags ? 9 : 5);
  PARPARAW_RETURN_NOT_OK(
      PartitionStep::Run(&state, &output.timings, &output.work));
  PARPARAW_RETURN_NOT_OK(
      ConvertStep::Run(&state, &output.timings, &output.work, &output));

  if (resolved.metrics != nullptr && resolved.metrics->enabled()) {
    obs::MetricsRegistry* m = resolved.metrics;
    obs::AddCount(m, "parse.runs", 1);
    obs::AddCount(m, "parse.bytes", output.work.input_bytes);
    obs::AddCount(m, "parse.chunks", state.num_chunks);
    obs::AddCount(m, "parse.records", state.num_records);
    obs::AddCount(m, "parse.out_rows", output.table.num_rows);
    obs::AddCount(m, "parse.css_symbols",
                  static_cast<int64_t>(state.css.size()));
    obs::RecordMillis(m, "parse.total_us", parse_watch.ElapsedMillis());
  }
  return output;
}

}  // namespace parparaw
