#include "core/parser.h"

#include "core/staged_parse.h"
#include "dialect/dialect.h"
#include "plan/planner.h"

namespace parparaw {

Result<ParseOutput> Parser::Parse(std::string_view input,
                                  const ParseOptions& options) {
  PARPARAW_RETURN_NOT_OK(options.Validate());
  // A user dialect compiles into the format here; a dialect over the SIMD
  // register budget parses on the scalar wide-automaton fallback instead.
  ParseOptions resolved = options;
  PARPARAW_ASSIGN_OR_RETURN(std::optional<dialect::CompiledDialect> fallback,
                            dialect::ResolveParseDialect(&resolved));
  if (fallback.has_value()) {
    return dialect::FallbackParse(input, *fallback, resolved);
  }
  // Adaptive planning over the input's own prefix: the monolithic parse
  // holds the whole buffer, so the sample is never I/O.
  PARPARAW_ASSIGN_OR_RETURN(
      const plan::ParsePlan parse_plan,
      plan::PlanStream(input,
                       /*sample_truncated=*/input.size() >
                           resolved.sample_budget,
                       &resolved));
  (void)parse_plan;
  // The monolithic entry point is the staged pipeline run back to back on
  // the calling thread; src/exec overlaps the same stages across
  // partitions.
  StagedParse staged;
  PARPARAW_RETURN_NOT_OK(staged.Scan(input, resolved));
  if (!staged.finished()) {
    PARPARAW_RETURN_NOT_OK(staged.Partition());
    PARPARAW_RETURN_NOT_OK(staged.Convert());
  }
  return staged.TakeOutput();
}

}  // namespace parparaw
