#ifndef PARPARAW_UTIL_BIT_UTIL_H_
#define PARPARAW_UTIL_BIT_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace parparaw::bit_util {

/// Number of set bits in a 64-bit word (the GPU `popc` intrinsic).
inline int PopCount(uint64_t v) { return std::popcount(v); }

/// Position of the most-significant set bit, or -1 when v == 0.
/// Equivalent to the PTX `bfind` intrinsic used by the paper's SWAR matcher.
inline int FindMsb(uint32_t v) {
  if (v == 0) return -1;
  return 31 - std::countl_zero(v);
}

/// Position of the least-significant set bit, or -1 when v == 0 (the PTX
/// ffs/brev+bfind idiom).
inline int FindLsb(uint32_t v) {
  if (v == 0) return -1;
  return std::countr_zero(v);
}

/// Bit-field extract: returns `len` bits of `word` starting at bit `pos`
/// (the PTX BFE intrinsic). pos + len must be <= 32; len in [0, 32].
inline uint32_t BitFieldExtract(uint32_t word, uint32_t pos, uint32_t len) {
  if (len == 0) return 0;
  if (len >= 32) return word >> pos;
  return (word >> pos) & ((1u << len) - 1u);
}

/// Bit-field insert: returns `word` with `len` bits starting at `pos`
/// replaced by the low bits of `bits` (the PTX BFI intrinsic).
inline uint32_t BitFieldInsert(uint32_t word, uint32_t bits, uint32_t pos,
                               uint32_t len) {
  if (len == 0) return word;
  uint32_t mask = (len >= 32) ? ~0u : ((1u << len) - 1u);
  mask <<= pos;
  return (word & ~mask) | ((bits << pos) & mask);
}

/// True iff v is a power of two (v != 0).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
inline uint64_t NextPowerOfTwo(uint64_t v) { return std::bit_ceil(v); }

/// Largest power of two <= v (v >= 1).
inline uint64_t PrevPowerOfTwo(uint64_t v) { return std::bit_floor(v); }

/// floor(log2(v)) for v >= 1.
inline int Log2Floor(uint64_t v) { return 63 - std::countl_zero(v); }

/// Rounds v up to the next multiple of `multiple` (multiple >= 1).
inline size_t RoundUp(size_t v, size_t multiple) {
  return ((v + multiple - 1) / multiple) * multiple;
}

/// Ceiling division for non-negative integers.
inline size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// \brief A compact bitmap with word-level access, used for the paper's
/// three per-symbol bitmap indexes (record delimiter / field delimiter /
/// control symbol) and for column validity.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits)
      : num_bits_(num_bits), words_(CeilDiv(num_bits, 64), 0) {}

  size_t size() const { return num_bits_; }

  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(CeilDiv(num_bits, 64), 0);
  }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Number of set bits in [0, size).
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += PopCount(w);
    return n;
  }

  /// Number of set bits in the half-open bit range [begin, end).
  size_t CountSetInRange(size_t begin, size_t end) const;

  /// Index of the last set bit in [begin, end), or -1 if none.
  int64_t FindLastSetInRange(size_t begin, size_t end) const;

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

inline size_t Bitmap::CountSetInRange(size_t begin, size_t end) const {
  size_t n = 0;
  for (size_t i = begin; i < end; ++i) n += Get(i);
  return n;
}

inline int64_t Bitmap::FindLastSetInRange(size_t begin, size_t end) const {
  for (size_t i = end; i > begin; --i) {
    if (Get(i - 1)) return static_cast<int64_t>(i - 1);
  }
  return -1;
}

}  // namespace parparaw::bit_util

#endif  // PARPARAW_UTIL_BIT_UTIL_H_
