#ifndef PARPARAW_UTIL_RESULT_H_
#define PARPARAW_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace parparaw {

/// \brief Either a value of type T or an error Status.
///
/// The counterpart to Status for value-returning fallible operations,
/// mirroring arrow::Result. An engaged Result is guaranteed to hold either a
/// value or a non-OK status; constructing one from an OK status is a
/// programming error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    assert(!std::get<Status>(storage_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  /// Accessors; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    if (ok()) return std::get<T>(std::move(storage_));
    return alternative;
  }

 private:
  std::variant<Status, T> storage_;
};

}  // namespace parparaw

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status. Usage: PARPARAW_ASSIGN_OR_RETURN(auto x, MakeX());
#define PARPARAW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()

#define PARPARAW_CONCAT_INNER(x, y) x##y
#define PARPARAW_CONCAT(x, y) PARPARAW_CONCAT_INNER(x, y)

#define PARPARAW_ASSIGN_OR_RETURN(lhs, expr) \
  PARPARAW_ASSIGN_OR_RETURN_IMPL(            \
      PARPARAW_CONCAT(_parparaw_result_, __LINE__), lhs, expr)

/// Like PARPARAW_ASSIGN_OR_RETURN, but prepends `ctx` to a propagated
/// error's message (see Status::WithContext).
#define PARPARAW_ASSIGN_OR_RETURN_CTX_IMPL(tmp, lhs, expr, ctx) \
  auto tmp = (expr);                                            \
  if (!tmp.ok()) return tmp.status().WithContext(ctx);          \
  lhs = std::move(tmp).ValueOrDie()

#define PARPARAW_ASSIGN_OR_RETURN_CTX(lhs, expr, ctx) \
  PARPARAW_ASSIGN_OR_RETURN_CTX_IMPL(                 \
      PARPARAW_CONCAT(_parparaw_result_, __LINE__), lhs, expr, ctx)

#endif  // PARPARAW_UTIL_RESULT_H_
