#ifndef PARPARAW_UTIL_CRC32C_H_
#define PARPARAW_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace parparaw {

/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
///
/// This is the wire-integrity checksum of the serving protocol
/// (serve/protocol.h, frame flag kFlagChecksum): every checksummed frame
/// carries the CRC of its payload so a flipped bit on the wire is a
/// detected protocol error instead of a silently different parse.
///
/// Two implementations sit behind one entry point: the SSE4.2 `crc32`
/// instruction when the CPU has it (the same runtime detection as the
/// simd kernel dispatch, so PARPARAW_FORCE_KERNEL=scalar also forces the
/// software path — the differential test relies on that), and a
/// slice-by-8 table walk everywhere else. Both produce identical values;
/// tests/crc32c_test.cc proves it on seeded inputs plus the RFC 3720
/// check value Crc32c("123456789") == 0xE3069283.

/// CRC-32C of `data`.
uint32_t Crc32c(std::string_view data);

/// Extends a running CRC: Extend(Extend(0, a), b) == Crc32c(a + b), so
/// streaming writers can checksum without concatenating.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size);

/// True when the SSE4.2 hardware path is compiled in and the CPU supports
/// it (ignores the forced-kernel test hook; that hook only steers which
/// path Crc32c takes).
bool Crc32cHardwareAvailable();

namespace internal {
/// The software slice-by-8 implementation, exposed for the differential
/// test (hardware vs software must agree bit-for-bit).
uint32_t ExtendCrc32cSoftware(uint32_t crc, const void* data, size_t size);
}  // namespace internal

}  // namespace parparaw

#endif  // PARPARAW_UTIL_CRC32C_H_
