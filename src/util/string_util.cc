#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace parparaw {

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t begin = 0;
  while (true) {
    size_t pos = s.find(sep, begin);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (uint64_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  static_cast<double>(bytes) / (1 << 30));
  } else if (bytes >= (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1 << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatThroughput(uint64_t bytes, double seconds) {
  char buf[64];
  double gbps = seconds > 0
                    ? static_cast<double>(bytes) / seconds / (1 << 30)
                    : 0.0;
  std::snprintf(buf, sizeof(buf), "%.2f GB/s", gbps);
  return buf;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace parparaw
