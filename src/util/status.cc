#include "util/status.h"

namespace parparaw {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace parparaw
