#ifndef PARPARAW_UTIL_STRING_UTIL_H_
#define PARPARAW_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parparaw {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Formats a byte count as a human-readable string ("4.8 GB", "512 MB").
std::string FormatBytes(uint64_t bytes);

/// Formats a throughput in GB/s with two decimals.
std::string FormatThroughput(uint64_t bytes, double seconds);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace parparaw

#endif  // PARPARAW_UTIL_STRING_UTIL_H_
