#ifndef PARPARAW_UTIL_STOPWATCH_H_
#define PARPARAW_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace parparaw {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses and
/// the per-step breakdown instrumentation (Fig. 9/11).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parparaw

#endif  // PARPARAW_UTIL_STOPWATCH_H_
