#include "util/crc32c.h"

#include <cstring>

#include "simd/dispatch.h"

namespace parparaw {

namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

/// Slice-by-8 lookup tables, built once on first use. Table 0 is the
/// classic byte-at-a-time table; tables 1..7 fold eight input bytes per
/// iteration (Intel's slicing-by-8 scheme).
struct Crc32cTables {
  uint32_t table[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
      }
      table[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = table[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = table[0][crc & 0xFF] ^ (crc >> 8);
        table[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

uint32_t LoadU32Le(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // the build targets are little-endian (x86-64 / aarch64)
}

#if defined(__x86_64__) && defined(PARPARAW_HAVE_SSE42_KERNEL)
#define PARPARAW_CRC32C_HW 1

__attribute__((target("sse4.2"))) uint32_t ExtendCrc32cHardware(
    uint32_t crc, const uint8_t* p, size_t size) {
  crc = ~crc;
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --size;
  }
  uint64_t crc64 = crc;
  while (size >= 8) {
    uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    size -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (size > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --size;
  }
  return ~crc;
}
#endif  // __x86_64__

/// Hardware is used only when the CPU has SSE4.2 *and* the resolved
/// kernel level is a vector one — so PARPARAW_FORCE_KERNEL=scalar (or the
/// SetForcedKernelLevel test hook) steers checksums onto the software
/// path, exactly like the parse kernels.
bool UseHardware() {
#ifdef PARPARAW_CRC32C_HW
  if (!Crc32cHardwareAvailable()) return false;
  const simd::KernelLevel level =
      simd::ResolveKernelLevel(simd::KernelKind::kAuto);
  return level == simd::KernelLevel::kSse42 ||
         level == simd::KernelLevel::kAvx2;
#else
  return false;
#endif
}

}  // namespace

namespace internal {

uint32_t ExtendCrc32cSoftware(uint32_t crc, const void* data, size_t size) {
  const Crc32cTables& t = Tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t.table[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    const uint32_t lo = LoadU32Le(p) ^ crc;
    const uint32_t hi = LoadU32Le(p + 4);
    crc = t.table[7][lo & 0xFF] ^ t.table[6][(lo >> 8) & 0xFF] ^
          t.table[5][(lo >> 16) & 0xFF] ^ t.table[4][lo >> 24] ^
          t.table[3][hi & 0xFF] ^ t.table[2][(hi >> 8) & 0xFF] ^
          t.table[1][(hi >> 16) & 0xFF] ^ t.table[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t.table[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace internal

bool Crc32cHardwareAvailable() {
#ifdef PARPARAW_CRC32C_HW
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size) {
#ifdef PARPARAW_CRC32C_HW
  if (UseHardware()) {
    return ExtendCrc32cHardware(crc, static_cast<const uint8_t*>(data), size);
  }
#endif
  return internal::ExtendCrc32cSoftware(crc, data, size);
}

uint32_t Crc32c(std::string_view data) {
  return ExtendCrc32c(0, data.data(), data.size());
}

}  // namespace parparaw
