#ifndef PARPARAW_UTIL_STATUS_H_
#define PARPARAW_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace parparaw {

/// \brief Machine-readable category of an error.
///
/// Mirrors the Status idiom used by Arrow and RocksDB: the library never
/// throws; every fallible operation returns a Status (or a Result<T>, see
/// result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kTypeError,
  kOutOfRange,
  kNotImplemented,
  kIoError,
  kInternal,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation); error construction
/// allocates only for the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "<code name>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace parparaw

/// Propagates a non-OK Status to the caller.
#define PARPARAW_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::parparaw::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // PARPARAW_UTIL_STATUS_H_
