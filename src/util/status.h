#ifndef PARPARAW_UTIL_STATUS_H_
#define PARPARAW_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace parparaw {

/// \brief Machine-readable category of an error.
///
/// Mirrors the Status idiom used by Arrow and RocksDB: the library never
/// throws; every fallible operation returns a Status (or a Result<T>, see
/// result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kTypeError,
  kOutOfRange,
  kNotImplemented,
  kIoError,
  kInternal,
  /// A resource limit was hit (memory budget, allocation failure). Callers
  /// can often degrade — e.g. retry through the streaming parser with a
  /// smaller partition size — where other codes are final.
  kResourceExhausted,
  /// The operation was cooperatively cancelled (exec::PipelineExecutor's
  /// Cancel(), or a caller-provided cancellation token). Partial output is
  /// discarded; the input is untouched, so the operation can be re-run.
  kCancelled,
  /// A caller-supplied deadline expired before the operation finished
  /// (request deadline_ms in the serving protocol, I/O timeouts in
  /// serve/socket_io). Like kCancelled the input is untouched, so the
  /// caller may retry with a fresh deadline.
  kDeadlineExceeded,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation); error construction
/// allocates only for the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a Status with the same code and "<context>: <message>" as the
  /// message — the error-provenance idiom: each pipeline layer prepends the
  /// stage (or file) it was working on, so a deep failure reads like
  /// "bulk loader: step.convert: value 'x' is not a valid int64". OK
  /// statuses pass through unchanged.
  Status WithContext(std::string_view context) const {
    if (ok()) return *this;
    std::string prefixed(context);
    prefixed += ": ";
    prefixed += message_;
    return Status(code_, std::move(prefixed));
  }

  /// Renders as "<code name>: <message>" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace parparaw

/// Propagates a non-OK Status to the caller.
#define PARPARAW_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::parparaw::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

/// Propagates a non-OK Status with `ctx` prepended to its message (see
/// Status::WithContext), so the caller's stage shows up in the error.
#define PARPARAW_RETURN_NOT_OK_CTX(expr, ctx)        \
  do {                                               \
    ::parparaw::Status _st = (expr);                 \
    if (!_st.ok()) return _st.WithContext(ctx);      \
  } while (false)

#endif  // PARPARAW_UTIL_STATUS_H_
