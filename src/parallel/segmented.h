#ifndef PARPARAW_PARALLEL_SEGMENTED_H_
#define PARPARAW_PARALLEL_SEGMENTED_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"

namespace parparaw {

/// Segmented variants of the scan/reduce primitives: the CSS is exactly a
/// segmented layout (one segment per column, Fig. 5), and the GPU
/// implementation of CSS-index generation and type inference uses
/// segmented operations so all columns are processed by a single launch
/// instead of per-column kernels (the §5.1 small-input bottleneck).
///
/// `segment_offsets` holds s+1 monotone offsets into the value array; the
/// k-th segment is [offsets[k], offsets[k+1]).

/// Per-segment exclusive scan (each segment restarts at `identity`).
template <typename T, typename Op>
void SegmentedExclusiveScan(ThreadPool* pool, const std::vector<T>& in,
                            const std::vector<int64_t>& segment_offsets,
                            Op op, T identity, std::vector<T>* out) {
  out->assign(in.size(), identity);
  const int64_t num_segments =
      static_cast<int64_t>(segment_offsets.size()) - 1;
  ParallelForEach(pool, 0, num_segments, [&](int64_t s) {
    T running = identity;
    for (int64_t i = segment_offsets[s]; i < segment_offsets[s + 1]; ++i) {
      (*out)[i] = running;
      running = op(running, in[i]);
    }
  });
}

/// Per-segment reduction; empty segments yield `identity`.
template <typename T, typename Op>
void SegmentedReduce(ThreadPool* pool, const std::vector<T>& in,
                     const std::vector<int64_t>& segment_offsets, Op op,
                     T identity, std::vector<T>* out) {
  const int64_t num_segments =
      static_cast<int64_t>(segment_offsets.size()) - 1;
  out->assign(num_segments, identity);
  ParallelForEach(pool, 0, num_segments, [&](int64_t s) {
    const int64_t begin = segment_offsets[s];
    const int64_t end = segment_offsets[s + 1];
    if (begin >= end) return;
    T acc = in[begin];
    for (int64_t i = begin + 1; i < end; ++i) acc = op(acc, in[i]);
    (*out)[s] = acc;
  });
}

/// Per-segment run-length head flags (1 where a value differs from its
/// predecessor within the segment or starts a segment) — the building
/// block of the segmented CSS-index generation.
template <typename T>
void SegmentedRunHeads(ThreadPool* pool, const std::vector<T>& in,
                       const std::vector<int64_t>& segment_offsets,
                       std::vector<uint8_t>* heads) {
  heads->assign(in.size(), 0);
  const int64_t num_segments =
      static_cast<int64_t>(segment_offsets.size()) - 1;
  ParallelForEach(pool, 0, num_segments, [&](int64_t s) {
    for (int64_t i = segment_offsets[s]; i < segment_offsets[s + 1]; ++i) {
      (*heads)[i] =
          (i == segment_offsets[s] || in[i] != in[i - 1]) ? 1 : 0;
    }
  });
}

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_SEGMENTED_H_
