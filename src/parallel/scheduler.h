#ifndef PARPARAW_PARALLEL_SCHEDULER_H_
#define PARPARAW_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace parparaw {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class TaskGroup;

/// \brief Morsel-driven work-stealing scheduler — the CPU substrate's
/// answer to the paper's "thousands of cores" claim (§1/§6).
///
/// The GPU launches one lightweight thread per chunk and the hardware
/// scheduler keeps every SM busy; here the same effect comes from
/// morsel-driven scheduling in the style of Leis et al. (HyPer): work is
/// cut into small morsels (chunk ranges, scan tiles, pipeline-stage
/// partitions) that any worker may execute, so an idle core always finds
/// work no matter which parallel region produced it.
///
/// Design:
///  * Per-worker deques, each guarded by its own mutex (lock-sharded, not
///    a single global queue): the owner pushes and pops at the back
///    (LIFO — hot caches, depth-first descent into nested regions) while
///    thieves steal from the front (FIFO — oldest, largest-granularity
///    work first). Contention on any one lock is between one owner and
///    occasional thieves, never all submitters.
///  * An injection deque for threads that are not pool workers (the
///    pipeline executor's calling thread, serving-daemon connection
///    threads).
///  * Caller-runs semantics: a thread waiting on a TaskGroup executes
///    morsels instead of blocking, so nested parallel regions make
///    forward progress even on a 1-worker pool and a parallel region
///    issued from inside a pool task can never deadlock the pool.
///  * Task groups: every morsel belongs to a group; groups scope waiting
///    (ParallelFor waits only for its own slices) so unrelated work —
///    two concurrent parparawd requests, a scan racing a sort — shares
///    the pool without false dependencies.
///
/// Forward-progress guarantee: a waiter blocks only when no task is
/// queued anywhere (all remaining work is *running* on other threads);
/// every submission wakes a sleeper, and group completion wakes all
/// waiters. Tasks themselves never block except in nested Wait(), which
/// obeys the same rule — by induction on nesting depth the system always
/// progresses.
///
/// Observability: `sched.submits` / `sched.runs` / `sched.steals` /
/// `sched.waits` counters and the `sched.queue_depth` gauge (global
/// registry, enabled-gated). Failpoints: `sched.submit` (fires = the
/// task runs inline on the submitting thread instead of being enqueued)
/// and `sched.steal` (fires = one steal attempt is skipped). Both are
/// pure schedule perturbations for the chaos suite — they must never
/// change any parse output, only the interleaving.
class Scheduler {
 public:
  /// Creates `num_threads` workers; <= 0 uses hardware_concurrency().
  explicit Scheduler(int num_threads);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Drains every queued task, then joins the workers.
  ~Scheduler();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a fire-and-forget task (no group). Prefer TaskGroup for
  /// anything that must be waited on.
  void Submit(std::function<void()> fn);

  /// Blocks until no task is queued or running anywhere, helping to run
  /// queued tasks meanwhile (caller-runs).
  void WaitIdle();

  /// Runs queued tasks until `done()` returns true, blocking only while
  /// no task is queued anywhere. The building block behind
  /// TaskGroup::Wait and WaitIdle.
  void HelpWhile(const std::function<bool()>& done);

  /// True when the calling thread is one of this scheduler's workers.
  bool OnWorkerThread() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// One worker's shard: a deque with its own lock. Owner pushes/pops at
  /// the back, thieves pop at the front.
  struct Shard {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void SubmitTask(Task task);
  void WorkerLoop(int worker_index);
  /// Pops one task (local LIFO, then injection, then steal) and runs it.
  /// Returns false when nothing was queued anywhere.
  bool RunOneTask(int worker_index);
  bool PopLocal(int worker_index, Task* task);
  bool PopInjected(Task* task);
  bool StealTask(int worker_index, Task* task);
  void Execute(Task task);

  // Shared instruments (global registry, enabled-gated).
  obs::Counter* submits_;
  obs::Counter* runs_;
  obs::Counter* steals_;
  obs::Counter* waits_;
  obs::Gauge* queue_depth_;

  std::vector<std::unique_ptr<Shard>> shards_;
  Shard injected_;

  /// Tasks sitting in some deque (not yet picked up). The sleep predicate:
  /// a waiter may block only while this is zero.
  std::atomic<int64_t> queued_{0};
  /// Tasks submitted and not yet finished (queued + running), for
  /// WaitIdle.
  std::atomic<int64_t> outstanding_{0};

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> shutdown_{false};

  std::vector<std::thread> workers_;
};

/// \brief A scope of morsels that one parallel region waits on.
///
/// Usage:
///   TaskGroup group(scheduler);
///   for (...) group.Run([=] { ... });
///   group.Wait();  // caller executes morsels until the group drains
///
/// Wait() may execute tasks from *other* groups while this group's
/// remaining tasks run elsewhere — that only delays the waiter, never
/// deadlocks it, because every task eventually runs on some thread and
/// tasks block only in nested Waits with the same property.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler* scheduler) : scheduler_(scheduler) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  /// Waits for stragglers: a group must never outlive its tasks.
  ~TaskGroup() { Wait(); }

  /// Submits `fn` as a morsel of this group. May be called from inside
  /// another of the group's tasks (the count can never reach zero while
  /// the submitting task is still running).
  void Run(std::function<void()> fn);

  /// Caller-runs until every task submitted to this group has finished.
  void Wait();

 private:
  friend class Scheduler;

  void OnTaskDone();

  Scheduler* scheduler_;
  std::atomic<int64_t> pending_{0};
};

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_SCHEDULER_H_
