#include "parallel/scheduler.h"

#include <utility>

#include "obs/metrics.h"
#include "robust/failpoint.h"

namespace parparaw {

namespace {

inline bool SchedObsEnabled() {
  return obs::MetricsRegistry::Global().enabled();
}

/// Worker identity of the current thread: which scheduler it belongs to
/// (nullptr for external threads) and its shard index there. Saved per
/// thread, checked per scheduler — a worker of pool A helping on pool B
/// is an external thread from B's point of view.
struct WorkerTls {
  Scheduler* scheduler = nullptr;
  int index = -1;
};

thread_local WorkerTls tls_worker;

/// Cheap per-thread xorshift for steal-victim selection. Determinism is
/// not required here (stealing only reorders independent morsels); the
/// seed just needs to differ between threads.
inline uint64_t NextRand() {
  thread_local uint64_t state =
      0x9e3779b97f4a7c15ull ^
      (reinterpret_cast<uintptr_t>(&state) * 0xbf58476d1ce4e5b9ull);
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

Scheduler::Scheduler(int num_threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  submits_ = registry.GetCounter("sched.submits");
  runs_ = registry.GetCounter("sched.runs");
  steals_ = registry.GetCounter("sched.steals");
  waits_ = registry.GetCounter("sched.waits");
  queue_depth_ = registry.GetGauge("sched.queue_depth");
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  shards_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Empty critical section: orders the shutdown store before the wakeup
    // so a worker cannot re-check the predicate, miss it, and sleep.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool Scheduler::OnWorkerThread() const {
  return tls_worker.scheduler == this;
}

void Scheduler::Submit(std::function<void()> fn) {
  SubmitTask(Task{std::move(fn), nullptr});
}

void Scheduler::SubmitTask(Task task) {
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (SchedObsEnabled()) submits_->Increment();
  // The sched.submit failpoint degrades the submission to inline
  // execution on the calling thread — a pure schedule perturbation the
  // chaos suite uses to prove output never depends on where a morsel ran.
  if (!robust::CheckFailpoint("sched.submit").ok()) {
    Execute(std::move(task));
    return;
  }
  // Workers push to their own shard (LIFO locality, stolen FIFO from the
  // front); external threads go through the injection deque.
  Shard& shard = (tls_worker.scheduler == this)
                     ? *shards_[tls_worker.index]
                     : injected_;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.deque.push_back(std::move(task));
  }
  const int64_t queued = queued_.fetch_add(1, std::memory_order_release) + 1;
  if (SchedObsEnabled()) queue_depth_->Set(queued);
  {
    // Empty critical section: pairs with the sleep predicate's re-check of
    // queued_ under sleep_mu_, so a sleeper cannot miss this task.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool Scheduler::PopLocal(int worker_index, Task* task) {
  Shard& shard = *shards_[worker_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.deque.empty()) return false;
  *task = std::move(shard.deque.back());
  shard.deque.pop_back();
  return true;
}

bool Scheduler::PopInjected(Task* task) {
  std::lock_guard<std::mutex> lock(injected_.mu);
  if (injected_.deque.empty()) return false;
  *task = std::move(injected_.deque.front());
  injected_.deque.pop_front();
  return true;
}

bool Scheduler::StealTask(int worker_index, Task* task) {
  const int n = static_cast<int>(shards_.size());
  const int start = static_cast<int>(NextRand() % static_cast<uint64_t>(n));
  for (int i = 0; i < n; ++i) {
    const int victim = (start + i) % n;
    if (victim == worker_index) continue;
    // The sched.steal failpoint skips one steal attempt — like the
    // submit perturbation, it may only change the interleaving.
    if (!robust::CheckFailpoint("sched.steal").ok()) continue;
    Shard& shard = *shards_[victim];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.deque.empty()) continue;
    *task = std::move(shard.deque.front());
    shard.deque.pop_front();
    if (SchedObsEnabled()) steals_->Increment();
    return true;
  }
  return false;
}

bool Scheduler::RunOneTask(int worker_index) {
  Task task;
  bool found = false;
  if (worker_index >= 0) {
    found = PopLocal(worker_index, &task) || PopInjected(&task) ||
            StealTask(worker_index, &task);
  } else {
    found = PopInjected(&task) || StealTask(-1, &task);
  }
  if (!found) return false;
  const int64_t queued = queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (SchedObsEnabled()) queue_depth_->Set(queued);
  Execute(std::move(task));
  return true;
}

void Scheduler::Execute(Task task) {
  if (SchedObsEnabled()) runs_->Increment();
  task.fn();
  TaskGroup* group = task.group;
  // Destroy the closure before publishing completion: a waiter may tear
  // down state the closure captures the moment the group drains.
  task.fn = nullptr;
  if (group != nullptr) group->OnTaskDone();
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    sleep_cv_.notify_all();
  }
}

void Scheduler::WorkerLoop(int worker_index) {
  tls_worker.scheduler = this;
  tls_worker.index = worker_index;
  while (true) {
    if (RunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (SchedObsEnabled()) waits_->Increment();
    sleep_cv_.wait(lock, [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             shutdown_.load(std::memory_order_acquire);
    });
  }
  tls_worker.scheduler = nullptr;
  tls_worker.index = -1;
}

void Scheduler::HelpWhile(const std::function<bool()>& done) {
  const int worker_index =
      tls_worker.scheduler == this ? tls_worker.index : -1;
  while (true) {
    if (done()) return;
    if (RunOneTask(worker_index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (done()) return;
    // Re-check under the lock: a submitter increments queued_ before
    // taking sleep_mu_, so either we see the task here or the notify
    // lands after we wait.
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    if (SchedObsEnabled()) waits_->Increment();
    sleep_cv_.wait(lock, [this, &done] {
      return queued_.load(std::memory_order_acquire) > 0 || done();
    });
  }
}

void Scheduler::WaitIdle() {
  HelpWhile([this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  scheduler_->SubmitTask(Scheduler::Task{std::move(fn), this});
}

void TaskGroup::Wait() {
  if (pending_.load(std::memory_order_acquire) == 0) return;
  scheduler_->HelpWhile([this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void TaskGroup::OnTaskDone() {
  // Copy the scheduler pointer out first: the waiter may destroy this
  // group the instant pending_ reaches zero, so no group member may be
  // touched after the decrement. The scheduler itself (the pool) outlives
  // every group.
  Scheduler* scheduler = scheduler_;
  // acq_rel + the waiter's acquire load: everything the task wrote
  // happens-before the waiter observing pending_ == 0.
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(scheduler->sleep_mu_);
    }
    scheduler->sleep_cv_.notify_all();
  }
}

}  // namespace parparaw
