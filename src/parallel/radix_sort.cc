#include "parallel/radix_sort.h"

#include <algorithm>
#include <numeric>

#include "util/bit_util.h"

namespace parparaw {

namespace {

// One stable partitioning pass over `digit(key)` implementing the paper's
// three sub-steps: per-tile histogram, exclusive prefix sum, stable scatter.
// Reads keys through `src_perm` and writes the refined order to `dst_perm`.
void PartitionPass(ThreadPool* pool, const std::vector<uint32_t>& keys,
                   const std::vector<uint32_t>& src_perm,
                   std::vector<uint32_t>* dst_perm, int shift, int bits) {
  const int64_t n = static_cast<int64_t>(keys.size());
  const uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1u);
  const int num_buckets = 1 << bits;
  const int num_workers = pool ? pool->num_threads() : 1;
  const int64_t num_tiles = std::max<int64_t>(1, std::min<int64_t>(num_workers, n / 1024 + 1));
  const int64_t tile = (n + num_tiles - 1) / num_tiles;

  // (1) Per-tile histogram.
  std::vector<std::vector<int64_t>> tile_hist(
      num_tiles, std::vector<int64_t>(num_buckets, 0));
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    std::vector<int64_t>& hist = tile_hist[t];
    for (int64_t i = b; i < e; ++i) {
      const uint32_t digit = (keys[src_perm[i]] >> shift) & mask;
      ++hist[digit];
    }
  });

  // (2) Exclusive prefix sum, bucket-major then tile-major, so that equal
  // digits preserve input order across tiles (stability).
  std::vector<std::vector<int64_t>> tile_offset(
      num_tiles, std::vector<int64_t>(num_buckets, 0));
  int64_t running = 0;
  for (int bucket = 0; bucket < num_buckets; ++bucket) {
    for (int64_t t = 0; t < num_tiles; ++t) {
      tile_offset[t][bucket] = running;
      running += tile_hist[t][bucket];
    }
  }

  // (3) Stable scatter.
  dst_perm->resize(n);
  uint32_t* dst = dst_perm->data();
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    std::vector<int64_t> cursor = tile_offset[t];
    for (int64_t i = b; i < e; ++i) {
      const uint32_t digit = (keys[src_perm[i]] >> shift) & mask;
      dst[cursor[digit]++] = src_perm[i];
    }
  });
}

int SignificantBits(const std::vector<uint32_t>& keys,
                    const RadixSortOptions& options) {
  // Clamp to the key width: a caller asking for more than 32 significant
  // bits would otherwise drive the pass loop to `keys >> shift` with
  // shift >= 32, which is undefined behaviour on a uint32_t.
  if (options.significant_bits > 0) return std::min(options.significant_bits, 32);
  uint32_t max_key = 0;
  for (uint32_t k : keys) max_key = std::max(max_key, k);
  if (max_key == 0) return 1;
  return bit_util::Log2Floor(max_key) + 1;
}

}  // namespace

void StableRadixSortPermutation(ThreadPool* pool,
                                const std::vector<uint32_t>& keys,
                                std::vector<uint32_t>* permutation,
                                const RadixSortOptions& options) {
  const int64_t n = static_cast<int64_t>(keys.size());
  permutation->resize(n);
  std::iota(permutation->begin(), permutation->end(), 0u);
  if (n <= 1) return;
  const int total_bits = SignificantBits(keys, options);
  const int bits = std::clamp(options.bits_per_pass, 1, 16);
  std::vector<uint32_t> scratch(n);
  std::vector<uint32_t>* src = permutation;
  std::vector<uint32_t>* dst = &scratch;
  for (int shift = 0; shift < total_bits; shift += bits) {
    const int pass_bits = std::min(bits, total_bits - shift);
    PartitionPass(pool, keys, *src, dst, shift, pass_bits);
    std::swap(src, dst);
  }
  if (src != permutation) *permutation = std::move(*src);
}

Status StableRadixSortWithHistogram(ThreadPool* pool,
                                    std::vector<uint32_t>* keys,
                                    std::vector<uint32_t>* permutation,
                                    uint32_t num_partitions,
                                    std::vector<uint64_t>* histogram,
                                    const RadixSortOptions& options) {
  // Every key must lie in the declared domain: the histogram is reused as
  // the source of the per-column CSS offsets, so a silently skipped key
  // would desynchronize every offset after it. An out-of-domain key can
  // only come from a bug in the tagging step — fail loudly.
  histogram->assign(num_partitions, 0);
  for (size_t i = 0; i < keys->size(); ++i) {
    const uint32_t k = (*keys)[i];
    if (k >= num_partitions) {
      return Status::Internal(
          "radix-sort key " + std::to_string(k) + " at index " +
          std::to_string(i) + " is outside the declared domain [0, " +
          std::to_string(num_partitions) +
          "); the tagging step emitted a column tag beyond num_partitions");
    }
    ++(*histogram)[k];
  }
  RadixSortOptions opts = options;
  if (opts.significant_bits == 0 && num_partitions > 1) {
    opts.significant_bits = bit_util::Log2Floor(num_partitions - 1) + 1;
  }
  StableRadixSortPermutation(pool, *keys, permutation, opts);
  // Reorder the keys themselves.
  std::vector<uint32_t> sorted;
  ApplyPermutation(pool, *permutation, *keys, &sorted);
  *keys = std::move(sorted);
  return Status::OK();
}

}  // namespace parparaw
