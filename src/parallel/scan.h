#ifndef PARPARAW_PARALLEL_SCAN_H_
#define PARPARAW_PARALLEL_SCAN_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"

namespace parparaw {

/// Parallel prefix-scan primitives.
///
/// The prefix scan is the fundamental building block of ParPaRaw (§2/§3): it
/// resolves each chunk's DFA entry state (composite operator over
/// state-transition vectors), the record offsets (prefix sum of per-chunk
/// record counts), the column offsets (relative/absolute offset operator),
/// and the CSS index (prefix sum of field lengths). All scans here accept an
/// arbitrary associative — not necessarily commutative — binary operator.
///
/// Two implementations are provided:
///  * ScanTwoPass: classic blocked reduce-then-scan (three phases, reads the
///    input twice).
///  * ScanDecoupledLookback: single-pass chained scan with decoupled
///    look-back after Merrill & Garland [28], the algorithm the paper's GPU
///    implementation uses. Each tile publishes its local aggregate, then
///    resolves its exclusive prefix by inspecting predecessor descriptors
///    (aggregate-available / prefix-available), so the input is read once.
///
/// Both are in-place capable (`out` may alias `in`) and stable with respect
/// to operator associativity only.

namespace internal {

/// Sequential inclusive scan over [begin, end), seeded with `carry_in` if
/// `has_carry`. Returns the final running value.
template <typename T, typename Op>
T SequentialInclusiveScan(const T* in, T* out, int64_t n, Op op, T carry_in,
                          bool has_carry) {
  T running = carry_in;
  for (int64_t i = 0; i < n; ++i) {
    if (!has_carry && i == 0) {
      running = in[0];
    } else {
      running = op(running, in[i]);
    }
    out[i] = running;
  }
  return running;
}

}  // namespace internal

/// Tile status for the decoupled-lookback scan descriptor.
enum class TileStatus : int { kInvalid = 0, kAggregate = 1, kPrefix = 2 };

/// \brief Inclusive scan, two-pass (reduce then scan) blocked algorithm.
///
/// `op` must be associative. `identity` is the operator's identity element.
/// `out` may alias `in`. `n == 0` is a no-op.
template <typename T, typename Op>
void ScanTwoPass(ThreadPool* pool, const T* in, T* out, int64_t n, Op op,
                 T identity) {
  if (n <= 0) return;
  const int num_workers = pool ? pool->num_threads() : 1;
  const int64_t kMinTile = 1024;
  int64_t num_tiles = std::min<int64_t>(num_workers * 4, (n + kMinTile - 1) / kMinTile);
  if (num_tiles <= 1 || num_workers <= 1) {
    internal::SequentialInclusiveScan(in, out, n, op, identity, false);
    return;
  }
  const int64_t tile = (n + num_tiles - 1) / num_tiles;
  num_tiles = (n + tile - 1) / tile;
  std::vector<T> aggregates(num_tiles, identity);
  // Phase 1: per-tile reduction.
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    T agg = in[b];
    for (int64_t i = b + 1; i < e; ++i) agg = op(agg, in[i]);
    aggregates[t] = agg;
  });
  // Phase 2: exclusive scan of the tile aggregates (sequential; num_tiles is
  // small).
  std::vector<T> tile_prefix(num_tiles, identity);
  T running = identity;
  for (int64_t t = 0; t < num_tiles; ++t) {
    tile_prefix[t] = running;
    running = (t == 0) ? aggregates[0] : op(running, aggregates[t]);
  }
  // Phase 3: per-tile inclusive scan seeded with the tile's exclusive
  // prefix.
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    internal::SequentialInclusiveScan(in + b, out + b, e - b, op,
                                      tile_prefix[t], t != 0);
  });
}

/// \brief Inclusive scan, single-pass with decoupled look-back
/// (Merrill & Garland). Semantics identical to ScanTwoPass.
///
/// Forward progress on a *shared* pool: a tile's look-back spin-waits on
/// its predecessors' descriptors, so a naive static assignment (tile ->
/// task up front) can livelock — every worker occupied by a tile whose
/// predecessor is still sitting in a queue behind unrelated work (two
/// concurrent parparawd parses are enough). Instead, tiles are claimed
/// dynamically off an atomic cursor from inside the running tasks:
/// claims are monotonic, a task finishes its tile before claiming the
/// next, so every predecessor a spin can wait on is already *running* on
/// some thread (or done), never merely queued. The earliest claimed
/// unfinished tile therefore always has all predecessors resolved and
/// completes, and by induction so does everything after it — even when
/// only one of the submitted tasks ever gets a worker, that task alone
/// claims and finishes all tiles in order without spinning at all.
template <typename T, typename Op>
void ScanDecoupledLookback(ThreadPool* pool, const T* in, T* out, int64_t n,
                           Op op, T identity) {
  if (n <= 0) return;
  const int num_workers = pool ? pool->num_threads() : 1;
  const int64_t kMinTile = 1024;
  int64_t num_tiles = std::min<int64_t>(num_workers * 4, (n + kMinTile - 1) / kMinTile);
  if (num_tiles <= 1 || pool == nullptr) {
    internal::SequentialInclusiveScan(in, out, n, op, identity, false);
    return;
  }
  const int64_t tile = (n + num_tiles - 1) / num_tiles;
  num_tiles = (n + tile - 1) / tile;

  struct TileDescriptor {
    std::atomic<int> status{static_cast<int>(TileStatus::kInvalid)};
    T aggregate;
    T inclusive_prefix;
  };
  std::vector<TileDescriptor> descriptors(num_tiles);
  std::atomic<int64_t> next_tile{0};

  const auto process_tile = [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    TileDescriptor& desc = descriptors[t];
    // Local inclusive scan into the output (single pass over the input).
    internal::SequentialInclusiveScan(in + b, out + b, e - b, op, identity,
                                      false);
    desc.aggregate = out[e - 1];
    if (t == 0) {
      desc.inclusive_prefix = desc.aggregate;
      desc.status.store(static_cast<int>(TileStatus::kPrefix),
                        std::memory_order_release);
      return;
    }
    desc.status.store(static_cast<int>(TileStatus::kAggregate),
                      std::memory_order_release);
    // Decoupled look-back: walk predecessors, accumulating aggregates until
    // a tile with a resolved inclusive prefix is found. The spin below is
    // safe because the predecessor was claimed before this tile, so a
    // running task is actively driving it to completion (see above).
    T exclusive = identity;
    bool have_exclusive = false;
    for (int64_t p = t - 1; p >= 0; --p) {
      TileDescriptor& pred = descriptors[p];
      int status;
      while ((status = pred.status.load(std::memory_order_acquire)) ==
             static_cast<int>(TileStatus::kInvalid)) {
        std::this_thread::yield();
      }
      if (status == static_cast<int>(TileStatus::kPrefix)) {
        exclusive = have_exclusive ? op(pred.inclusive_prefix, exclusive)
                                   : pred.inclusive_prefix;
        have_exclusive = true;
        break;
      }
      exclusive =
          have_exclusive ? op(pred.aggregate, exclusive) : pred.aggregate;
      have_exclusive = true;
    }
    // Fix up the local scan with the resolved exclusive prefix and publish
    // this tile's inclusive prefix.
    for (int64_t i = b; i < e; ++i) out[i] = op(exclusive, out[i]);
    desc.inclusive_prefix = out[e - 1];
    desc.status.store(static_cast<int>(TileStatus::kPrefix),
                      std::memory_order_release);
  };

  // One claim-loop task per potential runner (workers + the caller, which
  // executes tasks itself under ParallelFor's caller-runs contract).
  // Any subset of them suffices for completion; extras just steal tiles.
  const int64_t num_tasks = std::min<int64_t>(num_tiles, num_workers + 1);
  ParallelForEach(pool, 0, num_tasks, [&](int64_t) {
    int64_t t;
    while ((t = next_tile.fetch_add(1, std::memory_order_relaxed)) <
           num_tiles) {
      process_tile(t);
    }
  });
}

/// \brief Inclusive scan with the default (single-pass) algorithm.
template <typename T, typename Op>
void InclusiveScan(ThreadPool* pool, const T* in, T* out, int64_t n, Op op,
                   T identity) {
  ScanDecoupledLookback(pool, in, out, n, op, identity);
}

/// \brief Exclusive scan: out[i] = op(in[0], ..., in[i-1]), out[0] =
/// identity. `out` must not alias `in` unless T is trivially copyable (a
/// temporary holds the shifted value either way; aliasing is supported).
template <typename T, typename Op>
void ExclusiveScan(ThreadPool* pool, const T* in, T* out, int64_t n, Op op,
                   T identity) {
  if (n <= 0) return;
  // Inclusive scan into a temporary, then shift right by one.
  std::vector<T> inclusive(n, identity);
  InclusiveScan(pool, in, inclusive.data(), n, op, identity);
  out[0] = identity;
  for (int64_t i = 1; i < n; ++i) out[i] = std::move(inclusive[i - 1]);
}

/// \brief Exclusive prefix sum convenience wrapper. Returns the grand total.
template <typename T>
T ExclusivePrefixSum(ThreadPool* pool, const T* in, T* out, int64_t n) {
  if (n <= 0) return T{};
  T last_in = in[n - 1];  // Read before scanning: out may alias in.
  ExclusiveScan(pool, in, out, n, [](T a, T b) { return a + b; }, T{});
  return out[n - 1] + last_in;
}

/// \brief Parallel reduction with an associative operator. Returns identity
/// for an empty input.
template <typename T, typename Op>
T Reduce(ThreadPool* pool, const T* in, int64_t n, Op op, T identity) {
  if (n <= 0) return identity;
  const int num_workers = pool ? pool->num_threads() : 1;
  if (num_workers <= 1 || n < 4096) {
    T acc = in[0];
    for (int64_t i = 1; i < n; ++i) acc = op(acc, in[i]);
    return acc;
  }
  const int64_t num_tiles = num_workers;
  const int64_t tile = (n + num_tiles - 1) / num_tiles;
  std::vector<T> partial(num_tiles, identity);
  ParallelForEach(pool, 0, num_tiles, [&](int64_t t) {
    const int64_t b = t * tile;
    const int64_t e = std::min<int64_t>(b + tile, n);
    if (b >= e) return;
    T acc = in[b];
    for (int64_t i = b + 1; i < e; ++i) acc = op(acc, in[i]);
    partial[t] = acc;
  });
  T acc = identity;
  bool first = true;
  for (int64_t t = 0; t < num_tiles; ++t) {
    const int64_t b = t * tile;
    if (b >= n) break;
    acc = first ? partial[t] : op(acc, partial[t]);
    first = false;
  }
  return acc;
}

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_SCAN_H_
