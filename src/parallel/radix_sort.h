#ifndef PARPARAW_PARALLEL_RADIX_SORT_H_
#define PARPARAW_PARALLEL_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"
#include "util/status.h"

namespace parparaw {

/// \brief Options for the stable LSD radix sort.
struct RadixSortOptions {
  /// Bits consumed per partitioning pass (§3.3: "the radix sort iterates
  /// over the bits of the column-tags, performing a stable partitioning pass
  /// on the sequence of bits considered with a given pass").
  int bits_per_pass = 8;
  /// Number of low key bits that are significant; passes stop once all
  /// significant bits are consumed. 0 means derive from the maximum key.
  /// Values above 32 are clamped to 32: keys are uint32_t, and a larger
  /// request would drive the pass loop to shifts >= 32 (undefined
  /// behaviour on a 32-bit operand).
  int significant_bits = 0;
};

/// \brief Stable LSD radix sort of 32-bit keys; fills `permutation` with the
/// stable sorted order (permutation[i] = index of the i-th smallest key).
///
/// Each pass performs the paper's three partitioning sub-steps: (1) per-tile
/// histogram, (2) exclusive prefix sum over the histogram counts, and
/// (3) stable scatter. Payloads (symbols and record-tags in the paper) are
/// moved by applying the permutation, see ApplyPermutation below.
void StableRadixSortPermutation(ThreadPool* pool,
                                const std::vector<uint32_t>& keys,
                                std::vector<uint32_t>* permutation,
                                const RadixSortOptions& options = {});

/// \brief Stable radix sort that also reorders `keys` in place and returns
/// the per-key-value counts (the histogram the paper reuses to find the CSS
/// offsets). `num_partitions` is an exclusive upper bound on key values;
/// a key outside [0, num_partitions) violates the tagging step's invariant
/// and yields an Internal error (leaving `keys` unreordered) rather than a
/// silently short histogram that would desynchronize every CSS offset
/// derived from it.
Status StableRadixSortWithHistogram(ThreadPool* pool,
                                    std::vector<uint32_t>* keys,
                                    std::vector<uint32_t>* permutation,
                                    uint32_t num_partitions,
                                    std::vector<uint64_t>* histogram,
                                    const RadixSortOptions& options = {});

/// \brief Gathers `in` through `permutation`: out[i] = in[permutation[i]].
template <typename T>
void ApplyPermutation(ThreadPool* pool, const std::vector<uint32_t>& permutation,
                      const std::vector<T>& in, std::vector<T>* out) {
  out->resize(permutation.size());
  T* out_data = out->data();
  const T* in_data = in.data();
  const uint32_t* perm = permutation.data();
  ParallelFor(pool, 0, static_cast<int64_t>(permutation.size()),
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) out_data[i] = in_data[perm[i]];
              });
}

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_RADIX_SORT_H_
