#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "robust/failpoint.h"

namespace parparaw {

namespace {

inline bool PoolObsEnabled() {
  return obs::MetricsRegistry::Global().enabled();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  // Instruments are shared by every pool in the process; creating them is
  // cheap and valid even while the global registry is disabled.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  tasks_submitted_ = registry.GetCounter("pool.tasks_submitted");
  tasks_executed_ = registry.GetCounter("pool.tasks_executed");
  worker_waits_ = registry.GetCounter("pool.worker_waits");
  queue_depth_ = registry.GetGauge("pool.queue_depth");
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (PoolObsEnabled()) {
      tasks_submitted_->Increment();
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!shutdown_ && queue_.empty() && PoolObsEnabled()) {
        worker_waits_->Increment();
      }
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ with an empty queue: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (PoolObsEnabled()) {
        tasks_executed_->Increment();
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool* ThreadPool::Default() {
  static ThreadPool& pool = *new ThreadPool();
  return &pool;
}

Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return Status::OK();
  const int64_t count = end - begin;
  const int num_workers =
      pool == nullptr ? 1
                      : std::min<int64_t>(pool->num_threads(), count);
  if (num_workers <= 1) {
    const Status injected = robust::CheckFailpoint("pool.task");
    // The slice body runs even when the failpoint fires: faults must never
    // change what was computed, only whether an error is reported, so
    // callers that discard the Status stay bit-identical to fault-free runs.
    body(begin, end);
    return injected;
  }
  // One contiguous slice per worker; remainder spread over the first slices.
  const int64_t base = count / num_workers;
  const int64_t extra = count % num_workers;
  std::atomic<int> remaining{num_workers};
  std::mutex done_mu;
  std::condition_variable done_cv;
  Status first_error;
  int64_t slice_begin = begin;
  for (int w = 0; w < num_workers; ++w) {
    const int64_t slice_size = base + (w < extra ? 1 : 0);
    const int64_t slice_end = slice_begin + slice_size;
    pool->Submit([&, slice_begin, slice_end] {
      const Status injected = robust::CheckFailpoint("pool.task");
      body(slice_begin, slice_end);
      {
        std::lock_guard<std::mutex> lock(done_mu);
        if (!injected.ok() && first_error.ok()) first_error = injected;
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
    slice_begin = slice_end;
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  return first_error;
}

Status ParallelForEach(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t)>& body) {
  return ParallelFor(pool, begin, end, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

}  // namespace parparaw
