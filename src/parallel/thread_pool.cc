#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "robust/failpoint.h"

namespace parparaw {

namespace {

inline bool PoolObsEnabled() {
  return obs::MetricsRegistry::Global().enabled();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  tasks_submitted_ = registry.GetCounter("pool.tasks_submitted");
  tasks_executed_ = registry.GetCounter("pool.tasks_executed");
  scheduler_ = std::make_unique<Scheduler>(num_threads);
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::Submit(std::function<void()> task) {
  if (PoolObsEnabled()) tasks_submitted_->Increment();
  obs::Counter* executed = tasks_executed_;
  scheduler_->Submit([executed, task = std::move(task)] {
    task();
    if (PoolObsEnabled()) executed->Increment();
  });
}

void ThreadPool::WaitIdle() { scheduler_->WaitIdle(); }

ThreadPool* ThreadPool::Default() {
  static ThreadPool& pool = *new ThreadPool();
  return &pool;
}

Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body) {
  if (begin >= end) return Status::OK();
  const int64_t count = end - begin;
  // Caller-runs makes the calling thread a worker too, so the effective
  // parallelism is workers + 1. Two morsels per runner lets the stealer
  // rebalance uneven bodies without shredding cache locality.
  const int64_t runners =
      pool == nullptr ? 1 : static_cast<int64_t>(pool->num_threads()) + 1;
  const int64_t num_morsels = std::min<int64_t>(count, runners * 2);
  if (pool == nullptr || num_morsels <= 1) {
    const Status injected = robust::CheckFailpoint("pool.task");
    // The morsel body runs even when the failpoint fires: faults must
    // never change what was computed, only whether an error is reported,
    // so callers that discard the Status stay bit-identical to fault-free
    // runs.
    body(begin, end);
    return injected;
  }
  if (PoolObsEnabled()) {
    obs::MetricsRegistry::Global().AddCounter("pool.tasks_submitted",
                                              num_morsels);
    obs::MetricsRegistry::Global().AddCounter("pool.tasks_executed",
                                              num_morsels);
  }
  // One contiguous morsel per slot; remainder spread over the first ones.
  const int64_t base = count / num_morsels;
  const int64_t extra = count % num_morsels;
  std::mutex error_mu;
  Status first_error;
  TaskGroup group(pool->scheduler());
  int64_t morsel_begin = begin;
  for (int64_t m = 0; m < num_morsels; ++m) {
    const int64_t morsel_size = base + (m < extra ? 1 : 0);
    const int64_t morsel_end = morsel_begin + morsel_size;
    group.Run([&, morsel_begin, morsel_end] {
      const Status injected = robust::CheckFailpoint("pool.task");
      body(morsel_begin, morsel_end);
      if (!injected.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = injected;
      }
    });
    morsel_begin = morsel_end;
  }
  // Caller-runs: this thread executes morsels (its own first, then any
  // queued work) until the group drains — it never parks while work is
  // runnable, which is what makes nested parallel regions safe.
  group.Wait();
  return first_error;
}

Status ParallelForEach(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t)>& body) {
  return ParallelFor(pool, begin, end, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) body(i);
  });
}

}  // namespace parparaw
