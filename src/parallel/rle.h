#ifndef PARPARAW_PARALLEL_RLE_H_
#define PARPARAW_PARALLEL_RLE_H_

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.h"

namespace parparaw {

/// \brief Run-length encodes `in`: fills `values` with the distinct runs'
/// values and `lengths` with their lengths, in order.
///
/// §3.3 applies this to the column-partitioned record-tags: each run is one
/// field, its value the field's record and its length the field's symbol
/// count, from which the CSS index is derived by an exclusive prefix sum.
template <typename T>
void RunLengthEncode(ThreadPool* pool, const std::vector<T>& in,
                     std::vector<T>* values, std::vector<int64_t>* lengths) {
  values->clear();
  lengths->clear();
  const int64_t n = static_cast<int64_t>(in.size());
  if (n == 0) return;

  // Parallel step: mark run heads (in[i] != in[i-1]).
  std::vector<uint8_t> head(n);
  const T* data = in.data();
  uint8_t* head_data = head.data();
  ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      head_data[i] = (i == 0 || data[i] != data[i - 1]) ? 1 : 0;
    }
  });
  // Collect runs (sequential gather; output is much smaller than input).
  int64_t run_start = 0;
  for (int64_t i = 1; i <= n; ++i) {
    if (i == n || head_data[i]) {
      values->push_back(data[run_start]);
      lengths->push_back(i - run_start);
      run_start = i;
    }
  }
}

/// \brief Stream compaction: copies in[i] for which flags[i] != 0 to `out`,
/// preserving order.
template <typename T>
void StreamCompact(ThreadPool* pool, const std::vector<T>& in,
                   const std::vector<uint8_t>& flags, std::vector<T>* out) {
  (void)pool;
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (flags[i]) out->push_back(in[i]);
  }
}

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_RLE_H_
