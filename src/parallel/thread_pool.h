#ifndef PARPARAW_PARALLEL_THREAD_POOL_H_
#define PARPARAW_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace parparaw {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// \brief Fixed-size worker pool backing the CPU data-parallel substrate.
///
/// On the GPU, ParPaRaw launches one lightweight thread per input chunk; here
/// the same per-chunk kernels are executed by pool workers over chunk ranges
/// (see ParallelFor). The pool is the only place the library creates threads.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` uses
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing.
  void WaitIdle();

  /// Process-wide default pool, created on first use and intentionally never
  /// destroyed (Google style: function-local static reference).
  static ThreadPool* Default();

 private:
  void WorkerLoop();

  // Pool metrics, registered in obs::MetricsRegistry::Global() at
  // construction ("pool.tasks_submitted" / "pool.tasks_executed" /
  // "pool.worker_waits" counters, "pool.queue_depth" gauge). Recording is
  // gated on the global registry's enabled flag, so an un-observed
  // process pays one relaxed load per submit/execute.
  obs::Counter* tasks_submitted_;
  obs::Counter* tasks_executed_;
  obs::Counter* worker_waits_;
  obs::Gauge* queue_depth_;

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs `body(range_begin, range_end)` over a partition of
/// [begin, end) across the pool's workers and blocks until done.
///
/// The partition is static and contiguous (one slice per worker, like a GPU
/// grid where each "thread" owns a contiguous run of chunks). `body` must be
/// safe to invoke concurrently on disjoint ranges. A null `pool` or a
/// single-worker pool degrades to a sequential loop.
///
/// Returns non-OK when the `pool.task` failpoint fires for a slice. Every
/// slice body still runs — faults never skip work, so callers that ignore
/// the Status (pure computations whose results feed later steps) stay
/// bit-identical to a fault-free run; callers that check it observe the
/// injected error after the barrier. There is exactly one failpoint check
/// per slice, before the slice body.
Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body);

/// \brief Like ParallelFor but invokes `body(i)` per index. Convenience for
/// per-chunk kernels. Same failpoint/Status contract as ParallelFor.
Status ParallelForEach(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t)>& body);

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_THREAD_POOL_H_
