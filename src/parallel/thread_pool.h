#ifndef PARPARAW_PARALLEL_THREAD_POOL_H_
#define PARPARAW_PARALLEL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "parallel/scheduler.h"
#include "util/status.h"

namespace parparaw {

namespace obs {
class Counter;
}  // namespace obs

/// \brief Fixed-size worker pool backing the CPU data-parallel substrate.
///
/// On the GPU, ParPaRaw launches one lightweight thread per input chunk;
/// here the same per-chunk kernels are executed as morsels by a
/// work-stealing Scheduler (see parallel/scheduler.h): per-worker deques
/// with LIFO local execution and FIFO stealing, caller-runs waits, and
/// task-group scoping so nested parallel regions and concurrent ingests
/// share one pool with guaranteed forward progress. ThreadPool is the
/// stable facade every call site holds (ParseOptions::pool); the
/// scheduler is its engine. The pool is the only place the library
/// creates compute threads.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` uses
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  int num_threads() const { return scheduler_->num_threads(); }

  /// Enqueues a fire-and-forget task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing, running
  /// queued tasks on the calling thread meanwhile (caller-runs).
  void WaitIdle();

  /// The work-stealing engine, for callers that need task groups or
  /// caller-runs waits directly (the pipelined executor's morsel graph).
  Scheduler* scheduler() { return scheduler_.get(); }

  /// Process-wide default pool, created on first use and intentionally
  /// never destroyed (Google style: function-local static reference).
  static ThreadPool* Default();

 private:
  // Facade-level metrics, kept for continuity with the original pool
  // ("pool.tasks_submitted" / "pool.tasks_executed" counters); the
  // scheduler exports the richer sched.* set.
  obs::Counter* tasks_submitted_;
  obs::Counter* tasks_executed_;

  std::unique_ptr<Scheduler> scheduler_;
};

/// \brief Runs `body(range_begin, range_end)` over a partition of
/// [begin, end) across the pool's workers and blocks until done.
///
/// The range is cut into contiguous morsels (a small multiple of the
/// worker count, so stealing can rebalance uneven slices) and submitted
/// as one task group; the calling thread executes morsels itself instead
/// of blocking (caller-runs), so a nested ParallelFor issued from inside
/// a pool task — even on a 1-worker pool — always makes forward
/// progress. `body` must be safe to invoke concurrently on disjoint
/// ranges; which thread runs which morsel is unspecified and must not
/// affect the result. A null `pool` degrades to a sequential loop.
///
/// Returns non-OK when the `pool.task` failpoint fires for a morsel.
/// Every morsel body still runs — faults never skip work, so callers
/// that ignore the Status (pure computations whose results feed later
/// steps) stay bit-identical to a fault-free run; callers that check it
/// observe the injected error after the group drains. There is exactly
/// one failpoint check per morsel, before the morsel body.
Status ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                   const std::function<void(int64_t, int64_t)>& body);

/// \brief Like ParallelFor but invokes `body(i)` per index. Convenience for
/// per-chunk kernels. Same failpoint/Status contract as ParallelFor.
Status ParallelForEach(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t)>& body);

}  // namespace parparaw

#endif  // PARPARAW_PARALLEL_THREAD_POOL_H_
