#include "text/unicode.h"

#include <cstring>
#include <vector>

#include "parallel/scan.h"
#include "util/bit_util.h"

namespace parparaw {

int Utf8SequenceLength(uint8_t lead) {
  if ((lead & 0x80) == 0x00) return 1;
  if ((lead & 0xE0) == 0xC0) return 2;
  if ((lead & 0xF0) == 0xE0) return 3;
  if ((lead & 0xF8) == 0xF0) return 4;
  return 0;
}

size_t AdjustChunkBeginUtf8(const uint8_t* data, size_t size, size_t pos) {
  if (pos > size) return size;
  // At most three continuation bytes can precede a lead byte.
  size_t p = pos;
  while (p < size && p < pos + 3 && IsUtf8ContinuationByte(data[p])) ++p;
  return p;
}

namespace {

inline uint16_t ReadUnitLe(const uint8_t* data, size_t byte_pos) {
  return static_cast<uint16_t>(data[byte_pos] |
                               (static_cast<uint16_t>(data[byte_pos + 1])
                                << 8));
}

}  // namespace

size_t AdjustChunkBeginUtf16Le(const uint8_t* data, size_t size, size_t pos) {
  size_t p = pos + (pos & 1);  // align to a unit boundary
  if (p + 1 < size && IsUtf16LowSurrogate(ReadUnitLe(data, p))) {
    p += 2;  // trailing half of a surrogate pair owned by the previous chunk
  }
  return p;
}

int EncodeUtf8(uint32_t cp, uint8_t* out) {
  if (cp < 0x80) {
    out[0] = static_cast<uint8_t>(cp);
    return 1;
  }
  if (cp < 0x800) {
    out[0] = static_cast<uint8_t>(0xC0 | (cp >> 6));
    out[1] = static_cast<uint8_t>(0x80 | (cp & 0x3F));
    return 2;
  }
  if (cp < 0x10000) {
    if (cp >= 0xD800 && cp <= 0xDFFF) return 0;  // surrogate range
    out[0] = static_cast<uint8_t>(0xE0 | (cp >> 12));
    out[1] = static_cast<uint8_t>(0x80 | ((cp >> 6) & 0x3F));
    out[2] = static_cast<uint8_t>(0x80 | (cp & 0x3F));
    return 3;
  }
  if (cp <= 0x10FFFF) {
    out[0] = static_cast<uint8_t>(0xF0 | (cp >> 18));
    out[1] = static_cast<uint8_t>(0x80 | ((cp >> 12) & 0x3F));
    out[2] = static_cast<uint8_t>(0x80 | ((cp >> 6) & 0x3F));
    out[3] = static_cast<uint8_t>(0x80 | (cp & 0x3F));
    return 4;
  }
  return 0;
}

Result<std::string> TranscodeUtf16LeToUtf8(ThreadPool* pool,
                                           std::string_view utf16_bytes,
                                           size_t chunk_size) {
  if (utf16_bytes.size() % 2 != 0) {
    return Status::Invalid("UTF-16 input must have an even byte length");
  }
  const auto* data = reinterpret_cast<const uint8_t*>(utf16_bytes.data());
  const size_t size = utf16_bytes.size();
  if (size == 0) return std::string();
  chunk_size += chunk_size & 1;  // keep chunk boundaries unit-aligned
  const int64_t num_chunks =
      static_cast<int64_t>(bit_util::CeilDiv(size, chunk_size));

  // Pass 1: per-chunk UTF-8 output size, honouring the §4.2 boundary rule
  // (a chunk owns the code points *starting* inside it).
  std::vector<int64_t> out_sizes(num_chunks, 0);
  std::vector<uint8_t> errors(num_chunks, 0);
  auto process_chunk = [&](int64_t c, uint8_t* out, int64_t* out_bytes) {
    const size_t raw_begin = static_cast<size_t>(c) * chunk_size;
    const size_t raw_end = std::min(raw_begin + chunk_size, size);
    size_t p = AdjustChunkBeginUtf16Le(data, size, raw_begin);
    int64_t written = 0;
    while (p < raw_end) {
      const uint16_t unit = ReadUnitLe(data, p);
      uint32_t cp;
      if (IsUtf16HighSurrogate(unit)) {
        if (p + 3 >= size || !IsUtf16LowSurrogate(ReadUnitLe(data, p + 2))) {
          errors[c] = 1;
          return;
        }
        const uint16_t low = ReadUnitLe(data, p + 2);
        cp = 0x10000 + ((static_cast<uint32_t>(unit) - 0xD800) << 10) +
             (low - 0xDC00);
        p += 4;  // may read past raw_end; the next chunk skips the low half
      } else if (IsUtf16LowSurrogate(unit)) {
        errors[c] = 1;  // unpaired low surrogate at a code-point start
        return;
      } else {
        cp = unit;
        p += 2;
      }
      uint8_t buf[4];
      const int n = EncodeUtf8(cp, buf);
      if (n == 0) {
        errors[c] = 1;
        return;
      }
      if (out != nullptr) std::memcpy(out + written, buf, n);
      written += n;
    }
    *out_bytes = written;
  };

  ParallelForEach(pool, 0, num_chunks, [&](int64_t c) {
    process_chunk(c, nullptr, &out_sizes[c]);
  });
  for (int64_t c = 0; c < num_chunks; ++c) {
    if (errors[c]) {
      return Status::ParseError("invalid UTF-16 surrogate sequence");
    }
  }

  // Exclusive prefix sum gives each chunk's output offset.
  std::vector<int64_t> offsets(num_chunks, 0);
  const int64_t total =
      ExclusivePrefixSum(pool, out_sizes.data(), offsets.data(), num_chunks);

  // Pass 2: parallel write.
  std::string out(static_cast<size_t>(total), '\0');
  ParallelForEach(pool, 0, num_chunks, [&](int64_t c) {
    int64_t written = 0;
    process_chunk(c, reinterpret_cast<uint8_t*>(out.data()) + offsets[c],
                  &written);
  });
  return out;
}

}  // namespace parparaw
