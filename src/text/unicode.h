#ifndef PARPARAW_TEXT_UNICODE_H_
#define PARPARAW_TEXT_UNICODE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "parallel/thread_pool.h"
#include "util/result.h"

namespace parparaw {

/// Input text encodings (§4.2 "Variable-Length Symbols").
///
/// The parser's chunked passes are byte-oriented, which is exact for ASCII
/// and for UTF-8 with ASCII control symbols: UTF-8 continuation bytes all
/// carry the 0b10xxxxxx prefix, can never collide with ASCII delimiters,
/// and act as plain field data in every DFA state, so a chunk boundary in
/// the middle of a code point is harmless to the DFA while the CSS keeps
/// every byte. UTF-16 input is transcoded to UTF-8 by a data-parallel
/// pre-pass that applies the paper's chunk-boundary rule (skip a leading
/// low surrogate, the thread owning the leading unit reads across the
/// boundary).
enum class TextEncoding : uint8_t {
  kAscii,
  kUtf8,
  kUtf16Le,
};

/// True for UTF-8 continuation bytes (binary prefix 0b10xxxxxx).
inline bool IsUtf8ContinuationByte(uint8_t byte) {
  return (byte & 0xC0) == 0x80;
}

/// Length in bytes of the UTF-8 sequence introduced by `lead` (1-4), or 0
/// for a continuation/invalid lead byte.
int Utf8SequenceLength(uint8_t lead);

/// First code-point start at or after `pos` (§4.2: "threads simply ignore a
/// chunk's first few bytes with that binary prefix"). Clamped to `size`.
size_t AdjustChunkBeginUtf8(const uint8_t* data, size_t size, size_t pos);

/// True for a UTF-16 low surrogate code unit (0xDC00-0xDFFF).
inline bool IsUtf16LowSurrogate(uint16_t unit) {
  return unit >= 0xDC00 && unit <= 0xDFFF;
}

/// True for a UTF-16 high surrogate code unit (0xD800-0xDBFF).
inline bool IsUtf16HighSurrogate(uint16_t unit) {
  return unit >= 0xD800 && unit <= 0xDBFF;
}

/// First code-point start (in bytes, always even) at or after byte `pos` in
/// little-endian UTF-16 (§4.2: "a thread ignores a chunk's first two bytes
/// if their value is in the range of 0xDC00 to 0xDFFF").
size_t AdjustChunkBeginUtf16Le(const uint8_t* data, size_t size, size_t pos);

/// Encodes `code_point` as UTF-8 into `out` (up to 4 bytes); returns the
/// number of bytes written, 0 for invalid code points.
int EncodeUtf8(uint32_t code_point, uint8_t* out);

/// \brief Data-parallel UTF-16LE to UTF-8 transcoder.
///
/// Splits the input into chunks, adjusts each chunk's start with
/// AdjustChunkBeginUtf16Le, sizes the output with a per-chunk count pass
/// plus an exclusive prefix sum, then writes in parallel — the same
/// two-pass compaction pattern as the parser's tag step. Unpaired
/// surrogates are an error.
Result<std::string> TranscodeUtf16LeToUtf8(ThreadPool* pool,
                                           std::string_view utf16_bytes,
                                           size_t chunk_size = 4096);

}  // namespace parparaw

#endif  // PARPARAW_TEXT_UNICODE_H_
