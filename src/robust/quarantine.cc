#include "robust/quarantine.h"

namespace parparaw {
namespace robust {

const char* ErrorPolicyToString(ErrorPolicy policy) {
  switch (policy) {
    case ErrorPolicy::kNull:
      return "null";
    case ErrorPolicy::kFail:
      return "fail";
    case ErrorPolicy::kSkip:
      return "skip";
    case ErrorPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

const QuarantineEntry* QuarantineTable::FindRow(int64_t row) const {
  for (const QuarantineEntry& entry : entries_) {
    if (entry.row == row) return &entry;
  }
  return nullptr;
}

std::vector<uint8_t> QuarantineTable::RejectedBitmap(int64_t num_rows) const {
  std::vector<uint8_t> rejected(static_cast<size_t>(num_rows), 0);
  for (const QuarantineEntry& entry : entries_) {
    if (entry.row >= 0 && entry.row < num_rows) {
      rejected[static_cast<size_t>(entry.row)] = 1;
    }
  }
  return rejected;
}

std::string QuarantineTable::SummaryText() const {
  std::string out;
  for (const QuarantineEntry& entry : entries_) {
    out += "row ";
    out += std::to_string(entry.row);
    out += " [";
    out += std::to_string(entry.begin);
    out += ", ";
    out += std::to_string(entry.end);
    out += ") stage=";
    out += entry.stage;
    if (entry.column >= 0) {
      out += " column=";
      out += std::to_string(entry.column);
    }
    out += " ";
    out += StatusCodeToString(entry.code);
    if (!entry.message.empty()) {
      out += ": ";
      out += entry.message;
    }
    out += "\n";
  }
  return out;
}

}  // namespace robust
}  // namespace parparaw
