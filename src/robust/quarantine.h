#ifndef PARPARAW_ROBUST_QUARANTINE_H_
#define PARPARAW_ROBUST_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace parparaw {
namespace robust {

/// \brief What the pipeline does with a malformed record (a value that does
/// not convert to its column type, a NULL in a non-nullable column, or a
/// wrong column count under ColumnCountPolicy::kReject).
enum class ErrorPolicy : uint8_t {
  /// Keep the record; the bad value becomes NULL and the record's bit is
  /// set in Table::rejected. This is the pre-existing behaviour and the
  /// default.
  kNull,
  /// Fail the whole parse with the first record's error.
  kFail,
  /// Remove malformed records from the output table entirely (row indices
  /// compact; Table::rejected is all-zero on return).
  kSkip,
  /// Like kNull, but additionally capture each malformed record — raw
  /// bytes, byte-accurate source span, offending column, StatusCode and
  /// pipeline stage — in ParseOutput::quarantine for later repair via
  /// ReparseQuarantined(). Table::rejected becomes a view over the
  /// quarantine: bit r is set iff an entry with row == r exists.
  kQuarantine,
};

const char* ErrorPolicyToString(ErrorPolicy policy);

/// \brief One malformed record held for repair.
struct QuarantineEntry {
  /// Row index in the emitted table (valid row of NULLs under kQuarantine).
  int64_t row = -1;
  /// Record ordinal in the parsed buffer, after skip_rows pruning but
  /// before any skip_records / reject drops.
  int64_t record_index = -1;
  /// Byte span [begin, end) of the record in the caller-provided input
  /// (exclusive of the record delimiter; relative to the original buffer
  /// even when skip_rows trimmed a prefix, and to the logical stream for
  /// the streaming parser).
  int64_t begin = 0;
  int64_t end = 0;
  /// Copy of the record bytes — the quarantine outlives the input buffer.
  std::string raw;
  /// Offending column index, or -1 for record-level problems (wrong column
  /// count).
  int32_t column = -1;
  /// Why it was quarantined.
  StatusCode code = StatusCode::kParseError;
  /// Pipeline stage that rejected it ("tag" for column-count mismatches,
  /// "convert" for value conversion failures).
  std::string stage;
  std::string message;
};

/// \brief The set of quarantined records from one parse (or one streaming
/// session; entries from later partitions carry stream-relative rows and
/// spans).
class QuarantineTable {
 public:
  void Add(QuarantineEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<QuarantineEntry>& entries() const { return entries_; }
  std::vector<QuarantineEntry>& entries() { return entries_; }

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  /// Entry for table row `row`, or nullptr. Linear scan — quarantines are
  /// expected to be small relative to the table.
  const QuarantineEntry* FindRow(int64_t row) const;

  /// Materialises the Table::rejected view: bit r set iff an entry with
  /// row == r exists. Rows outside [0, num_rows) are ignored.
  std::vector<uint8_t> RejectedBitmap(int64_t num_rows) const;

  /// One line per entry (debugging / error reports).
  std::string SummaryText() const;

 private:
  std::vector<QuarantineEntry> entries_;
};

}  // namespace robust
}  // namespace parparaw

#endif  // PARPARAW_ROBUST_QUARANTINE_H_
