#ifndef PARPARAW_ROBUST_FAILPOINT_H_
#define PARPARAW_ROBUST_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace parparaw {
namespace robust {

/// \brief Deterministic fault injection for the parsing pipeline.
///
/// A *failpoint* is a named site in library code (`io.read`, `pool.task`,
/// `alloc.css`, ...) that can be armed to return an error Status instead of
/// executing normally. The chaos suite (tests/chaos_test.cc) arms seeded
/// schedules of failpoints and asserts the pipeline's core robustness
/// invariant: every run either returns a clean error Status or produces
/// output bit-identical to the fault-free run — never a crash, leak, or
/// deadlock.
///
/// Disarmed cost: a single relaxed atomic load and a predictable branch per
/// site (`AnyArmed()`), so production call sites pay effectively nothing.
/// Armed checks take a registry mutex — fault-injection runs are about
/// schedules, not throughput.
///
/// Failpoints are armed programmatically (Arm / ArmFromSpec) or via the
/// PARPARAW_FAILPOINTS environment variable, read once when the registry is
/// first used. Spec grammar (entries separated by ';'):
///
///   spec    := entry (';' entry)*
///   entry   := name '=' trigger (':' flag)*
///   trigger := INT                    -- shorthand for count:INT
///            | 'count:' INT           -- fire the first N hits
///            | 'every:' INT           -- fire every Nth hit
///            | 'prob:' FLOAT [':' SEED]  -- fire with probability, seeded
///   flag    := 'transient'            -- retryable by the I/O layer
///            | 'io' | 'parse' | 'internal' | 'resource'  -- StatusCode
///
/// Examples:
///   PARPARAW_FAILPOINTS="io.read=count:2:transient"
///   PARPARAW_FAILPOINTS="pool.task=every:64;alloc.css=prob:0.01:42"

/// How an armed failpoint decides to fire on a given hit.
struct FailpointTrigger {
  enum class Kind : uint8_t {
    /// Fire on each of the first `n` hits, then stay quiet.
    kCount,
    /// Fire on every `n`th hit (n=1 fires always).
    kEveryNth,
    /// Fire with `probability` per hit, driven by a seeded xorshift PRNG so
    /// schedules replay exactly.
    kProbability,
  };

  Kind kind = Kind::kCount;
  int64_t n = 1;
  double probability = 1.0;
  uint64_t seed = 0;
  /// Code of the injected Status.
  StatusCode code = StatusCode::kIoError;
  /// Transient failures model EINTR-class conditions: the I/O retry loops
  /// treat them as retryable, everything else propagates them as fatal.
  bool transient = false;
};

/// Convenience factories for the common triggers.
FailpointTrigger CountTrigger(int64_t n, bool transient = false);
FailpointTrigger EveryNthTrigger(int64_t n, bool transient = false);
FailpointTrigger ProbabilityTrigger(double p, uint64_t seed,
                                    bool transient = false);

/// \brief Process-wide failpoint registry.
class FailpointRegistry {
 public:
  /// The singleton (created on first use, never destroyed). Reads
  /// PARPARAW_FAILPOINTS on construction; a malformed spec is reported on
  /// stderr and ignored rather than aborting the process.
  static FailpointRegistry& Instance();

  /// True when at least one failpoint is armed anywhere in the process —
  /// the disarmed fast path is exactly this relaxed load.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms (or re-arms, resetting hit state) the named failpoint.
  void Arm(const std::string& name, FailpointTrigger trigger);

  /// Disarms one failpoint; unknown names are a no-op.
  void Disarm(const std::string& name);

  /// Disarms everything (chaos-test teardown).
  void DisarmAll();

  /// Parses and arms a PARPARAW_FAILPOINTS-style spec. On a malformed
  /// entry, returns InvalidArgument and arms nothing from that entry
  /// (earlier entries stay armed).
  Status ArmFromSpec(std::string_view spec);

  /// The slow path behind CheckFailpoint: records a hit and decides whether
  /// to fire. Only call when AnyArmed().
  Status CheckSlow(const char* name, bool* transient);

  /// Lifetime hit/fire counts for `name` (0 for unknown names). Hits are
  /// only counted while the failpoint is armed.
  int64_t hits(const std::string& name) const;
  int64_t fires(const std::string& name) const;

 private:
  FailpointRegistry();

  struct Point {
    FailpointTrigger trigger;
    int64_t hits = 0;
    int64_t fires = 0;
    uint64_t rng = 0;
  };

  static std::atomic<int64_t> armed_count_;

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
};

/// Checks the named failpoint: OK when disarmed or not firing, the injected
/// error when it fires. `transient` (optional) reports whether a fired
/// error models a retryable condition.
inline Status CheckFailpoint(const char* name, bool* transient = nullptr) {
  if (transient != nullptr) *transient = false;
  if (!FailpointRegistry::AnyArmed()) return Status::OK();
  return FailpointRegistry::Instance().CheckSlow(name, transient);
}

}  // namespace robust
}  // namespace parparaw

/// Returns the injected error from the enclosing function (which must
/// return Status or Result<T>) when the named failpoint fires.
#define PARPARAW_FAILPOINT(name) \
  PARPARAW_RETURN_NOT_OK(::parparaw::robust::CheckFailpoint(name))

#endif  // PARPARAW_ROBUST_FAILPOINT_H_
