#ifndef PARPARAW_ROBUST_RESOURCE_GUARD_H_
#define PARPARAW_ROBUST_RESOURCE_GUARD_H_

#include <cstdint>
#include <new>
#include <string>
#include <utility>

#include "robust/failpoint.h"
#include "util/status.h"

namespace parparaw {
namespace robust {

/// \brief Resource guards: turn allocation failure and transient I/O errors
/// into recoverable Statuses instead of process death.
///
/// Two pieces:
///   * GuardedAssign / GuardedResize wrap the pipeline's large working-set
///     allocations (state vectors, symbol flags, offset arrays). They check
///     an `alloc.*` failpoint first and catch std::bad_alloc, mapping both
///     to kResourceExhausted so Parser::Parse and the bulk loader can
///     degrade (smaller partitions, streaming) rather than abort.
///   * RetryPolicy / RetryTransient implement bounded deterministic
///     exponential backoff for EINTR-class conditions in the I/O layer.

/// Approximate peak working-set bytes needed to parse `input_size` bytes in
/// one monolithic Parse() call. The pipeline materialises per-byte state
/// vectors (context step), symbol flags, offset arrays, tag arrays and the
/// output table; 16x input is a deliberately conservative envelope measured
/// against the dense CSV workloads in tests/workload.
inline constexpr int64_t kParseMemoryFactor = 16;

/// Envelope for TransposeMode::kFieldGather, whose transposition metadata is
/// O(fields) instead of O(bytes): the per-byte tag sideband, per-symbol
/// permutation and sort scratch disappear, leaving the state vectors, symbol
/// flags, field extents (~40 bytes per *field*) and the output table.
/// Measured against the same dense workloads, 8x input bounds the peak.
inline constexpr int64_t kParseMemoryFactorFieldGather = 8;

inline int64_t EstimateParseMemory(int64_t input_size,
                                   int64_t factor = kParseMemoryFactor) {
  return input_size * factor;
}

/// Largest partition size (bytes) whose estimated working set fits in
/// `memory_budget`, clamped to [floor_bytes, requested]. Returns `requested`
/// unchanged when the budget is 0 (unlimited). `factor` is the working-set
/// multiplier of the parse the partitions feed — pass
/// ParseWorkingSetFactor(options) when the transpose mode is known.
int64_t ClampPartitionSizeForBudget(int64_t requested, int64_t memory_budget,
                                    int64_t floor_bytes = 256,
                                    int64_t factor = kParseMemoryFactor);

/// Assigns `count` copies of `value` into `container` (vector-like), mapping
/// the `name` failpoint and std::bad_alloc to kResourceExhausted.
template <typename Container, typename V>
Status GuardedAssign(const char* name, Container* container, size_t count,
                     const V& value) {
  PARPARAW_FAILPOINT(name);
  try {
    container->assign(count, value);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(std::string("allocation of ") +
                                     std::to_string(count) +
                                     " elements failed at '" + name + "'");
  }
  return Status::OK();
}

/// Resize flavour of GuardedAssign for containers grown without a fill
/// value.
template <typename Container>
Status GuardedResize(const char* name, Container* container, size_t count) {
  PARPARAW_FAILPOINT(name);
  try {
    container->resize(count);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(std::string("allocation of ") +
                                     std::to_string(count) +
                                     " elements failed at '" + name + "'");
  }
  return Status::OK();
}

/// Bounded exponential backoff for transient failures. Deterministic (no
/// jitter) so fault-injection runs replay identically; the delays are
/// microseconds because the transients modelled (EINTR, short reads on
/// pipes) clear on that scale.
struct RetryPolicy {
  int max_attempts = 5;
  int64_t base_delay_us = 50;
  int64_t max_delay_us = 5000;

  /// Delay before retry attempt `attempt` (1-based): base * 2^(attempt-1),
  /// capped at max_delay_us.
  int64_t DelayUs(int attempt) const;
};

namespace internal {
/// Sleeps for `delay_us` microseconds and increments robust.io_retries.
/// Out-of-line so resource_guard.h does not pull <thread> into every step.
void BackoffSleepAndCount(int64_t delay_us);
}  // namespace internal

/// Runs `op` (returning Status) up to `policy.max_attempts` times, sleeping
/// the policy's backoff between attempts. Retries only while
/// `is_transient(status)` holds; the final failure (or a non-transient one)
/// propagates as-is. Each retry bumps the `robust.io_retries` metric.
template <typename Op, typename TransientPred>
Status RetryTransient(const RetryPolicy& policy, Op&& op,
                      TransientPred&& is_transient) {
  Status st;
  for (int attempt = 1;; ++attempt) {
    st = op();
    if (st.ok() || attempt >= policy.max_attempts || !is_transient(st)) {
      return st;
    }
    internal::BackoffSleepAndCount(policy.DelayUs(attempt));
  }
}

}  // namespace robust
}  // namespace parparaw

#endif  // PARPARAW_ROBUST_RESOURCE_GUARD_H_
