#include "robust/reparse.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/parser.h"
#include "dfa/sniffer.h"
#include "obs/obs.h"

namespace parparaw {
namespace robust {

namespace {

// Strict single-record parse of a quarantined record's raw bytes: the
// original options hardened so anything still wrong fails the attempt
// instead of producing another rejected row.
Result<Table> TryStrictParse(const ParseOptions& base, std::string_view raw) {
  ParseOptions attempt = base;
  attempt.skip_rows = 0;
  attempt.skip_records.clear();
  attempt.exclude_trailing_record = false;
  attempt.column_count_policy = ColumnCountPolicy::kValidate;
  attempt.error_policy = ErrorPolicy::kFail;
  attempt.memory_budget = 0;
  PARPARAW_ASSIGN_OR_RETURN(ParseOutput out, Parser::Parse(raw, attempt));
  if (out.table.num_rows != 1) {
    return Status::ParseError("reparse yielded " +
                              std::to_string(out.table.num_rows) +
                              " records, expected 1");
  }
  if (out.table.NumRejected() != 0) {
    return Status::ParseError("reparsed record is still rejected");
  }
  return std::move(out.table);
}

// The repaired row can only be spliced when it has the target's column
// layout (relevant for schema-less parses, where the repaired record
// determines its own column count).
bool LayoutMatches(const Table& target, const Table& repaired) {
  if (repaired.columns.size() != target.columns.size()) return false;
  for (size_t c = 0; c < target.columns.size(); ++c) {
    if (!(repaired.columns[c].type() == target.columns[c].type())) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<int64_t> ReparseQuarantined(const ParseOptions& options,
                                   ParseOutput* output,
                                   const ReparseOptions& reparse) {
  Table& table = output->table;
  std::vector<QuarantineEntry>& entries = output->quarantine.entries();
  obs::AddCount(options.metrics, "robust.reparse_attempted",
                static_cast<int64_t>(entries.size()));

  std::vector<QuarantineEntry> remaining;
  std::vector<std::pair<int64_t, Table>> repaired;  // table row -> 1-row fix
  for (QuarantineEntry& entry : entries) {
    Table fixed;
    bool recovered = false;
    if (entry.row >= 0 && entry.row < table.num_rows) {
      Result<Table> strict = TryStrictParse(options, entry.raw);
      if (strict.ok()) {
        fixed = std::move(strict).ValueOrDie();
        recovered = true;
      } else if (reparse.sniff_dialect) {
        // The record may simply be in a different dialect than the file
        // (a ';' row inside a ',' file); let it speak for itself.
        Result<SniffResult> sniffed = SniffDsvFormat(entry.raw);
        if (sniffed.ok()) {
          Result<Format> format = DsvFormat(sniffed->options);
          if (format.ok()) {
            ParseOptions alt = options;
            alt.format = std::move(format).ValueOrDie();
            alt.dialect.reset();  // the sniffed format replaces the dialect
            Result<Table> retry = TryStrictParse(alt, entry.raw);
            if (retry.ok()) {
              fixed = std::move(retry).ValueOrDie();
              recovered = true;
            }
          }
        }
      }
    }
    if (recovered && LayoutMatches(table, fixed)) {
      repaired.emplace_back(entry.row, std::move(fixed));
    } else {
      remaining.push_back(std::move(entry));
    }
  }

  if (!repaired.empty()) {
    std::vector<int64_t> repaired_of_row(
        static_cast<size_t>(table.num_rows), -1);
    for (size_t i = 0; i < repaired.size(); ++i) {
      repaired_of_row[static_cast<size_t>(repaired[i].first)] =
          static_cast<int64_t>(i);
    }
    for (size_t c = 0; c < table.columns.size(); ++c) {
      Column& column = table.columns[c];
      if (column.type().id == TypeId::kString) {
        // Strings live in one packed buffer; splicing a different-length
        // value in place would shift every later offset, so the column is
        // rebuilt in a single batch pass instead.
        Column rebuilt(column.type());
        for (int64_t row = 0; row < table.num_rows; ++row) {
          const int64_t idx = repaired_of_row[static_cast<size_t>(row)];
          const Column& src =
              idx >= 0 ? repaired[static_cast<size_t>(idx)].second.columns[c]
                       : column;
          const int64_t src_row = idx >= 0 ? 0 : row;
          if (src.IsNull(src_row)) {
            rebuilt.AppendNull();
          } else {
            rebuilt.AppendString(src.StringValue(src_row));
          }
        }
        column = std::move(rebuilt);
      } else {
        const int width = FixedWidth(column.type().id);
        for (const auto& [row, fix] : repaired) {
          const Column& src = fix.columns[c];
          if (src.IsNull(0)) {
            column.SetNull(row);
          } else {
            std::memcpy(column.mutable_data()->data() + row * width,
                        src.data().data(), width);
            column.SetValid(row);
          }
        }
      }
    }
    for (const auto& [row, fix] : repaired) {
      (void)fix;
      table.rejected[static_cast<size_t>(row)] = 0;
    }
  }

  output->quarantine.entries() = std::move(remaining);
  obs::AddCount(options.metrics, "robust.reparse_recovered",
                static_cast<int64_t>(repaired.size()));
  return static_cast<int64_t>(repaired.size());
}

}  // namespace robust
}  // namespace parparaw
