#include "robust/resource_guard.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace parparaw {
namespace robust {

int64_t ClampPartitionSizeForBudget(int64_t requested, int64_t memory_budget,
                                    int64_t floor_bytes, int64_t factor) {
  if (memory_budget <= 0 || requested <= 0) return requested;
  if (factor <= 0) factor = kParseMemoryFactor;
  const int64_t affordable = memory_budget / factor;
  if (affordable >= requested) return requested;
  const int64_t clamped = affordable < floor_bytes ? floor_bytes : affordable;
  obs::MetricsRegistry::Global().AddCounter("robust.budget_clamps", 1);
  return clamped;
}

int64_t RetryPolicy::DelayUs(int attempt) const {
  if (attempt < 1) attempt = 1;
  int64_t delay = base_delay_us;
  for (int i = 1; i < attempt && delay < max_delay_us; ++i) delay *= 2;
  return delay < max_delay_us ? delay : max_delay_us;
}

namespace internal {

void BackoffSleepAndCount(int64_t delay_us) {
  obs::MetricsRegistry::Global().AddCounter("robust.io_retries", 1);
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

}  // namespace internal
}  // namespace robust
}  // namespace parparaw
