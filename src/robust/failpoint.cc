#include "robust/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace parparaw {
namespace robust {

namespace {

// xorshift64*: tiny, seedable, and good enough for firing decisions. The
// chaos suite replays schedules from seeds, so the generator must be fully
// deterministic and self-contained (no std::random_device).
inline uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

const char* CodeSuffix(StatusCode code) {
  switch (code) {
    case StatusCode::kParseError:
      return "parse";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource";
    default:
      return "io";
  }
}

}  // namespace

FailpointTrigger CountTrigger(int64_t n, bool transient) {
  FailpointTrigger t;
  t.kind = FailpointTrigger::Kind::kCount;
  t.n = n;
  t.transient = transient;
  return t;
}

FailpointTrigger EveryNthTrigger(int64_t n, bool transient) {
  FailpointTrigger t;
  t.kind = FailpointTrigger::Kind::kEveryNth;
  t.n = n;
  t.transient = transient;
  return t;
}

FailpointTrigger ProbabilityTrigger(double p, uint64_t seed, bool transient) {
  FailpointTrigger t;
  t.kind = FailpointTrigger::Kind::kProbability;
  t.probability = p;
  t.seed = seed;
  t.transient = transient;
  return t;
}

std::atomic<int64_t> FailpointRegistry::armed_count_{0};

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("PARPARAW_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    const Status st = ArmFromSpec(env);
    if (!st.ok()) {
      std::fprintf(stderr, "parparaw: ignoring PARPARAW_FAILPOINTS: %s\n",
                   st.ToString().c_str());
    }
  }
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry& registry = *new FailpointRegistry();
  return registry;
}

namespace {

// The disarmed fast path never touches Instance(), so the registry — and
// with it the PARPARAW_FAILPOINTS parse — must be forced into existence
// before main(); otherwise an env-armed failpoint stays invisible to any
// process that arms nothing programmatically. armed_count_ is
// constant-initialized, so arming during this TU's dynamic init is safe.
[[maybe_unused]] const FailpointRegistry& env_bootstrap =
    FailpointRegistry::Instance();

}  // namespace

void FailpointRegistry::Arm(const std::string& name,
                            FailpointTrigger trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(name);
  it->second.trigger = trigger;
  // Re-arming resets the schedule so tests can replay from a clean slate
  // without tearing the registry down.
  it->second.hits = 0;
  it->second.fires = 0;
  it->second.rng = trigger.seed != 0 ? trigger.seed : 0x9E3779B97F4A7C15ULL;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(name) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int64_t>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec) {
  for (std::string_view entry : SplitString(spec, ';')) {
    entry = TrimWhitespace(entry);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::Invalid("failpoint entry '" + std::string(entry) +
                             "' is not name=trigger");
    }
    const std::string name(TrimWhitespace(entry.substr(0, eq)));
    std::vector<std::string_view> tokens;
    for (std::string_view tok : SplitString(entry.substr(eq + 1), ':')) {
      tokens.push_back(TrimWhitespace(tok));
    }
    if (tokens.empty() || tokens[0].empty()) {
      return Status::Invalid("failpoint '" + name + "' has an empty trigger");
    }

    FailpointTrigger trigger;
    size_t next = 1;
    const std::string kind(tokens[0]);
    auto parse_int = [&](std::string_view sv, int64_t* out) {
      char* end = nullptr;
      const std::string s(sv);
      *out = std::strtoll(s.c_str(), &end, 10);
      return end != nullptr && *end == '\0' && !s.empty();
    };
    if (kind == "count" || kind == "every") {
      if (next >= tokens.size() || !parse_int(tokens[next], &trigger.n) ||
          trigger.n <= 0) {
        return Status::Invalid("failpoint '" + name + "': '" + kind +
                               "' needs a positive integer");
      }
      trigger.kind = kind == "count" ? FailpointTrigger::Kind::kCount
                                     : FailpointTrigger::Kind::kEveryNth;
      ++next;
    } else if (kind == "prob") {
      if (next >= tokens.size()) {
        return Status::Invalid("failpoint '" + name +
                               "': 'prob' needs a probability");
      }
      char* end = nullptr;
      const std::string p(tokens[next]);
      trigger.probability = std::strtod(p.c_str(), &end);
      if (end == nullptr || *end != '\0' || trigger.probability < 0.0 ||
          trigger.probability > 1.0) {
        return Status::Invalid("failpoint '" + name + "': bad probability '" +
                               p + "'");
      }
      trigger.kind = FailpointTrigger::Kind::kProbability;
      ++next;
      int64_t seed;
      if (next < tokens.size() && parse_int(tokens[next], &seed)) {
        trigger.seed = static_cast<uint64_t>(seed);
        ++next;
      }
    } else {
      // Bare integer: shorthand for count:N.
      if (!parse_int(tokens[0], &trigger.n) || trigger.n <= 0) {
        return Status::Invalid("failpoint '" + name + "': unknown trigger '" +
                               kind + "'");
      }
      trigger.kind = FailpointTrigger::Kind::kCount;
    }
    for (; next < tokens.size(); ++next) {
      const std::string flag(tokens[next]);
      if (flag == "transient") {
        trigger.transient = true;
      } else if (flag == "io") {
        trigger.code = StatusCode::kIoError;
      } else if (flag == "parse") {
        trigger.code = StatusCode::kParseError;
      } else if (flag == "internal") {
        trigger.code = StatusCode::kInternal;
      } else if (flag == "resource") {
        trigger.code = StatusCode::kResourceExhausted;
      } else {
        return Status::Invalid("failpoint '" + name + "': unknown flag '" +
                               flag + "'");
      }
    }
    Arm(name, trigger);
  }
  return Status::OK();
}

Status FailpointRegistry::CheckSlow(const char* name, bool* transient) {
  bool fire = false;
  FailpointTrigger trigger;
  int64_t total_hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(std::string_view(name));
    if (it == points_.end()) return Status::OK();
    Point& point = it->second;
    ++point.hits;
    trigger = point.trigger;
    switch (trigger.kind) {
      case FailpointTrigger::Kind::kCount:
        fire = point.fires < trigger.n;
        break;
      case FailpointTrigger::Kind::kEveryNth:
        fire = trigger.n > 0 && point.hits % trigger.n == 0;
        break;
      case FailpointTrigger::Kind::kProbability: {
        const uint64_t r = NextRandom(&point.rng);
        fire = static_cast<double>(r >> 11) * 0x1.0p-53 <
               trigger.probability;
        break;
      }
    }
    if (fire) ++point.fires;
    total_hits = point.hits;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.AddCounter("robust.failpoint_hits", 1);
    if (fire) metrics.AddCounter("robust.failpoint_fires", 1);
  }
  if (!fire) return Status::OK();
  if (transient != nullptr) *transient = trigger.transient;
  std::string msg = "failpoint '" + std::string(name) + "' fired (hit " +
                    std::to_string(total_hits) + ", " +
                    CodeSuffix(trigger.code) + ")";
  if (trigger.transient) msg += " [transient]";
  return Status(trigger.code, std::move(msg));
}

int64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace robust
}  // namespace parparaw
