#ifndef PARPARAW_ROBUST_REPARSE_H_
#define PARPARAW_ROBUST_REPARSE_H_

#include <cstdint>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {
namespace robust {

/// Knobs for ReparseQuarantined.
struct ReparseOptions {
  /// When the strict retry under the original format fails, sniff the
  /// record's own dialect (SniffDsvFormat) and retry under it — recovers
  /// e.g. rows that slipped in with a ';' delimiter inside a ',' file.
  bool sniff_dialect = true;
};

/// \brief Retries every record in `output->quarantine` and splices the
/// repaired rows back into `output->table`.
///
/// Each entry's raw bytes are re-parsed as a single record under the
/// original parse options hardened to strict mode (kValidate column counts,
/// ErrorPolicy::kFail) — first with the original format, then, when
/// `reparse.sniff_dialect` is set, with the dialect sniffed from the record
/// itself. A retry that yields exactly one clean row is *recovered*: its
/// values overwrite the quarantined row (fixed-width slots in place, string
/// columns rebuilt in one batch), the row's rejected bit clears, and the
/// entry leaves the quarantine. Unrecoverable entries stay behind with
/// their provenance intact, so the call is idempotent and always safe.
///
/// `options` must be the options the original parse ran with (schema,
/// format and skip_columns determine the output layout being spliced into).
/// Returns the number of rows recovered.
Result<int64_t> ReparseQuarantined(const ParseOptions& options,
                                   ParseOutput* output,
                                   const ReparseOptions& reparse = {});

}  // namespace robust
}  // namespace parparaw

#endif  // PARPARAW_ROBUST_REPARSE_H_
