#include "sim/device_model.h"

#include <algorithm>
#include <cstdio>

namespace parparaw {

std::string DeviceSpec::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d cores @ %.3f GHz, %.0f GB/s HBM, %d SMs",
                cores, clock_ghz, memory_bandwidth_gbps, num_sms);
  return buf;
}

double DeviceModel::MemorySeconds(int64_t bytes) const {
  const double effective =
      spec_.memory_bandwidth_gbps * 1e9 * spec_.memory_efficiency;
  return static_cast<double>(bytes) / effective;
}

double DeviceModel::ComputeSeconds(int64_t operations, double cycles) const {
  const double throughput = spec_.cores * spec_.clock_ghz * 1e9;  // ops/s at 1 cpo
  return static_cast<double>(operations) * cycles / throughput;
}

double DeviceModel::LaunchSeconds(int num_kernels) const {
  return num_kernels * spec_.kernel_launch_overhead_us * 1e-6;
}

StepTimings DeviceModel::ModelPipeline(const WorkCounters& work,
                                       int num_columns,
                                       int num_states) const {
  StepTimings t;
  // Parse: read the input once, run |S| DFA instances per byte.
  const double parse_mem = MemorySeconds(work.parse_bytes_read);
  const double parse_compute =
      ComputeSeconds(work.dfa_transitions, spec_.cycles_per_transition);
  t.parse_ms = (std::max(parse_mem, parse_compute) + LaunchSeconds(1)) * 1e3;
  (void)num_states;

  // Scans: tiny relative to the rest; modelled as reading/writing the
  // per-chunk descriptors plus one launch per scan.
  const double scan_mem = MemorySeconds(work.scan_elements * 16);
  t.scan_ms = (scan_mem + LaunchSeconds(3)) * 1e3;

  // Tag: read input + flags, write the tagged symbol stream.
  const double tag_mem =
      MemorySeconds(2 * work.parse_bytes_read + work.tag_bytes_written);
  t.tag_ms = (tag_mem + LaunchSeconds(2)) * 1e3;

  // Partition: radix-sort passes move keys + payloads each pass.
  const double sort_mem = MemorySeconds(2 * work.sort_bytes_moved);
  t.partition_ms =
      (sort_mem + LaunchSeconds(static_cast<int>(work.sort_passes) * 3)) * 1e3;

  // Convert: CSS-index generation + value conversion; several kernel
  // launches per column (§5.1 names this the small-input bottleneck).
  const double convert_mem = MemorySeconds(2 * work.convert_bytes);
  const double convert_compute =
      ComputeSeconds(work.convert_bytes, spec_.cycles_per_convert_byte);
  t.convert_ms = (std::max(convert_mem, convert_compute) +
                  LaunchSeconds(std::max(1, num_columns) * 3)) *
                 1e3;
  return t;
}

double DeviceModel::ModelParsingRateGbps(const WorkCounters& work,
                                         int num_columns,
                                         int num_states) const {
  const StepTimings t = ModelPipeline(work, num_columns, num_states);
  const double seconds = t.TotalMs() / 1e3;
  if (seconds <= 0) return 0;
  return static_cast<double>(work.input_bytes) / seconds / (1 << 30);
}

}  // namespace parparaw
