#include "sim/timeline.h"

#include <algorithm>
#include <cstdio>

namespace parparaw {

StreamingTimeline StreamingTimeline::Schedule(
    const std::vector<PartitionStages>& stages) {
  StreamingTimeline timeline;
  const int n = static_cast<int>(stages.size());
  timeline.transfers.resize(n);
  timeline.parses.resize(n);
  timeline.returns.resize(n);

  double h2d_free = 0;
  double gpu_free = 0;
  double d2h_free = 0;
  // When each double-buffer half's input/data allocation becomes reusable.
  double input_free[2] = {0, 0};
  double data_free[2] = {0, 0};
  // When the carry-over for partition p (copied out of p-1's input buffer
  // right after parse(p-1)) is ready.
  double carry_ready = 0;

  for (int p = 0; p < n; ++p) {
    const int b = p % 2;
    // transfer(p): channel + this half's input buffer.
    const double t_start = std::max(h2d_free, input_free[b]);
    const double t_end = t_start + stages[p].h2d_seconds;
    h2d_free = t_end;
    timeline.transfers[p] = {p, t_start, t_end};

    // parse(p): GPU + transferred input + carry-over + this half's data
    // buffer (still draining to the host from p-2).
    const double p_start =
        std::max({gpu_free, t_end, carry_ready, data_free[b]});
    const double p_end = p_start + stages[p].parse_seconds;
    gpu_free = p_end;
    timeline.parses[p] = {p, p_start, p_end};

    // After parse(p), the carry-over for p+1 is copied out of this half's
    // input buffer; only then may transfer(p+2) overwrite it.
    const double copy_end = p_end + stages[p].carry_copy_seconds;
    carry_ready = copy_end;
    input_free[b] = copy_end;

    // return(p): channel + parsed data.
    const double r_start = std::max(d2h_free, p_end);
    const double r_end = r_start + stages[p].d2h_seconds;
    d2h_free = r_end;
    data_free[b] = r_end;
    timeline.returns[p] = {p, r_start, r_end};

    timeline.makespan = std::max(timeline.makespan, r_end);
  }
  return timeline;
}

StreamingTimeline StreamingTimeline::ScheduleMultiDevice(
    const std::vector<PartitionStages>& stages, int num_devices) {
  StreamingTimeline timeline;
  const int n = static_cast<int>(stages.size());
  if (num_devices < 1) num_devices = 1;
  timeline.transfers.resize(n);
  timeline.parses.resize(n);
  timeline.returns.resize(n);

  struct DeviceState {
    double h2d_free = 0;
    double gpu_free = 0;
    double d2h_free = 0;
    double input_free[2] = {0, 0};
    double data_free[2] = {0, 0};
  };
  std::vector<DeviceState> devices(num_devices);
  // Carry-over readiness chains partitions globally, across devices.
  double carry_ready = 0;

  for (int p = 0; p < n; ++p) {
    DeviceState& dev = devices[p % num_devices];
    const int b = (p / num_devices) % 2;

    const double t_start = std::max(dev.h2d_free, dev.input_free[b]);
    const double t_end = t_start + stages[p].h2d_seconds;
    dev.h2d_free = t_end;
    timeline.transfers[p] = {p, t_start, t_end};

    const double p_start =
        std::max({dev.gpu_free, t_end, carry_ready, dev.data_free[b]});
    const double p_end = p_start + stages[p].parse_seconds;
    dev.gpu_free = p_end;
    timeline.parses[p] = {p, p_start, p_end};

    const double copy_end = p_end + stages[p].carry_copy_seconds;
    carry_ready = copy_end;
    dev.input_free[b] = copy_end;

    const double r_start = std::max(dev.d2h_free, p_end);
    const double r_end = r_start + stages[p].d2h_seconds;
    dev.d2h_free = r_end;
    dev.data_free[b] = r_end;
    timeline.returns[p] = {p, r_start, r_end};

    timeline.makespan = std::max(timeline.makespan, r_end);
  }
  return timeline;
}

std::string StreamingTimeline::ToString() const {
  std::string out;
  char buf[128];
  auto append = [&](const char* name, const std::vector<StageInterval>& v) {
    for (const StageInterval& s : v) {
      std::snprintf(buf, sizeof(buf), "  %-8s p%-3d [%8.3f ms, %8.3f ms)\n",
                    name, s.partition, s.start * 1e3, s.end * 1e3);
      out += buf;
    }
  };
  append("transfer", transfers);
  append("parse", parses);
  append("return", returns);
  std::snprintf(buf, sizeof(buf), "  makespan %8.3f ms\n", makespan * 1e3);
  out += buf;
  return out;
}

}  // namespace parparaw
