#ifndef PARPARAW_SIM_GPU_SIM_H_
#define PARPARAW_SIM_GPU_SIM_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "sim/device_model.h"

namespace parparaw {

/// \brief One kernel launch in the simulated execution.
///
/// Threads are uniform: each reads/writes a fixed number of bytes and
/// spends a fixed number of arithmetic cycles. Blocks bundle
/// `threads_per_block` threads and may reserve shared memory, which limits
/// how many blocks an SM can host concurrently (occupancy).
struct GpuKernelSpec {
  std::string name;
  int64_t num_threads = 0;
  int threads_per_block = 128;
  int64_t bytes_read_per_thread = 0;
  int64_t bytes_written_per_thread = 0;
  double cycles_per_thread = 0;
  int shared_memory_per_block = 0;  // bytes
};

/// Result of simulating one kernel.
struct GpuKernelResult {
  std::string name;
  int64_t num_blocks = 0;
  int blocks_per_sm = 0;  // concurrent blocks an SM can host
  int64_t num_waves = 0;  // rounds of concurrent block execution
  double compute_seconds = 0;
  double memory_seconds = 0;
  double total_seconds = 0;  // incl. launch overhead

  std::string ToString() const;
};

/// \brief Discrete wave-level GPU kernel simulator.
///
/// A finer-grained substitute for the roofline DeviceModel: kernels
/// execute in *waves* of concurrently resident thread blocks. Per wave the
/// runtime is max(compute, memory) — compute from the SM's cores and
/// clock, memory from the device bandwidth shared by the wave — so
/// occupancy effects (shared-memory pressure reducing resident blocks, the
/// §5.1 "shared-memory bank conflicts and bad occupancy" spikes) become
/// visible, unlike in a pure roofline.
class GpuSimulator {
 public:
  GpuSimulator() = default;
  explicit GpuSimulator(DeviceSpec spec) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Shared memory available per SM (Pascal: 96 KB).
  static constexpr int kSharedMemoryPerSm = 96 * 1024;
  /// Hardware cap on resident blocks per SM.
  static constexpr int kMaxBlocksPerSm = 32;

  /// Simulates one kernel launch.
  GpuKernelResult SimulateKernel(const GpuKernelSpec& kernel) const;

  /// Builds the kernel sequence of a ParPaRaw parse from its work counters
  /// and configuration, simulates every kernel, and buckets the times like
  /// StepTimings. `kernels` (optional) receives the per-kernel results.
  StepTimings SimulatePipeline(const WorkCounters& work, size_t chunk_size,
                               int num_states, int num_columns,
                               std::vector<GpuKernelResult>* kernels =
                                   nullptr) const;

 private:
  DeviceSpec spec_;
};

}  // namespace parparaw

#endif  // PARPARAW_SIM_GPU_SIM_H_
