#ifndef PARPARAW_SIM_TIMELINE_H_
#define PARPARAW_SIM_TIMELINE_H_

#include <string>
#include <vector>

namespace parparaw {

/// Per-partition stage durations fed to the streaming timeline (seconds).
struct PartitionStages {
  double h2d_seconds = 0;    ///< transfer: host -> GPU input buffer
  double parse_seconds = 0;  ///< parse: GPU pipeline over carry-over + input
  double d2h_seconds = 0;    ///< return: GPU data buffer -> host
  double carry_copy_seconds = 0;  ///< copy c/o: trailing record to the
                                  ///< opposing buffer
};

/// Scheduled interval of one stage.
struct StageInterval {
  int partition = 0;
  double start = 0;
  double end = 0;
};

/// \brief Event-driven schedule of the double-buffered streaming pipeline
/// (Fig. 7).
///
/// Resources: the H2D channel, the GPU, and the D2H channel, plus the two
/// double-buffer halves. Dependencies reproduced from the figure:
///  * transfer(p) needs the H2D channel and buffer (p mod 2)'s input
///    allocation, which is busy until parse(p-2) *and* the carry-over copy
///    reading from it (issued after parse(p-2)) have finished;
///  * parse(p) needs the GPU, transfer(p), the carry-over copy of p, and
///    buffer (p mod 2)'s data allocation (busy until return(p-2));
///  * return(p) needs the D2H channel and parse(p).
struct StreamingTimeline {
  std::vector<StageInterval> transfers;
  std::vector<StageInterval> parses;
  std::vector<StageInterval> returns;
  double makespan = 0;

  /// Computes the schedule for the given per-partition stage durations.
  static StreamingTimeline Schedule(const std::vector<PartitionStages>& stages);

  /// \brief Multi-device schedule: partitions are distributed round-robin
  /// over `num_devices` GPUs, each with its own interconnect channels and
  /// double buffer (the §1 outlook of package-level multi-GPU modules).
  ///
  /// Carry-over couples consecutive partitions: parse(p) cannot start
  /// before parse(p-1)'s carry-over copy has finished, even across
  /// devices — the cross-device dependency that bounds multi-GPU scaling
  /// for this workload.
  static StreamingTimeline ScheduleMultiDevice(
      const std::vector<PartitionStages>& stages, int num_devices);

  /// Multi-line ASCII rendering (for examples and EXPERIMENTS.md).
  std::string ToString() const;
};

}  // namespace parparaw

#endif  // PARPARAW_SIM_TIMELINE_H_
