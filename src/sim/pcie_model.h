#ifndef PARPARAW_SIM_PCIE_MODEL_H_
#define PARPARAW_SIM_PCIE_MODEL_H_

#include <cstdint>

namespace parparaw {

/// \brief Analytical model of a full-duplex PCIe 3.0 x16 link (§4.4).
///
/// Host-to-device and device-to-host directions are independent channels
/// that sustain their peak bandwidth simultaneously — the property the
/// streaming pipeline exploits to hide transfer latency.
struct PcieModel {
  double h2d_bandwidth_gbps = 12.0;
  double d2h_bandwidth_gbps = 12.0;
  /// Fixed per-transfer setup cost (DMA descriptor + doorbell).
  double latency_us = 10.0;

  /// Seconds to move `bytes` host-to-device.
  double H2dSeconds(int64_t bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (h2d_bandwidth_gbps * 1e9);
  }
  /// Seconds to move `bytes` device-to-host.
  double D2hSeconds(int64_t bytes) const {
    return latency_us * 1e-6 +
           static_cast<double>(bytes) / (d2h_bandwidth_gbps * 1e9);
  }
};

}  // namespace parparaw

#endif  // PARPARAW_SIM_PCIE_MODEL_H_
