#include "sim/gpu_sim.h"

#include <algorithm>
#include <cstdio>

namespace parparaw {

std::string GpuKernelResult::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-14s blocks=%-8lld blk/SM=%-2d waves=%-6lld "
                "compute=%.3fms mem=%.3fms total=%.3fms",
                name.c_str(), static_cast<long long>(num_blocks),
                blocks_per_sm, static_cast<long long>(num_waves),
                compute_seconds * 1e3, memory_seconds * 1e3,
                total_seconds * 1e3);
  return buf;
}

GpuKernelResult GpuSimulator::SimulateKernel(
    const GpuKernelSpec& kernel) const {
  GpuKernelResult result;
  result.name = kernel.name;
  if (kernel.num_threads <= 0) {
    result.total_seconds = spec_.kernel_launch_overhead_us * 1e-6;
    result.blocks_per_sm = kMaxBlocksPerSm;
    return result;
  }
  const int tpb = std::max(1, kernel.threads_per_block);
  result.num_blocks = (kernel.num_threads + tpb - 1) / tpb;

  // Occupancy: resident blocks per SM limited by the hardware cap and by
  // shared memory.
  int blocks_per_sm = kMaxBlocksPerSm;
  if (kernel.shared_memory_per_block > 0) {
    blocks_per_sm = std::min(
        blocks_per_sm, kSharedMemoryPerSm / kernel.shared_memory_per_block);
    blocks_per_sm = std::max(blocks_per_sm, 1);
  }
  result.blocks_per_sm = blocks_per_sm;

  const int64_t concurrent_blocks =
      static_cast<int64_t>(blocks_per_sm) * spec_.num_sms;
  result.num_waves =
      (result.num_blocks + concurrent_blocks - 1) / concurrent_blocks;

  // Per-wave compute: the wave's threads spread over all cores.
  const int cores_per_sm = std::max(1, spec_.cores / std::max(1, spec_.num_sms));
  const double wave_threads =
      static_cast<double>(std::min<int64_t>(concurrent_blocks,
                                            result.num_blocks)) *
      tpb;
  const double core_throughput =
      static_cast<double>(cores_per_sm) * spec_.num_sms * spec_.clock_ghz *
      1e9;  // scalar ops/s at 1 cycle each
  const double wave_compute_seconds =
      wave_threads * kernel.cycles_per_thread / core_throughput;

  // Per-wave memory: the wave's traffic over the shared bandwidth.
  const double wave_bytes =
      wave_threads * (kernel.bytes_read_per_thread +
                      kernel.bytes_written_per_thread);
  const double wave_memory_seconds =
      wave_bytes /
      (spec_.memory_bandwidth_gbps * 1e9 * spec_.memory_efficiency);

  const double wave_seconds =
      std::max(wave_compute_seconds, wave_memory_seconds);
  result.compute_seconds = wave_compute_seconds * result.num_waves;
  result.memory_seconds = wave_memory_seconds * result.num_waves;
  result.total_seconds = wave_seconds * result.num_waves +
                         spec_.kernel_launch_overhead_us * 1e-6;
  return result;
}

StepTimings GpuSimulator::SimulatePipeline(
    const WorkCounters& work, size_t chunk_size, int num_states,
    int num_columns, std::vector<GpuKernelResult>* kernels) const {
  StepTimings timings;
  if (kernels != nullptr) kernels->clear();
  const int64_t num_chunks =
      chunk_size > 0 ? (work.input_bytes + chunk_size - 1) /
                           static_cast<int64_t>(chunk_size)
                     : 0;
  auto run = [&](const GpuKernelSpec& spec, double* bucket) {
    const GpuKernelResult result = SimulateKernel(spec);
    *bucket += result.total_seconds * 1e3;
    if (kernels != nullptr) kernels->push_back(result);
  };

  // Context step: one thread per chunk; each reads its chunk once and
  // advances |S| DFA instances per byte; writes a state vector. Shared
  // memory stages the chunk bytes (§5.1's bank-conflict arena).
  GpuKernelSpec parse;
  parse.name = "multi-dfa";
  parse.num_threads = num_chunks;
  parse.threads_per_block = 128;
  parse.bytes_read_per_thread = static_cast<int64_t>(chunk_size);
  parse.bytes_written_per_thread = 8;  // packed state vector
  parse.cycles_per_thread = static_cast<double>(chunk_size) * num_states *
                            2.0;  // table lookup + MFIRA update
  parse.shared_memory_per_block =
      static_cast<int>(chunk_size) * parse.threads_per_block;
  run(parse, &timings.parse_ms);

  // Context scan over state vectors (single-pass decoupled look-back).
  GpuKernelSpec scan;
  scan.name = "context-scan";
  scan.num_threads = num_chunks;
  scan.threads_per_block = 256;
  scan.bytes_read_per_thread = 16;
  scan.bytes_written_per_thread = 16;
  scan.cycles_per_thread = 16;
  run(scan, &timings.scan_ms);

  // Offsets scans (records + columns).
  GpuKernelSpec offsets = scan;
  offsets.name = "offset-scans";
  offsets.cycles_per_thread = 8;
  run(offsets, &timings.scan_ms);

  // Bitmap + tag passes: re-read the input, write flags and the tagged
  // symbol stream.
  GpuKernelSpec tag;
  tag.name = "bitmap+tag";
  tag.num_threads = num_chunks;
  tag.threads_per_block = 128;
  tag.bytes_read_per_thread = 2 * static_cast<int64_t>(chunk_size);
  tag.bytes_written_per_thread =
      num_chunks > 0 ? work.tag_bytes_written / num_chunks : 0;
  tag.cycles_per_thread = static_cast<double>(chunk_size) * 4.0;
  tag.shared_memory_per_block = static_cast<int>(chunk_size) * 128;
  run(tag, &timings.tag_ms);

  // Partition: radix-sort passes; one thread per 16 symbols per pass.
  const int64_t symbols =
      work.sort_passes > 0 ? work.sort_bytes_moved /
                                 std::max<int64_t>(1, work.sort_passes * 5)
                           : 0;
  for (int64_t pass = 0; pass < work.sort_passes; ++pass) {
    GpuKernelSpec sort;
    sort.name = "radix-pass-" + std::to_string(pass);
    sort.num_threads = (symbols + 15) / 16;
    sort.threads_per_block = 256;
    sort.bytes_read_per_thread = 16 * 5;
    sort.bytes_written_per_thread = 16 * 5;
    sort.cycles_per_thread = 16 * 3.0;
    sort.shared_memory_per_block = 256 * 4 * 2;  // per-block histogram
    run(sort, &timings.partition_ms);
  }

  // Convert: three kernels per column (§5.1: "multiple kernel invocations
  // per column, required for the CSS-index generation as well as the type
  // conversion itself").
  const int64_t convert_threads =
      std::max<int64_t>(1, work.convert_bytes / 8);
  for (int c = 0; c < std::max(1, num_columns); ++c) {
    for (int k = 0; k < 3; ++k) {
      GpuKernelSpec convert;
      convert.name = "convert-c" + std::to_string(c);
      convert.num_threads =
          convert_threads / std::max(1, num_columns) / 3 + 1;
      convert.threads_per_block = 128;
      convert.bytes_read_per_thread = 8;
      convert.bytes_written_per_thread = 8;
      convert.cycles_per_thread = 8 * 4.0;
      run(convert, &timings.convert_ms);
    }
  }
  return timings;
}

}  // namespace parparaw
