#ifndef PARPARAW_SIM_DEVICE_MODEL_H_
#define PARPARAW_SIM_DEVICE_MODEL_H_

#include <string>

#include "core/options.h"

namespace parparaw {

/// \brief Parameters of the modelled GPU. Defaults match the paper's
/// NVIDIA Titan X (Pascal): 3584 cores at 1417 MHz, ~480 GB/s device
/// memory bandwidth, 28 SMs, and a 5-10 µs kernel-launch overhead (§5.1
/// attributes small-input inefficiency to exactly this overhead).
struct DeviceSpec {
  int cores = 3584;
  double clock_ghz = 1.417;
  double memory_bandwidth_gbps = 480.0;
  int num_sms = 28;
  double kernel_launch_overhead_us = 7.0;
  /// Effective fraction of peak memory bandwidth streaming kernels reach.
  double memory_efficiency = 0.75;
  /// Average cycles a core spends per DFA-instance transition (table
  /// lookup + MFIRA update).
  double cycles_per_transition = 2.0;
  /// Average cycles per converted field value byte (numeric parsing).
  double cycles_per_convert_byte = 4.0;

  std::string ToString() const;
};

/// \brief Analytical roofline model translating the pipeline's abstract
/// work counters into modelled GPU step times.
///
/// Every pipeline step is modelled as max(memory time, compute time) plus
/// per-kernel launch overhead; see DESIGN.md §2 for why this preserves the
/// paper's reported *shapes* (step breakdowns, crossovers) even though the
/// benchmarks execute on a CPU substrate.
class DeviceModel {
 public:
  DeviceModel() = default;
  explicit DeviceModel(DeviceSpec spec) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Seconds to stream `bytes` through device memory (read+write counted
  /// by the caller in `bytes`).
  double MemorySeconds(int64_t bytes) const;

  /// Seconds for `operations` uniform scalar operations of `cycles` each,
  /// spread over all cores.
  double ComputeSeconds(int64_t operations, double cycles) const;

  /// Kernel launch overhead for `num_kernels` launches.
  double LaunchSeconds(int num_kernels) const;

  /// Models the full pipeline's per-step times (milliseconds, in the same
  /// buckets as StepTimings) from the work counters of a parse.
  StepTimings ModelPipeline(const WorkCounters& work, int num_columns,
                            int num_states) const;

  /// Modelled on-GPU parsing rate in GB/s for a parse described by `work`.
  double ModelParsingRateGbps(const WorkCounters& work, int num_columns,
                              int num_states) const;

 private:
  DeviceSpec spec_;
};

}  // namespace parparaw

#endif  // PARPARAW_SIM_DEVICE_MODEL_H_
