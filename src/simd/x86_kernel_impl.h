#ifndef PARPARAW_SIMD_X86_KERNEL_IMPL_H_
#define PARPARAW_SIMD_X86_KERNEL_IMPL_H_

// Shared x86 implementation of the fused context+bitmap chunk kernel,
// parameterised over the special-symbol block scanner (16-byte SSE blocks
// or 32-byte AVX2 blocks). Included only by the per-ISA translation units,
// which are compiled with the matching -m flags; the state-vector algebra
// itself uses 128-bit PSHUFB in both (16 DFA lanes fit one XMM register).

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "simd/kernel_common.h"
#include "simd/simd_kernels.h"

namespace parparaw::simd::internal {

/// Trap-masked convergence test (see KernelPlan::trap_state): every lane
/// equals the start lane's value or the absorbing trap. `start_idx` is the
/// splatted start-state lane index, `trap` the splatted trap byte (0xFF
/// when the DFA has no absorbing trap — matches no lane). Surplus lanes
/// mirror lane 0, so the full-register test equals the live-lane test.
inline bool LanesConvergedSse(__m128i v, __m128i start_idx, __m128i trap) {
  const __m128i ref = _mm_shuffle_epi8(v, start_idx);
  const __m128i ok =
      _mm_or_si128(_mm_cmpeq_epi8(v, ref), _mm_cmpeq_epi8(v, trap));
  return _mm_movemask_epi8(ok) == 0xFFFF;
}

/// Advances every DFA lane by one symbol: shuffle-as-gather over the
/// symbol group's transition table (§3.1 row, vectorised).
inline __m128i AdvanceLanes(const KernelPlan& plan, __m128i v, uint8_t byte) {
  const __m128i table = _mm_load_si128(reinterpret_cast<const __m128i*>(
      plan.group_tables[plan.group_of_byte[byte]]));
  return _mm_shuffle_epi8(table, v);
}

/// Scanner: finds registered (non-catch-all) symbols in fixed-width blocks.
/// Traits must provide kWidth and a SpecialMask returning a bitmask with
/// bit j set when byte j of the block is a special symbol.
template <typename Traits>
ChunkKernelResult ChunkKernelX86(const KernelPlan& plan, const uint8_t* data,
                                 size_t begin, size_t end,
                                 uint8_t* flags_out) {
  constexpr size_t kWidth = Traits::kWidth;
  const typename Traits::Scanner scanner(plan);

  ChunkKernelResult result;
  alignas(16) uint8_t lanes[16];
  InitIdentityLanes(plan, lanes);
  __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(lanes));
  const __m128i pow_table = _mm_load_si128(reinterpret_cast<const __m128i*>(
      kWidth == 32 ? plan.catchall_pow32 : plan.catchall_pow16));

  const __m128i start_idx =
      _mm_set1_epi8(static_cast<char>(plan.start_state));
  const __m128i trap = _mm_set1_epi8(static_cast<char>(plan.trap_state));
  size_t i = begin;
  bool converged = LanesConvergedSse(v, start_idx, trap);

  // Multi-state phase, block at a time. A block with no special symbols is
  // kWidth catch-all transitions, i.e. one shuffle with T_catchall^kWidth.
  // Convergence is tested at block granularity: detecting it a few bytes
  // late only shortens the fused region, never changes a result.
  while (!converged && i + kWidth <= end) {
    if (scanner.SpecialMask(data + i) == 0) {
      v = _mm_shuffle_epi8(pow_table, v);
    } else {
      for (size_t j = 0; j < kWidth; ++j) v = AdvanceLanes(plan, v, data[i + j]);
    }
    i += kWidth;
    converged = LanesConvergedSse(v, start_idx, trap);
  }
  while (!converged && i < end) {
    v = AdvanceLanes(plan, v, data[i]);
    ++i;
    converged = LanesConvergedSse(v, start_idx, trap);
  }

  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), v);
  if (!converged) {
    result.vector = LanesToVector(plan, lanes);
    return result;
  }

  // Converged: fused single-state phase. Blocks of plain data symbols in a
  // skippable state are consumed without touching the flags array (it is
  // pre-zeroed); otherwise the flat LUTs process one byte at a time up to
  // and across the special symbols.
  result.spec_offset = static_cast<int64_t>(i);
  result.spec_state = lanes[plan.start_state];
  uint8_t state = lanes[plan.start_state];
  while (i < end) {
    if (plan.state_skippable[state] && i + kWidth <= end) {
      const uint64_t mask = scanner.SpecialMask(data + i);
      if (mask == 0) {
        i += kWidth;
        continue;
      }
      // Jump over the clean prefix; flags stay zero, state unchanged.
      i += static_cast<size_t>(std::countr_zero(mask));
    }
    FusedStepByte(plan, data, i, flags_out, &state, &result.first_invalid);
    ++i;
  }
  result.vector = ConvergedVector(plan, lanes, state);
  return result;
}

}  // namespace parparaw::simd::internal

#endif  // PARPARAW_SIMD_X86_KERNEL_IMPL_H_
