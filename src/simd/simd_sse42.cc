// SSE4.2 chunk kernel: 16-byte special-symbol scan blocks, 128-bit PSHUFB
// state-vector advance. Compiled with -msse4.2 (see src/CMakeLists.txt)
// and only dispatched after the runtime CPU check in simd/dispatch.cc.

#include "simd/x86_kernel_impl.h"

namespace parparaw::simd::internal {

namespace {

struct Sse42Traits {
  static constexpr size_t kWidth = 16;

  struct Scanner {
    __m128i specials[kMaxSpecialSymbols];
    int num_specials;

    explicit Scanner(const KernelPlan& plan)
        : num_specials(plan.num_specials) {
      for (int k = 0; k < num_specials; ++k) {
        specials[k] =
            _mm_set1_epi8(static_cast<char>(plan.special_symbols[k]));
      }
    }

    uint64_t SpecialMask(const uint8_t* p) const {
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      __m128i acc = _mm_setzero_si128();
      for (int k = 0; k < num_specials; ++k) {
        acc = _mm_or_si128(acc, _mm_cmpeq_epi8(block, specials[k]));
      }
      return static_cast<uint32_t>(_mm_movemask_epi8(acc));
    }
  };
};

}  // namespace

ChunkKernelResult ChunkKernelSse42(const KernelPlan& plan, const uint8_t* data,
                                   size_t begin, size_t end,
                                   uint8_t* flags_out) {
  return ChunkKernelX86<Sse42Traits>(plan, data, begin, end, flags_out);
}

}  // namespace parparaw::simd::internal
