#ifndef PARPARAW_SIMD_SIMD_KERNELS_H_
#define PARPARAW_SIMD_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "dfa/dfa.h"
#include "dfa/state_vector.h"
#include "simd/dispatch.h"

namespace parparaw::simd {

/// Registered (non-catch-all) symbols a DFA can have; bounded by the
/// DfaBuilder's 16-symbol limit.
inline constexpr int kMaxSpecialSymbols = 16;

/// Symbol groups including the trailing catch-all group.
inline constexpr int kMaxSymbolGroups = kMaxSpecialSymbols + 1;

/// \brief Precomputed, DFA-derived lookup tables shared by every kernel
/// level for one parse.
///
/// The shuffle-as-gather layout: byte s of group_tables[g] holds
/// NextState(s, g), so one PSHUFB/TBL with the current 16-lane state vector
/// as the index operand advances *all* DFA instances by one symbol — the
/// vector realisation of the packed Table 1 row. The flat [state<<8|byte]
/// LUTs serve the single-state (converged / bitmap) walks; group_of_byte is
/// the SwarMatcher's classification materialised per byte value so the hot
/// loops pay one L1 load instead of the register scan.
struct KernelPlan {
  int num_states = 0;
  int invalid_state = -1;
  /// The DFA's start state: the reference lane for the convergence test.
  int start_state = 0;
  /// invalid_state when it is absorbing (every group maps it to itself),
  /// else 0xFF (matches no lane). Lanes sitting in an absorbing trap can
  /// never re-merge with live lanes, so the convergence test treats them
  /// as wildcards: their final value is already decided.
  uint8_t trap_state = 0xFF;
  int catchall_group = 0;
  int num_specials = 0;
  /// Symbols whose group is not the catch-all, ascending byte order.
  uint8_t special_symbols[kMaxSpecialSymbols] = {};
  /// byte value -> symbol group (built via Dfa::SymbolGroup, i.e. the SWAR
  /// matcher of Table 2).
  uint8_t group_of_byte[256] = {};
  /// Per-group shuffle tables: byte s = NextState(s, g).
  alignas(16) uint8_t group_tables[kMaxSymbolGroups][16] = {};
  /// The catch-all transition composed with itself 16x / 32x: advances a
  /// whole vector block of data symbols with a single shuffle.
  alignas(16) uint8_t catchall_pow16[16] = {};
  alignas(16) uint8_t catchall_pow32[16] = {};
  /// Flat single-state LUTs indexed [state << 8 | byte].
  uint8_t next_flat[kMaxDfaStates * 256] = {};
  uint8_t flags_flat[kMaxDfaStates * 256] = {};
  /// state_skippable[s]: s self-loops on catch-all input with zero flags,
  /// so a block with no special symbols can be skipped outright while in s.
  bool state_skippable[kMaxDfaStates] = {};
};

/// Derives the plan from a built DFA. Cheap (a few KB of table fills); the
/// pipeline builds one per parse and shares it across chunks.
KernelPlan BuildKernelPlan(const Dfa& dfa);

/// \brief Result of the fused context+bitmap kernel over one chunk.
///
/// The kernel always produces the chunk's exact state-transition vector.
/// Speculation: once every live lane of the vector holds the same state
/// (lanes in the absorbing trap state are wildcards — their outcome is
/// fixed), the chunk's suffix is entry-state-independent for every entry
/// that has not already trapped, so the kernel drops to single-state
/// simulation and emits the symbol-class flags for the remaining bytes in
/// the same pass. spec_offset records where that fused region starts (-1:
/// the lanes never converged and no flags were emitted); spec_state is the
/// converged state there, which the bitmap step uses as its verification
/// token — an entry whose true path trapped earlier arrives in the trap
/// state instead, fails the token check, and takes the exact re-walk.
struct ChunkKernelResult {
  StateVector vector;
  int64_t spec_offset = -1;
  uint8_t spec_state = 0;
  /// Earliest in-chunk offset >= spec_offset whose transition enters the
  /// DFA's invalid state from a non-invalid state, or -1.
  int64_t first_invalid = -1;
};

/// Fused kernel signature: simulates [begin, end) of `data`, writing
/// speculative flags into flags_out (absolute indexing; the array must be
/// pre-zeroed) for bytes at and after the convergence point.
using ChunkKernelFn = ChunkKernelResult (*)(const KernelPlan& plan,
                                            const uint8_t* data, size_t begin,
                                            size_t end, uint8_t* flags_out);

/// The kernel for a level. kScalar has no fused kernel (the reference
/// pipeline path is used instead) and returns nullptr; unavailable arch
/// levels fall back to the portable SWAR kernel.
ChunkKernelFn GetChunkKernel(KernelLevel level);

/// \brief Summary of a single-state flag walk (the bitmap pass over one
/// chunk region): counts mirror the scalar BitmapStep exactly.
struct FlagWalkResult {
  uint8_t end_state = 0;
  uint32_t records = 0;
  uint32_t fields_since_record = 0;
  bool saw_record_delimiter = false;
  int64_t first_invalid = -1;
};

/// Walks [begin, end) from `entry_state` with the flat LUTs, writing every
/// byte's flags and counting record/field delimiters. Skips runs of
/// non-special symbols in skippable states via SWAR word probes.
FlagWalkResult WalkEmitFlags(const KernelPlan& plan, const uint8_t* data,
                             size_t begin, size_t end, uint8_t entry_state,
                             uint8_t* flags_out);

/// Counts record/field delimiters from already-emitted flags over
/// [begin, end) (the verified speculative region); end_state is not
/// meaningful in the result.
FlagWalkResult CountEmittedFlags(const uint8_t* flags, size_t begin,
                                 size_t end);

namespace internal {

/// Portable fallback kernel (no vector intrinsics).
ChunkKernelResult ChunkKernelSwar(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out);

/// Arch kernels; defined only in their per-ISA translation units (see
/// src/CMakeLists.txt) and only reachable through GetChunkKernel after the
/// runtime CPU check.
ChunkKernelResult ChunkKernelSse42(const KernelPlan& plan, const uint8_t* data,
                                   size_t begin, size_t end,
                                   uint8_t* flags_out);
ChunkKernelResult ChunkKernelAvx2(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out);
ChunkKernelResult ChunkKernelNeon(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out);

}  // namespace internal

}  // namespace parparaw::simd

#endif  // PARPARAW_SIMD_SIMD_KERNELS_H_
