#ifndef PARPARAW_SIMD_DISPATCH_H_
#define PARPARAW_SIMD_DISPATCH_H_

#include <cstdint>
#include <optional>

namespace parparaw::simd {

/// What a caller asks for (ParseOptions::kernel): the policy knob. The
/// concrete implementation that runs is a KernelLevel, resolved once per
/// parse by ResolveKernelLevel().
enum class KernelKind : uint8_t {
  /// Best available vectorized kernel; the portable SWAR fallback when the
  /// build or the CPU has no vector ISA.
  kAuto,
  /// The scalar reference pipeline (byte-at-a-time multi-DFA walk in the
  /// context pass, SWAR symbol matching in the bitmap pass). This is the
  /// ground truth every other level is differentially tested against.
  kScalar,
  /// Explicitly request the vectorized path (same resolution as kAuto;
  /// exists so call sites can express intent and future policies can make
  /// kAuto heuristic without breaking them).
  kSimd,
};

/// One concrete kernel implementation. Levels above kSwar require both
/// compile-time support (the arch translation unit was built) and runtime
/// CPU support (detected once, cached).
enum class KernelLevel : uint8_t {
  kScalar,
  /// Portable fallback: flat-LUT transitions, convergence speculation, and
  /// Mycroft SWAR special-symbol skipping — no vector intrinsics.
  kSwar,
  kSse42,
  kAvx2,
  kNeon,
};

/// Stable lowercase name ("scalar", "swar", "sse42", "avx2", "neon"); also
/// the vocabulary of the PARPARAW_FORCE_KERNEL environment variable.
const char* KernelLevelName(KernelLevel level);

/// True when `level` was compiled in and the CPU can execute it.
bool KernelLevelAvailable(KernelLevel level);

/// Best available vectorized level: kAvx2 > kSse42 > kNeon > kSwar.
/// Detected once at startup and cached.
KernelLevel DetectBestKernelLevel();

/// Maps a request to the level the pipeline will run. Precedence:
///   1. SetForcedKernelLevel() test hook, when set;
///   2. PARPARAW_FORCE_KERNEL=scalar|swar|simd|sse42|avx2|neon (unavailable
///      arch names degrade to the best available level);
///   3. `requested` (kScalar -> kScalar, kAuto/kSimd -> best available).
KernelLevel ResolveKernelLevel(KernelKind requested);

/// Test hook: overrides every subsequent resolution with `level` (clamped
/// to an available level), or restores normal resolution with nullopt.
/// Not thread-safe against concurrent parses; intended for test setup.
void SetForcedKernelLevel(std::optional<KernelLevel> level);

}  // namespace parparaw::simd

#endif  // PARPARAW_SIMD_DISPATCH_H_
