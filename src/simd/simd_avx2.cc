// AVX2 chunk kernel: 32-byte special-symbol scan blocks (256-bit compares),
// 128-bit PSHUFB state-vector advance (16 DFA lanes fit one XMM register;
// the wider ISA's win is the input scan and the T_catchall^32 block skip).
// Compiled with -mavx2 and only dispatched after the runtime CPU check.

#include "simd/x86_kernel_impl.h"

namespace parparaw::simd::internal {

namespace {

struct Avx2Traits {
  static constexpr size_t kWidth = 32;

  struct Scanner {
    __m256i specials[kMaxSpecialSymbols];
    int num_specials;

    explicit Scanner(const KernelPlan& plan)
        : num_specials(plan.num_specials) {
      for (int k = 0; k < num_specials; ++k) {
        specials[k] =
            _mm256_set1_epi8(static_cast<char>(plan.special_symbols[k]));
      }
    }

    uint64_t SpecialMask(const uint8_t* p) const {
      const __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      __m256i acc = _mm256_setzero_si256();
      for (int k = 0; k < num_specials; ++k) {
        acc = _mm256_or_si256(acc, _mm256_cmpeq_epi8(block, specials[k]));
      }
      return static_cast<uint32_t>(_mm256_movemask_epi8(acc));
    }
  };
};

}  // namespace

ChunkKernelResult ChunkKernelAvx2(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out) {
  return ChunkKernelX86<Avx2Traits>(plan, data, begin, end, flags_out);
}

}  // namespace parparaw::simd::internal
