#include "simd/dispatch.h"

#include "plan/tuning.h"

namespace parparaw::simd {

namespace {

std::optional<KernelLevel>& ForcedLevel() {
  static std::optional<KernelLevel> forced;
  return forced;
}

bool CpuSupports(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
    case KernelLevel::kSwar:
      return true;
    case KernelLevel::kSse42:
#if defined(PARPARAW_HAVE_SSE42_KERNEL) && \
    (defined(__x86_64__) || defined(_M_X64))
      return __builtin_cpu_supports("sse4.2") != 0;
#else
      return false;
#endif
    case KernelLevel::kAvx2:
#if defined(PARPARAW_HAVE_AVX2_KERNEL) && \
    (defined(__x86_64__) || defined(_M_X64))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelLevel::kNeon:
#if defined(PARPARAW_HAVE_NEON_KERNEL) && defined(__aarch64__)
      return true;  // Advanced SIMD is mandatory on AArch64.
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSwar:
      return "swar";
    case KernelLevel::kSse42:
      return "sse42";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool KernelLevelAvailable(KernelLevel level) { return CpuSupports(level); }

KernelLevel DetectBestKernelLevel() {
  static const KernelLevel best = [] {
    // PARPARAW_DISABLE_SIMD at runtime mirrors the -DPARPARAW_DISABLE_SIMD
    // build option: vector ISAs stay compiled in but are never detected,
    // so every kAuto/kSimd request degrades to the portable SWAR fallback.
    if (plan::EnvSimdDisabled()) return KernelLevel::kSwar;
    if (CpuSupports(KernelLevel::kAvx2)) return KernelLevel::kAvx2;
    if (CpuSupports(KernelLevel::kSse42)) return KernelLevel::kSse42;
    if (CpuSupports(KernelLevel::kNeon)) return KernelLevel::kNeon;
    return KernelLevel::kSwar;
  }();
  return best;
}

KernelLevel ResolveKernelLevel(KernelKind requested) {
  if (ForcedLevel().has_value()) {
    const KernelLevel forced = *ForcedLevel();
    return CpuSupports(forced) ? forced : DetectBestKernelLevel();
  }
  // Centralized env parsing (plan/tuning.h), read once per process:
  // unavailable arch names degrade to the best available level.
  if (std::optional<KernelLevel> level = plan::EnvForcedKernelLevel()) {
    return CpuSupports(*level) ? *level : DetectBestKernelLevel();
  }
  switch (requested) {
    case KernelKind::kScalar:
      return KernelLevel::kScalar;
    case KernelKind::kAuto:
    case KernelKind::kSimd:
      return DetectBestKernelLevel();
  }
  return KernelLevel::kScalar;
}

void SetForcedKernelLevel(std::optional<KernelLevel> level) {
  ForcedLevel() = level;
}

}  // namespace parparaw::simd
