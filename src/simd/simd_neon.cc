// AArch64 NEON chunk kernel: 16-byte blocks, TBL-based state-vector
// advance (the NEON analogue of PSHUFB shuffle-as-gather). Compiled only
// for aarch64 targets, where Advanced SIMD is architecturally mandatory.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

#include "simd/kernel_common.h"
#include "simd/simd_kernels.h"

namespace parparaw::simd::internal {

namespace {

constexpr size_t kWidth = 16;

/// Trap-masked convergence test (see KernelPlan::trap_state): every lane
/// equals the start lane's value or the absorbing trap.
bool LanesConvergedNeon(uint8x16_t v, uint8x16_t start_idx, uint8x16_t trap) {
  const uint8x16_t ref = vqtbl1q_u8(v, start_idx);
  const uint8x16_t ok = vorrq_u8(vceqq_u8(v, ref), vceqq_u8(v, trap));
  return vminvq_u8(ok) == 0xFF;
}

uint8x16_t AdvanceLanesNeon(const KernelPlan& plan, uint8x16_t v,
                            uint8_t byte) {
  const uint8x16_t table = vld1q_u8(plan.group_tables[plan.group_of_byte[byte]]);
  return vqtbl1q_u8(table, v);
}

struct Scanner {
  uint8x16_t specials[kMaxSpecialSymbols];
  int num_specials;

  explicit Scanner(const KernelPlan& plan) : num_specials(plan.num_specials) {
    for (int k = 0; k < num_specials; ++k) {
      specials[k] = vdupq_n_u8(plan.special_symbols[k]);
    }
  }

  /// Nibble mask: bits [4j, 4j+4) are set when byte j is a special symbol
  /// (the SHRN narrowing idiom standing in for x86's MOVEMASK).
  uint64_t SpecialMask(const uint8_t* p) const {
    const uint8x16_t block = vld1q_u8(p);
    uint8x16_t acc = vdupq_n_u8(0);
    for (int k = 0; k < num_specials; ++k) {
      acc = vorrq_u8(acc, vceqq_u8(block, specials[k]));
    }
    const uint8x8_t narrowed =
        vshrn_n_u16(vreinterpretq_u16_u8(acc), 4);
    return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
  }
};

}  // namespace

ChunkKernelResult ChunkKernelNeon(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out) {
  const Scanner scanner(plan);

  ChunkKernelResult result;
  alignas(16) uint8_t lanes[16];
  InitIdentityLanes(plan, lanes);
  uint8x16_t v = vld1q_u8(lanes);
  const uint8x16_t pow16 = vld1q_u8(plan.catchall_pow16);

  const uint8x16_t start_idx =
      vdupq_n_u8(static_cast<uint8_t>(plan.start_state));
  const uint8x16_t trap = vdupq_n_u8(plan.trap_state);
  size_t i = begin;
  bool converged = LanesConvergedNeon(v, start_idx, trap);

  while (!converged && i + kWidth <= end) {
    if (scanner.SpecialMask(data + i) == 0) {
      v = vqtbl1q_u8(pow16, v);
    } else {
      for (size_t j = 0; j < kWidth; ++j) {
        v = AdvanceLanesNeon(plan, v, data[i + j]);
      }
    }
    i += kWidth;
    converged = LanesConvergedNeon(v, start_idx, trap);
  }
  while (!converged && i < end) {
    v = AdvanceLanesNeon(plan, v, data[i]);
    ++i;
    converged = LanesConvergedNeon(v, start_idx, trap);
  }

  vst1q_u8(lanes, v);
  if (!converged) {
    result.vector = LanesToVector(plan, lanes);
    return result;
  }

  result.spec_offset = static_cast<int64_t>(i);
  result.spec_state = lanes[plan.start_state];
  uint8_t state = lanes[plan.start_state];
  while (i < end) {
    if (plan.state_skippable[state] && i + kWidth <= end) {
      const uint64_t mask = scanner.SpecialMask(data + i);
      if (mask == 0) {
        i += kWidth;
        continue;
      }
      i += static_cast<size_t>(std::countr_zero(mask)) / 4;
    }
    FusedStepByte(plan, data, i, flags_out, &state, &result.first_invalid);
    ++i;
  }
  result.vector = ConvergedVector(plan, lanes, state);
  return result;
}

}  // namespace parparaw::simd::internal

#endif  // defined(__aarch64__)
