#include "simd/simd_kernels.h"

#include <cstring>

#include "simd/kernel_common.h"

namespace parparaw::simd {

namespace {

/// Composes two 16-entry transition tables: out[s] = b[a[s]].
void ComposeTables(const uint8_t a[16], const uint8_t b[16], uint8_t out[16]) {
  for (int s = 0; s < 16; ++s) out[s] = b[a[s]];
}

}  // namespace

KernelPlan BuildKernelPlan(const Dfa& dfa) {
  KernelPlan plan;
  plan.num_states = dfa.num_states();
  plan.invalid_state = dfa.invalid_state();
  plan.start_state = dfa.start_state();
  plan.catchall_group = dfa.num_symbol_groups() - 1;

  // Trap-masking is only sound when the invalid state is absorbing; the
  // builder marks it by convention but does not enforce it, so verify.
  if (plan.invalid_state >= 0) {
    bool absorbing = true;
    for (int g = 0; g < dfa.num_symbol_groups(); ++g) {
      if (dfa.NextState(plan.invalid_state, g) != plan.invalid_state) {
        absorbing = false;
        break;
      }
    }
    if (absorbing) plan.trap_state = static_cast<uint8_t>(plan.invalid_state);
  }

  for (int b = 0; b < 256; ++b) {
    const int group = dfa.SymbolGroup(static_cast<uint8_t>(b));
    plan.group_of_byte[b] = static_cast<uint8_t>(group);
    if (group != plan.catchall_group &&
        plan.num_specials < kMaxSpecialSymbols) {
      plan.special_symbols[plan.num_specials++] = static_cast<uint8_t>(b);
    }
  }

  for (int g = 0; g < dfa.num_symbol_groups(); ++g) {
    for (int s = 0; s < 16; ++s) {
      // Entries past num_states read zero nibbles of the packed row; they
      // are never used as lookup indices (lanes only ever hold live
      // states) but keep the table total.
      plan.group_tables[g][s] = dfa.NextState(s, g);
    }
  }

  // Catch-all transition powers for the whole-block fast path.
  uint8_t pow[16];
  std::memcpy(pow, plan.group_tables[plan.catchall_group], 16);
  for (int doubling = 0; doubling < 4; ++doubling) {  // T^2, T^4, T^8, T^16
    ComposeTables(pow, pow, pow);
  }
  std::memcpy(plan.catchall_pow16, pow, 16);
  ComposeTables(pow, pow, pow);  // T^32
  std::memcpy(plan.catchall_pow32, pow, 16);

  for (int s = 0; s < plan.num_states; ++s) {
    for (int b = 0; b < 256; ++b) {
      const int group = plan.group_of_byte[b];
      plan.next_flat[(s << 8) | b] = dfa.NextState(s, group);
      plan.flags_flat[(s << 8) | b] = dfa.Flags(s, group);
    }
    plan.state_skippable[s] =
        dfa.NextState(s, plan.catchall_group) == s &&
        dfa.Flags(s, plan.catchall_group) == 0;
  }
  return plan;
}

namespace internal {

ChunkKernelResult ChunkKernelSwar(const KernelPlan& plan, const uint8_t* data,
                                  size_t begin, size_t end,
                                  uint8_t* flags_out) {
  ChunkKernelResult result;
  alignas(16) uint8_t lanes[16];
  InitIdentityLanes(plan, lanes);

  // Multi-state phase: advance all lanes per byte until they converge.
  size_t i = begin;
  while (i < end && !LanesConverged(plan, lanes)) {
    const uint8_t* table = plan.group_tables[plan.group_of_byte[data[i]]];
    for (int l = 0; l < 16; ++l) lanes[l] = table[lanes[l]];
    ++i;
  }

  if (!LanesConverged(plan, lanes)) {
    result.vector = LanesToVector(plan, lanes);
    return result;
  }

  // Converged: the suffix is entry-state-independent (up to trapped
  // entries), so fuse the bitmap pass — single-state simulation emitting
  // flags, with SWAR word probes skipping runs of plain data symbols in
  // skippable states.
  result.spec_offset = static_cast<int64_t>(i);
  result.spec_state = lanes[plan.start_state];
  uint8_t state = lanes[plan.start_state];
  while (i < end) {
    if (plan.state_skippable[state] && i + 8 <= end) {
      const uint64_t hits = SpecialMaskSwar(plan, data + i);
      if (hits == 0) {
        i += 8;  // flags stay zero, state unchanged
        continue;
      }
      i += CleanPrefixSwar(hits);  // jump to the first special symbol
    }
    FusedStepByte(plan, data, i, flags_out, &state, &result.first_invalid);
    ++i;
  }
  result.vector = ConvergedVector(plan, lanes, state);
  return result;
}

}  // namespace internal

ChunkKernelFn GetChunkKernel(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return nullptr;
    case KernelLevel::kSwar:
      return internal::ChunkKernelSwar;
    case KernelLevel::kSse42:
#ifdef PARPARAW_HAVE_SSE42_KERNEL
      return internal::ChunkKernelSse42;
#else
      return internal::ChunkKernelSwar;
#endif
    case KernelLevel::kAvx2:
#ifdef PARPARAW_HAVE_AVX2_KERNEL
      return internal::ChunkKernelAvx2;
#else
      return internal::ChunkKernelSwar;
#endif
    case KernelLevel::kNeon:
#ifdef PARPARAW_HAVE_NEON_KERNEL
      return internal::ChunkKernelNeon;
#else
      return internal::ChunkKernelSwar;
#endif
  }
  return internal::ChunkKernelSwar;
}

FlagWalkResult WalkEmitFlags(const KernelPlan& plan, const uint8_t* data,
                             size_t begin, size_t end, uint8_t entry_state,
                             uint8_t* flags_out) {
  FlagWalkResult result;
  uint8_t state = entry_state;
  size_t i = begin;
  while (i < end) {
    if (plan.state_skippable[state] && i + 8 <= end) {
      const uint64_t hits = internal::SpecialMaskSwar(plan, data + i);
      if (hits == 0) {
        i += 8;
        continue;
      }
      i += internal::CleanPrefixSwar(hits);
    }
    const unsigned idx =
        (static_cast<unsigned>(state) << 8) | static_cast<unsigned>(data[i]);
    const uint8_t flags = plan.flags_flat[idx];
    flags_out[i] = flags;
    if (flags & kSymbolRecordDelimiter) {
      ++result.records;
      result.fields_since_record = 0;
      result.saw_record_delimiter = true;
    } else if (flags & kSymbolFieldDelimiter) {
      ++result.fields_since_record;
    }
    const uint8_t next = plan.next_flat[idx];
    if (plan.invalid_state >= 0 && next == plan.invalid_state &&
        state != plan.invalid_state && result.first_invalid < 0) {
      result.first_invalid = static_cast<int64_t>(i);
    }
    state = next;
    ++i;
  }
  result.end_state = state;
  return result;
}

FlagWalkResult CountEmittedFlags(const uint8_t* flags, size_t begin,
                                 size_t end) {
  FlagWalkResult result;
  for (size_t i = begin; i < end; ++i) {
    const uint8_t f = flags[i];
    if (f & kSymbolRecordDelimiter) {
      ++result.records;
      result.fields_since_record = 0;
      result.saw_record_delimiter = true;
    } else if (f & kSymbolFieldDelimiter) {
      ++result.fields_since_record;
    }
  }
  return result;
}

}  // namespace parparaw::simd
