#ifndef PARPARAW_SIMD_KERNEL_COMMON_H_
#define PARPARAW_SIMD_KERNEL_COMMON_H_

// Internal helpers shared by the per-ISA kernel translation units. Not part
// of the public simd API.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "mfira/swar.h"
#include "simd/simd_kernels.h"

namespace parparaw::simd::internal {

/// Initialises the 16 byte lanes of the multi-DFA state vector: lane i
/// starts in state i for i < num_states; surplus lanes shadow lane 0 so
/// that shuffle lookups stay in range and the full-register convergence
/// test is equivalent to one over the live lanes (a surplus lane always
/// mirrors lane 0's value exactly).
inline void InitIdentityLanes(const KernelPlan& plan, uint8_t lanes[16]) {
  for (int i = 0; i < 16; ++i) {
    lanes[i] = i < plan.num_states ? static_cast<uint8_t>(i) : 0;
  }
}

/// Builds the public StateVector from the first num_states lanes.
inline StateVector LanesToVector(const KernelPlan& plan,
                                 const uint8_t lanes[16]) {
  StateVector v = StateVector::Identity(plan.num_states);
  for (int i = 0; i < plan.num_states; ++i) v.Set(i, lanes[i]);
  return v;
}

/// Trap-masked convergence test: every live lane either equals the start
/// lane's value or sits in the absorbing trap state. The trap lanes'
/// futures are fixed (the trap absorbs), so the suffix outcome of every
/// non-trapped entry is decided by the one shared state. The start lane is
/// the reference; when it has itself trapped, convergence requires every
/// lane to have trapped.
inline bool LanesConverged(const KernelPlan& plan, const uint8_t lanes[16]) {
  const uint8_t ref = lanes[plan.start_state];
  for (int i = 0; i < plan.num_states; ++i) {
    if (lanes[i] != ref && lanes[i] != plan.trap_state) return false;
  }
  return true;
}

/// The chunk's final transition vector after a converged fused walk ending
/// in `end_state`: trapped lanes stay trapped, every other lane shares the
/// walked outcome.
inline StateVector ConvergedVector(const KernelPlan& plan,
                                   const uint8_t lanes_at_convergence[16],
                                   uint8_t end_state) {
  StateVector v = StateVector::Identity(plan.num_states);
  for (int i = 0; i < plan.num_states; ++i) {
    v.Set(i, lanes_at_convergence[i] == plan.trap_state ? plan.trap_state
                                                        : end_state);
  }
  return v;
}

/// One byte of single-state simulation: writes the symbol's flags, tracks
/// the earliest transition into the invalid state, advances the state.
/// Byte-for-byte identical to the scalar BitmapStep inner loop.
inline void FusedStepByte(const KernelPlan& plan, const uint8_t* data,
                          size_t i, uint8_t* flags_out, uint8_t* state,
                          int64_t* first_invalid) {
  const unsigned idx =
      (static_cast<unsigned>(*state) << 8) | static_cast<unsigned>(data[i]);
  flags_out[i] = plan.flags_flat[idx];
  const uint8_t next = plan.next_flat[idx];
  if (plan.invalid_state >= 0 && next == plan.invalid_state &&
      *state != plan.invalid_state && *first_invalid < 0) {
    *first_invalid = static_cast<int64_t>(i);
  }
  *state = next;
}

/// Portable special-symbol probe over the 8 bytes at `p`: a Mycroft
/// zero-byte test per registered symbol, OR-combined. Bit 8*j+7 set means
/// byte j is a special symbol.
inline uint64_t SpecialMaskSwar(const KernelPlan& plan, const uint8_t* p) {
  uint64_t word;
  __builtin_memcpy(&word, p, 8);
  uint64_t hits = 0;
  for (int k = 0; k < plan.num_specials; ++k) {
    hits |= SwarHasZeroByte64(word ^ SwarBroadcast64(plan.special_symbols[k]));
  }
  return hits;
}

/// Number of leading non-special bytes in a SpecialMaskSwar result.
inline size_t CleanPrefixSwar(uint64_t hits) {
  return static_cast<size_t>(std::countr_zero(hits)) / 8;
}

}  // namespace parparaw::simd::internal

#endif  // PARPARAW_SIMD_KERNEL_COMMON_H_
