#include "dialect/automaton.h"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>

#include "dfa/state_vector.h"
#include "robust/failpoint.h"

namespace parparaw::dialect {

namespace {

constexpr uint8_t kFlagsRec = kSymbolRecordDelimiter | kSymbolControl;
constexpr uint8_t kFlagsFld = kSymbolFieldDelimiter | kSymbolControl;
constexpr uint8_t kFlagsCtl = kSymbolControl;
constexpr uint8_t kFlagsDat = kSymbolData;
/// Inclusive field boundary (fixed-width): the byte is the last byte of
/// its field AND part of the field's value.
constexpr uint8_t kFlagsFldInclusive = kSymbolFieldDelimiter;

/// Incremental builder for the wide automaton: states first, then a dense
/// default transition per state, then per-byte overrides.
class WideBuilder {
 public:
  int AddState(std::string state_name, bool is_accepting, bool is_mid) {
    a_.names.push_back(std::move(state_name));
    a_.accepting.push_back(is_accepting ? 1 : 0);
    a_.mid_record.push_back(is_mid ? 1 : 0);
    return a_.num_states++;
  }

  void AllocateTables() {
    a_.next.assign(static_cast<size_t>(a_.num_states) * 256, 0);
    a_.flags.assign(static_cast<size_t>(a_.num_states) * 256, 0);
  }

  void SetDefault(int from, int to, uint8_t flags) {
    const size_t base = static_cast<size_t>(from) * 256;
    for (size_t b = 0; b < 256; ++b) {
      a_.next[base + b] = to;
      a_.flags[base + b] = flags;
    }
  }

  void Set(int from, uint8_t byte, int to, uint8_t flags) {
    const size_t idx = static_cast<size_t>(from) * 256 + byte;
    a_.next[idx] = to;
    a_.flags[idx] = flags;
  }

  Automaton Finish(int start, int invalid) {
    a_.start = start;
    a_.invalid = invalid;
    return std::move(a_);
  }

 private:
  Automaton a_;
};

/// Adds the record-delimiter prefix chain for a multi-byte delimiter:
/// `entry` states transition on delimiter[0] into the chain; the final
/// byte lands in `eor` carrying `final_flags`. A broken prefix is invalid
/// input (strict matching — the single-pass flag assignment cannot
/// retract an already-consumed prefix byte).
int AddDelimiterChain(WideBuilder* b, const std::string& delimiter,
                      const char* prefix, bool chain_is_mid,
                      std::vector<int>* chain_states) {
  chain_states->clear();
  for (size_t i = 1; i < delimiter.size(); ++i) {
    chain_states->push_back(b->AddState(
        std::string(prefix) + std::to_string(i), /*is_accepting=*/false,
        chain_is_mid));
  }
  return chain_states->empty() ? -1 : (*chain_states)[0];
}

/// Wires a chain's internal transitions once all states (incl. eor/inv)
/// exist: chain_states[i] consumes delimiter[i + 1]; the last one emits
/// `final_flags` into `eor`, everything else in a chain state is invalid.
void WireDelimiterChain(WideBuilder* b, const std::string& delimiter,
                        const std::vector<int>& chain_states, int eor,
                        int inv, uint8_t final_flags) {
  for (size_t i = 0; i < chain_states.size(); ++i) {
    const int state = chain_states[i];
    b->SetDefault(state, inv, kFlagsCtl);
    const uint8_t expected = static_cast<uint8_t>(delimiter[i + 1]);
    const bool last = i + 1 == chain_states.size();
    b->Set(state, expected, last ? eor : chain_states[i + 1],
           last ? final_flags : kFlagsCtl);
  }
}

Automaton CompileFixedWidth(const DialectSpec& spec) {
  WideBuilder b;
  int64_t total = 0;
  for (int width : spec.fixed_widths) total += width;
  const int record_width = static_cast<int>(total);

  // One state per byte position inside the record; position 0 doubles as
  // the start/EOR state. A record ends with `eol` expecting the record
  // delimiter.
  std::vector<int> position(record_width);
  position[0] = b.AddState("EOR", /*is_accepting=*/true, /*is_mid=*/false);
  for (int p = 1; p < record_width; ++p) {
    position[p] = b.AddState("P" + std::to_string(p), /*is_accepting=*/false,
                             /*is_mid=*/true);
  }
  const int eol = b.AddState("EOL", /*is_accepting=*/true, /*is_mid=*/true);
  std::vector<int> chain;
  AddDelimiterChain(&b, spec.record_delimiter, "R", /*chain_is_mid=*/true,
                    &chain);
  const int inv = b.AddState("INV", /*is_accepting=*/false, /*is_mid=*/false);
  b.AllocateTables();

  // Field boundaries: the last byte of every non-trailing field is an
  // inclusive boundary — it belongs to the field's value AND ends it
  // (kSymbolFieldDelimiter without kSymbolControl). The trailing field
  // ends at the record delimiter like any delimited format.
  std::vector<uint8_t> position_flags(record_width, kFlagsDat);
  int offset = 0;
  for (size_t f = 0; f + 1 < spec.fixed_widths.size(); ++f) {
    offset += spec.fixed_widths[f];
    position_flags[offset - 1] = kFlagsFldInclusive;
  }
  for (int p = 0; p < record_width; ++p) {
    const int to = p + 1 < record_width ? position[p + 1] : eol;
    b.SetDefault(position[p], to, position_flags[p]);
    // The record delimiter arriving before every position is filled is a
    // framing error (a short record); treating it as data would silently
    // shift every later record's frame by one byte.
    b.Set(position[p], static_cast<uint8_t>(spec.record_delimiter[0]), inv,
          kFlagsCtl);
  }
  b.SetDefault(eol, inv, kFlagsCtl);
  b.Set(eol, static_cast<uint8_t>(spec.record_delimiter[0]),
        chain.empty() ? position[0] : chain[0],
        chain.empty() ? kFlagsRec : kFlagsCtl);
  WireDelimiterChain(&b, spec.record_delimiter, chain, position[0], inv,
                     kFlagsRec);
  b.SetDefault(inv, inv, kFlagsCtl);
  return b.Finish(position[0], inv);
}

Automaton CompileDelimited(const DialectSpec& spec) {
  const bool quoting = spec.quote != 0;
  const bool verbatim = quoting && spec.verbatim_quotes;
  const bool backslash =
      quoting && spec.escape_style == EscapeStyle::kBackslash;
  const bool comments = spec.comment != 0;
  const bool has_field = spec.field_delimiter != 0;
  const std::string& delim = spec.record_delimiter;
  const uint8_t d0 = static_cast<uint8_t>(delim[0]);
  const bool multi = delim.size() > 1;

  WideBuilder b;
  const int eor = b.AddState("EOR", true, false);
  const int fld = b.AddState("FLD", true, true);
  const int eof = has_field ? b.AddState("EOF", true, true) : -1;
  // Verbatim quoting keeps the quote bytes in the value and closes
  // directly back into FLD, so there is no post-closing-quote state.
  const int enc = quoting ? b.AddState("ENC", false, true) : -1;
  const int esc = quoting && !verbatim ? b.AddState("ESC", true, true) : -1;
  const int cmt = comments ? b.AddState("CMT", true, false) : -1;
  const int bsl = backslash ? b.AddState("BSL", false, true) : -1;

  // Contexts a record delimiter may start in decide the flags its final
  // byte carries: ending a record emits kSymbolRecordDelimiter; an empty
  // line under skip_empty_lines or a comment line ends silently.
  std::vector<int> emit_chain;
  std::vector<int> skip_chain;
  const bool needs_skip_chain =
      multi && (spec.skip_empty_lines || comments);
  if (multi) {
    AddDelimiterChain(&b, delim, "R", /*chain_is_mid=*/true, &emit_chain);
  }
  if (needs_skip_chain) {
    AddDelimiterChain(&b, delim, "S", /*chain_is_mid=*/false, &skip_chain);
  }
  const int inv = b.AddState("INV", false, false);
  b.AllocateTables();

  // Where consuming delimiter[0] leads from an emitting / silent context,
  // and the flags it carries there.
  const int emit_to = multi ? emit_chain[0] : eor;
  const uint8_t emit_flags = multi ? kFlagsCtl : kFlagsRec;
  const int skip_to = needs_skip_chain ? skip_chain[0] : eor;
  const uint8_t skip_flags = kFlagsCtl;

  // EOR: start of a record.
  b.SetDefault(eor, fld, kFlagsDat);
  if (spec.skip_empty_lines) {
    b.Set(eor, d0, skip_to, skip_flags);
  } else {
    b.Set(eor, d0, emit_to, emit_flags);
  }
  if (has_field) b.Set(eor, spec.field_delimiter, eof, kFlagsFld);
  if (quoting) b.Set(eor, spec.quote, enc, verbatim ? kFlagsDat : kFlagsCtl);
  if (comments) b.Set(eor, spec.comment, cmt, kFlagsCtl);

  // FLD: inside an unquoted field.
  b.SetDefault(fld, fld, kFlagsDat);
  b.Set(fld, d0, emit_to, emit_flags);
  if (has_field) b.Set(fld, spec.field_delimiter, eof, kFlagsFld);
  if (quoting) {
    if (verbatim) {
      b.Set(fld, spec.quote, enc, kFlagsDat);
    } else if (spec.strict_quotes) {
      b.Set(fld, spec.quote, inv, kFlagsCtl);
    } else {
      b.Set(fld, spec.quote, fld, kFlagsDat);
    }
  }

  // EOF: just consumed a field delimiter.
  if (has_field) {
    b.SetDefault(eof, fld, kFlagsDat);
    b.Set(eof, d0, emit_to, emit_flags);
    b.Set(eof, spec.field_delimiter, eof, kFlagsFld);
    if (quoting) {
      b.Set(eof, spec.quote, enc, verbatim ? kFlagsDat : kFlagsCtl);
    }
  }

  // ENC: inside a quoted field — everything is data, including every byte
  // of the record delimiter.
  if (quoting) {
    b.SetDefault(enc, enc, kFlagsDat);
    if (verbatim) {
      b.Set(enc, spec.quote, fld, kFlagsDat);
    } else {
      b.Set(enc, spec.quote, esc, kFlagsCtl);
    }
    if (backslash) b.Set(enc, spec.escape_char, bsl,
                         verbatim ? kFlagsDat : kFlagsCtl);
  }

  // ESC: just saw a quote inside a quoted field — a doubled quote is a
  // literal quote, a delimiter closes the field, anything else is garbage
  // after the closing quote.
  if (esc >= 0) {
    b.SetDefault(esc, inv, kFlagsCtl);
    b.Set(esc, spec.quote, enc, kFlagsDat);
    b.Set(esc, d0, emit_to, emit_flags);
    if (has_field) b.Set(esc, spec.field_delimiter, eof, kFlagsFld);
  }

  // BSL: after the escape character inside a quoted field — the next byte
  // is taken literally.
  if (backslash) {
    b.SetDefault(bsl, enc, kFlagsDat);
  }

  // CMT: a comment line — everything up to the record delimiter is
  // consumed silently, and the delimiter itself emits no record.
  if (comments) {
    b.SetDefault(cmt, cmt, kFlagsCtl);
    b.Set(cmt, d0, skip_to, skip_flags);
  }

  b.SetDefault(inv, inv, kFlagsCtl);
  if (multi) {
    WireDelimiterChain(&b, delim, emit_chain, eor, inv, kFlagsRec);
  }
  if (needs_skip_chain) {
    WireDelimiterChain(&b, delim, skip_chain, eor, inv, kFlagsCtl);
  }
  return b.Finish(eor, inv);
}

/// Byte-equivalence classes: bytes whose (next, flags) columns agree in
/// every state behave identically and share a class — the Table 1 symbol
/// grouping generalised to arbitrary automata. Returns class id per byte
/// and one representative byte per class; classes are ordered by first
/// occurrence so the numbering is deterministic.
struct ByteClasses {
  std::array<int, 256> of_byte;
  std::vector<uint8_t> representative;
};

ByteClasses ComputeByteClasses(const Automaton& a) {
  ByteClasses classes;
  std::map<std::string, int> seen;
  for (int byte = 0; byte < 256; ++byte) {
    std::string key;
    key.reserve(static_cast<size_t>(a.num_states) * 5);
    for (int s = 0; s < a.num_states; ++s) {
      const size_t idx = static_cast<size_t>(s) * 256 + byte;
      const int next = a.next[idx];
      key.push_back(static_cast<char>(next & 0xFF));
      key.push_back(static_cast<char>((next >> 8) & 0xFF));
      key.push_back(static_cast<char>((next >> 16) & 0xFF));
      key.push_back(static_cast<char>((next >> 24) & 0xFF));
      key.push_back(static_cast<char>(a.flags[idx]));
    }
    auto [it, inserted] =
        seen.emplace(std::move(key), static_cast<int>(classes.representative.size()));
    if (inserted) classes.representative.push_back(static_cast<uint8_t>(byte));
    classes.of_byte[byte] = it->second;
  }
  return classes;
}

/// Drops states unreachable from the start state (e.g. the INV trap of a
/// dialect whose every byte is legal), keeping original ordering.
Automaton PruneUnreachable(const Automaton& a) {
  std::vector<uint8_t> reachable(a.num_states, 0);
  std::queue<int> frontier;
  reachable[a.start] = 1;
  frontier.push(a.start);
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop();
    for (int byte = 0; byte < 256; ++byte) {
      const int to = a.Next(s, static_cast<uint8_t>(byte));
      if (!reachable[to]) {
        reachable[to] = 1;
        frontier.push(to);
      }
    }
  }
  std::vector<int> remap(a.num_states, -1);
  int kept = 0;
  for (int s = 0; s < a.num_states; ++s) {
    if (reachable[s]) remap[s] = kept++;
  }
  if (kept == a.num_states) return a;

  Automaton out;
  out.num_states = kept;
  out.start = remap[a.start];
  out.invalid = a.invalid >= 0 ? remap[a.invalid] : -1;
  out.names.resize(kept);
  out.accepting.resize(kept);
  out.mid_record.resize(kept);
  out.next.resize(static_cast<size_t>(kept) * 256);
  out.flags.resize(static_cast<size_t>(kept) * 256);
  for (int s = 0; s < a.num_states; ++s) {
    if (remap[s] < 0) continue;
    const int t = remap[s];
    out.names[t] = a.names[s];
    out.accepting[t] = a.accepting[s];
    out.mid_record[t] = a.mid_record[s];
    for (int byte = 0; byte < 256; ++byte) {
      const size_t src = static_cast<size_t>(s) * 256 + byte;
      const size_t dst = static_cast<size_t>(t) * 256 + byte;
      out.next[dst] = remap[a.next[src]];
      out.flags[dst] = a.flags[src];
    }
  }
  return out;
}

}  // namespace

int Automaton::Run(int state, const uint8_t* data, size_t size) const {
  int s = state;
  for (size_t i = 0; i < size; ++i) s = Next(s, data[i]);
  return s;
}

Result<Automaton> CompileDialect(const DialectSpec& spec) {
  PARPARAW_FAILPOINT("dialect.compile");
  PARPARAW_RETURN_NOT_OK(spec.Validate());
  if (!spec.fixed_widths.empty()) return CompileFixedWidth(spec);
  return CompileDelimited(spec);
}

Result<Automaton> Minimize(const Automaton& automaton, ThreadPool* pool) {
  PARPARAW_FAILPOINT("dialect.minimise");
  if (automaton.num_states <= 0) {
    return Status::Invalid("cannot minimise an empty automaton");
  }
  const Automaton a = PruneUnreachable(automaton);
  const ByteClasses classes = ComputeByteClasses(a);
  const int num_classes = static_cast<int>(classes.representative.size());
  const int n = a.num_states;
  if (pool == nullptr) pool = ThreadPool::Default();

  // Initial partition: acceptance, trailing-record semantics, and the flag
  // row over the compressed alphabet. Flags are per-transition outputs
  // (Mealy), so states with different rows can never merge and belong to
  // different blocks from round zero.
  std::vector<int> block(n, 0);
  std::vector<std::string> keys(n);
  const auto renumber = [&]() -> int {
    std::map<std::string, int> ids;
    for (int s = 0; s < n; ++s) {
      auto [it, inserted] =
          ids.emplace(keys[s], static_cast<int>(ids.size()));
      (void)inserted;
      block[s] = it->second;
    }
    return static_cast<int>(ids.size());
  };

  PARPARAW_RETURN_NOT_OK(ParallelForEach(pool, 0, n, [&](int64_t s) {
    std::string key;
    key.reserve(2 + num_classes);
    key.push_back(a.accepting[s] ? 'A' : 'a');
    key.push_back(a.mid_record[s] ? 'M' : 'm');
    for (int c = 0; c < num_classes; ++c) {
      key.push_back(static_cast<char>(
          a.FlagsFor(static_cast<int>(s), classes.representative[c])));
    }
    keys[s] = std::move(key);
  }));
  int num_blocks = renumber();

  // Refinement to a fixpoint: each round recomputes every state's
  // signature — own block plus successor block per byte class — in
  // parallel (the Martens & Wijs partition-refinement shape), then
  // renumbers. At most n rounds; each round strictly grows the partition
  // or terminates.
  while (true) {
    PARPARAW_RETURN_NOT_OK(ParallelForEach(pool, 0, n, [&](int64_t s) {
      std::string key;
      key.reserve((num_classes + 1) * 4);
      const auto append_int = [&key](int value) {
        key.push_back(static_cast<char>(value & 0xFF));
        key.push_back(static_cast<char>((value >> 8) & 0xFF));
        key.push_back(static_cast<char>((value >> 16) & 0xFF));
      };
      append_int(block[s]);
      for (int c = 0; c < num_classes; ++c) {
        append_int(block[a.Next(static_cast<int>(s),
                                classes.representative[c])]);
      }
      keys[s] = std::move(key);
    }));
    const int next_blocks = renumber();
    if (next_blocks == num_blocks) break;
    num_blocks = next_blocks;
  }

  // Quotient automaton: one state per block, numbered by first occurrence
  // (so the start state's block keeps a stable, low index).
  std::vector<int> order(num_blocks, -1);
  std::vector<int> state_of_block(num_blocks, -1);
  int next_id = 0;
  for (int s = 0; s < n; ++s) {
    if (order[block[s]] < 0) {
      order[block[s]] = next_id++;
      state_of_block[order[block[s]]] = s;
    }
  }
  Automaton out;
  out.num_states = num_blocks;
  out.start = order[block[a.start]];
  out.invalid = a.invalid >= 0 ? order[block[a.invalid]] : -1;
  out.names.resize(num_blocks);
  out.accepting.resize(num_blocks);
  out.mid_record.resize(num_blocks);
  out.next.resize(static_cast<size_t>(num_blocks) * 256);
  out.flags.resize(static_cast<size_t>(num_blocks) * 256);
  for (int t = 0; t < num_blocks; ++t) {
    const int rep = state_of_block[t];
    out.names[t] = a.names[rep];
    out.accepting[t] = a.accepting[rep];
    out.mid_record[t] = a.mid_record[rep];
    for (int byte = 0; byte < 256; ++byte) {
      const size_t src = static_cast<size_t>(rep) * 256 + byte;
      const size_t dst = static_cast<size_t>(t) * 256 + byte;
      out.next[dst] = order[block[a.next[src]]];
      out.flags[dst] = a.flags[src];
    }
  }
  return out;
}

EquivalenceResult CheckEquivalent(const Automaton& a, const Automaton& b) {
  EquivalenceResult result;
  if (a.num_states == 0 || b.num_states == 0) {
    result.equivalent = false;
    result.detail = "cannot compare an empty automaton";
    return result;
  }
  // BFS over the product of reachable state pairs; parent links rebuild
  // the shortest witness input reaching any mismatch.
  struct Visit {
    int sa;
    int sb;
    int parent;
    uint8_t byte;
  };
  std::vector<Visit> visits;
  std::vector<uint8_t> seen(
      static_cast<size_t>(a.num_states) * b.num_states, 0);
  const auto witness_to = [&](int visit_index) {
    std::string path;
    for (int v = visit_index; v > 0; v = visits[v].parent) {
      path.push_back(static_cast<char>(visits[v].byte));
    }
    std::reverse(path.begin(), path.end());
    return path;
  };
  visits.push_back({a.start, b.start, -1, 0});
  seen[static_cast<size_t>(a.start) * b.num_states + b.start] = 1;
  for (size_t head = 0; head < visits.size(); ++head) {
    const Visit visit = visits[head];
    const int sa = visit.sa;
    const int sb = visit.sb;
    const std::string here =
        "'" + a.names[sa] + "' vs '" + b.names[sb] + "'";
    if ((a.accepting[sa] != 0) != (b.accepting[sb] != 0)) {
      result.equivalent = false;
      result.witness = witness_to(static_cast<int>(head));
      result.detail = "acceptance differs at states " + here;
      return result;
    }
    if ((a.mid_record[sa] != 0) != (b.mid_record[sb] != 0)) {
      result.equivalent = false;
      result.witness = witness_to(static_cast<int>(head));
      result.detail = "trailing-record (mid-record) semantics differ at "
                      "states " + here;
      return result;
    }
    for (int byte = 0; byte < 256; ++byte) {
      const uint8_t fa = a.FlagsFor(sa, static_cast<uint8_t>(byte));
      const uint8_t fb = b.FlagsFor(sb, static_cast<uint8_t>(byte));
      if (fa != fb) {
        result.equivalent = false;
        result.witness =
            witness_to(static_cast<int>(head)) + static_cast<char>(byte);
        result.detail = "symbol flags differ at states " + here +
                        " on byte " + std::to_string(byte) + ": " +
                        std::to_string(fa) + " vs " + std::to_string(fb);
        return result;
      }
      const int na = a.Next(sa, static_cast<uint8_t>(byte));
      const int nb = b.Next(sb, static_cast<uint8_t>(byte));
      const size_t pair = static_cast<size_t>(na) * b.num_states + nb;
      if (!seen[pair]) {
        seen[pair] = 1;
        visits.push_back({na, nb, static_cast<int>(head),
                          static_cast<uint8_t>(byte)});
      }
    }
  }
  return result;
}

Automaton FromFormat(const Format& format) {
  const Dfa& dfa = format.dfa;
  Automaton a;
  a.num_states = dfa.num_states();
  a.start = dfa.start_state();
  a.invalid = dfa.invalid_state();
  a.names.resize(a.num_states);
  a.accepting.resize(a.num_states);
  a.mid_record.resize(a.num_states);
  a.next.resize(static_cast<size_t>(a.num_states) * 256);
  a.flags.resize(static_cast<size_t>(a.num_states) * 256);
  for (int s = 0; s < a.num_states; ++s) {
    a.names[s] = dfa.state_name(s);
    a.accepting[s] = dfa.IsAccepting(s) ? 1 : 0;
    a.mid_record[s] = format.IsMidRecordState(s) ? 1 : 0;
    for (int byte = 0; byte < 256; ++byte) {
      const int group = dfa.SymbolGroup(static_cast<uint8_t>(byte));
      const size_t idx = static_cast<size_t>(s) * 256 + byte;
      a.next[idx] = dfa.NextState(s, group);
      a.flags[idx] = dfa.Flags(s, group);
    }
  }
  return a;
}

Result<Format> PackFormat(const Automaton& automaton,
                          const DialectSpec& spec) {
  if (automaton.num_states > kMaxDfaStates) {
    return Status::Invalid(
        "dialect '" + spec.name + "' needs " +
        std::to_string(automaton.num_states) +
        " DFA states after minimisation, over the " +
        std::to_string(kMaxDfaStates) +
        "-state SIMD register budget (4-bit packed rows / 16-lane shuffle "
        "tables); the parse falls back to the scalar wide-automaton walk");
  }
  const ByteClasses classes = ComputeByteClasses(automaton);
  const int num_classes = static_cast<int>(classes.representative.size());

  // The most populous class becomes the catch-all "*" row; every byte of
  // every other class is registered as an explicit symbol with the SWAR
  // matcher, which holds at most 16.
  std::array<int, 256> class_sizes{};
  for (int byte = 0; byte < 256; ++byte) ++class_sizes[classes.of_byte[byte]];
  int catch_all = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (class_sizes[c] > class_sizes[catch_all]) catch_all = c;
  }
  const int explicit_symbols = 256 - class_sizes[catch_all];
  if (explicit_symbols > 16) {
    return Status::Invalid(
        "dialect '" + spec.name + "' distinguishes " +
        std::to_string(explicit_symbols) +
        " symbols beyond its catch-all class, over the 16-symbol SWAR "
        "matcher budget; the parse falls back to the scalar wide-automaton "
        "walk");
  }

  DfaBuilder builder;
  for (int s = 0; s < automaton.num_states; ++s) {
    builder.AddState(automaton.names[s], automaton.accepting[s] != 0);
  }
  builder.SetStartState(automaton.start);
  if (automaton.invalid >= 0) builder.SetInvalidState(automaton.invalid);

  std::vector<int> group_of_class(num_classes, -1);
  for (int byte = 0; byte < 256; ++byte) {
    const int c = classes.of_byte[byte];
    if (c == catch_all) continue;
    if (group_of_class[c] < 0) {
      group_of_class[c] = builder.AddSymbol(static_cast<uint8_t>(byte));
    } else {
      builder.AddSymbolToGroup(static_cast<uint8_t>(byte),
                               group_of_class[c]);
    }
  }
  for (int s = 0; s < automaton.num_states; ++s) {
    for (int c = 0; c < num_classes; ++c) {
      const uint8_t rep = classes.representative[c];
      if (c == catch_all) {
        builder.SetDefaultTransition(s, automaton.Next(s, rep),
                                     automaton.FlagsFor(s, rep));
      } else {
        builder.SetTransition(s, group_of_class[c], automaton.Next(s, rep),
                              automaton.FlagsFor(s, rep));
      }
    }
  }
  PARPARAW_ASSIGN_OR_RETURN(Dfa dfa, builder.Build());

  Format format;
  format.dfa = std::move(dfa);
  format.record_delimiter = spec.record_delimiter_final();
  format.field_delimiter = spec.field_delimiter != 0
                               ? spec.field_delimiter
                               : spec.record_delimiter_final();
  uint16_t mask = 0;
  for (int s = 0; s < automaton.num_states; ++s) {
    if (automaton.mid_record[s]) mask |= static_cast<uint16_t>(1u << s);
  }
  format.mid_record_state_mask = mask;
  format.name = spec.name;
  return format;
}

}  // namespace parparaw::dialect
