#include "dialect/dialect.h"

#include <mutex>
#include <string>
#include <utility>

#include "baseline/row_buffer.h"
#include "obs/obs.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw::dialect {

namespace {

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<DialectSpec>& Registry() {
  static std::vector<DialectSpec> registry;
  return registry;
}

}  // namespace

Result<CompiledDialect> Compile(const DialectSpec& spec, ThreadPool* pool,
                                obs::MetricsRegistry* metrics) {
  PARPARAW_RETURN_NOT_OK(spec.Validate());
  CompiledDialect out;
  out.spec = spec;
  PARPARAW_ASSIGN_OR_RETURN(Automaton wide, CompileDialect(spec));
  out.original_states = wide.num_states;
  PARPARAW_ASSIGN_OR_RETURN(out.automaton, Minimize(wide, pool));
  out.minimized_states = out.automaton.num_states;

  // Machine-checked proof that minimisation preserved the language and
  // every flag annotation. A failure here is a compiler bug, not bad user
  // input, hence Internal.
  const EquivalenceResult proof = CheckEquivalent(wide, out.automaton);
  if (!proof.equivalent) {
    return Status::Internal("dialect '" + spec.name +
                            "': minimised automaton diverges from the "
                            "compiled one: " + proof.detail);
  }

  if (out.automaton.num_states <= kMaxDfaStates) {
    Result<Format> packed = PackFormat(out.automaton, spec);
    if (packed.ok()) {
      out.format = std::move(packed).ValueOrDie();
      out.within_budget = true;
    } else if (packed.status().code() != StatusCode::kInvalidArgument) {
      return packed.status();
    }
    // kInvalidArgument: over the symbol budget — scalar fallback.
  }
  obs::AddCount(metrics, "dialect.compiled", 1);
  obs::SetGauge(metrics, "dialect.states", out.minimized_states);
  return out;
}

Result<std::optional<CompiledDialect>> ResolveParseDialect(
    ParseOptions* options) {
  if (!options->dialect.has_value()) {
    return std::optional<CompiledDialect>();
  }
  if (options->format.dfa.num_states() != 0) {
    return Status::Invalid(
        "ParseOptions sets both a format and a dialect; pick one (the "
        "dialect compiles into the format)");
  }
  PARPARAW_ASSIGN_OR_RETURN(
      CompiledDialect compiled,
      Compile(*options->dialect, options->pool, options->metrics));
  options->dialect.reset();
  if (compiled.within_budget) {
    options->format = compiled.format;
    return std::optional<CompiledDialect>();
  }
  obs::AddCount(options->metrics, "dialect.fallback", 1);
  return std::optional<CompiledDialect>(std::move(compiled));
}

Result<ParseOutput> FallbackParse(std::string_view input,
                                  const CompiledDialect& dialect,
                                  const ParseOptions& options) {
  ParseOptions resolved = options;
  resolved.dialect.reset();
  if (resolved.error_policy == robust::ErrorPolicy::kQuarantine) {
    return Status::Invalid(
        "dialect '" + dialect.spec.name +
        "' exceeds the SIMD register budget and parses on the scalar "
        "fallback, which does not support ErrorPolicy::kQuarantine");
  }

  std::string transcoded;
  if (resolved.encoding == TextEncoding::kUtf16Le) {
    PARPARAW_ASSIGN_OR_RETURN(transcoded,
                              TranscodeUtf16LeToUtf8(nullptr, input));
    input = transcoded;
    resolved.encoding = TextEncoding::kUtf8;
  }

  const uint8_t line_delimiter = dialect.spec.record_delimiter_final();
  size_t skipped_prefix = 0;
  int64_t skip_rows = resolved.skip_rows;
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos = input.find(static_cast<char>(line_delimiter));
    if (pos == std::string_view::npos) {
      skipped_prefix += input.size();
      input = std::string_view();
      break;
    }
    input.remove_prefix(pos + 1);
    skipped_prefix += pos + 1;
    --skip_rows;
  }

  // The pipeline's UTF-8 chunking starts the stream at the first lead
  // byte (a leading continuation byte is outside every chunk and never
  // tagged); the scalar walk must agree byte for byte.
  if (resolved.encoding == TextEncoding::kUtf8 && !input.empty()) {
    const size_t aligned = AdjustChunkBeginUtf8(
        reinterpret_cast<const uint8_t*>(input.data()), input.size(), 0);
    input.remove_prefix(aligned);
    skipped_prefix += aligned;
  }

  Stopwatch watch;
  ParseOutput output;
  output.work.input_bytes = static_cast<int64_t>(input.size());

  const Automaton& a = dialect.automaton;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t size = input.size();
  RecordBuffer records;
  int state = a.start;
  int64_t first_invalid = -1;
  // Offset where the current (possibly unterminated) record starts; only
  // meaningful while the automaton is mid-record.
  size_t record_start = 0;
  for (size_t i = 0; i < size; ++i) {
    const uint8_t byte = data[i];
    const uint8_t flags = a.FlagsFor(state, byte);
    const int next = a.Next(state, byte);
    if (flags & kSymbolRecordDelimiter) {
      records.EndField();
      records.EndRecord();
    } else if (flags & kSymbolFieldDelimiter) {
      // An inclusive boundary (no control bit) is the field's last value
      // byte as well as its terminator — the fixed-width shape.
      if ((flags & kSymbolControl) == 0) records.AppendFieldByte(byte);
      records.EndField();
    } else if (flags & kSymbolControl) {
      // Quote/escape/comment machinery: not part of any value.
    } else {
      records.AppendFieldByte(byte);
    }
    if (first_invalid < 0 && a.invalid >= 0 && next == a.invalid &&
        state != a.invalid) {
      first_invalid = static_cast<int64_t>(i);
    }
    state = next;
    if (!a.mid_record[state]) record_start = i + 1;
  }
  const bool ends_mid_record = a.mid_record[state] != 0;
  if (ends_mid_record) {
    if (resolved.exclude_trailing_record) {
      output.remainder_offset =
          static_cast<int64_t>(skipped_prefix + record_start);
    } else {
      records.EndField();
      records.EndRecord();
    }
  } else if (resolved.exclude_trailing_record) {
    output.remainder_offset = static_cast<int64_t>(skipped_prefix + size);
  }
  if (resolved.validate) {
    if (first_invalid >= 0) {
      return Status::ParseError("invalid symbol at byte offset " +
                                std::to_string(first_invalid));
    }
    if (!a.accepting[state]) {
      return Status::ParseError("input ends in non-accepting state '" +
                                a.names[state] + "'");
    }
  }
  output.timings.parse_ms = watch.ElapsedMillis();

  Stopwatch convert_watch;
  PARPARAW_ASSIGN_OR_RETURN(
      output.table, BuildTableFromRecords(records, resolved, &output));
  output.timings.convert_ms = convert_watch.ElapsedMillis();
  return output;
}

void RegisterDialect(const DialectSpec& spec) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (DialectSpec& existing : Registry()) {
    if (existing.name == spec.name) {
      existing = spec;
      return;
    }
  }
  Registry().push_back(spec);
}

std::vector<DialectSpec> RegisteredDialects() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  return Registry();
}

void ClearRegisteredDialects() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().clear();
}

}  // namespace parparaw::dialect
