#ifndef PARPARAW_DIALECT_DIALECT_H_
#define PARPARAW_DIALECT_DIALECT_H_

#include <optional>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "dialect/automaton.h"
#include "dialect/spec.h"

namespace parparaw::dialect {

/// \brief A dialect compiled end-to-end: the minimised wide automaton plus
/// (when it fits the SIMD register budget) the packed Format the parallel
/// pipeline consumes.
struct CompiledDialect {
  DialectSpec spec;
  /// The minimised automaton — always valid, drives the scalar fallback.
  Automaton automaton;
  /// The packed Format; only valid when within_budget.
  Format format;
  /// True when the minimised automaton packs into the 16-state/16-symbol
  /// Dfa, so the full SIMD pipeline applies. False forces FallbackParse().
  bool within_budget = false;
  int original_states = 0;
  int minimized_states = 0;
};

/// Compiles a spec: Validate -> wide automaton ("dialect.compile"
/// failpoint) -> parallel minimisation ("dialect.minimise" failpoint) ->
/// product-construction equivalence proof that minimisation preserved the
/// language and every SymbolFlags annotation (an Internal error would be a
/// compiler bug, never user error) -> packing into the Dfa representation
/// when the state count fits the register budget. Metrics (null-safe):
/// "dialect.compiled" count, "dialect.states" gauge.
Result<CompiledDialect> Compile(const DialectSpec& spec,
                                ThreadPool* pool = nullptr,
                                obs::MetricsRegistry* metrics = nullptr);

/// Resolves ParseOptions::dialect in place for an entry point:
///  - no dialect set: returns nullopt, options untouched;
///  - dialect within budget: options->format becomes the compiled Format,
///    options->dialect is cleared, returns nullopt — the normal parallel
///    pipeline runs unchanged;
///  - dialect over budget: returns the CompiledDialect for FallbackParse()
///    and bumps the "dialect.fallback" counter.
/// Setting both a dialect and a non-empty format is an InvalidArgument.
Result<std::optional<CompiledDialect>> ResolveParseDialect(
    ParseOptions* options);

/// Scalar reference parse for dialects over the register budget: walks the
/// minimised wide automaton sequentially (honouring inclusive field
/// boundaries) and materialises the table with the same convert semantics
/// as the parallel pipeline. exclude_trailing_record is honoured
/// (remainder_offset reported); ErrorPolicy::kQuarantine is not available
/// on this path and returns InvalidArgument.
Result<ParseOutput> FallbackParse(std::string_view input,
                                  const CompiledDialect& dialect,
                                  const ParseOptions& options);

/// Registers a dialect for format sniffing (dfa/sniffer.h): Sniff() scores
/// registered dialects against its sample alongside the built-in DSV
/// candidates. Re-registering a spec with the same name replaces it.
void RegisterDialect(const DialectSpec& spec);

/// Snapshot of the registered dialects, in registration order.
std::vector<DialectSpec> RegisteredDialects();

/// Removes all registered dialects (test isolation).
void ClearRegisteredDialects();

}  // namespace parparaw::dialect

#endif  // PARPARAW_DIALECT_DIALECT_H_
