#ifndef PARPARAW_DIALECT_AUTOMATON_H_
#define PARPARAW_DIALECT_AUTOMATON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dfa/formats.h"
#include "dialect/spec.h"
#include "parallel/thread_pool.h"
#include "util/result.h"

namespace parparaw::dialect {

/// \brief A dialect automaton over the full byte alphabet, unbounded in
/// state count.
///
/// This is the compiler's intermediate form: DialectSpec compiles into a
/// (possibly wide) Automaton, partition-refinement minimisation shrinks it,
/// and PackFormat() packs the result into the 4-bit/16-state Dfa when it
/// fits the SIMD register budget. Like the packed Dfa it is a Mealy
/// machine: SymbolFlags classify each (state, byte) transition.
struct Automaton {
  int num_states = 0;
  int start = 0;
  /// Trap state for invalid input, or -1 when the dialect defines none.
  int invalid = -1;
  std::vector<std::string> names;
  /// Per state: valid end-of-input state (ParseOptions::validate).
  std::vector<uint8_t> accepting;
  /// Per state: ending the input here leaves an unterminated trailing
  /// record that must still be emitted (Format::mid_record_state_mask).
  std::vector<uint8_t> mid_record;
  /// Row-major [state * 256 + byte] transition and flag tables.
  std::vector<int> next;
  std::vector<uint8_t> flags;

  int Next(int state, uint8_t byte) const {
    return next[static_cast<size_t>(state) * 256 + byte];
  }
  uint8_t FlagsFor(int state, uint8_t byte) const {
    return flags[static_cast<size_t>(state) * 256 + byte];
  }
  /// Runs one instance over `data`, returning the end state.
  int Run(int state, const uint8_t* data, size_t size) const;
};

/// Compiles a validated spec into its wide automaton (no minimisation).
/// Faultable at "dialect.compile".
Result<Automaton> CompileDialect(const DialectSpec& spec);

/// Moore/Hopcroft-style partition-refinement minimisation, parallelised
/// over `pool` following the Martens & Wijs evaluation: the alphabet is
/// first compressed into byte-equivalence classes, then per-state
/// signatures (block id + successor block per class + transition flags)
/// are refined to a fixpoint, each round computing all signatures in
/// parallel. Acceptance and mid-record/trailing semantics are part of the
/// initial partition so minimisation preserves them exactly. Faultable at
/// "dialect.minimise".
Result<Automaton> Minimize(const Automaton& automaton, ThreadPool* pool);

/// Outcome of a product-construction equivalence check.
struct EquivalenceResult {
  bool equivalent = true;
  /// A shortest input reaching the first mismatching state pair.
  std::string witness;
  /// Human-readable mismatch description (empty when equivalent).
  std::string detail;
};

/// Product-construction equivalence check: BFS over reachable state pairs
/// from the two start states, comparing acceptance, mid-record semantics
/// and the SymbolFlags of every byte transition. A mismatch yields a
/// witness string, so a failed check is a machine-checked counterexample —
/// and a passing check a proof that the two automata parse every input
/// identically.
EquivalenceResult CheckEquivalent(const Automaton& a, const Automaton& b);

/// The wide twin of a packed format, for equivalence-checking hand-written
/// built-in DFAs against compiled dialects.
Automaton FromFormat(const Format& format);

/// Packs a (minimised) automaton into the 16-state/16-symbol Dfa
/// representation the SIMD kernels consume. Fails with kInvalidArgument
/// when the automaton exceeds the register budget (more than
/// kMaxDfaStates states, or more distinguishable symbols than the SWAR
/// matcher holds).
Result<Format> PackFormat(const Automaton& automaton, const DialectSpec& spec);

}  // namespace parparaw::dialect

#endif  // PARPARAW_DIALECT_AUTOMATON_H_
