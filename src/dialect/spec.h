#ifndef PARPARAW_DIALECT_SPEC_H_
#define PARPARAW_DIALECT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace parparaw::dialect {

/// How quoted-field escaping works in a dialect.
enum class EscapeStyle : uint8_t {
  /// RFC 4180: a doubled quote inside a quoted field is a literal quote.
  kDoubledQuote,
  /// A backslash (or custom escape_char) inside a quoted field takes the
  /// next symbol literally. A doubled quote still reads as a literal quote,
  /// matching DsvOptions::escape semantics.
  kBackslash,
};

/// \brief A user-defined delimiter-separated format, compiled at runtime
/// into the packed multi-DFA representation (see dialect/dialect.h).
///
/// The spec covers the regular-language family the paper's approach
/// generalises to (§3.1 "as many scenarios as you can imagine"): custom
/// field delimiters, multi-byte record delimiters (CRLF and beyond), quote
/// and escape conventions, comment lines, verbatim quoting for
/// record-splitting dialects like JSON Lines, and fixed-width fields.
struct DialectSpec {
  std::string name = "dialect";

  /// Field delimiter byte; 0 means the dialect has no field delimiter
  /// (single-column records, e.g. JSON Lines). Ignored for fixed-width
  /// dialects.
  uint8_t field_delimiter = ',';

  /// Record delimiter byte sequence, 1..4 bytes (e.g. "\n", "\r\n"). For
  /// multi-byte delimiters the sequence is matched strictly: a broken
  /// prefix outside quoted context transitions to the invalid trap state.
  std::string record_delimiter = "\n";

  /// Quote character enclosing fields that may contain delimiters; 0
  /// disables quoting.
  uint8_t quote = '"';

  /// Escape convention inside quoted fields (only meaningful with quoting).
  EscapeStyle escape_style = EscapeStyle::kDoubledQuote;

  /// The escape byte for EscapeStyle::kBackslash.
  uint8_t escape_char = '\\';

  /// Line-comment marker recognised at the start of a record; 0 disables
  /// comments.
  uint8_t comment = 0;

  /// When true, a record delimiter at the start of a record is consumed
  /// without emitting an empty record.
  bool skip_empty_lines = false;

  /// When true, a quote inside an unquoted field is invalid input; when
  /// false it is field data.
  bool strict_quotes = true;

  /// When true, quote and escape bytes stay part of the field's value: the
  /// quote only toggles whether delimiters split, it is not stripped. This
  /// is the JSON Lines shape (record splitting over raw text).
  bool verbatim_quotes = false;

  /// Non-empty: the dialect is fixed-width. Each record is the given field
  /// widths back to back, followed by the record delimiter. Fixed-width
  /// dialects have no quoting/escaping/comments; every byte of a field,
  /// including the last, is part of its value (the compiled DFA flags the
  /// final byte of each non-trailing field as an *inclusive* field
  /// boundary: kSymbolFieldDelimiter without kSymbolControl).
  std::vector<int> fixed_widths;

  /// Checks the spec for internal contradictions: empty or self-overlapping
  /// record delimiters, symbol collisions (quote == delimiter, ...),
  /// non-positive fixed widths, unsupported combinations. Returns
  /// kInvalidArgument with an actionable message; every compile entry point
  /// calls this first so malformed specs never reach DFA construction.
  Status Validate() const;

  /// The canonical single-byte record delimiter: the final byte of the
  /// sequence (the byte that carries kSymbolRecordDelimiter in the
  /// compiled DFA and that Format::record_delimiter reports).
  uint8_t record_delimiter_final() const {
    return record_delimiter.empty()
               ? static_cast<uint8_t>('\n')
               : static_cast<uint8_t>(record_delimiter.back());
  }
};

}  // namespace parparaw::dialect

#endif  // PARPARAW_DIALECT_SPEC_H_
