#include "dialect/spec.h"

#include <cstdio>

namespace parparaw::dialect {

namespace {

std::string ByteName(uint8_t byte) {
  char buf[16];
  if (byte >= 0x21 && byte <= 0x7E) {
    std::snprintf(buf, sizeof(buf), "'%c'", static_cast<char>(byte));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%02X", byte);
  }
  return buf;
}

// True when a proper prefix of `s` is also a suffix (a non-trivial
// border): such a delimiter can overlap itself, so a single-pass flag
// assignment cannot decide where one occurrence ends and the next begins.
bool HasSelfOverlap(const std::string& s) {
  for (size_t len = 1; len < s.size(); ++len) {
    if (s.compare(0, len, s, s.size() - len, len) == 0) return true;
  }
  return false;
}

}  // namespace

Status DialectSpec::Validate() const {
  if (record_delimiter.empty()) {
    return Status::Invalid("dialect '" + name +
                           "': record delimiter must not be empty");
  }
  if (record_delimiter.size() > 4) {
    return Status::Invalid(
        "dialect '" + name + "': record delimiter is " +
        std::to_string(record_delimiter.size()) +
        " bytes; at most 4 are supported (each extra byte costs a DFA "
        "state)");
  }
  if (HasSelfOverlap(record_delimiter)) {
    return Status::Invalid(
        "dialect '" + name +
        "': multi-byte record delimiter has a shared prefix/suffix and can "
        "overlap itself; occurrences would be ambiguous");
  }
  const bool fixed = !fixed_widths.empty();
  const bool quoting = !fixed && quote != 0;
  const bool backslash = quoting && escape_style == EscapeStyle::kBackslash;

  // The record delimiter's bytes must not double as any other special
  // symbol: the compiled DFA assigns each byte one role per state, and a
  // delimiter byte that is also (say) the quote would be ambiguous in
  // every state a delimiter may start in.
  for (char c : record_delimiter) {
    const uint8_t byte = static_cast<uint8_t>(c);
    const char* role = nullptr;
    if (!fixed && field_delimiter != 0 && byte == field_delimiter) {
      role = "field delimiter";
    } else if (quoting && byte == quote) {
      role = "quote";
    } else if (backslash && byte == escape_char) {
      role = "escape";
    } else if (!fixed && comment != 0 && byte == comment) {
      role = "comment marker";
    }
    if (role != nullptr) {
      return Status::Invalid("dialect '" + name + "': record-delimiter byte " +
                             ByteName(byte) + " is also the " + role);
    }
  }

  if (fixed) {
    for (int width : fixed_widths) {
      if (width <= 0) {
        return Status::Invalid("dialect '" + name +
                               "': fixed field widths must be positive, got " +
                               std::to_string(width));
      }
    }
    int64_t total = 0;
    for (int width : fixed_widths) total += width;
    if (total > 4096) {
      return Status::Invalid(
          "dialect '" + name + "': fixed-width record is " +
          std::to_string(total) +
          " bytes; at most 4096 are supported (each byte is a DFA state "
          "before minimisation)");
    }
    if (quote != 0 || comment != 0) {
      return Status::Invalid(
          "dialect '" + name +
          "': fixed-width dialects do not support quoting or comment lines; "
          "every byte of a field is part of its value");
    }
    if (skip_empty_lines) {
      return Status::Invalid(
          "dialect '" + name +
          "': skip_empty_lines is ambiguous for fixed-width records (a "
          "record-delimiter byte is also a valid first data byte)");
    }
    return Status::OK();
  }

  if (quoting && field_delimiter != 0 && quote == field_delimiter) {
    return Status::Invalid("dialect '" + name + "': quote " + ByteName(quote) +
                           " collides with the field delimiter");
  }
  if (comment != 0) {
    if (field_delimiter != 0 && comment == field_delimiter) {
      return Status::Invalid("dialect '" + name + "': comment marker " +
                             ByteName(comment) +
                             " collides with the field delimiter");
    }
    if (quoting && comment == quote) {
      return Status::Invalid("dialect '" + name + "': comment marker " +
                             ByteName(comment) + " collides with the quote");
    }
  }
  if (backslash) {
    if (escape_char == 0) {
      return Status::Invalid("dialect '" + name +
                             "': EscapeStyle::kBackslash needs a non-zero "
                             "escape_char");
    }
    const char* role = nullptr;
    if (escape_char == quote) {
      role = "quote";
    } else if (field_delimiter != 0 && escape_char == field_delimiter) {
      role = "field delimiter";
    } else if (comment != 0 && escape_char == comment) {
      role = "comment marker";
    }
    if (role != nullptr) {
      return Status::Invalid("dialect '" + name + "': escape character " +
                             ByteName(escape_char) + " is also the " + role);
    }
  }
  if (verbatim_quotes && quote == 0) {
    return Status::Invalid("dialect '" + name +
                           "': verbatim_quotes needs a quote character");
  }
  return Status::OK();
}

}  // namespace parparaw::dialect
