#ifndef PARPARAW_STREAM_STREAMING_PARSER_H_
#define PARPARAW_STREAM_STREAMING_PARSER_H_

#include <string_view>

#include "core/options.h"
#include "sim/device_model.h"
#include "sim/pcie_model.h"
#include "sim/timeline.h"
#include "util/result.h"

namespace parparaw {

/// Configuration of the end-to-end streaming parse (§4.4).
struct StreamingOptions {
  /// Per-partition parse configuration. A schema is recommended (without
  /// one, every partition must observe the same column count).
  ParseOptions base;
  /// Bytes per partition; Fig. 12 sweeps 4 MB - 512 MB.
  size_t partition_size = 64 * 1024 * 1024;
  /// Interconnect model used for the transfer/return stages.
  PcieModel pcie;
  /// Device model used for the modelled parse-stage durations.
  DeviceSpec device;
  /// When true (default), the timeline's parse stages use the analytical
  /// device model; when false they use the measured CPU wall time of each
  /// partition's parse (useful for CPU-substrate-relative comparisons).
  bool model_parse_stage = true;
};

/// Result of a streaming parse.
struct StreamingResult {
  Table table;
  /// Under ErrorPolicy::kQuarantine: malformed records across all
  /// partitions. Entry rows and byte spans are stream-relative (rows index
  /// `table`, spans index the logical concatenation of all input bytes);
  /// record_index stays partition-local. table.rejected is a view over
  /// this, exactly as for a monolithic parse.
  robust::QuarantineTable quarantine;
  /// Inner-loop kernel level (src/simd) every partition's context/bitmap
  /// passes ran with, resolved once from base.kernel at stream start.
  simd::KernelLevel kernel_level = simd::KernelLevel::kScalar;
  /// The modelled Fig. 7 schedule: overlapped transfer/parse/return.
  StreamingTimeline timeline;
  /// Modelled end-to-end seconds (the timeline's makespan).
  double modeled_end_to_end_seconds = 0;
  /// Sum of the modelled stage times without any overlap (what a
  /// transfer-then-parse-then-return execution would cost).
  double modeled_serial_seconds = 0;
  /// Actual CPU wall time spent parsing all partitions.
  double wall_seconds = 0;
  int num_partitions = 0;
  StepTimings timings;
  WorkCounters work;
};

/// \brief End-to-end streaming parser (§4.4, Fig. 7).
///
/// Splits the input into fixed-size partitions. Each partition is parsed
/// with the trailing incomplete record excluded; those remainder bytes are
/// prepended to the next partition as the carry-over, exactly like the
/// double-buffered GPU pipeline. Transfers are modelled with the PCIe
/// model and the overlapped schedule is computed by StreamingTimeline.
class StreamingParser {
 public:
  static Result<StreamingResult> Parse(std::string_view input,
                                       const StreamingOptions& options);

  /// Streams a file from disk partition by partition with bounded memory:
  /// at any time only one partition plus its carry-over is resident (the
  /// parsed columnar output still accumulates in memory).
  static Result<StreamingResult> ParseFile(const std::string& path,
                                           const StreamingOptions& options);
};

}  // namespace parparaw

#endif  // PARPARAW_STREAM_STREAMING_PARSER_H_
