#include "stream/streaming_parser.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/parser.h"
#include "dialect/dialect.h"
#include "io/file.h"
#include "obs/obs.h"
#include "plan/planner.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"
#include "util/stopwatch.h"

namespace parparaw {

namespace {

// Shared per-partition machinery for the in-memory and file-backed entry
// points: feeds carry-over + partition bytes to the parser, collects the
// partition table, and derives the Fig. 7 stage durations.
class PartitionSession {
 public:
  explicit PartitionSession(const StreamingOptions& options)
      : options_(options), device_(options.device) {
    num_states_ = options.base.format.dfa.num_states() > 0
                      ? options.base.format.dfa.num_states()
                      : 6;  // RFC 4180 default
    // Dispatch once per stream (not per partition): every partition parse
    // runs the same resolved kernel, and the result reports which.
    result_.kernel_level = simd::ResolveKernelLevel(options.base.kernel);
  }

  Status ProcessPartition(std::string_view partition, bool is_last) {
    PARPARAW_FAILPOINT("stream.chunk");
    obs::TraceSpan span(options_.base.tracer, "partition", "stream",
                        static_cast<int64_t>(partition.size()));
    Stopwatch partition_watch;
    // Stream offset of buffer[0]: the carry bytes were already counted when
    // their partition was consumed, so back them out.
    const int64_t buffer_base =
        stream_consumed_ - static_cast<int64_t>(carry_.size());
    std::string buffer;
    buffer.reserve(carry_.size() + partition.size());
    buffer.append(carry_);
    buffer.append(partition);

    ParseOptions partition_options = options_.base;
    partition_options.exclude_trailing_record = !is_last;
    // Leading-row pruning applies to the stream, not to every buffer: only
    // the first partition skips (previously base.skip_rows silently dropped
    // records at every partition seam).
    if (!first_partition_) partition_options.skip_rows = 0;
    // Streaming *is* the degradation path for the memory budget — the
    // partition size is already clamped to fit, so the per-partition parse
    // must not re-apply the monolithic refusal.
    partition_options.memory_budget = 0;
    ParseOutput out;
    if (fallback_ != nullptr) {
      // Over-budget dialect, compiled once for the whole stream: the
      // scalar walk honours exclude_trailing_record/remainder_offset, so
      // the carry-over protocol is unchanged.
      PARPARAW_ASSIGN_OR_RETURN(
          out, dialect::FallbackParse(buffer, *fallback_, partition_options));
    } else {
      PARPARAW_ASSIGN_OR_RETURN(out, Parser::Parse(buffer, partition_options));
    }
    if (!is_last) {
      if (out.remainder_offset < 0 ||
          out.remainder_offset > static_cast<int64_t>(buffer.size())) {
        return Status::Internal("streaming remainder out of range");
      }
      // A record larger than a partition simply keeps accumulating into
      // the carry-over until its delimiter arrives (the skewed-input case
      // of Fig. 11).
      carry_ = buffer.substr(static_cast<size_t>(out.remainder_offset));
    } else {
      carry_.clear();
    }

    PartitionStages stage;
    stage.h2d_seconds =
        options_.pcie.H2dSeconds(static_cast<int64_t>(partition.size()));
    stage.d2h_seconds =
        options_.pcie.D2hSeconds(out.table.TotalBufferBytes());
    stage.carry_copy_seconds =
        device_.MemorySeconds(2 * static_cast<int64_t>(carry_.size()));
    if (options_.model_parse_stage) {
      stage.parse_seconds =
          device_
              .ModelPipeline(out.work, out.table.num_columns(), num_states_)
              .TotalMs() /
          1e3;
    } else {
      stage.parse_seconds = out.timings.TotalMs() / 1e3;
    }
    stages_.push_back(stage);

    // Re-base quarantined records from partition coordinates to stream
    // coordinates: rows index the concatenated table, spans the logical
    // byte stream (both match what ConcatTables produces below).
    for (robust::QuarantineEntry& entry : out.quarantine.entries()) {
      entry.row += rows_accumulated_;
      entry.begin += buffer_base;
      entry.end += buffer_base;
      result_.quarantine.Add(std::move(entry));
    }

    result_.timings += out.timings;
    result_.work += out.work;
    rows_accumulated_ += out.table.num_rows;
    stream_consumed_ += static_cast<int64_t>(partition.size());
    first_partition_ = false;
    tables_.push_back(std::move(out.table));
    ++result_.num_partitions;
    if (options_.base.metrics != nullptr && options_.base.metrics->enabled()) {
      obs::MetricsRegistry* m = options_.base.metrics;
      obs::AddCount(m, "stream.partitions", 1);
      obs::AddCount(m, "stream.bytes", static_cast<int64_t>(partition.size()));
      // Chunk latency: wall time from partition receipt to its table.
      obs::RecordMillis(m, "stream.partition_us",
                        partition_watch.ElapsedMillis());
      // Backlog: bytes carried over into the next partition. Record-larger-
      // than-partition inputs show up here as a growing level.
      obs::SetGauge(m, "stream.carry_bytes",
                    static_cast<int64_t>(carry_.size()));
    }
    return Status::OK();
  }

  void SetDialectFallback(const dialect::CompiledDialect* fallback) {
    fallback_ = fallback;
  }

  Result<StreamingResult> Finish(double wall_seconds) {
    result_.wall_seconds = wall_seconds;
    for (size_t i = 1; i < tables_.size(); ++i) {
      if (tables_[i].schema.num_fields() != tables_[0].schema.num_fields()) {
        return Status::ParseError(
            "partitions observed different column counts; provide a schema "
            "for streaming parses");
      }
    }
    result_.table = ConcatTables(tables_);
    result_.timeline = StreamingTimeline::Schedule(stages_);
    result_.modeled_end_to_end_seconds = result_.timeline.makespan;
    for (const PartitionStages& s : stages_) {
      result_.modeled_serial_seconds += s.h2d_seconds + s.parse_seconds +
                                        s.d2h_seconds +
                                        s.carry_copy_seconds;
    }
    return std::move(result_);
  }

 private:
  const StreamingOptions& options_;
  DeviceModel device_;
  const dialect::CompiledDialect* fallback_ = nullptr;
  int num_states_;
  bool first_partition_ = true;
  int64_t stream_consumed_ = 0;    // partition bytes fed so far
  int64_t rows_accumulated_ = 0;   // rows emitted by prior partitions
  std::string carry_;
  std::vector<Table> tables_;
  std::vector<PartitionStages> stages_;
  StreamingResult result_;
};

}  // namespace

Result<StreamingResult> StreamingParser::Parse(
    std::string_view input, const StreamingOptions& options) {
  PARPARAW_RETURN_NOT_OK_CTX(options.base.Validate(), "stream.options");
  if (options.partition_size == 0) {
    return Status::Invalid("partition size must be positive");
  }
  // Compile a user dialect once per stream, not once per partition.
  StreamingOptions resolved = options;
  PARPARAW_ASSIGN_OR_RETURN(std::optional<dialect::CompiledDialect> fallback,
                            dialect::ResolveParseDialect(&resolved.base));
  // Plan once for the whole stream from the input's prefix (the scalar
  // dialect fallback has no plannable knobs); per-partition parses see
  // only the pinned knobs.
  if (!fallback.has_value()) {
    PARPARAW_ASSIGN_OR_RETURN(
        const plan::ParsePlan stream_plan,
        plan::PlanStream(input,
                         /*sample_truncated=*/input.size() >
                             resolved.base.sample_budget,
                         &resolved.base));
    if (stream_plan.partition_size > 0) {
      resolved.partition_size = stream_plan.partition_size;
    }
  }
  // Degrade instead of refusing: under a memory budget, shrink partitions
  // until each one's parse working set (mode-dependent envelope) fits.
  const size_t partition_size =
      static_cast<size_t>(robust::ClampPartitionSizeForBudget(
          static_cast<int64_t>(resolved.partition_size),
          resolved.base.memory_budget, /*floor_bytes=*/256,
          ParseWorkingSetFactor(resolved.base)));
  PartitionSession session(resolved);
  if (fallback.has_value()) session.SetDialectFallback(&*fallback);
  Stopwatch wall;
  if (input.empty()) return session.Finish(0.0);
  size_t pos = 0;
  do {
    const size_t take = std::min(partition_size, input.size() - pos);
    const bool is_last = (pos + take == input.size());
    PARPARAW_RETURN_NOT_OK(
        session.ProcessPartition(input.substr(pos, take), is_last));
    pos += take;
    if (is_last) break;
  } while (true);
  return session.Finish(wall.ElapsedSeconds());
}

Result<StreamingResult> StreamingParser::ParseFile(
    const std::string& path, const StreamingOptions& options) {
  PARPARAW_RETURN_NOT_OK_CTX(options.base.Validate(), "stream.options");
  if (options.partition_size == 0) {
    return Status::Invalid("partition size must be positive");
  }
  StreamingOptions resolved = options;
  PARPARAW_ASSIGN_OR_RETURN(std::optional<dialect::CompiledDialect> fallback,
                            dialect::ResolveParseDialect(&resolved.base));
  // File-backed planning: read the head sample with a throwaway reader so
  // the streaming reader below still sees the file from byte 0. Skipped
  // outright when planning is disabled — no speculative I/O.
  if (!fallback.has_value() &&
      resolved.base.planner != PlannerMode::kDisabled) {
    FileChunkReader sampler;
    PARPARAW_RETURN_NOT_OK(sampler.Open(path));
    std::string sample;
    if (sampler.file_size() > 0) {
      bool sample_eof = false;
      PARPARAW_RETURN_NOT_OK(sampler.ReadNext(resolved.base.sample_budget,
                                              &sample, &sample_eof));
    }
    PARPARAW_ASSIGN_OR_RETURN(
        const plan::ParsePlan stream_plan,
        plan::PlanStream(sample,
                         /*sample_truncated=*/static_cast<int64_t>(
                             sample.size()) < sampler.file_size(),
                         &resolved.base));
    if (stream_plan.partition_size > 0) {
      resolved.partition_size = stream_plan.partition_size;
    }
  }
  const size_t partition_size =
      static_cast<size_t>(robust::ClampPartitionSizeForBudget(
          static_cast<int64_t>(resolved.partition_size),
          resolved.base.memory_budget, /*floor_bytes=*/256,
          ParseWorkingSetFactor(resolved.base)));
  FileChunkReader reader;
  PARPARAW_RETURN_NOT_OK(reader.Open(path));
  PartitionSession session(resolved);
  if (fallback.has_value()) session.SetDialectFallback(&*fallback);
  Stopwatch wall;
  if (reader.file_size() == 0) return session.Finish(0.0);
  int64_t consumed = 0;
  std::string partition;
  while (true) {
    bool eof = false;
    PARPARAW_RETURN_NOT_OK(
        reader.ReadNext(partition_size, &partition, &eof));
    consumed += static_cast<int64_t>(partition.size());
    const bool is_last = eof || consumed >= reader.file_size();
    PARPARAW_RETURN_NOT_OK(session.ProcessPartition(partition, is_last));
    if (is_last) break;
  }
  return session.Finish(wall.ElapsedSeconds());
}

}  // namespace parparaw
