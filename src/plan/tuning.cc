#include "plan/tuning.h"

#include <cstdlib>
#include <cstring>
#include <string>

namespace parparaw {

namespace {

// Upper bound on chunk_size: a chunk is the unit of per-logical-thread
// work (the paper settles on 31 bytes, Fig. 9); anything beyond this
// defeats the data-parallel decomposition and risks overflowing the
// per-chunk uint32 delimiter counters on dense inputs.
constexpr size_t kMaxChunkSize = size_t{1} << 24;

// The planner reads at most this much prefix; sampling more buys no
// decision accuracy and starts to cost like the parse it is planning.
constexpr size_t kMaxSampleBudget = size_t{16} << 20;

}  // namespace

namespace plan {
namespace internal {

std::optional<simd::KernelLevel> ParseKernelEnvValue(const char* value) {
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  if (std::strcmp(value, "scalar") == 0) return simd::KernelLevel::kScalar;
  if (std::strcmp(value, "swar") == 0) return simd::KernelLevel::kSwar;
  if (std::strcmp(value, "simd") == 0) return simd::DetectBestKernelLevel();
  if (std::strcmp(value, "sse42") == 0) return simd::KernelLevel::kSse42;
  if (std::strcmp(value, "avx2") == 0) return simd::KernelLevel::kAvx2;
  if (std::strcmp(value, "neon") == 0) return simd::KernelLevel::kNeon;
  return std::nullopt;
}

std::optional<TransposeMode> ParseTransposeEnvValue(const char* value) {
  if (value == nullptr || value[0] == '\0') return std::nullopt;
  if (std::strcmp(value, "symbol_sort") == 0) {
    return TransposeMode::kSymbolSort;
  }
  if (std::strcmp(value, "field_gather") == 0) {
    return TransposeMode::kFieldGather;
  }
  return std::nullopt;
}

bool ParseSimdDisabledValue(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         std::strcmp(value, "0") != 0;
}

}  // namespace internal

std::optional<simd::KernelLevel> EnvForcedKernelLevel() {
  static const std::optional<simd::KernelLevel> cached =
      internal::ParseKernelEnvValue(std::getenv("PARPARAW_FORCE_KERNEL"));
  return cached;
}

std::optional<TransposeMode> EnvTransposeMode() {
  static const std::optional<TransposeMode> cached =
      internal::ParseTransposeEnvValue(
          std::getenv("PARPARAW_TRANSPOSE_MODE"));
  return cached;
}

bool EnvSimdDisabled() {
  static const bool cached = internal::ParseSimdDisabledValue(
      std::getenv("PARPARAW_DISABLE_SIMD"));
  return cached;
}

}  // namespace plan

Tuning Tuning::FromEnv() {
  Tuning tuning;
  if (std::optional<simd::KernelLevel> forced = plan::EnvForcedKernelLevel()) {
    tuning.kernel = *forced == simd::KernelLevel::kScalar
                        ? simd::KernelKind::kScalar
                        : simd::KernelKind::kSimd;
  }
  if (std::optional<TransposeMode> mode = plan::EnvTransposeMode()) {
    tuning.transpose_mode = *mode;
  }
  return tuning;
}

Status Tuning::ValidateTuning() const {
  if (chunk_size > kMaxChunkSize) {
    return Status::Invalid(
        "chunk_size " + std::to_string(chunk_size) + " exceeds the " +
        std::to_string(kMaxChunkSize) +
        "-byte maximum; chunks are per-logical-thread work units "
        "(the paper uses 31; 0 lets the planner choose)");
  }
  if (planner != PlannerMode::kDisabled) {
    if (sample_budget == 0) {
      return Status::Invalid(
          "tuning: the planner needs a positive sample_budget (set "
          "planner = PlannerMode::kDisabled to skip sampling entirely)");
    }
    if (sample_budget > kMaxSampleBudget) {
      return Status::Invalid(
          "tuning: sample_budget " + std::to_string(sample_budget) +
          " exceeds the " + std::to_string(kMaxSampleBudget) +
          "-byte cap; sampling more prefix buys no decision accuracy");
    }
  }
  if (planner == PlannerMode::kForce) {
    // A forced planner with a pinned knob is a contradiction, not a
    // preference: the caller asked the sampler to decide and then decided
    // for it. Each conflict names the knob so the fix is obvious.
    if (kernel != simd::KernelKind::kAuto) {
      return Status::Invalid(
          "tuning: PlannerMode::kForce contradicts a pinned kernel (" +
          std::string(kernel == simd::KernelKind::kScalar ? "kScalar"
                                                          : "kSimd") +
          "); leave kernel = kAuto or use PlannerMode::kAuto");
    }
    if (chunk_size != 0) {
      return Status::Invalid(
          "tuning: PlannerMode::kForce contradicts a fixed chunk_size (" +
          std::to_string(chunk_size) +
          "); leave chunk_size = 0 (auto) or use PlannerMode::kAuto");
    }
    if (tagging_mode != TaggingMode::kAuto) {
      return Status::Invalid(
          "tuning: PlannerMode::kForce contradicts a pinned tagging_mode; "
          "leave tagging_mode = TaggingMode::kAuto or use "
          "PlannerMode::kAuto");
    }
    if (transpose_mode != TransposeMode::kAuto) {
      return Status::Invalid(
          "tuning: PlannerMode::kForce contradicts a pinned transpose_mode; "
          "leave transpose_mode = TransposeMode::kAuto or use "
          "PlannerMode::kAuto");
    }
    if (partition_size != 0) {
      return Status::Invalid(
          "tuning: PlannerMode::kForce contradicts a fixed partition_size (" +
          std::to_string(partition_size) +
          "); leave partition_size = 0 (auto) or use PlannerMode::kAuto");
    }
  }
  return Status::OK();
}

}  // namespace parparaw
