#ifndef PARPARAW_PLAN_TUNING_H_
#define PARPARAW_PLAN_TUNING_H_

#include <cstddef>
#include <cstdint>
#include <optional>

#include "simd/dispatch.h"
#include "util/status.h"

namespace parparaw {

/// How per-symbol field boundaries are materialised in the concatenated
/// symbol strings (§4.1, Fig. 6).
enum class TaggingMode : uint8_t {
  /// Robust default: every kept symbol carries a 4-byte record tag; handles
  /// records with a varying number of field delimiters.
  kRecordTags,
  /// Delimiters are replaced by a unique terminator byte inside the CSS;
  /// smallest memory footprint, requires the terminator to never occur in
  /// field data and a consistent number of columns per record (or the
  /// reject policy).
  kInlineTerminated,
  /// Field ends are marked in an auxiliary boolean vector; supports data
  /// containing the terminator byte, same consistency requirement.
  kVectorDelimited,
  /// Let the runtime decide: resolves to kRecordTags statically; the
  /// adaptive planner (src/plan) may pick kVectorDelimited instead when the
  /// sampled prefix proves uniform column counts under the reject policy.
  /// Appended last so existing code addressing the concrete modes by value
  /// (0..2) is unaffected.
  kAuto,
};

/// How tagged symbols are transposed into per-column concatenated symbol
/// strings (§3.3). The paper radix-sorts every *symbol* by its column tag —
/// the right shape for a GPU scatter, but on the CPU substrate it
/// materialises ~16 bytes of sort metadata per input byte. The
/// field-granularity gather reaches the same CSS layout with O(fields)
/// metadata and whole-field memcpy moves (the Instant-Loading-style CPU
/// idiom), and is the default.
enum class TransposeMode : uint8_t {
  /// Resolve to kFieldGather, unless the PARPARAW_TRANSPOSE_MODE
  /// environment variable ("field_gather" / "symbol_sort") overrides the
  /// default for the process (scripts/check.sh transpose sweeps it). An
  /// explicit mode request always wins over the environment.
  kAuto,
  /// Field-granularity fast path: derive per-field (column, row, offset,
  /// length) extents from the bitmap indexes, bucket them by column with
  /// one stable O(fields) partitioning pass, then gather each column's CSS
  /// with whole-field copies.
  kFieldGather,
  /// The paper's faithful symbol-granularity path: every kept symbol
  /// carries a 4-byte column tag and is moved by a stable LSD radix sort.
  /// Kept for differential testing and GPU-substrate fidelity.
  kSymbolSort,
};

/// Whether and how the adaptive runtime planner (src/plan) engages on a
/// parse. The planner samples a bounded input prefix, measures
/// DFA-convergence and field-density statistics, and fills in every tuning
/// knob still at its auto sentinel. Decisions are deterministic for the
/// same input bytes (on the same machine and environment).
enum class PlannerMode : uint8_t {
  /// Default: plan when a prefix is available; knobs the caller pinned are
  /// respected, auto knobs are decided from the sample. A failed sampling
  /// pass falls back to the static defaults (counted by "plan.fallback").
  kAuto,
  /// Never sample: every auto sentinel resolves to its static default
  /// (kernel -> best vectorized level, chunk -> 31, tagging ->
  /// kRecordTags, transpose -> kFieldGather). This is the pre-planner
  /// behaviour, and what differential tests pin one side to.
  kDisabled,
  /// Require planning: every plannable knob must be at its auto sentinel
  /// (ParseOptions::Validate rejects pins as contradictions) and a failed
  /// sampling pass is an error instead of a silent fallback.
  kForce,
};

/// \brief The one place every performance-tuning knob of a parse lives.
///
/// ParseOptions inherits from Tuning, so existing code reading or writing
/// `options.kernel`, `options.chunk_size`, `options.tagging_mode` or
/// `options.transpose_mode` compiles unchanged while the storage — and the
/// planner that fills the auto sentinels — is consolidated here. Callers
/// that carry tuning separately (Reader::WithTuning, LoadOptions::tuning)
/// assign the whole struct at once.
struct Tuning {
  /// Inner-loop kernel for the context and bitmap passes (src/simd):
  /// kAuto lets the planner choose between the vectorized path and the
  /// scalar reference from sampled convergence statistics (resolving to
  /// the best vectorized level when planning is disabled); kSimd pins the
  /// best vectorized level, kScalar the byte-at-a-time reference. The
  /// PARPARAW_FORCE_KERNEL environment variable overrides any of these per
  /// process (see docs/simd.md and docs/tuning.md).
  simd::KernelKind kernel = simd::KernelKind::kAuto;

  /// Bytes per chunk / per logical GPU thread. 0 = auto: the planner
  /// chooses from sampled convergence depth; without planning it resolves
  /// to the paper's 31 bytes (Fig. 9). Any non-zero value is a pin.
  size_t chunk_size = 0;

  /// How field boundaries are materialised; kAuto resolves to kRecordTags
  /// unless the planner proves a cheaper mode safe. See TaggingMode.
  TaggingMode tagging_mode = TaggingMode::kAuto;

  /// How tagged symbols are moved into per-column CSS buffers; see
  /// TransposeMode. kAuto resolves to kFieldGather (overridable per
  /// process via PARPARAW_TRANSPOSE_MODE); both modes produce bit-identical
  /// tables.
  TransposeMode transpose_mode = TransposeMode::kAuto;

  /// Bytes per streaming partition. 0 = auto: the streaming parser, bulk
  /// loader and executor use their documented 64 MB default (budget-
  /// clamped); the planner records the effective choice in the plan. A
  /// non-zero value overrides the entry point's partition_size field.
  size_t partition_size = 0;

  /// Planner engagement; see PlannerMode.
  PlannerMode planner = PlannerMode::kAuto;

  /// Upper bound on the bytes the planner samples from the input prefix.
  /// Matches the 256 KB head sample the loader already reads for dialect
  /// and type resolution, so file-backed planning costs no extra I/O.
  size_t sample_budget = 256 * 1024;

  /// The process environment's tuning pins, parsed once: PARPARAW_FORCE_KERNEL
  /// pins `kernel` (scalar -> kScalar, anything else -> kSimd; the exact
  /// level force stays in simd::ResolveKernelLevel, which outranks any
  /// plan), PARPARAW_TRANSPOSE_MODE pins `transpose_mode`. Every other
  /// field keeps its default. PARPARAW_DISABLE_SIMD has no KernelKind
  /// representation — it caps the detected level at the portable SWAR
  /// fallback inside the dispatcher (see plan::EnvSimdDisabled).
  static Tuning FromEnv();

  /// Validates the tuning combination: chunk_size bounds and the
  /// PlannerMode contradiction taxonomy (kForce with any pinned knob is an
  /// InvalidArgument — a forced planner has nothing to decide). Called by
  /// ParseOptions::Validate, so every entry point checks it exactly once.
  Status ValidateTuning() const;
};

namespace plan {

/// Centralized environment parsing (read once per process, cached — a
/// per-parse getenv would be a race under TSan). These are the single
/// source of truth: simd::ResolveKernelLevel and EffectiveTransposeMode
/// delegate here.

/// PARPARAW_FORCE_KERNEL=scalar|swar|simd|sse42|avx2|neon, or nullopt when
/// unset/unrecognised. "simd" resolves to the best detected level.
std::optional<simd::KernelLevel> EnvForcedKernelLevel();

/// PARPARAW_TRANSPOSE_MODE=field_gather|symbol_sort, or nullopt.
std::optional<TransposeMode> EnvTransposeMode();

/// PARPARAW_DISABLE_SIMD set to anything but "" or "0": the kernel
/// dispatcher caps the detected best level at the portable SWAR fallback
/// (the runtime twin of the -DPARPARAW_DISABLE_SIMD build option).
bool EnvSimdDisabled();

namespace internal {

/// Pure, uncached parsers for the env grammars above, exposed so tests can
/// exercise the vocabulary without mutating the process environment.
std::optional<simd::KernelLevel> ParseKernelEnvValue(const char* value);
std::optional<TransposeMode> ParseTransposeEnvValue(const char* value);
bool ParseSimdDisabledValue(const char* value);

}  // namespace internal

}  // namespace plan

}  // namespace parparaw

#endif  // PARPARAW_PLAN_TUNING_H_
