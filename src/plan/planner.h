#ifndef PARPARAW_PLAN_PLANNER_H_
#define PARPARAW_PLAN_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/options.h"
#include "util/result.h"

namespace parparaw::plan {

/// \brief What the planner measured over the sampled prefix.
///
/// Every statistic is a *counted* property of the bytes (measured with the
/// portable SWAR kernel and the exact flag walk, never wall clock), so the
/// same bytes always produce the same stats — and therefore the same plan —
/// regardless of the machine's vector ISA or current load.
struct SampleStats {
  /// Bytes actually sampled (min of input size and Tuning::sample_budget).
  int64_t sample_bytes = 0;
  /// True when the sample is a proper prefix of the stream.
  bool truncated = false;

  /// Convergence probe (the speculative-DFA membership test of Ko et al.):
  /// chunks of the probe size whose state-vector lanes converged, and how
  /// deep into the chunk convergence happened on average. High convergence
  /// at shallow depth is the regime where speculation makes large chunks
  /// nearly free (lineitem: 100% converged; taxi: 0%).
  int64_t probe_chunks = 0;
  int64_t converged_chunks = 0;
  double convergence_fraction = 0;
  double mean_convergence_depth = 0;

  /// Fraction of sampled bytes classified into a non-catch-all symbol
  /// group — the density of work the SWAR special-symbol skipping cannot
  /// skip.
  double special_density = 0;

  /// Structure of the sampled records (complete records only; a truncated
  /// trailing record never pollutes the counts).
  int64_t records = 0;
  int64_t fields = 0;
  double mean_record_length = 0;
  double mean_field_length = 0;
  uint32_t min_columns = 0;
  uint32_t max_columns = 0;
  /// min == max over at least kMinRecordsForUniformity complete records.
  bool uniform_columns = false;

  std::string ToString() const;
};

/// \brief A resolved per-stream configuration: every tuning knob concrete,
/// plus the evidence and reasoning that produced it.
struct ParsePlan {
  simd::KernelKind kernel = simd::KernelKind::kSimd;
  /// The concrete level `kernel` resolves to on this machine/environment
  /// (reflects PARPARAW_FORCE_KERNEL and PARPARAW_DISABLE_SIMD).
  simd::KernelLevel kernel_level = simd::KernelLevel::kSwar;
  size_t chunk_size = 31;
  TaggingMode tagging_mode = TaggingMode::kRecordTags;
  TransposeMode transpose_mode = TransposeMode::kFieldGather;
  /// 0 = keep the entry point's partition size (64 MB default, budget
  /// clamped); non-zero overrides it.
  size_t partition_size = 0;

  /// True when the configuration was decided from a sampled prefix; false
  /// for the static defaults (planner disabled, nothing to decide, or
  /// fallback).
  bool planned = false;
  /// True when a sampling pass failed and the static defaults were used
  /// instead (counted by the "plan.fallback" metric).
  bool fallback = false;
  /// One line per decided knob: what was chosen and which statistic drove
  /// the choice.
  std::string reason;
  SampleStats stats;

  /// Human-readable multi-line report (the Reader::Explain() payload).
  std::string Explain() const;
};

/// Static resolution of every auto sentinel — the planless defaults that
/// kDisabled (and every parse before the planner existed) runs: kernel
/// kAuto -> best vectorized level, chunk 0 -> 31, tagging kAuto ->
/// kRecordTags, transpose kAuto -> kFieldGather (or the env override).
/// Pinned knobs pass through unchanged.
ParsePlan StaticPlan(const ParseOptions& options);

/// Measures `sample` and decides every knob still at its auto sentinel.
/// Deterministic: the same bytes and options produce the same plan (on the
/// same machine and environment — the measured statistics themselves are
/// machine-independent). `options` must be Validate()d with any dialect
/// already resolved into the format; knobs the caller pinned are respected.
/// Fails only on injected faults (plan.sample / plan.decide failpoints) or
/// an unresolved dialect; callers normally go through PlanStream, which
/// handles the fallback policy.
Result<ParsePlan> PlanParse(std::string_view sample, bool sample_truncated,
                            const ParseOptions& options);

/// Pins the plan's decisions into *options and sets
/// planner = PlannerMode::kDisabled, so a downstream entry point (the
/// per-partition Parser::Parse of a planned stream, a loader handing off
/// to the executor) never plans the same stream twice.
void ApplyPlan(const ParsePlan& plan, ParseOptions* options);

/// The per-stream entry-point helper: samples and applies a plan when
/// options->planner engages (kAuto / kForce with at least one knob at its
/// auto sentinel), records plan.* metrics/trace, and handles failure —
/// kAuto falls back to the static defaults with a "plan.fallback" count,
/// kForce propagates the error. With planning disabled (or nothing left to
/// decide) returns the static resolution without touching *options.
Result<ParsePlan> PlanStream(std::string_view sample, bool sample_truncated,
                             ParseOptions* options);

}  // namespace parparaw::plan

#endif  // PARPARAW_PLAN_PLANNER_H_
