#include "plan/planner.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dfa/formats.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "robust/failpoint.h"
#include "simd/simd_kernels.h"

namespace parparaw::plan {

namespace {

/// Chunk size of the convergence probe. Deliberately mid-range: small
/// enough that a converging input converges within most probe chunks,
/// large enough that the measured convergence depth separates "converges
/// almost immediately" (large chunks are nearly free) from "converges
/// eventually" (mid-size chunks only).
constexpr size_t kProbeChunk = 256;

/// Complete records the sample must contain before min == max column
/// counts are believed to generalise to the stream.
constexpr int64_t kMinRecordsForUniformity = 8;

/// Caps on the measurement work, so planning stays well under 1% of the
/// parse it tunes: the exact flag walk (record structure) covers at most
/// this prefix of the sample, and at most kMaxProbeChunks probe chunks are
/// run, strided evenly across the whole sample so a long prefix still
/// contributes evidence. Both caps are deterministic functions of the
/// sample length, so identical bytes keep producing identical stats.
constexpr size_t kMaxWalkBytes = 64 * 1024;
constexpr int64_t kMaxProbeChunks = 128;

/// Decision thresholds (see docs/tuning.md for the derivation from
/// BENCH_simd.json): the SWAR kernel only beats the scalar reference when
/// speculation converges on most chunks or special symbols are sparse
/// enough for word-probe skipping.
constexpr double kSwarConvergenceThreshold = 0.5;
constexpr double kSwarSpecialDensityThreshold = 0.05;

const char* KernelKindName(simd::KernelKind kind) {
  switch (kind) {
    case simd::KernelKind::kAuto:
      return "auto";
    case simd::KernelKind::kScalar:
      return "scalar";
    case simd::KernelKind::kSimd:
      return "simd";
  }
  return "unknown";
}

const char* TaggingModeName(TaggingMode mode) {
  switch (mode) {
    case TaggingMode::kRecordTags:
      return "record_tags";
    case TaggingMode::kInlineTerminated:
      return "inline_terminated";
    case TaggingMode::kVectorDelimited:
      return "vector_delimited";
    case TaggingMode::kAuto:
      return "auto";
  }
  return "unknown";
}

const char* TransposeModeName(TransposeMode mode) {
  switch (mode) {
    case TransposeMode::kAuto:
      return "auto";
    case TransposeMode::kFieldGather:
      return "field_gather";
    case TransposeMode::kSymbolSort:
      return "symbol_sort";
  }
  return "unknown";
}

/// True when at least one knob is still at its auto sentinel, i.e. the
/// planner has something to decide.
bool AnyKnobAuto(const ParseOptions& options) {
  return options.kernel == simd::KernelKind::kAuto ||
         options.chunk_size == 0 ||
         options.tagging_mode == TaggingMode::kAuto ||
         options.transpose_mode == TransposeMode::kAuto;
}

void AppendReason(std::string* reason, const std::string& line) {
  if (!reason->empty()) reason->push_back('\n');
  reason->append(line);
}

/// Measures the sampled prefix with the portable SWAR kernel and the exact
/// flag walk. Everything here is counted, never timed, so the stats — and
/// every decision derived from them — are reproducible.
SampleStats MeasureSample(std::string_view sample, bool truncated,
                          const simd::KernelPlan& kernel_plan) {
  SampleStats stats;
  stats.sample_bytes = static_cast<int64_t>(sample.size());
  stats.truncated = truncated;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(sample.data());
  const size_t n = sample.size();
  if (n == 0) return stats;

  // Exact flag walk from the start state: the ground-truth symbol classes
  // for record/field structure, unaffected by speculation. Capped at a
  // prefix — record shape is established within a few thousand records.
  const size_t walk_bytes = std::min(n, kMaxWalkBytes);
  std::vector<uint8_t> flags(n, 0);
  simd::WalkEmitFlags(kernel_plan, data, 0, walk_bytes,
                      static_cast<uint8_t>(kernel_plan.start_state),
                      flags.data());

  int64_t special_bytes = 0;
  for (size_t i = 0; i < walk_bytes; ++i) {
    if (kernel_plan.group_of_byte[data[i]] != kernel_plan.catchall_group) {
      ++special_bytes;
    }
  }
  stats.special_density = static_cast<double>(special_bytes) /
                          static_cast<double>(walk_bytes);

  // Record structure over *complete* records only: a record's stats are
  // finalised on its record delimiter, so a truncated trailing record never
  // skews the counts.
  uint32_t fields_in_record = 0;
  size_t record_start = 0;
  int64_t record_bytes = 0;
  for (size_t i = 0; i < walk_bytes; ++i) {
    const uint8_t f = flags[i];
    if (f & kSymbolFieldDelimiter) ++fields_in_record;
    if (f & kSymbolRecordDelimiter) {
      const uint32_t columns = fields_in_record + 1;
      if (stats.records == 0) {
        stats.min_columns = stats.max_columns = columns;
      } else {
        stats.min_columns = std::min(stats.min_columns, columns);
        stats.max_columns = std::max(stats.max_columns, columns);
      }
      ++stats.records;
      stats.fields += columns;
      record_bytes += static_cast<int64_t>(i + 1 - record_start);
      record_start = i + 1;
      fields_in_record = 0;
    }
  }
  if (stats.records > 0) {
    stats.mean_record_length = static_cast<double>(record_bytes) /
                               static_cast<double>(stats.records);
    stats.mean_field_length = static_cast<double>(record_bytes) /
                              static_cast<double>(stats.fields);
    stats.uniform_columns = stats.min_columns == stats.max_columns &&
                            stats.records >= kMinRecordsForUniformity;
  }

  // Convergence probe: run the SWAR kernel chunk by chunk and record where
  // (and whether) the speculative lanes merged. The portable kernel keeps
  // the measurement machine-independent. Only full probe chunks count — a
  // short tail converges trivially and would skew the fraction — and at
  // most kMaxProbeChunks are run, strided evenly so a large sample is
  // probed across its whole length instead of just its head.
  std::fill(flags.begin(), flags.end(), 0);
  int64_t depth_sum = 0;
  const size_t full_chunks = n / kProbeChunk;
  const size_t stride =
      std::max<size_t>(1, full_chunks / static_cast<size_t>(kMaxProbeChunks)) *
      kProbeChunk;
  for (size_t begin = 0; begin + kProbeChunk <= n; begin += stride) {
    const size_t end = begin + kProbeChunk;
    const simd::ChunkKernelResult result =
        simd::internal::ChunkKernelSwar(kernel_plan, data, begin, end,
                                        flags.data());
    ++stats.probe_chunks;
    if (result.spec_offset >= 0) {
      ++stats.converged_chunks;
      depth_sum += result.spec_offset - static_cast<int64_t>(begin);
    }
  }
  if (stats.probe_chunks > 0) {
    stats.convergence_fraction = static_cast<double>(stats.converged_chunks) /
                                 static_cast<double>(stats.probe_chunks);
  }
  if (stats.converged_chunks > 0) {
    stats.mean_convergence_depth = static_cast<double>(depth_sum) /
                                   static_cast<double>(stats.converged_chunks);
  }
  return stats;
}

}  // namespace

std::string SampleStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sampled=%lldB%s probe_chunks=%lld convergence=%.0f%% "
                "depth=%.1fB specials=%.1f%% records=%lld rec_len=%.1fB "
                "columns=[%u,%u]%s",
                static_cast<long long>(sample_bytes),
                truncated ? " (prefix)" : "",
                static_cast<long long>(probe_chunks),
                convergence_fraction * 100.0, mean_convergence_depth,
                special_density * 100.0, static_cast<long long>(records),
                mean_record_length, min_columns, max_columns,
                uniform_columns ? " uniform" : "");
  return buf;
}

std::string ParsePlan::Explain() const {
  std::string out = "plan: kernel=";
  out += KernelKindName(kernel);
  out += '(';
  out += simd::KernelLevelName(kernel_level);
  out += ") chunk=";
  out += std::to_string(chunk_size);
  out += " tagging=";
  out += TaggingModeName(tagging_mode);
  out += " transpose=";
  out += TransposeModeName(transpose_mode);
  out += " partition=";
  out += partition_size == 0 ? std::string("default")
                             : std::to_string(partition_size);
  out += planned ? " [planned]" : fallback ? " [fallback]" : " [static]";
  if (planned) {
    out += "\nstats: ";
    out += stats.ToString();
  }
  if (!reason.empty()) {
    out += "\nreason: ";
    out += reason;
  }
  return out;
}

ParsePlan StaticPlan(const ParseOptions& options) {
  ParsePlan plan;
  plan.kernel = options.kernel == simd::KernelKind::kAuto
                    ? simd::KernelKind::kSimd
                    : options.kernel;
  plan.kernel_level = simd::ResolveKernelLevel(plan.kernel);
  plan.chunk_size = options.chunk_size == 0 ? 31 : options.chunk_size;
  plan.tagging_mode = EffectiveTaggingMode(options);
  plan.transpose_mode = EffectiveTransposeMode(options);
  plan.partition_size = options.partition_size;
  plan.planned = false;
  return plan;
}

Result<ParsePlan> PlanParse(std::string_view sample, bool sample_truncated,
                            const ParseOptions& options) {
  PARPARAW_FAILPOINT("plan.sample");
  if (options.dialect.has_value() && options.format.dfa.num_states() == 0) {
    return Status::Invalid(
        "PlanParse needs the dialect resolved into the format first");
  }
  Format format = options.format;
  if (format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(format, Rfc4180Format());
  }
  const simd::KernelPlan kernel_plan = simd::BuildKernelPlan(format.dfa);

  const size_t budget = options.sample_budget;
  const bool clipped = sample.size() > budget;
  std::string_view clipped_sample =
      clipped ? sample.substr(0, budget) : sample;

  ParsePlan plan = StaticPlan(options);
  plan.planned = true;
  plan.stats = MeasureSample(clipped_sample, sample_truncated || clipped,
                             kernel_plan);
  const SampleStats& stats = plan.stats;

  PARPARAW_FAILPOINT("plan.decide");

  // Kernel: a real vector ISA amortises the multi-lane walk so thoroughly
  // that it wins regardless of convergence (BENCH_simd.json: 3-6x). The
  // portable SWAR kernel, however, loses to the scalar reference unless
  // speculation converges on most chunks or specials are sparse enough for
  // word skipping (0.63x on yelp/taxi vs 5.9x on lineitem).
  if (options.kernel == simd::KernelKind::kAuto) {
    const simd::KernelLevel best = simd::DetectBestKernelLevel();
    if (best != simd::KernelLevel::kSwar &&
        best != simd::KernelLevel::kScalar) {
      plan.kernel = simd::KernelKind::kSimd;
      AppendReason(&plan.reason,
                   std::string("kernel=simd: vector ISA available (") +
                       simd::KernelLevelName(best) + ")");
    } else if (stats.convergence_fraction >= kSwarConvergenceThreshold ||
               stats.special_density <= kSwarSpecialDensityThreshold) {
      plan.kernel = simd::KernelKind::kSimd;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "kernel=simd(swar): convergence %.0f%% / specials %.1f%% "
                    "favour the speculative kernel",
                    stats.convergence_fraction * 100.0,
                    stats.special_density * 100.0);
      AppendReason(&plan.reason, line);
    } else {
      plan.kernel = simd::KernelKind::kScalar;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "kernel=scalar: convergence %.0f%% and specials %.1f%% "
                    "defeat SWAR speculation",
                    stats.convergence_fraction * 100.0,
                    stats.special_density * 100.0);
      AppendReason(&plan.reason, line);
    }
    plan.kernel_level = simd::ResolveKernelLevel(plan.kernel);
  }

  // Chunk size: chunks are both the speculation granularity and the unit
  // the composite-operator scan runs over, and on the CPU substrate the
  // per-chunk scan overhead dominates — the measured grid (BENCH_simd.json,
  // BENCH_autotune.json) has kilobyte chunks beating the paper's 31 bytes
  // on every corpus and kernel. Convergence decides how far to push:
  // converging lanes make large chunks outright free (lineitem), while a
  // never-converging state vector (taxi) re-simulates each chunk's prefix,
  // so the non-convergent choice stays a step smaller. The 31-byte default
  // survives only where the sample carries no probe evidence at all: it is
  // the paper's Fig. 9 setting and keeps tiny inputs maximally parallel.
  if (options.chunk_size == 0) {
    size_t chunk = 31;
    const char* why = "sample shorter than one probe chunk: paper default 31";
    if (stats.probe_chunks == 0) {
      // Keep the default reason.
    } else if (plan.kernel_level == simd::KernelLevel::kScalar) {
      chunk = 1024;
      why = "scalar walk: no speculation to misprice, amortise the "
            "per-chunk scan overhead";
    } else if (stats.convergence_fraction >= 0.5) {
      chunk = 4096;
      why = "lanes converge on >=50% of chunks: large chunks are free";
    } else {
      chunk = 2048;
      why = "speculation rarely converges: amortise the per-chunk scan "
            "overhead but halve the re-simulated span";
    }
    plan.chunk_size = chunk;
    AppendReason(&plan.reason, std::string("chunk=") + std::to_string(chunk) +
                                   ": " + why);
  }

  // Tagging: the 4-byte-per-symbol record tags are the robust default.
  // kVectorDelimited drops the sideband to 1 byte per symbol but requires a
  // consistent column count; it is only safe when the caller already runs
  // the reject policy (inconsistent records are dropped either way) and the
  // sample shows uniform columns. Never auto-select kInlineTerminated: its
  // correctness depends on the terminator byte not occurring in *unseen*
  // data, which no sample can prove.
  if (options.tagging_mode == TaggingMode::kAuto) {
    if (options.column_count_policy == ColumnCountPolicy::kReject &&
        stats.uniform_columns) {
      plan.tagging_mode = TaggingMode::kVectorDelimited;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "tagging=vector_delimited: %lld sampled records all have "
                    "%u columns under the reject policy",
                    static_cast<long long>(stats.records), stats.min_columns);
      AppendReason(&plan.reason, line);
    } else {
      plan.tagging_mode = TaggingMode::kRecordTags;
    }
  }

  // Transpose: the field-gather path is the CPU-substrate winner across
  // every corpus benchmarked (BENCH_transpose.json); the planner keeps the
  // static resolution (which also honours PARPARAW_TRANSPOSE_MODE).
  // Partition size: 0 defers to the entry point's 64 MB budget-clamped
  // default — the clamp already adapts to memory_budget, and the sample
  // carries no signal that beats it.

  return plan;
}

void ApplyPlan(const ParsePlan& plan, ParseOptions* options) {
  options->kernel = plan.kernel;
  options->chunk_size = plan.chunk_size;
  options->tagging_mode = plan.tagging_mode;
  options->transpose_mode = plan.transpose_mode;
  options->partition_size = plan.partition_size;
  // Plan once per stream: downstream entry points (the per-partition
  // Parser::Parse of a streaming parse) see only pinned knobs.
  options->planner = PlannerMode::kDisabled;
}

Result<ParsePlan> PlanStream(std::string_view sample, bool sample_truncated,
                             ParseOptions* options) {
  if (options->planner == PlannerMode::kDisabled) {
    return StaticPlan(*options);
  }
  if (!AnyKnobAuto(*options)) {
    // Everything pinned (only reachable under kAuto; kForce rejects pins in
    // Validate): nothing to decide, skip the sampling cost.
    return StaticPlan(*options);
  }
  obs::TraceSpan span(options->tracer, "plan", "plan",
                      static_cast<int64_t>(sample.size()));
  obs::AddCount(options->metrics, "plan.runs", 1);
  Result<ParsePlan> planned = PlanParse(sample, sample_truncated, *options);
  if (!planned.ok()) {
    if (options->planner == PlannerMode::kForce) {
      return planned.status().WithContext("planner forced but sampling failed");
    }
    // kAuto degrades silently: the static defaults are always correct, the
    // plan was only ever a performance upgrade.
    obs::AddCount(options->metrics, "plan.fallback", 1);
    ParsePlan fallback = StaticPlan(*options);
    fallback.fallback = true;
    fallback.reason = planned.status().ToString();
    ApplyPlan(fallback, options);
    return fallback;
  }
  ParsePlan plan = std::move(planned).ValueOrDie();
  obs::AddCount(options->metrics, "plan.sampled_bytes",
                plan.stats.sample_bytes);
  obs::SetGauge(options->metrics, "plan.chunk_size",
                static_cast<int64_t>(plan.chunk_size));
  obs::SetGauge(options->metrics, "plan.convergence_pct",
                static_cast<int64_t>(plan.stats.convergence_fraction * 100.0));
  obs::AddCount(options->metrics,
                plan.kernel == simd::KernelKind::kScalar
                    ? "plan.kernel.scalar"
                    : "plan.kernel.simd",
                1);
  if (plan.tagging_mode == TaggingMode::kVectorDelimited) {
    obs::AddCount(options->metrics, "plan.tagging.vector_delimited", 1);
  }
  ApplyPlan(plan, options);
  return plan;
}

}  // namespace parparaw::plan
