#include "exec/executor.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "core/staged_parse.h"
#include "dialect/dialect.h"
#include "io/file.h"
#include "obs/obs.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"
#include "plan/planner.h"
#include "robust/failpoint.h"
#include "robust/resource_guard.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"

namespace parparaw {
namespace exec {

namespace {

/// One partition's raw bytes on their way from the reader to the scan
/// morsel. `view` points into `owned` (file mode) or into the caller's
/// buffer (buffer mode).
struct RawChunk {
  int64_t index = 0;
  std::string owned;
  std::string_view view;
  bool is_last = false;
};

/// One partition flowing through the scan -> sort -> convert morsel
/// chain. Heap-allocated and shared_ptr-held (morsel closures must be
/// copyable): the StagedParse's pipeline state points into `buffer` and
/// into the task itself, so tasks never move between morsels.
struct PartitionTask {
  int64_t index = 0;
  /// Carry-over + partition bytes; what the scan morsel parsed.
  std::string buffer;
  /// Stream offset of buffer[0] (for quarantine-span re-basing).
  int64_t buffer_base = 0;
  /// Bytes this partition consumed from the stream (excludes the carry,
  /// already counted when its partition was consumed).
  int64_t partition_bytes = 0;
  bool is_last = false;
  StagedParse parse;
};

/// A converted partition parked until every lower-indexed partition has
/// been delivered (results must reach the sink / the concatenation in
/// stream order no matter which worker converted them first).
struct ConvertedPartition {
  ParseOutput output;
  /// Stream offset of the partition buffer's first byte (quarantine spans
  /// are re-based against it at delivery).
  int64_t buffer_base = 0;
  int64_t partition_bytes = 0;
};

/// Sequential partition source, either disk-backed or an in-memory view.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;
  virtual int64_t total_bytes() const = 0;
  /// Fills `chunk` with up to `max_bytes`; sets *eof on the chunk that
  /// exhausts the stream (so no empty trailing chunk is ever produced).
  virtual Status Next(size_t max_bytes, RawChunk* chunk, bool* eof) = 0;
  /// Reads up to `max_bytes` from the head of the stream *without*
  /// consuming it (the planner's sample); *truncated reports whether the
  /// stream continues past the sample.
  virtual Status SampleHead(size_t max_bytes, std::string* sample,
                            bool* truncated) = 0;
};

class FileSource final : public ChunkSource {
 public:
  Status Open(const std::string& path) {
    path_ = path;
    return reader_.Open(path);
  }
  int64_t total_bytes() const override { return reader_.file_size(); }

  Status SampleHead(size_t max_bytes, std::string* sample,
                    bool* truncated) override {
    // A throwaway reader keeps the streaming reader's position at byte 0.
    FileChunkReader sampler;
    PARPARAW_RETURN_NOT_OK(sampler.Open(path_));
    sample->clear();
    if (sampler.file_size() > 0) {
      bool eof = false;
      PARPARAW_RETURN_NOT_OK(sampler.ReadNext(max_bytes, sample, &eof));
    }
    *truncated =
        static_cast<int64_t>(sample->size()) < sampler.file_size();
    return Status::OK();
  }

  Status Next(size_t max_bytes, RawChunk* chunk, bool* eof) override {
    bool read_eof = false;
    PARPARAW_RETURN_NOT_OK(
        reader_.ReadNext(max_bytes, &chunk->owned, &read_eof));
    chunk->view = chunk->owned;
    consumed_ += static_cast<int64_t>(chunk->owned.size());
    *eof = read_eof || consumed_ >= reader_.file_size();
    return Status::OK();
  }

 private:
  std::string path_;
  FileChunkReader reader_;
  int64_t consumed_ = 0;
};

class BufferSource final : public ChunkSource {
 public:
  explicit BufferSource(std::string_view input) : input_(input) {}
  int64_t total_bytes() const override {
    return static_cast<int64_t>(input_.size());
  }

  Status Next(size_t max_bytes, RawChunk* chunk, bool* eof) override {
    const size_t take = std::min(max_bytes, input_.size() - pos_);
    chunk->view = input_.substr(pos_, take);
    pos_ += take;
    *eof = pos_ >= input_.size();
    return Status::OK();
  }

  Status SampleHead(size_t max_bytes, std::string* sample,
                    bool* truncated) override {
    sample->assign(input_.substr(0, std::min(max_bytes, input_.size())));
    *truncated = input_.size() > max_bytes;
    return Status::OK();
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

/// \brief One ingest's worth of morsel machinery.
///
/// The old stage-per-thread SPSC chain (one dedicated thread each for
/// scan, sort and convert) capped speedup at the stage count and left
/// workers idle whenever one stage starved. It is replaced by a morsel
/// graph on the shared work-stealing pool: the calling thread performs
/// the sequential admission-gated reads, and each partition then flows
/// through chained scan -> sort -> convert morsels that ANY worker (or
/// the caller, under caller-runs) may execute. Dependencies are encoded
/// in the chaining, not in threads:
///
///   * Scan is the only sequentially-dependent stage (partition k+1's
///     carry-over bytes are known only after k's scan, the paper's carry
///     dependency) — a single "scan token" serialises scan morsels in
///     stream order while everything downstream overlaps freely.
///   * Sort and convert morsels for different partitions run wherever a
///     worker is idle, so partition k's convert overlaps k+1's sort and
///     k+2's scan without any thread being pinned to a stage.
///   * Converted partitions park in a reorder window and are delivered
///     (sink call / table concatenation, quarantine re-basing, stats) in
///     stream order under a delivery token — the output is bit-identical
///     to the serial schedule by construction.
///
/// Memory stays bounded by the admission controller exactly as before:
/// the reader acquires one slot per partition and delivery releases it,
/// so at most admission_limit partitions exist across the whole graph.
/// The old exec.queue.{scan,sort,convert}.{push,pop} failpoints fire at
/// the equivalent morsel hand-offs (push = submitting the next morsel,
/// pop = entering it), keeping the chaos schedule space intact.
class PipelineRun {
 public:
  PipelineRun(PipelineExecutor* executor, const ExecOptions& options,
              const PartitionSink* sink)
      : executor_(executor),
        options_(options),
        sink_(sink),
        metrics_(options.base.metrics) {}

  Result<IngestResult> Run(ChunkSource* source) {
    PARPARAW_FAILPOINT("exec.ingest");
    PARPARAW_RETURN_NOT_OK_CTX(options_.base.Validate(), "exec.options");
    if (options_.partition_size == 0) {
      return Status::Invalid("partition size must be positive");
    }

    // Compile a user dialect once per ingest, not once per partition. The
    // pipelined stages need the packed Dfa, so an over-budget dialect is a
    // clean refusal here; Parser::Parse and StreamingParser carry the
    // scalar fallback.
    base_ = options_.base;
    {
      PARPARAW_ASSIGN_OR_RETURN(
          std::optional<dialect::CompiledDialect> fallback,
          dialect::ResolveParseDialect(&base_));
      if (fallback.has_value()) {
        return Status::Invalid(
            "dialect '" + fallback->spec.name + "' needs " +
            std::to_string(fallback->minimized_states) +
            " DFA states, over the SIMD register budget; the pipelined "
            "executor cannot run its scalar fallback — use Parser::Parse "
            "or StreamingParser");
      }
    }

    // Plan once for the whole ingest from the stream's head sample; every
    // partition then parses under the pinned knobs. An I/O failure on the
    // sample is never fatal under kAuto — the static defaults are always
    // correct.
    {
      std::string sample;
      bool truncated = false;
      Status sampled = Status::OK();
      if (base_.planner != PlannerMode::kDisabled) {
        sampled = source->SampleHead(base_.sample_budget, &sample, &truncated);
      }
      if (sampled.ok()) {
        PARPARAW_ASSIGN_OR_RETURN(result_.plan,
                                  plan::PlanStream(sample, truncated, &base_));
      } else if (base_.planner == PlannerMode::kForce) {
        return sampled.WithContext("plan.sample");
      } else {
        obs::AddCount(metrics_, "plan.fallback", 1);
        result_.plan = plan::StaticPlan(base_);
        result_.plan.fallback = true;
        result_.plan.reason = sampled.ToString();
        plan::ApplyPlan(result_.plan, &base_);
      }
    }

    // Degrade instead of refusing, in two independent ways: partitions
    // shrink until one parse fits the budget, and the admission limit
    // clamps how many of them may be resident at once.
    const int64_t working_set_factor = ParseWorkingSetFactor(base_);
    partition_size_ = static_cast<size_t>(
        robust::ClampPartitionSizeForBudget(
            static_cast<int64_t>(result_.plan.partition_size > 0
                                     ? result_.plan.partition_size
                                     : options_.partition_size),
            options_.base.memory_budget, /*floor_bytes=*/256,
            working_set_factor));
    admission_limit_ = options_.max_inflight_partitions;
    if (admission_limit_ <= 0) {
      if (options_.base.memory_budget > 0) {
        const int64_t per_partition = robust::EstimateParseMemory(
            static_cast<int64_t>(partition_size_), working_set_factor);
        admission_limit_ = static_cast<int>(std::max<int64_t>(
            1, options_.base.memory_budget / std::max<int64_t>(
                                                 1, per_partition)));
      } else {
        admission_limit_ = 4;  // read + scan + sort + convert in flight
      }
    }
    result_.kernel_level = simd::ResolveKernelLevel(base_.kernel);
    result_.stats.admission_limit = admission_limit_;

    // Register with the executor so Cancel() reaches this run.
    std::function<void()> abort_fn = [this] { Abort(); };
    {
      std::lock_guard<std::mutex> lock(executor_->runs_mu_);
      if (executor_->cancelled()) {
        return Status::Cancelled("executor was cancelled");
      }
      executor_->active_runs_.push_back(&abort_fn);
    }

    Stopwatch wall;
    if (source->total_bytes() > 0) {
      ThreadPool* pool =
          base_.pool != nullptr ? base_.pool : ThreadPool::Default();
      TaskGroup group(pool->scheduler());
      group_ = &group;
      ReaderLoop(source);
      // Caller-runs: the reading thread joins the workers on whatever
      // scan/sort/convert morsels remain instead of parking.
      group.Wait();
      group_ = nullptr;
    }
    result_.stats.wall_seconds = wall.ElapsedSeconds();

    // Return any admission slots a failed morsel still held, so
    // concurrent ingests sharing this executor's controller (other files,
    // other daemon connections) are not starved.
    const int leftover = slots_held_.exchange(0);
    if (leftover > 0) executor_->admission()->Release(leftover);
    {
      std::lock_guard<std::mutex> lock(executor_->runs_mu_);
      auto& runs = executor_->active_runs_;
      runs.erase(std::remove(runs.begin(), runs.end(), &abort_fn),
                 runs.end());
    }

    if (executor_->cancelled()) {
      obs::AddCount(metrics_, "exec.cancelled", 1);
      return Status::Cancelled("ingest cancelled");
    }
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!first_error_.ok()) return first_error_;
    }

    for (size_t i = 1; i < tables_.size(); ++i) {
      if (tables_[i].schema.num_fields() != tables_[0].schema.num_fields()) {
        return Status::ParseError(
            "partitions observed different column counts; provide a schema "
            "for streaming parses");
      }
    }
    if (sink_ == nullptr) result_.table = ConcatTables(tables_);
    if (metrics_ != nullptr && metrics_->enabled()) {
      obs::AddCount(metrics_, "exec.ingests", 1);
      obs::AddCount(metrics_, "exec.partitions",
                    result_.stats.num_partitions);
      obs::AddCount(metrics_, "exec.bytes", result_.stats.bytes);
      obs::RecordMillis(metrics_, "exec.ingest_us",
                        result_.stats.wall_seconds * 1e3);
    }
    return std::move(result_);
  }

 private:
  void Hook(int stage, int64_t partition) {
    if (options_.stage_hook) options_.stage_hook(stage, partition);
  }

  /// Records the first error and aborts the pipeline.
  void Fail(Status status) {
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_.ok()) first_error_ = std::move(status);
    }
    Abort();
  }

  /// Unblocks the run: in-flight morsels finish their current partition
  /// and every queued morsel degrades to an immediate return; admission
  /// waits wake up. Idempotent; called on error and by
  /// PipelineExecutor's Cancel().
  void Abort() {
    aborted_.store(true, std::memory_order_release);
    // Wake() takes the controller mutex first, ordering the flag store
    // before the wakeup so an admission wait cannot miss it.
    executor_->admission()->Wake();
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  bool has_deadline() const {
    return options_.deadline != std::chrono::steady_clock::time_point::max();
  }

  /// The cooperative deadline check, run at every morsel entry (plus the
  /// exec.deadline failpoint for deterministic expiry in the chaos
  /// sweep). True = the ingest is out of time; the pipeline aborts
  /// through the same seam as Cancel(), with kDeadlineExceeded recorded
  /// as the first error.
  bool DeadlineExpired(const char* site) {
    const bool forced = !robust::CheckFailpoint("exec.deadline").ok();
    if (!forced) {
      if (!has_deadline()) return false;
      if (std::chrono::steady_clock::now() < options_.deadline) return false;
    }
    Fail(Status::DeadlineExceeded(std::string(site) +
                                  ": ingest deadline expired"));
    return true;
  }

  /// Blocks until a partition may become resident (the backpressure that
  /// keeps the working set inside the memory budget). False on abort.
  bool AcquireSlot() {
    int now;
    if (has_deadline()) {
      now = executor_->admission()->AcquireFor(
          admission_limit_, [this] { return aborted(); }, options_.deadline);
      if (now == AdmissionController::kTimedOut) {
        Fail(Status::DeadlineExceeded(
            "exec.admission: ingest deadline expired waiting for a "
            "partition slot"));
        return false;
      }
    } else {
      now = executor_->admission()->Acquire(
          admission_limit_, [this] { return aborted(); });
    }
    if (now < 0) return false;
    slots_held_.fetch_add(1, std::memory_order_relaxed);
    // Only this run's reader thread acquires, so the stat update is
    // race-free; the count may include partitions of other ingests
    // sharing the controller (that is the point of sharing it).
    result_.stats.max_inflight = std::max(result_.stats.max_inflight, now);
    if (metrics_ != nullptr && metrics_->enabled()) {
      metrics_->SetGauge("exec.inflight", now);
    }
    return true;
  }

  void ReleaseSlot() {
    slots_held_.fetch_sub(1, std::memory_order_relaxed);
    const int now = executor_->admission()->Release();
    if (metrics_ != nullptr && metrics_->enabled()) {
      metrics_->SetGauge("exec.inflight", now);
    }
  }

  // --- reader (calling thread): chunked, admission-gated reads ---
  void ReaderLoop(ChunkSource* source) {
    double busy = 0;
    int64_t index = 0;
    bool eof = false;
    while (!eof) {
      if (aborted()) break;
      if (DeadlineExpired("exec.read")) break;
      if (!AcquireSlot()) break;
      Hook(0, index);
      const Status injected = robust::CheckFailpoint("exec.read");
      if (!injected.ok()) {
        ReleaseSlot();
        Fail(injected.WithContext("exec.read"));
        break;
      }
      auto chunk = std::make_shared<RawChunk>();
      chunk->index = index;
      Stopwatch watch;
      const Status read = source->Next(partition_size_, chunk.get(), &eof);
      busy += watch.ElapsedSeconds();
      if (!read.ok()) {
        ReleaseSlot();
        Fail(read.WithContext("exec.read"));
        break;
      }
      chunk->is_last = eof;
      // The reader -> scan hand-off (the old scan queue's push site).
      const Status pushed =
          robust::CheckFailpoint("exec.queue.scan.push");
      if (!pushed.ok()) {
        ReleaseSlot();
        Fail(pushed.WithContext("exec.queue.scan"));
        break;
      }
      EnqueueChunk(std::move(chunk));
      ++index;
    }
    AddStageSeconds(&result_.stats.read_seconds, busy);
  }

  /// Parks the chunk behind the scan token. Scans must run one at a time
  /// and in stream order (the carry-over dependency); the token holder
  /// chains the next scan morsel itself, so ownership passes without any
  /// dedicated scan thread.
  void EnqueueChunk(std::shared_ptr<RawChunk> chunk) {
    std::shared_ptr<RawChunk> start;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      raw_ready_.push_back(std::move(chunk));
      if (!scan_token_held_) {
        scan_token_held_ = true;
        start = std::move(raw_ready_.front());
        raw_ready_.pop_front();
      }
    }
    if (start != nullptr) {
      group_->Run([this, start] { ScanMorsel(start); });
    }
  }

  // --- scan morsel: carry-over assembly + context/bitmap/offset/tag ---
  void ScanMorsel(const std::shared_ptr<RawChunk>& chunk) {
    Status injected = robust::CheckFailpoint("exec.queue.scan.pop");
    if (!injected.ok()) {
      Fail(injected.WithContext("exec.queue.scan"));
      return;
    }
    if (aborted()) return;
    if (DeadlineExpired("exec.scan")) return;
    Hook(1, chunk->index);
    obs::TraceSpan span(base_.tracer, "morsel.scan", "sched",
                        static_cast<int64_t>(chunk->view.size()));
    Stopwatch watch;
    auto task = std::make_shared<PartitionTask>();
    task->index = chunk->index;
    task->is_last = chunk->is_last;
    task->partition_bytes = static_cast<int64_t>(chunk->view.size());
    // Stream offset of buffer[0]: the carry bytes were already counted
    // when their partition was consumed, so back them out.
    task->buffer_base =
        stream_consumed_ - static_cast<int64_t>(carry_.size());
    task->buffer.reserve(carry_.size() + chunk->view.size());
    task->buffer.append(carry_);
    task->buffer.append(chunk->view);
    chunk->owned.clear();  // raw bytes copied; release the reader's buffer
    chunk->owned.shrink_to_fit();

    ParseOptions po = base_;
    po.exclude_trailing_record = !task->is_last;
    // Leading-row pruning applies to the stream, not to every buffer.
    if (!first_) po.skip_rows = 0;
    // The executor *is* the degradation path for the memory budget —
    // partition size and admission are already clamped to fit, so the
    // per-partition parse must not re-apply the monolithic refusal.
    po.memory_budget = 0;
    const Status scanned = task->parse.Scan(task->buffer, po);
    if (!scanned.ok()) {
      Fail(scanned.WithContext("exec.scan"));
      return;
    }
    if (!task->is_last) {
      const int64_t remainder = task->parse.remainder_offset();
      if (remainder < 0 ||
          remainder > static_cast<int64_t>(task->buffer.size())) {
        Fail(Status::Internal("executor remainder out of range"));
        return;
      }
      // A record larger than a partition simply keeps accumulating into
      // the carry-over until its delimiter arrives (the skewed-input
      // case of Fig. 11).
      carry_ = task->buffer.substr(static_cast<size_t>(remainder));
    } else {
      carry_.clear();
    }
    stream_consumed_ += task->partition_bytes;
    first_ = false;
    if (metrics_ != nullptr && metrics_->enabled()) {
      obs::RecordMillis(metrics_, "exec.scan_us", watch.ElapsedMillis());
      obs::SetGauge(metrics_, "exec.carry_bytes",
                    static_cast<int64_t>(carry_.size()));
    }
    AddStageSeconds(&result_.stats.scan_seconds, watch.ElapsedSeconds());

    // Hand the partition to the sort morsel (the old sort queue's push).
    const Status sort_push =
        robust::CheckFailpoint("exec.queue.sort.push");
    if (!sort_push.ok()) {
      Fail(sort_push.WithContext("exec.queue.sort"));
      return;
    }
    group_->Run([this, task] { SortMorsel(task); });

    // Pass the scan token: chain the next waiting chunk, or drop the
    // token so the reader re-arms the chain on its next partition. The
    // carry_/stream_consumed_ writes above are published to the next
    // scan morsel through the scheduler's and state_mu_'s locks.
    std::shared_ptr<RawChunk> next;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (!raw_ready_.empty()) {
        next = std::move(raw_ready_.front());
        raw_ready_.pop_front();
      } else {
        scan_token_held_ = false;
      }
    }
    if (next != nullptr) {
      group_->Run([this, next] { ScanMorsel(next); });
    }
  }

  // --- sort morsel: radix-sort partition by column tag ---
  void SortMorsel(const std::shared_ptr<PartitionTask>& task) {
    Status injected = robust::CheckFailpoint("exec.queue.sort.pop");
    if (!injected.ok()) {
      Fail(injected.WithContext("exec.queue.sort"));
      return;
    }
    if (aborted()) return;
    if (DeadlineExpired("exec.sort")) return;
    Hook(2, task->index);
    obs::TraceSpan span(base_.tracer, "morsel.sort", "sched",
                        static_cast<int64_t>(task->partition_bytes));
    Stopwatch watch;
    if (!task->parse.finished()) {
      const Status sorted = task->parse.Partition();
      if (!sorted.ok()) {
        Fail(sorted.WithContext("exec.sort"));
        return;
      }
    }
    if (metrics_ != nullptr && metrics_->enabled()) {
      obs::RecordMillis(metrics_, "exec.sort_us", watch.ElapsedMillis());
    }
    AddStageSeconds(&result_.stats.sort_seconds, watch.ElapsedSeconds());
    const Status pushed =
        robust::CheckFailpoint("exec.queue.convert.push");
    if (!pushed.ok()) {
      Fail(pushed.WithContext("exec.queue.convert"));
      return;
    }
    group_->Run([this, task] { ConvertMorsel(task); });
  }

  // --- convert morsel: value generation, then in-order delivery ---
  void ConvertMorsel(const std::shared_ptr<PartitionTask>& task) {
    Status injected = robust::CheckFailpoint("exec.queue.convert.pop");
    if (!injected.ok()) {
      Fail(injected.WithContext("exec.queue.convert"));
      return;
    }
    if (aborted()) return;
    if (DeadlineExpired("exec.convert")) return;
    Hook(3, task->index);
    obs::TraceSpan span(base_.tracer, "morsel.convert", "sched",
                        static_cast<int64_t>(task->partition_bytes));
    Stopwatch watch;
    if (!task->parse.finished()) {
      const Status converted = task->parse.Convert();
      if (!converted.ok()) {
        Fail(converted.WithContext("exec.convert"));
        return;
      }
    }
    ConvertedPartition done;
    done.output = task->parse.TakeOutput();
    done.buffer_base = task->buffer_base;
    done.partition_bytes = task->partition_bytes;
    if (metrics_ != nullptr && metrics_->enabled()) {
      obs::RecordMillis(metrics_, "exec.convert_us",
                        watch.ElapsedMillis());
    }
    AddStageSeconds(&result_.stats.convert_seconds, watch.ElapsedSeconds());
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      completed_.emplace(task->index, std::move(done));
    }
    TryDeliver();
  }

  /// Delivers converted partitions in stream order under the delivery
  /// token. Whichever morsel completes the next-in-order partition (or
  /// unparks it) drains the reorder window; concurrent completers see the
  /// token held and leave — the holder re-checks after every delivery, so
  /// nothing is stranded.
  void TryDeliver() {
    while (true) {
      std::optional<ConvertedPartition> part;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (deliver_token_held_) return;
        auto it = completed_.find(next_deliver_);
        if (it == completed_.end()) return;
        deliver_token_held_ = true;
        part.emplace(std::move(it->second));
        completed_.erase(it);
        ++next_deliver_;
      }
      const bool proceed = DeliverOne(std::move(*part));
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        deliver_token_held_ = false;
      }
      if (!proceed) return;
    }
  }

  /// Accumulates one partition's output into the result (or the sink),
  /// in stream order. Returns false when delivery must stop (abort or
  /// sink error). Runs only under the delivery token, so the
  /// accumulator state needs no extra locking and the accumulation order
  /// — hence the result — is identical to the serial schedule.
  bool DeliverOne(ConvertedPartition part) {
    if (aborted()) return false;  // teardown drains the remaining slots
    ParseOutput& out = part.output;
    // Re-base quarantined records from partition coordinates to stream
    // coordinates (rows index the concatenated table, spans the logical
    // byte stream) — identical to the serial streaming path.
    for (robust::QuarantineEntry& entry : out.quarantine.entries()) {
      entry.row += rows_accumulated_;
      entry.begin += part.buffer_base;
      entry.end += part.buffer_base;
      result_.quarantine.Add(std::move(entry));
    }
    result_.timings += out.timings;
    result_.work += out.work;
    rows_accumulated_ += out.table.num_rows;
    ++result_.stats.num_partitions;
    result_.stats.bytes += part.partition_bytes;
    if (sink_ != nullptr) {
      const Status sunk = (*sink_)(std::move(out.table));
      if (!sunk.ok()) {
        Fail(sunk.WithContext("exec.sink"));
        ReleaseSlot();
        return false;
      }
    } else {
      tables_.push_back(std::move(out.table));
    }
    // The partition's buffers died with its task; return the admission
    // slot that stood for its working set.
    ReleaseSlot();
    return true;
  }

  void AddStageSeconds(double* accumulator, double seconds) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    *accumulator += seconds;
  }

  PipelineExecutor* executor_;
  const ExecOptions& options_;
  /// options_.base with any dialect resolved into a packed format.
  ParseOptions base_;
  const PartitionSink* sink_;
  obs::MetricsRegistry* metrics_;

  size_t partition_size_ = 0;
  int admission_limit_ = 0;
  /// Slots this run holds; incremented by the reader, decremented at
  /// delivery, drained at teardown after the morsel group joined.
  std::atomic<int> slots_held_{0};

  /// The morsel group every scan/sort/convert task of this ingest joins;
  /// points at a stack-local group alive for the whole pipeline section.
  TaskGroup* group_ = nullptr;

  /// Morsel-graph state (reorder window, scan chain, tokens).
  std::mutex state_mu_;
  std::deque<std::shared_ptr<RawChunk>> raw_ready_;
  bool scan_token_held_ = false;
  std::map<int64_t, ConvertedPartition> completed_;
  int64_t next_deliver_ = 0;
  bool deliver_token_held_ = false;

  /// Scan-chain state: owned by whichever morsel holds the scan token
  /// (hand-offs synchronise through state_mu_ and the scheduler).
  std::string carry_;
  int64_t stream_consumed_ = 0;
  bool first_ = true;

  /// Delivery-order accumulator: owned by the delivery-token holder.
  int64_t rows_accumulated_ = 0;

  std::atomic<bool> aborted_{false};
  std::mutex error_mu_;
  Status first_error_;
  std::mutex stats_mu_;

  std::vector<Table> tables_;
  IngestResult result_;
};

Result<IngestResult> PipelineExecutor::IngestFile(const std::string& path,
                                                  const ExecOptions& options) {
  FileSource source;
  PARPARAW_RETURN_NOT_OK_CTX(source.Open(path), "exec.open");
  PipelineRun run(this, options, nullptr);
  return run.Run(&source);
}

Result<IngestResult> PipelineExecutor::IngestBuffer(
    std::string_view input, const ExecOptions& options) {
  BufferSource source(input);
  PipelineRun run(this, options, nullptr);
  return run.Run(&source);
}

Result<IngestResult> PipelineExecutor::StreamFile(const std::string& path,
                                                  const ExecOptions& options,
                                                  const PartitionSink& sink) {
  FileSource source;
  PARPARAW_RETURN_NOT_OK_CTX(source.Open(path), "exec.open");
  PipelineRun run(this, options, &sink);
  return run.Run(&source);
}

Result<IngestResult> PipelineExecutor::StreamBuffer(
    std::string_view input, const ExecOptions& options,
    const PartitionSink& sink) {
  BufferSource source(input);
  PipelineRun run(this, options, &sink);
  return run.Run(&source);
}

std::vector<Result<IngestResult>> PipelineExecutor::IngestFiles(
    const std::vector<std::string>& paths, const ExecOptions& options,
    int max_concurrent_files) {
  std::vector<Result<IngestResult>> results(
      paths.size(), Result<IngestResult>(Status::Internal("not run")));
  if (paths.empty()) return results;
  const int workers = std::max(
      1, std::min<int>(max_concurrent_files,
                       static_cast<int>(paths.size())));
  std::atomic<size_t> next{0};
  std::mutex results_mu;
  const auto drain = [&] {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= paths.size()) return;
      Result<IngestResult> result = IngestFile(paths[i], options);
      std::lock_guard<std::mutex> lock(results_mu);
      results[i] = std::move(result);
    }
  };
  // The calling thread ingests alongside the spawned workers; every file
  // shares this executor's admission controller, so the memory budget
  // holds across the whole fleet — and all files' morsels share one
  // work-stealing pool, so an idle worker advances whichever file has
  // work.
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) threads.emplace_back(drain);
  drain();
  for (std::thread& t : threads) t.join();
  return results;
}

void PipelineExecutor::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(runs_mu_);
  for (std::function<void()>* abort : active_runs_) (*abort)();
}

}  // namespace exec
}  // namespace parparaw
