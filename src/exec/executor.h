#ifndef PARPARAW_EXEC_EXECUTOR_H_
#define PARPARAW_EXEC_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "exec/admission.h"
#include "plan/planner.h"
#include "util/result.h"

namespace parparaw {
namespace exec {

/// \brief Configuration of a pipelined ingest.
struct ExecOptions {
  /// Per-partition parse configuration. A schema is recommended (without
  /// one, every partition must observe the same column count).
  ParseOptions base;

  /// Bytes per partition (before any memory-budget clamp).
  size_t partition_size = 64 * 1024 * 1024;

  /// Hard cap on partitions resident across all stages of this ingest.
  /// 0 = auto: derived from base.memory_budget when one is set (the
  /// admission controller *clamps* concurrency to fit the budget, it
  /// never refuses), otherwise one partition per stage (4).
  int max_inflight_partitions = 0;

  /// Unused since the morsel-driven scheduler replaced the inter-stage
  /// queues (kept so existing call sites keep compiling). Backpressure is
  /// now solely the admission controller's: max_inflight_partitions
  /// bounds everything resident across scan/sort/convert.
  size_t queue_capacity = 2;

  /// Test hook invoked at each stage's entry for each partition:
  /// stage 0 = read, 1 = scan, 2 = sort, 3 = convert. Used by the test
  /// suite to throttle a stage (backpressure) or trigger cancellation at
  /// a deterministic point. Must be thread-safe; null = no hook.
  std::function<void(int stage, int64_t partition)> stage_hook;

  /// Cooperative wall-clock deadline for the whole ingest; time_point::max()
  /// = none. Checked at every partition hand-off (each stage's entry) and
  /// honoured by admission waits, so an expired ingest stops at the next
  /// boundary with StatusCode::kDeadlineExceeded through the same abort
  /// seam as Cancel() — partial output discarded, admission slots drained.
  /// The serving daemon sets this from the request's deadline_ms.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Occupancy/scheduling facts of one ingest, for tests and reporting.
struct IngestStats {
  int num_partitions = 0;
  /// Admission-controller limit that was enforced (resident partitions).
  int admission_limit = 0;
  /// High-water mark of partitions resident at once; <= admission_limit.
  int max_inflight = 0;
  int64_t bytes = 0;
  double wall_seconds = 0;
  /// Per-stage busy time (sum over partitions). With pipelining their sum
  /// exceeds wall_seconds — that surplus is exactly the overlap won.
  double read_seconds = 0;
  double scan_seconds = 0;
  double sort_seconds = 0;
  double convert_seconds = 0;
};

/// Result of a pipelined ingest. Mirrors StreamingResult's data surface
/// (the executor is the *real* counterpart of the modelled Fig. 7
/// schedule, so there is no modelled timeline here).
struct IngestResult {
  Table table;
  /// Under ErrorPolicy::kQuarantine: malformed records across all
  /// partitions, rows/spans stream-relative exactly as for
  /// StreamingParser.
  robust::QuarantineTable quarantine;
  /// Kernel level every partition's context/bitmap passes ran with.
  simd::KernelLevel kernel_level = simd::KernelLevel::kScalar;
  /// The per-stream tuning decision every partition ran under: sampled by
  /// the adaptive planner (plan.planned), the static defaults when planning
  /// was disabled, or the fallback after an injected sampling fault.
  plan::ParsePlan plan;
  StepTimings timings;
  WorkCounters work;
  IngestStats stats;
};

/// Consumes per-partition tables in stream order (bounded-memory
/// streaming: the executor then never concatenates). Returning an error
/// cancels the ingest.
using PartitionSink = std::function<Status(Table&&)>;

/// \brief Pipelined asynchronous ingestion executor — the paper's §5
/// streaming schedule (Fig. 7, Fig. 12) on the real CPU path.
///
/// Ingestion runs as a morsel graph over partitions:
///
///   read -> scan morsel -> sort morsel -> convert morsel -> deliver
///
/// The calling thread performs the sequential admission-gated reads;
/// each partition then flows through chained scan/sort/convert morsels
/// scheduled on the shared work-stealing ThreadPool (see
/// docs/architecture.md, "Scheduling"), so partition k's conversion
/// overlaps partition k+1's radix sort, k+2's scan and k+3's read on
/// whatever worker is idle — no thread is pinned to a stage, and several
/// concurrent ingests (multi-file, parparawd) interleave fairly on one
/// pool. The scan stage is the only sequentially-dependent one
/// (partition k+1's carry-over is known only after partition k's scan),
/// exactly like the carry dependency of the GPU pipeline; a scan token
/// serialises it in stream order while everything downstream overlaps
/// freely. Converted partitions are re-ordered and delivered in stream
/// order, so results are bit-identical to the serial schedule. Each
/// stage's data-parallel inner work still fans out over the same pool.
///
/// An admission controller clamps the number of partitions resident
/// across all stages so the total working set respects
/// ParseOptions::memory_budget (clamp, not refuse — at worst the
/// pipeline degrades to one partition in flight, the serial schedule).
/// Several files can be ingested concurrently through one executor; they
/// share the admission controller, so the budget holds globally.
///
/// Cancellation is cooperative: Cancel() aborts every in-flight ingest
/// at its next stage boundary with StatusCode::kCancelled. Faults from
/// the failpoint registry (exec.queue.*.push/pop, exec.read,
/// exec.ingest) surface as clean errors; the chaos suite asserts
/// clean-error-or-bit-identical against the serial path.
class PipelineExecutor {
 public:
  PipelineExecutor() = default;
  /// Shares `admission` (not owned, must outlive the executor) instead of
  /// the executor's private controller. Several executors bound to one
  /// controller admit partitions against a single global inflight count —
  /// the serving daemon binds one executor per request to the server's
  /// controller so every client's ingest draws from the same memory
  /// budget, while Cancel() stays per-request.
  explicit PipelineExecutor(AdmissionController* admission)
      : admission_(admission) {}
  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Ingests a file, reading it partition by partition (never
  /// materialising the whole file).
  Result<IngestResult> IngestFile(const std::string& path,
                                  const ExecOptions& options);

  /// Ingests an in-memory buffer through the same staged pipeline.
  Result<IngestResult> IngestBuffer(std::string_view input,
                                    const ExecOptions& options);

  /// Streaming flavours: each partition's table goes to `sink` in stream
  /// order instead of being concatenated; IngestResult::table stays
  /// empty. Memory stays bounded by the admission limit.
  Result<IngestResult> StreamFile(const std::string& path,
                                  const ExecOptions& options,
                                  const PartitionSink& sink);
  Result<IngestResult> StreamBuffer(std::string_view input,
                                    const ExecOptions& options,
                                    const PartitionSink& sink);

  /// Ingests several files concurrently (bounded by
  /// `max_concurrent_files`), sharing this executor's admission
  /// controller so memory_budget is respected globally. Results are in
  /// input order.
  std::vector<Result<IngestResult>> IngestFiles(
      const std::vector<std::string>& paths, const ExecOptions& options,
      int max_concurrent_files = 2);

  /// Cooperatively cancels every in-flight (and future) ingest on this
  /// executor: stages stop at their next boundary, queues unblock, and
  /// the ingest returns kCancelled. One-shot — construct a fresh
  /// executor to ingest again.
  void Cancel();

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The admission controller this executor's ingests draw slots from:
  /// the shared one when constructed with it, the private one otherwise.
  AdmissionController* admission() {
    return admission_ != nullptr ? admission_ : &owned_admission_;
  }

 private:
  friend class PipelineRun;

  /// Admission book-keeping shared by every ingest on this executor (and,
  /// when admission_ points at a shared controller, by every ingest on
  /// every executor bound to it).
  AdmissionController owned_admission_;
  AdmissionController* admission_ = nullptr;

  std::atomic<bool> cancelled_{false};
  /// Abort hooks of in-flight runs, fired by Cancel().
  std::mutex runs_mu_;
  std::vector<std::function<void()>*> active_runs_;
};

}  // namespace exec
}  // namespace parparaw

#endif  // PARPARAW_EXEC_EXECUTOR_H_
