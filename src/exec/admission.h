#ifndef PARPARAW_EXEC_ADMISSION_H_
#define PARPARAW_EXEC_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>

namespace parparaw {
namespace exec {

/// \brief Counting admission controller shared by concurrent ingests.
///
/// Tracks how many memory-bearing units (partitions resident in the
/// pipeline, requests in flight on the network daemon) exist at once and
/// blocks producers once a limit is reached. Extracted from
/// PipelineExecutor so that *several* executors — e.g. one per daemon
/// connection, so cancel-on-disconnect stays per-client — can share one
/// controller and therefore one global memory budget: whoever acquires
/// counts against everyone's limit, which is exactly the multi-tenant
/// backpressure the serving layer needs.
///
/// The limit is a parameter of Acquire rather than controller state
/// because each ingest derives its own limit from its options (and they
/// must all still count against the same inflight total); heterogeneous
/// limits resolve conservatively — a waiter admits itself only below its
/// own limit.
class AdmissionController {
 public:
  AdmissionController() = default;
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until the inflight count is below `limit` or `stop()` returns
  /// true, then takes one slot. Returns the inflight count *after* the
  /// acquisition (>= 1), or -1 when stopped. `stop` is evaluated under
  /// the controller mutex; keep it cheap (an atomic load).
  int Acquire(int limit, const std::function<bool()>& stop);

  /// Takes a slot only when one is free under `limit` — the queue-depth
  /// shedding primitive (the daemon answers BUSY instead of waiting).
  /// Returns the post-acquisition count, or -1 when saturated.
  int TryAcquire(int limit);

  /// Deadline-aware Acquire: waits until a slot frees under `limit`,
  /// `stop()` turns true, or `deadline` passes — the primitive behind
  /// request deadlines (a request with time left waits for admission
  /// instead of being shed, but never waits past its budget). Returns
  /// the post-acquisition count, kStopped, or kTimedOut. The stop flag
  /// wins over the deadline when both hold at wakeup, matching
  /// Acquire's contract that a stopped waiter never takes a slot.
  static constexpr int kStopped = -1;
  static constexpr int kTimedOut = -2;
  int AcquireFor(int limit, const std::function<bool()>& stop,
                 std::chrono::steady_clock::time_point deadline);

  /// Returns `n` slots and wakes all waiters. Returns the new count.
  int Release(int n = 1);

  /// Wakes every waiter without changing the count. Taking the mutex
  /// first orders a caller's stop-flag store before the wakeup, so an
  /// Acquire cannot miss it (the PipelineRun::Abort idiom).
  void Wake();

  /// Current inflight count (for gauges and the slot-leak assertions in
  /// tests/serve_concurrency_test.cc).
  int inflight() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
};

}  // namespace exec
}  // namespace parparaw

#endif  // PARPARAW_EXEC_ADMISSION_H_
