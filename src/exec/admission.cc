#include "exec/admission.h"

namespace parparaw {
namespace exec {

int AdmissionController::Acquire(int limit, const std::function<bool()>& stop) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return stop() || inflight_ < limit; });
  if (stop()) return -1;
  return ++inflight_;
}

int AdmissionController::AcquireFor(
    int limit, const std::function<bool()>& stop,
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop()) return kStopped;
    if (inflight_ < limit) return ++inflight_;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look under the mutex: a release (or stop) that raced
      // the timeout still wins, so a free slot is never refused just
      // because the clock ticked first.
      if (stop()) return kStopped;
      if (inflight_ < limit) return ++inflight_;
      return kTimedOut;
    }
  }
}

int AdmissionController::TryAcquire(int limit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_ >= limit) return -1;
  return ++inflight_;
}

int AdmissionController::Release(int n) {
  int now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= n;
    now = inflight_;
  }
  cv_.notify_all();
  return now;
}

void AdmissionController::Wake() {
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
}

int AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace exec
}  // namespace parparaw
