#ifndef PARPARAW_EXEC_BOUNDED_QUEUE_H_
#define PARPARAW_EXEC_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "robust/failpoint.h"
#include "util/status.h"

namespace parparaw {
namespace exec {

/// \brief Bounded blocking queue connecting two pipeline stages.
///
/// The executor's stage graph is a chain of these: the producer stage
/// Push()es partitions, the consumer Pop()s them, and the bounded
/// capacity is the backpressure — a stalled consumer stops its producer
/// (and transitively the reader) after `capacity` partitions, so the
/// pipeline's working set stays clamped no matter how far ahead the disk
/// could run. Capacity 2 gives the paper's double buffering (Fig. 7): one
/// partition in flight downstream while the next is being produced.
///
/// Shutdown protocol:
///   * Close()  — normal end of stream. Pop() drains remaining items,
///     then returns std::nullopt.
///   * Abort()  — error/cancellation path. Pending and future Push/Pop
///     calls return immediately (Push with kCancelled, Pop with nullopt);
///     queued items are dropped.
///
/// Every hand-off is a failpoint site: Push checks `<name>.push`, Pop
/// checks `<name>.pop` (names like "exec.queue.scan"), so the chaos suite
/// can inject faults into the exact points where partitions change
/// threads. Queue depth is exported as the `<name>.depth` gauge when a
/// registry is supplied.
///
/// Thread safety: any number of producers/consumers (the executor uses it
/// SPSC; multi-file ingestion shares nothing but the admission
/// controller).
template <typename T>
class BoundedQueue {
 public:
  /// `name` must outlive the queue (string literals in the executor).
  BoundedQueue(const char* name, size_t capacity,
               obs::MetricsRegistry* metrics = nullptr)
      : name_(name),
        push_failpoint_(std::string(name) + ".push"),
        pop_failpoint_(std::string(name) + ".pop"),
        capacity_(capacity < 1 ? 1 : capacity) {
    if (metrics != nullptr && metrics->enabled()) {
      depth_gauge_ = metrics->GetGauge(std::string(name) + ".depth");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (backpressure), then enqueues. Returns
  /// kCancelled after Abort(), kInternal after Close() (push-after-close
  /// is a producer bug: a consumer that already observed closed+empty has
  /// exited, so the item would be silently lost), or the injected error
  /// when the push failpoint fires (the item is then NOT enqueued — the
  /// hand-off failed).
  Status Push(T item) {
    PARPARAW_RETURN_NOT_OK(
        robust::CheckFailpoint(push_failpoint_.c_str()));
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return items_.size() < capacity_ || aborted_ || closed_;
    });
    if (aborted_) {
      return Status::Cancelled(std::string(name_) +
                               ": pipeline aborted during push");
    }
    if (closed_) {
      return Status::Internal(
          std::string(name_) +
          ": push after close — the producer outlived end-of-stream, and a "
          "drained consumer would silently lose the item");
    }
    items_.push_back(std::move(item));
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(items_.size()));
    }
    lock.unlock();
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Blocks until an item, Close() or Abort(). Returns the item, or
  /// nullopt when the stream ended (closed and drained, or aborted).
  /// `injected` (optional) receives a fired pop-failpoint error — the
  /// hand-off still yields the item so faults never lose partitions
  /// (mirroring ParallelFor's contract); callers propagate the error
  /// after disposing of it.
  std::optional<T> Pop(Status* injected = nullptr) {
    if (injected != nullptr) {
      *injected = robust::CheckFailpoint(pop_failpoint_.c_str());
    }
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || closed_ || aborted_;
    });
    if (aborted_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (depth_gauge_ != nullptr) {
      depth_gauge_->Set(static_cast<int64_t>(items_.size()));
    }
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Normal end of stream: consumers drain what is queued, then see
  /// nullopt. Producers blocked on a full queue wake up and get the
  /// push-after-close error instead of hanging.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Error/cancellation: unblocks everyone immediately and drops queued
  /// items (their destructors release partition buffers).
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
      items_.clear();
      if (depth_gauge_ != nullptr) depth_gauge_->Set(0);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const char* name_;
  const std::string push_failpoint_;
  const std::string pop_failpoint_;
  const size_t capacity_;
  obs::Gauge* depth_gauge_ = nullptr;

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace exec
}  // namespace parparaw

#endif  // PARPARAW_EXEC_BOUNDED_QUEUE_H_
