#ifndef PARPARAW_MFIRA_SWAR_H_
#define PARPARAW_MFIRA_SWAR_H_

#include <cstdint>
#include <vector>

namespace parparaw {

/// \brief Branchless SWAR symbol matcher, §4.5 / Table 2.
///
/// Delimiter-separated formats distinguish only a handful of symbols (field
/// and record delimiters, quotes, escapes), so instead of a 256-entry
/// lookup table the matcher packs the symbols into the bytes of 32-bit
/// "LU-registers" and compares four at a time:
///
///   c    = LU XOR broadcast(s)            (matching byte becomes 0x00)
///   swar = (c - 0x01010101) & ~c & 0x80808080   (Mycroft null-byte test)
///   idx  = bfind(swar) >> 3               (byte position of the match;
///                                          bfind(0) = 0xFFFFFFFF)
///   result = min over registers, then min with the catch-all index.
///
/// The returned index identifies the matched symbol; MatchGroup additionally
/// maps it through the symbol-group row of Table 2 (several symbols may
/// share a group). No branches are executed on the match path.
class SwarMatcher {
 public:
  SwarMatcher() = default;

  /// Builds a matcher over `symbols` (at most 16, all distinct). Index i of
  /// a match corresponds to symbols[i]; the catch-all index is
  /// symbols.size().
  explicit SwarMatcher(const std::vector<uint8_t>& symbols);

  int num_symbols() const { return num_symbols_; }

  /// Index of the catch-all ("any other symbol") result.
  int catch_all_index() const { return num_symbols_; }

  /// Returns the index of `symbol` in the lookup set, or catch_all_index().
  /// Branchless except the register loop (fixed trip count).
  int Match(uint8_t symbol) const;

  /// Raw LU-register words (for tests mirroring Table 2).
  const std::vector<uint32_t>& lookup_registers() const { return lu_; }

 private:
  std::vector<uint32_t> lu_;
  int num_symbols_ = 0;
};

/// Mycroft's has-zero-byte test H(x) from Table 2.
inline uint32_t SwarHasZeroByte(uint32_t x) {
  return (x - 0x01010101u) & ~x & 0x80808080u;
}

/// 64-bit variant of H(x): eight symbols per probe. Used by the portable
/// SWAR parsing kernels (src/simd) to scan for special symbols a word at a
/// time without vector intrinsics.
inline uint64_t SwarHasZeroByte64(uint64_t x) {
  return (x - 0x0101010101010101ull) & ~x & 0x8080808080808080ull;
}

/// Broadcasts a symbol into every byte of a 64-bit word (the s-register of
/// Table 2, widened).
inline uint64_t SwarBroadcast64(uint8_t symbol) {
  return 0x0101010101010101ull * symbol;
}

}  // namespace parparaw

#endif  // PARPARAW_MFIRA_SWAR_H_
