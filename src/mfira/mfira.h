#ifndef PARPARAW_MFIRA_MFIRA_H_
#define PARPARAW_MFIRA_MFIRA_H_

#include <array>
#include <cstdint>

#include "util/bit_util.h"

namespace parparaw {

/// \brief Multi-fragment in-register array (MFIRA), §4.5 / Fig. 8.
///
/// GPUs cannot dynamically index the register file, but individual bits of a
/// register can be addressed with the BFI/BFE intrinsics. MFIRA therefore
/// decomposes each logical item of `BitsPerItem` bits into fragments of
/// `kFragmentBits` bits (a power of two, so bit offsets are computed with a
/// shift instead of a multiply) and spreads the fragments of item `i` across
/// `kNumFragments` 32-bit words, each at bit offset `i << log2(kFragmentBits)`.
///
/// On the CPU the words live in ordinary members; the access pattern — and
/// the parameter derivation from Fig. 8 — is reproduced exactly:
///   avail bits per fragment  a = floor(32 / NumItems)
///   bits per fragment        k = 2^floor(log2 a)
///   fragments per item       ceil(BitsPerItem / k)
///
/// The data structure backs the state-transition vectors, symbol matching
/// tables, and (small) transition tables of the DFA simulation.
template <int NumItems, int BitsPerItem>
class Mfira {
  static_assert(NumItems >= 1 && NumItems <= 32,
                "MFIRA items must fit a 32-bit register row");
  static_assert(BitsPerItem >= 1 && BitsPerItem <= 32, "item width");

 public:
  /// Derivation of the physical layout, matching Fig. 8.
  static constexpr int kAvailBitsPerFragment = 32 / NumItems;
  static_assert(kAvailBitsPerFragment >= 1,
                "too many items for one register row");
  static constexpr int ComputeFragmentBits() {
    int k = 1;
    while (k * 2 <= kAvailBitsPerFragment) k *= 2;
    return k;
  }
  static constexpr int kFragmentBits = ComputeFragmentBits();
  static constexpr int kNumFragments =
      (BitsPerItem + kFragmentBits - 1) / kFragmentBits;
  static constexpr int kLog2FragmentBits = []() {
    int log = 0;
    int k = kFragmentBits;
    while (k > 1) {
      k >>= 1;
      ++log;
    }
    return log;
  }();

  constexpr Mfira() : registers_{} {}

  static constexpr int size() { return NumItems; }
  static constexpr int bits_per_item() { return BitsPerItem; }

  /// Reads item `i`, reassembling it from its fragments (BFE per fragment).
  uint32_t Get(int i) const {
    // Bit offset computed with a shift, never a multiply (§4.5).
    const uint32_t pos = static_cast<uint32_t>(i) << kLog2FragmentBits;
    uint32_t value = 0;
    for (int f = 0; f < kNumFragments; ++f) {
      const uint32_t fragment =
          bit_util::BitFieldExtract(registers_[f], pos, kFragmentBits);
      value |= fragment << (f * kFragmentBits);
    }
    // Mask away bits beyond the logical item width (the top fragment may
    // carry padding).
    if constexpr (BitsPerItem < 32) {
      value &= (1u << BitsPerItem) - 1u;
    }
    return value;
  }

  /// Writes item `i`, distributing its fragments (BFI per fragment).
  void Set(int i, uint32_t value) {
    const uint32_t pos = static_cast<uint32_t>(i) << kLog2FragmentBits;
    for (int f = 0; f < kNumFragments; ++f) {
      const uint32_t fragment = value >> (f * kFragmentBits);
      registers_[f] =
          bit_util::BitFieldInsert(registers_[f], fragment, pos, kFragmentBits);
    }
  }

  /// Raw register words (for tests mirroring Fig. 8's physical view).
  const std::array<uint32_t, kNumFragments>& registers() const {
    return registers_;
  }

  bool operator==(const Mfira& other) const {
    for (int i = 0; i < NumItems; ++i) {
      if (Get(i) != other.Get(i)) return false;
    }
    return true;
  }

 private:
  std::array<uint32_t, kNumFragments> registers_;
};

}  // namespace parparaw

#endif  // PARPARAW_MFIRA_MFIRA_H_
