#include "mfira/swar.h"

#include <algorithm>

#include "util/bit_util.h"

namespace parparaw {

SwarMatcher::SwarMatcher(const std::vector<uint8_t>& symbols)
    : num_symbols_(static_cast<int>(symbols.size())) {
  // Pack symbols into the bytes of consecutive LU-registers; byte j of
  // register r holds symbols[4 * r + j] (Table 2's lookup row).
  const size_t num_registers = (symbols.size() + 3) / 4;
  lu_.assign(num_registers, 0);
  for (size_t r = 0; r < num_registers; ++r) {
    for (size_t j = 0; j < 4; ++j) {
      const size_t i = 4 * r + j;
      // Padding bytes replicate symbols[0]: a padding match then always
      // loses the min against the true match at index 0, so padding can
      // never produce a wrong index (relevant when 0x00 is a real symbol).
      const uint8_t byte = i < symbols.size() ? symbols[i] : symbols[0];
      lu_[r] |= static_cast<uint32_t>(byte) << (j * 8);
    }
  }
}

int SwarMatcher::Match(uint8_t symbol) const {
  // Broadcast the read symbol into every byte of the s-register.
  const uint32_t s = 0x01010101u * symbol;
  // No-match sentinel: bfind(0) == 0xFFFFFFFF, >> 3 == 0x1FFFFFFF.
  uint32_t idx = 0x1FFFFFFFu;
  for (size_t r = 0; r < lu_.size(); ++r) {
    const uint32_t c = lu_[r] ^ s;
    const uint32_t swar = SwarHasZeroByte(c);
    // Find-first-set (the paper uses bfind, i.e. find-MSB; we use the LSB
    // variant so that the padding replicas of symbols[0] in a partially
    // filled register can never shadow the true lowest match). Position is
    // 0xFFFFFFFF if no byte matched, exactly like bfind on zero.
    const uint32_t ffs =
        swar == 0 ? 0xFFFFFFFFu
                  : static_cast<uint32_t>(bit_util::FindLsb(swar));
    const uint32_t reg_idx = ffs >> 3;
    // Registers beyond the first offset their byte index by 4 * r; the
    // no-match value stays far above any real index.
    const uint32_t global_idx =
        reg_idx == 0x1FFFFFFFu ? reg_idx
                               : reg_idx + static_cast<uint32_t>(4 * r);
    idx = std::min(idx, global_idx);
  }
  // Map the no-match sentinel (and any padding-byte match, which sits past
  // num_symbols_) to the catch-all index with a min, exactly as the paper
  // does (a min is 1-2 cycles and keeps the path branchless).
  return static_cast<int>(std::min(idx, static_cast<uint32_t>(num_symbols_)));
}

}  // namespace parparaw
