#ifndef PARPARAW_JSON_JSON_LINES_H_
#define PARPARAW_JSON_JSON_LINES_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "util/result.h"

namespace parparaw {

/// \brief JSON-lines support built on the generic DFA framework.
///
/// The paper contrasts ParPaRaw's FSM simulation with JSON parsers that
/// must abandon the FSM to vectorise (Mison, simdjson, §2/§6). This module
/// demonstrates the flip side: because ParPaRaw only needs a DFA, pointing
/// it at newline-delimited JSON is a format definition, not a new
/// algorithm. The DFA tracks string/escape context so quoted newlines and
/// escaped quotes inside JSON strings never split records; each record's
/// raw text then passes through a shallow top-level field extractor.

/// The JSONL format DFA: one record per top-level newline; strings with
/// backslash escapes are opaque; every record byte is field data (records
/// are single-column raw JSON).
Result<Format> JsonLinesFormat();

/// Extracts the raw scalar value of top-level key `key` from a JSON
/// object: strings are unescaped, numbers/bools are returned verbatim,
/// `null` and missing keys yield nullopt. Nested objects/arrays are
/// skipped structurally. Malformed input yields an error.
Result<std::optional<std::string>> ExtractJsonField(std::string_view object,
                                                    std::string_view key);

/// Field request for ParseJsonLines: a top-level key plus the output type.
struct JsonField {
  std::string key;
  DataType type = DataType::String();

  JsonField() = default;
  JsonField(std::string key_in, DataType type_in)
      : key(std::move(key_in)), type(type_in) {}
};

/// \brief Parses newline-delimited JSON into typed columns.
///
/// Records are identified by the massively parallel ParPaRaw pipeline
/// (JsonLinesFormat DFA); each record's requested top-level fields are
/// then extracted and converted in parallel. Missing keys and JSON nulls
/// become NULL; conversion failures set the record's reject flag.
Result<ParseOutput> ParseJsonLines(std::string_view input,
                                   const std::vector<JsonField>& fields,
                                   ThreadPool* pool = nullptr,
                                   size_t chunk_size = 31);

}  // namespace parparaw

#endif  // PARPARAW_JSON_JSON_LINES_H_
