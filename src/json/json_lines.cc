#include "json/json_lines.h"

#include <algorithm>
#include <cstring>

#include "convert/numeric.h"
#include "convert/temporal.h"
#include "core/parser.h"
#include "text/unicode.h"

namespace parparaw {

Result<Format> JsonLinesFormat() {
  DfaBuilder b;
  const int eor = b.AddState("EOR", true);   // before a record (start)
  const int rec = b.AddState("REC", true);   // inside a record, top level
  const int str = b.AddState("STR", false);  // inside a JSON string
  const int esc = b.AddState("ESC", false);  // after a backslash in a string
  b.SetStartState(eor);

  const int g_nl = b.AddSymbol('\n');
  const int g_quote = b.AddSymbol('"');
  const int g_backslash = b.AddSymbol('\\');

  // Newline at top level delimits a record; consecutive newlines (empty
  // lines) are skipped. Inside a string a raw newline is data (lenient:
  // strict JSON forbids it, but splitting there would corrupt the record).
  b.SetTransition(eor, g_nl, eor, kSymbolControl);
  b.SetTransition(rec, g_nl, eor, kSymbolRecordDelimiter | kSymbolControl);
  b.SetTransition(str, g_nl, str, kSymbolData);
  b.SetTransition(esc, g_nl, str, kSymbolData);

  // Quotes toggle string context; they stay part of the record's raw text.
  b.SetTransition(eor, g_quote, str, kSymbolData);
  b.SetTransition(rec, g_quote, str, kSymbolData);
  b.SetTransition(str, g_quote, rec, kSymbolData);
  b.SetTransition(esc, g_quote, str, kSymbolData);

  // Backslash escapes the next symbol inside strings.
  b.SetTransition(eor, g_backslash, rec, kSymbolData);
  b.SetTransition(rec, g_backslash, rec, kSymbolData);
  b.SetTransition(str, g_backslash, esc, kSymbolData);
  b.SetTransition(esc, g_backslash, str, kSymbolData);

  b.SetDefaultTransition(eor, rec, kSymbolData);
  b.SetDefaultTransition(rec, rec, kSymbolData);
  b.SetDefaultTransition(str, str, kSymbolData);
  b.SetDefaultTransition(esc, str, kSymbolData);

  PARPARAW_ASSIGN_OR_RETURN(Dfa dfa, b.Build());
  Format format;
  format.dfa = std::move(dfa);
  format.record_delimiter = '\n';
  format.field_delimiter = '\n';  // single-column records
  format.mid_record_state_mask =
      static_cast<uint16_t>((1u << rec) | (1u << str) | (1u << esc));
  format.name = "json-lines";
  return format;
}

namespace {

inline void SkipWs(std::string_view s, size_t* pos) {
  while (*pos < s.size() &&
         (s[*pos] == ' ' || s[*pos] == '\t' || s[*pos] == '\n' ||
          s[*pos] == '\r')) {
    ++*pos;
  }
}

// Parses a JSON string starting at the opening quote; appends the
// unescaped contents to `out` (when non-null) and advances past the
// closing quote.
Status ParseJsonString(std::string_view s, size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') {
    return Status::ParseError("expected '\"'");
  }
  ++*pos;
  while (*pos < s.size()) {
    const char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return Status::OK();
    }
    if (c != '\\') {
      if (out != nullptr) out->push_back(c);
      ++*pos;
      continue;
    }
    // Escape sequence.
    if (*pos + 1 >= s.size()) return Status::ParseError("dangling escape");
    const char e = s[*pos + 1];
    *pos += 2;
    char decoded;
    switch (e) {
      case '"':
        decoded = '"';
        break;
      case '\\':
        decoded = '\\';
        break;
      case '/':
        decoded = '/';
        break;
      case 'b':
        decoded = '\b';
        break;
      case 'f':
        decoded = '\f';
        break;
      case 'n':
        decoded = '\n';
        break;
      case 'r':
        decoded = '\r';
        break;
      case 't':
        decoded = '\t';
        break;
      case 'u': {
        if (*pos + 4 > s.size()) return Status::ParseError("short \\u");
        uint32_t cp = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = s[*pos + i];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= h - '0';
          } else if (h >= 'a' && h <= 'f') {
            cp |= h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            cp |= h - 'A' + 10;
          } else {
            return Status::ParseError("bad \\u digit");
          }
        }
        *pos += 4;
        // Surrogate pair?
        if (IsUtf16HighSurrogate(static_cast<uint16_t>(cp)) &&
            *pos + 6 <= s.size() && s[*pos] == '\\' && s[*pos + 1] == 'u') {
          uint32_t low = 0;
          bool ok = true;
          for (int i = 0; i < 4 && ok; ++i) {
            const char h = s[*pos + 2 + i];
            low <<= 4;
            if (h >= '0' && h <= '9') {
              low |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              low |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              low |= h - 'A' + 10;
            } else {
              ok = false;
            }
          }
          if (ok && IsUtf16LowSurrogate(static_cast<uint16_t>(low))) {
            *pos += 6;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
        }
        if (out != nullptr) {
          uint8_t buf[4];
          const int n = EncodeUtf8(cp, buf);
          if (n == 0) return Status::ParseError("bad code point");
          out->append(reinterpret_cast<char*>(buf), n);
        }
        continue;
      }
      default:
        return Status::ParseError("unknown escape");
    }
    if (out != nullptr) out->push_back(decoded);
  }
  return Status::ParseError("unterminated string");
}

// Skips any JSON value starting at *pos, or captures a scalar's raw text /
// unescaped string into `out` (nullopt for JSON null).
Status SkipOrCaptureValue(std::string_view s, size_t* pos,
                          std::optional<std::string>* out) {
  SkipWs(s, pos);
  if (*pos >= s.size()) return Status::ParseError("missing value");
  const char c = s[*pos];
  if (c == '"') {
    std::string text;
    PARPARAW_RETURN_NOT_OK(
        ParseJsonString(s, pos, out != nullptr ? &text : nullptr));
    if (out != nullptr) *out = std::move(text);
    return Status::OK();
  }
  if (c == '{' || c == '[') {
    // Structural skip with string awareness.
    int depth = 0;
    while (*pos < s.size()) {
      const char d = s[*pos];
      if (d == '"') {
        PARPARAW_RETURN_NOT_OK(ParseJsonString(s, pos, nullptr));
        continue;
      }
      if (d == '{' || d == '[') ++depth;
      if (d == '}' || d == ']') --depth;
      ++*pos;
      if (depth == 0) {
        if (out != nullptr) {
          // Nested values are surfaced as their raw text.
          return Status::NotImplemented(
              "nested values cannot be extracted as scalars");
        }
        return Status::OK();
      }
    }
    return Status::ParseError("unterminated object/array");
  }
  // Scalar literal: number, true, false, null.
  const size_t begin = *pos;
  while (*pos < s.size() && s[*pos] != ',' && s[*pos] != '}' &&
         s[*pos] != ']' && s[*pos] != ' ' && s[*pos] != '\t' &&
         s[*pos] != '\n' && s[*pos] != '\r') {
    ++*pos;
  }
  if (out != nullptr) {
    const std::string_view literal = s.substr(begin, *pos - begin);
    if (literal == "null") {
      *out = std::nullopt;
    } else {
      *out = std::string(literal);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::optional<std::string>> ExtractJsonField(std::string_view object,
                                                    std::string_view key) {
  size_t pos = 0;
  SkipWs(object, &pos);
  if (pos >= object.size() || object[pos] != '{') {
    return Status::ParseError("record is not a JSON object");
  }
  ++pos;
  SkipWs(object, &pos);
  if (pos < object.size() && object[pos] == '}') {
    return std::optional<std::string>(std::nullopt);
  }
  while (pos < object.size()) {
    std::string name;
    PARPARAW_RETURN_NOT_OK(ParseJsonString(object, &pos, &name));
    SkipWs(object, &pos);
    if (pos >= object.size() || object[pos] != ':') {
      return Status::ParseError("expected ':'");
    }
    ++pos;
    if (name == key) {
      std::optional<std::string> value;
      PARPARAW_RETURN_NOT_OK(SkipOrCaptureValue(object, &pos, &value));
      // The object must still be well-formed after the value.
      SkipWs(object, &pos);
      if (pos >= object.size() ||
          (object[pos] != ',' && object[pos] != '}')) {
        return Status::ParseError("expected ',' or '}' after value");
      }
      return value;
    }
    PARPARAW_RETURN_NOT_OK(SkipOrCaptureValue(object, &pos, nullptr));
    SkipWs(object, &pos);
    if (pos < object.size() && object[pos] == ',') {
      ++pos;
      SkipWs(object, &pos);
      continue;
    }
    if (pos < object.size() && object[pos] == '}') {
      return std::optional<std::string>(std::nullopt);  // key absent
    }
    return Status::ParseError("expected ',' or '}'");
  }
  return Status::ParseError("unterminated object");
}

Result<ParseOutput> ParseJsonLines(std::string_view input,
                                   const std::vector<JsonField>& fields,
                                   ThreadPool* pool, size_t chunk_size) {
  // Step 1: record identification with the massively parallel pipeline.
  ParseOptions record_options;
  PARPARAW_ASSIGN_OR_RETURN(record_options.format, JsonLinesFormat());
  record_options.pool = pool;
  record_options.chunk_size = chunk_size;
  PARPARAW_ASSIGN_OR_RETURN(ParseOutput records,
                            Parser::Parse(input, record_options));
  Column empty_column(DataType::String());
  empty_column.Allocate(0);
  const Column& raw = records.table.columns.empty()
                          ? empty_column
                          : records.table.columns[0];
  const int64_t rows = records.table.num_rows;
  if (pool == nullptr) pool = ThreadPool::Default();

  // Step 2: shallow field extraction + conversion, parallel over rows.
  ParseOutput output;
  output.work = records.work;
  output.timings = records.timings;
  output.table.num_rows = rows;
  output.table.rejected.assign(rows, 0);
  for (const JsonField& field : fields) {
    output.table.schema.AddField(Field(field.key, field.type));
    Column column(field.type);
    column.Allocate(rows);
    output.table.columns.push_back(std::move(column));
  }
  // Strings need sequential appends; extract values first (parallel),
  // then materialise.
  std::vector<std::vector<std::optional<std::string>>> extracted(
      fields.size());
  for (auto& v : extracted) v.resize(rows);
  std::vector<uint8_t> record_bad(rows, 0);
  ParallelFor(pool, 0, rows, [&](int64_t b, int64_t e) {
    for (int64_t r = b; r < e; ++r) {
      const std::string_view object =
          raw.IsNull(r) ? std::string_view() : raw.StringValue(r);
      for (size_t f = 0; f < fields.size(); ++f) {
        auto value = ExtractJsonField(object, fields[f].key);
        if (!value.ok()) {
          record_bad[r] = 1;
          extracted[f][r] = std::nullopt;
        } else {
          extracted[f][r] = *std::move(value);
        }
      }
    }
  });

  for (size_t f = 0; f < fields.size(); ++f) {
    Column& column = output.table.columns[f];
    if (fields[f].type.id == TypeId::kString) {
      Column rebuilt(fields[f].type);
      for (int64_t r = 0; r < rows; ++r) {
        if (extracted[f][r].has_value()) {
          rebuilt.AppendString(*extracted[f][r]);
        } else {
          rebuilt.AppendNull();
        }
      }
      if (rows == 0) rebuilt.Allocate(0);
      column = std::move(rebuilt);
      continue;
    }
    for (int64_t r = 0; r < rows; ++r) {
      bool ok = false;
      if (extracted[f][r].has_value()) {
        const std::string& text = *extracted[f][r];
        switch (fields[f].type.id) {
          case TypeId::kBool: {
            bool v;
            ok = ParseBool(text, &v);
            if (ok) column.SetValue<uint8_t>(r, v ? 1 : 0);
            break;
          }
          case TypeId::kInt64: {
            int64_t v;
            ok = ParseInt64(text, &v);
            if (ok) column.SetValue<int64_t>(r, v);
            break;
          }
          case TypeId::kFloat64: {
            double v;
            ok = ParseFloat64(text, &v);
            if (ok) column.SetValue<double>(r, v);
            break;
          }
          case TypeId::kTimestampMicros: {
            int64_t v;
            ok = ParseTimestampMicros(text, &v);
            if (ok) column.SetValue<int64_t>(r, v);
            break;
          }
          case TypeId::kDate32: {
            int32_t v;
            ok = ParseDate32(text, &v);
            if (ok) column.SetValue<int32_t>(r, v);
            break;
          }
          default:
            break;
        }
        if (!ok) output.table.rejected[r] = 1;
      }
      if (!ok) column.SetNull(r);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    if (record_bad[r]) output.table.rejected[r] = 1;
  }
  return output;
}

}  // namespace parparaw
