#include "workload/request_stream.h"

#include <cmath>

namespace parparaw {

double ZipfPick::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

ZipfPick::ZipfPick(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(Zeta(n_, theta)),
      eta_((1.0 - std::pow(2.0 / n_, 1.0 - theta)) /
           (1.0 - Zeta(2, theta) / zetan_)),
      rng_(seed) {}

uint64_t ZipfPick::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

RequestStream::RequestStream(const Options& options)
    : options_(options),
      rng_(options.seed),
      zipf_(options.num_datasets, options.zipf_theta,
            options.seed ^ 0xD1B54A32D192ED03ULL),
      uniform_(options.num_datasets, options.seed ^ 0x8CB92BA72F3D8DD7ULL),
      mix_total_(options.mix.parse + options.mix.stream_parse +
                 options.mix.query + options.mix.ping) {
  if (mix_total_ <= 0) mix_total_ = 1.0;
}

Request RequestStream::Next() {
  Request request;
  request.sequence = sequence_++;
  request.dataset = options_.zipf ? zipf_.Next() : uniform_.Next();

  const double pick = rng_.NextDouble() * mix_total_;
  const RequestMix& mix = options_.mix;
  if (pick < mix.parse) {
    request.kind = RequestKind::kParse;
  } else if (pick < mix.parse + mix.stream_parse) {
    request.kind = RequestKind::kStreamParse;
  } else if (pick < mix.parse + mix.stream_parse + mix.query) {
    request.kind = RequestKind::kQuery;
  } else {
    request.kind = RequestKind::kPing;
  }

  if (options_.deadline_fraction > 0 &&
      rng_.NextDouble() < options_.deadline_fraction) {
    const uint32_t lo = options_.deadline_min_ms;
    const uint32_t hi =
        options_.deadline_max_ms < lo ? lo : options_.deadline_max_ms;
    request.deadline_ms =
        lo + static_cast<uint32_t>(rng_.NextRange(hi - lo + 1));
  }

  if (options_.arrivals_per_sec > 0) {
    // Poisson arrivals: exponential inter-arrival times. Clamp u away
    // from 0 so the log stays finite.
    double u = rng_.NextDouble();
    if (u < 1e-12) u = 1e-12;
    request.inter_arrival_us = static_cast<int64_t>(
        -std::log(u) * 1e6 / options_.arrivals_per_sec);
  }
  return request;
}

}  // namespace parparaw
