#ifndef PARPARAW_WORKLOAD_GENERATORS_H_
#define PARPARAW_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>

#include "columnar/schema.h"

namespace parparaw {

/// Deterministic synthetic dataset generators standing in for the paper's
/// evaluation datasets (see DESIGN.md §2 for the substitution rationale).
/// All generators are seeded and reproducible.

/// \brief yelp-reviews-like CSV (§5): 9 columns, every field enclosed in
/// double-quotes, long text reviews containing commas, newlines, and
/// escaped ("") quotes; ~720 bytes per record on average. Columns:
/// review_id, user_id, business_id, stars(int), useful(int), funny(int),
/// cool(int), text(string), date(timestamp).
std::string GenerateYelpLike(uint64_t seed, size_t target_bytes);

/// Schema matching GenerateYelpLike's columns.
Schema YelpSchema();

/// \brief NYC-taxi-trips-like CSV (§5): 17 numeric/temporal columns,
/// ~88 bytes per record and ~5.2 bytes per field, unquoted — the emphasis
/// is on data type conversion.
std::string GenerateTaxiLike(uint64_t seed, size_t target_bytes);

/// Schema matching GenerateTaxiLike's columns.
Schema TaxiSchema();

/// \brief Skew variant (Fig. 11 right): the base dataset with one single
/// record whose text field is `giant_field_bytes` long inserted in the
/// middle. `yelp_like` selects which base generator is used.
std::string GenerateSkewed(uint64_t seed, size_t target_bytes,
                           size_t giant_field_bytes, bool yelp_like);

/// Options for the randomised CSV generator driving the property tests.
struct RandomCsvOptions {
  int num_records = 100;
  int num_columns = 5;
  /// Probability that a field is double-quoted.
  double quote_probability = 0.3;
  /// Probability that a quoted field embeds a delimiter or newline.
  double embedded_delimiter_probability = 0.3;
  /// Probability that a quoted field embeds an escaped quote ("").
  double escaped_quote_probability = 0.2;
  /// Probability that a record has a deviating column count (ragged).
  double ragged_probability = 0.0;
  /// Probability that a field is empty.
  double empty_probability = 0.1;
  int max_field_length = 24;
  /// End the input with a record delimiter (false exercises the trailing-
  /// record path).
  bool trailing_newline = true;
};

/// Adversarial RFC 4180 CSV for property tests: quoted fields with
/// embedded delimiters/newlines/escapes, empty fields, ragged records.
std::string GenerateRandomCsv(uint64_t seed, const RandomCsvOptions& options);

/// Log-file-like input for the Extended Log Format DFA: space-delimited
/// fields, '#' directive lines, quoted strings.
std::string GenerateLogLike(uint64_t seed, size_t target_bytes);

/// TPC-H lineitem-like pipe-separated data (16 columns: integers,
/// decimals, flags, dates, free text) — the classic bulk-loading workload
/// for DSV formats beyond comma-separated CSV.
std::string GenerateLineitemLike(uint64_t seed, size_t target_bytes);

/// Schema matching GenerateLineitemLike's columns.
Schema LineitemSchema();

}  // namespace parparaw

#endif  // PARPARAW_WORKLOAD_GENERATORS_H_
