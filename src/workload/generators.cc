#include "workload/generators.h"

#include <algorithm>
#include <cstdio>
#include <random>

#include "convert/temporal.h"

namespace parparaw {

namespace {

constexpr const char* kWords[] = {
    "the",     "service", "food",    "great",  "place",   "really",
    "good",    "time",    "staff",   "back",   "amazing", "definitely",
    "ordered", "chicken", "friendly", "came",  "wait",    "delicious",
    "menu",    "restaurant"};
constexpr int kNumWords = static_cast<int>(sizeof(kWords) / sizeof(kWords[0]));

constexpr const char* kIdAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

std::string RandomId(std::mt19937_64* rng, int length) {
  std::string id(length, 'x');
  for (int i = 0; i < length; ++i) {
    id[i] = kIdAlphabet[(*rng)() % 64];
  }
  return id;
}

// Review-like text of roughly `target_len` characters; sprinkled with
// commas, newlines, and escaped quotes so the quoted-field context paths
// are exercised, mirroring what makes the yelp dataset "challenging".
void AppendReviewText(std::mt19937_64* rng, size_t target_len,
                      std::string* out) {
  size_t written = 0;
  while (written < target_len) {
    const char* word = kWords[(*rng)() % kNumWords];
    out->append(word);
    written += std::char_traits<char>::length(word);
    const uint64_t r = (*rng)() % 100;
    if (r < 4) {
      out->append(", ");
      written += 2;
    } else if (r < 6) {
      out->push_back('\n');
      written += 1;
    } else if (r < 8) {
      out->append("\"\"");  // escaped quote inside a quoted field
      written += 2;
    } else {
      out->push_back(' ');
      written += 1;
    }
  }
}

void AppendQuoted(const std::string& value, std::string* out) {
  out->push_back('"');
  out->append(value);
  out->push_back('"');
}

std::string TimestampString(std::mt19937_64* rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                2015 + static_cast<int>((*rng)() % 5),
                1 + static_cast<int>((*rng)() % 12),
                1 + static_cast<int>((*rng)() % 28),
                static_cast<int>((*rng)() % 24),
                static_cast<int>((*rng)() % 60),
                static_cast<int>((*rng)() % 60));
  return buf;
}

void AppendYelpRecord(std::mt19937_64* rng, size_t text_len,
                      std::string* out) {
  AppendQuoted(RandomId(rng, 22), out);
  out->push_back(',');
  AppendQuoted(RandomId(rng, 22), out);
  out->push_back(',');
  AppendQuoted(RandomId(rng, 22), out);
  out->push_back(',');
  AppendQuoted(std::to_string(1 + (*rng)() % 5), out);  // stars
  out->push_back(',');
  AppendQuoted(std::to_string((*rng)() % 50), out);  // useful
  out->push_back(',');
  AppendQuoted(std::to_string((*rng)() % 20), out);  // funny
  out->push_back(',');
  AppendQuoted(std::to_string((*rng)() % 20), out);  // cool
  out->push_back(',');
  out->push_back('"');
  AppendReviewText(rng, text_len, out);
  out->push_back('"');
  out->push_back(',');
  AppendQuoted(TimestampString(rng), out);
  out->push_back('\n');
}

}  // namespace

std::string GenerateYelpLike(uint64_t seed, size_t target_bytes) {
  std::mt19937_64 rng(seed);
  std::string out;
  out.reserve(target_bytes + 4096);
  // Text lengths vary widely around ~560 bytes so the whole record
  // averages ~720 bytes like the real dataset.
  std::lognormal_distribution<double> text_len(6.0, 0.7);
  while (out.size() < target_bytes) {
    const size_t len = std::clamp<size_t>(
        static_cast<size_t>(text_len(rng)), 20, 8000);
    AppendYelpRecord(&rng, len, &out);
  }
  return out;
}

Schema YelpSchema() {
  Schema schema;
  schema.AddField(Field("review_id", DataType::String()));
  schema.AddField(Field("user_id", DataType::String()));
  schema.AddField(Field("business_id", DataType::String()));
  schema.AddField(Field("stars", DataType::Int64()));
  schema.AddField(Field("useful", DataType::Int64()));
  schema.AddField(Field("funny", DataType::Int64()));
  schema.AddField(Field("cool", DataType::Int64()));
  schema.AddField(Field("text", DataType::String()));
  schema.AddField(Field("date", DataType::TimestampMicros()));
  return schema;
}

std::string GenerateTaxiLike(uint64_t seed, size_t target_bytes) {
  std::mt19937_64 rng(seed);
  std::string out;
  out.reserve(target_bytes + 512);
  char buf[256];
  while (out.size() < target_bytes) {
    const int vendor = 1 + static_cast<int>(rng() % 2);
    const std::string pickup = TimestampString(&rng);
    const std::string dropoff = TimestampString(&rng);
    const int passengers = 1 + static_cast<int>(rng() % 6);
    const double distance = static_cast<double>(rng() % 2000) / 100.0;
    const int ratecode = 1 + static_cast<int>(rng() % 6);
    const char store_flag = (rng() % 20 == 0) ? 'Y' : 'N';
    const int pu_loc = 1 + static_cast<int>(rng() % 265);
    const int do_loc = 1 + static_cast<int>(rng() % 265);
    const int payment = 1 + static_cast<int>(rng() % 4);
    const double fare = static_cast<double>(500 + rng() % 5000) / 100.0;
    const double extra = static_cast<double>(rng() % 100) / 100.0;
    const double mta = 0.5;
    const double tip = static_cast<double>(rng() % 1000) / 100.0;
    const double tolls = (rng() % 10 == 0)
                             ? static_cast<double>(rng() % 1200) / 100.0
                             : 0.0;
    const double surcharge = 0.3;
    const double total = fare + extra + mta + tip + tolls + surcharge;
    std::snprintf(buf, sizeof(buf),
                  "%d,%s,%s,%d,%.2f,%d,%c,%d,%d,%d,%.2f,%.2f,%.2f,%.2f,%.2f,"
                  "%.2f,%.2f\n",
                  vendor, pickup.c_str(), dropoff.c_str(), passengers,
                  distance, ratecode, store_flag, pu_loc, do_loc, payment,
                  fare, extra, mta, tip, tolls, surcharge, total);
    out.append(buf);
  }
  return out;
}

Schema TaxiSchema() {
  Schema schema;
  schema.AddField(Field("VendorID", DataType::Int64()));
  schema.AddField(Field("tpep_pickup_datetime", DataType::TimestampMicros()));
  schema.AddField(Field("tpep_dropoff_datetime", DataType::TimestampMicros()));
  schema.AddField(Field("passenger_count", DataType::Int64()));
  schema.AddField(Field("trip_distance", DataType::Float64()));
  schema.AddField(Field("RatecodeID", DataType::Int64()));
  schema.AddField(Field("store_and_fwd_flag", DataType::String()));
  schema.AddField(Field("PULocationID", DataType::Int64()));
  schema.AddField(Field("DOLocationID", DataType::Int64()));
  schema.AddField(Field("payment_type", DataType::Int64()));
  schema.AddField(Field("fare_amount", DataType::Float64()));
  schema.AddField(Field("extra", DataType::Float64()));
  schema.AddField(Field("mta_tax", DataType::Float64()));
  schema.AddField(Field("tip_amount", DataType::Float64()));
  schema.AddField(Field("tolls_amount", DataType::Float64()));
  schema.AddField(Field("improvement_surcharge", DataType::Float64()));
  schema.AddField(Field("total_amount", DataType::Float64()));
  return schema;
}

std::string GenerateSkewed(uint64_t seed, size_t target_bytes,
                           size_t giant_field_bytes, bool yelp_like) {
  std::mt19937_64 rng(seed ^ 0x5ca1ab1e);
  std::string base = yelp_like ? GenerateYelpLike(seed, target_bytes)
                               : GenerateTaxiLike(seed, target_bytes);
  // Insert one record whose text field dwarfs everything else, right after
  // a record boundary near the middle.
  size_t insert_at = base.find('\n', base.size() / 2);
  if (insert_at == std::string::npos) insert_at = base.size() - 1;
  ++insert_at;
  std::string giant;
  if (yelp_like) {
    giant.reserve(giant_field_bytes + 256);
    AppendYelpRecord(&rng, giant_field_bytes, &giant);
  } else {
    // Taxi-like rows are unquoted; a giant trailing text column would
    // change the schema, so skew the store_and_fwd_flag column instead by
    // preserving the 17-column shape with one huge (unquoted) field.
    giant = "1,2018-01-01 00:00:00,2018-01-01 00:30:00,1,1.00,1,";
    giant.append(giant_field_bytes, 'N');
    giant += ",1,1,1,10.00,0.00,0.50,0.00,0.00,0.30,10.80\n";
  }
  base.insert(insert_at, giant);
  return base;
}

std::string GenerateRandomCsv(uint64_t seed, const RandomCsvOptions& options) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::string out;
  for (int r = 0; r < options.num_records; ++r) {
    int columns = options.num_columns;
    if (coin(rng) < options.ragged_probability) {
      columns = 1 + static_cast<int>(rng() % (2 * options.num_columns));
    }
    for (int c = 0; c < columns; ++c) {
      if (c > 0) out.push_back(',');
      if (coin(rng) < options.empty_probability) continue;
      const bool quoted = coin(rng) < options.quote_probability;
      const int length = 1 + static_cast<int>(
                                 rng() % options.max_field_length);
      if (quoted) {
        out.push_back('"');
        for (int i = 0; i < length; ++i) {
          const double roll = coin(rng);
          if (roll < options.embedded_delimiter_probability / 2) {
            out.push_back(',');
          } else if (roll < options.embedded_delimiter_probability) {
            out.push_back('\n');
          } else if (roll <
                     options.embedded_delimiter_probability +
                         options.escaped_quote_probability) {
            out.append("\"\"");
          } else {
            out.push_back(static_cast<char>('a' + rng() % 26));
          }
        }
        out.push_back('"');
      } else {
        for (int i = 0; i < length; ++i) {
          // Unquoted fields avoid control symbols entirely.
          const uint64_t roll = rng() % 36;
          out.push_back(roll < 26 ? static_cast<char>('a' + roll)
                                  : static_cast<char>('0' + roll - 26));
        }
      }
    }
    const bool last = (r == options.num_records - 1);
    if (!last || options.trailing_newline) out.push_back('\n');
  }
  return out;
}

std::string GenerateLineitemLike(uint64_t seed, size_t target_bytes) {
  std::mt19937_64 rng(seed);
  std::string out;
  out.reserve(target_bytes + 512);
  constexpr const char* kInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                       "NONE", "TAKE BACK RETURN"};
  constexpr const char* kModes[] = {"TRUCK", "MAIL", "SHIP", "AIR", "RAIL",
                                    "FOB",   "REG AIR"};
  char buf[512];
  int64_t orderkey = 1;
  while (out.size() < target_bytes) {
    const int lines = 1 + static_cast<int>(rng() % 7);
    for (int line = 1; line <= lines && out.size() < target_bytes; ++line) {
      const int quantity = 1 + static_cast<int>(rng() % 50);
      const double price = static_cast<double>(90000 + rng() % 10000000) / 100;
      const double discount = static_cast<double>(rng() % 11) / 100;
      const double tax = static_cast<double>(rng() % 9) / 100;
      const char returnflag = "RNA"[rng() % 3];
      const char linestatus = "OF"[rng() % 2];
      const int base_day = 9131 + static_cast<int>(rng() % 2400);  // ~1995+
      std::snprintf(
          buf, sizeof(buf),
          "%lld|%llu|%llu|%d|%d|%.2f|%.2f|%.2f|%c|%c|%s|%s|%s|%s|%s|"
          "comment %llu about shipment\n",
          static_cast<long long>(orderkey),
          static_cast<unsigned long long>(1 + rng() % 200000),
          static_cast<unsigned long long>(1 + rng() % 10000), line, quantity,
          price, discount, tax, returnflag, linestatus,
          FormatDate32(base_day).c_str(),
          FormatDate32(base_day + 30 + static_cast<int>(rng() % 60))
              .c_str(),
          FormatDate32(base_day + 1 + static_cast<int>(rng() % 30))
              .c_str(),
          kInstruct[rng() % 4], kModes[rng() % 7],
          static_cast<unsigned long long>(rng() % 100000));
      out.append(buf);
    }
    ++orderkey;
  }
  return out;
}

Schema LineitemSchema() {
  Schema schema;
  schema.AddField(Field("l_orderkey", DataType::Int64()));
  schema.AddField(Field("l_partkey", DataType::Int64()));
  schema.AddField(Field("l_suppkey", DataType::Int64()));
  schema.AddField(Field("l_linenumber", DataType::Int32()));
  schema.AddField(Field("l_quantity", DataType::Int64()));
  schema.AddField(Field("l_extendedprice", DataType::Decimal64(2)));
  schema.AddField(Field("l_discount", DataType::Decimal64(2)));
  schema.AddField(Field("l_tax", DataType::Decimal64(2)));
  schema.AddField(Field("l_returnflag", DataType::String()));
  schema.AddField(Field("l_linestatus", DataType::String()));
  schema.AddField(Field("l_shipdate", DataType::Date32()));
  schema.AddField(Field("l_commitdate", DataType::Date32()));
  schema.AddField(Field("l_receiptdate", DataType::Date32()));
  schema.AddField(Field("l_shipinstruct", DataType::String()));
  schema.AddField(Field("l_shipmode", DataType::String()));
  schema.AddField(Field("l_comment", DataType::String()));
  return schema;
}

std::string GenerateLogLike(uint64_t seed, size_t target_bytes) {
  std::mt19937_64 rng(seed);
  std::string out;
  out.reserve(target_bytes + 512);
  out += "#Version: 1.0\n";
  out += "#Fields: date time cs-method cs-uri sc-status time-taken\n";
  char buf[256];
  while (out.size() < target_bytes) {
    if (rng() % 50 == 0) {
      out += "#Remark: \"rotation, checkpoint\"\n";  // directive with quotes
      continue;
    }
    std::snprintf(
        buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d %s /p%llu/r%llu %d %d\n",
        2019 + static_cast<int>(rng() % 2), 1 + static_cast<int>(rng() % 12),
        1 + static_cast<int>(rng() % 28), static_cast<int>(rng() % 24),
        static_cast<int>(rng() % 60), static_cast<int>(rng() % 60),
        (rng() % 4 == 0) ? "POST" : "GET",
        static_cast<unsigned long long>(rng() % 1000),
        static_cast<unsigned long long>(rng() % 100000),
        (rng() % 10 == 0) ? 404 : 200, static_cast<int>(rng() % 2000));
    out.append(buf);
  }
  return out;
}

}  // namespace parparaw
