#ifndef PARPARAW_WORKLOAD_REQUEST_STREAM_H_
#define PARPARAW_WORKLOAD_REQUEST_STREAM_H_

#include <cstdint>

namespace parparaw {

/// \brief Seeded client-workload generators for driving parparawd.
///
/// The dataset generators in workload/generators.h synthesise the bytes;
/// this module synthesises the *request arrivals*: which dataset a client
/// asks for (uniform or Zipf-skewed popularity, the standard key-value
/// store workload idiom), what kind of request it issues, and — for
/// open-loop harnesses — how long to wait before the next send. Every
/// generator is seeded and reproducible so a soak run or a benchmark can
/// be replayed bit-for-bit.

/// xorshift64* — the same tiny deterministic PRNG the chaos tests use.
class StreamRng {
 public:
  explicit StreamRng(uint64_t seed) : state_(seed != 0 ? seed : 0x9E3779B9u) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [0, n).
  uint64_t NextRange(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

/// Uniform item popularity over [0, n).
class UniformPick {
 public:
  UniformPick(uint64_t n, uint64_t seed) : n_(n), rng_(seed) {}
  uint64_t Next() { return rng_.NextRange(n_); }

 private:
  uint64_t n_;
  StreamRng rng_;
};

/// Zipf-skewed item popularity over [0, n) (Gray et al.'s rejection-free
/// method with precomputed zeta constants — the YCSB generator). With
/// theta ~0.99 a handful of head items absorb most requests, which is
/// what makes shared admission interesting: hot datasets collide.
class ZipfPick {
 public:
  ZipfPick(uint64_t n, double theta, uint64_t seed);
  uint64_t Next();

  /// The distribution's support size.
  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  StreamRng rng_;
};

/// What a generated request asks the daemon to do.
enum class RequestKind : uint8_t {
  kParse = 0,        // upload bytes, whole-table response
  kStreamParse = 1,  // upload bytes, per-partition stream
  kQuery = 2,        // pushdown predicate over uploaded bytes
  kPing = 3,         // liveness no-op
};

/// Request-kind mix as cumulative-free weights (normalised internally).
struct RequestMix {
  double parse = 0.6;
  double stream_parse = 0.15;
  double query = 0.2;
  double ping = 0.05;
};

/// One generated request.
struct Request {
  uint64_t sequence = 0;
  RequestKind kind = RequestKind::kParse;
  /// Which preloaded dataset the harness should send.
  uint64_t dataset = 0;
  /// Open-loop spacing before this request is sent; 0 in closed loop.
  int64_t inter_arrival_us = 0;
  /// Wire deadline (RequestOptions::deadline_ms); 0 = none. Sampled
  /// deterministically for the fraction of requests the options ask for.
  uint32_t deadline_ms = 0;
};

/// Deterministic stream of requests for a closed- or open-loop client.
class RequestStream {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Size of the dataset pool the harness preloaded.
    uint64_t num_datasets = 16;
    /// Zipf-skew dataset popularity (false = uniform).
    bool zipf = true;
    double zipf_theta = 0.99;
    RequestMix mix;
    /// Open-loop Poisson arrival rate in requests/second; 0 = closed
    /// loop (inter_arrival_us stays 0, the client sends back-to-back).
    double arrivals_per_sec = 0;
    /// Fraction of requests (0..1) stamped with a wire deadline, drawn
    /// uniformly from [deadline_min_ms, deadline_max_ms]. 0 = never.
    double deadline_fraction = 0;
    uint32_t deadline_min_ms = 50;
    uint32_t deadline_max_ms = 500;
  };

  explicit RequestStream(const Options& options);

  Request Next();

 private:
  Options options_;
  StreamRng rng_;
  ZipfPick zipf_;
  UniformPick uniform_;
  double mix_total_;
  uint64_t sequence_ = 0;
};

}  // namespace parparaw

#endif  // PARPARAW_WORKLOAD_REQUEST_STREAM_H_
