#include "io/file.h"

#include <cerrno>
#include <cstring>

namespace parparaw {

namespace {

std::string ErrnoMessage(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open '" + path + "'"));
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::IoError(ErrnoMessage("error reading '" + path + "'"));
  }
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create '" + path + "'"));
  }
  const size_t written =
      contents.empty()
          ? 0
          : std::fwrite(contents.data(), 1, contents.size(), file);
  const bool failed = written != contents.size() || std::fclose(file) != 0;
  if (failed) {
    return Status::IoError(ErrnoMessage("error writing '" + path + "'"));
  }
  return Status::OK();
}

FileChunkReader::~FileChunkReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileChunkReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open '" + path + "'"));
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError(ErrnoMessage("cannot seek '" + path + "'"));
  }
  file_size_ = std::ftell(file_);
  std::rewind(file_);
  return Status::OK();
}

Status FileChunkReader::ReadNext(size_t max_bytes, std::string* out,
                                 bool* eof) {
  if (file_ == nullptr) return Status::Invalid("reader not open");
  out->resize(max_bytes);
  const size_t n = std::fread(out->data(), 1, max_bytes, file_);
  if (n < max_bytes && std::ferror(file_) != 0) {
    return Status::IoError("read error");
  }
  out->resize(n);
  *eof = std::feof(file_) != 0 || n == 0;
  return Status::OK();
}

}  // namespace parparaw
