#include "io/file.h"

#include <cerrno>
#include <cstring>

#include "robust/failpoint.h"
#include "robust/resource_guard.h"

namespace parparaw {

namespace {

std::string ErrnoMessage(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

// Bounded deterministic backoff shared by the transient-retry loops below.
// Transient conditions are EINTR-class: a signal interrupted the stdio call
// (errno == EINTR), or the `io.read`/`io.write` failpoint fired with the
// transient flag. Everything else propagates immediately.
struct TransientRetry {
  robust::RetryPolicy policy;
  int attempt = 0;

  // True when a retry budget remains; sleeps the backoff and consumes one.
  bool Next() {
    if (attempt + 1 >= policy.max_attempts) return false;
    ++attempt;
    robust::internal::BackoffSleepAndCount(policy.DelayUs(attempt));
    return true;
  }
};

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  PARPARAW_FAILPOINT("io.open");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open '" + path + "'"));
  }
  std::string contents;
  char buf[1 << 16];
  TransientRetry retry;
  while (true) {
    bool transient = false;
    const Status injected = robust::CheckFailpoint("io.read", &transient);
    if (!injected.ok()) {
      if (transient && retry.Next()) continue;
      std::fclose(file);
      return injected;
    }
    errno = 0;
    const size_t n = std::fread(buf, 1, sizeof(buf), file);
    if (n > 0) contents.append(buf, n);
    if (n == sizeof(buf)) continue;
    if (std::ferror(file) != 0) {
      if (errno == EINTR && retry.Next()) {
        std::clearerr(file);
        continue;
      }
      const Status st =
          Status::IoError(ErrnoMessage("error reading '" + path + "'"));
      std::fclose(file);
      return st;
    }
    break;  // short read without error: end of file
  }
  std::fclose(file);
  return contents;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  PARPARAW_FAILPOINT("io.open");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create '" + path + "'"));
  }
  size_t written = 0;
  TransientRetry retry;
  while (written < contents.size()) {
    bool transient = false;
    const Status injected = robust::CheckFailpoint("io.write", &transient);
    if (!injected.ok()) {
      if (transient && retry.Next()) continue;
      std::fclose(file);
      return injected;
    }
    errno = 0;
    const size_t n =
        std::fwrite(contents.data() + written, 1, contents.size() - written,
                    file);
    written += n;
    if (written == contents.size()) break;
    // Partial write: retry the remainder on EINTR, fail otherwise — a
    // silent short write would truncate the file without an error.
    if (errno == EINTR && retry.Next()) {
      std::clearerr(file);
      continue;
    }
    const Status st = Status::IoError(
        ErrnoMessage("short write to '" + path + "' (" +
                     std::to_string(written) + " of " +
                     std::to_string(contents.size()) + " bytes)"));
    std::fclose(file);
    return st;
  }
  if (std::fclose(file) != 0) {
    return Status::IoError(ErrnoMessage("error closing '" + path + "'"));
  }
  return Status::OK();
}

FileChunkReader::~FileChunkReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileChunkReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_size_ = 0;
  PARPARAW_FAILPOINT("io.open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open '" + path + "'"));
  }
  // A failed reader must not look open: close and null the handle on every
  // error below so a later ReadNext reports "not open" instead of reading
  // from an undefined position.
  const auto fail = [&](Status st) {
    std::fclose(file_);
    file_ = nullptr;
    return st;
  };
  const Status injected = robust::CheckFailpoint("io.tell");
  if (!injected.ok()) return fail(injected);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return fail(Status::IoError(ErrnoMessage("cannot seek '" + path + "'")));
  }
  const long size = std::ftell(file_);  // NOLINT(runtime/int): stdio API
  if (size < 0) {
    return fail(Status::IoError(ErrnoMessage("cannot tell '" + path + "'")));
  }
  file_size_ = static_cast<int64_t>(size);
  std::rewind(file_);
  return Status::OK();
}

Status FileChunkReader::ReadNext(size_t max_bytes, std::string* out,
                                 bool* eof) {
  if (file_ == nullptr) return Status::Invalid("reader not open");
  out->clear();
  out->resize(max_bytes);
  size_t total = 0;
  bool at_eof = false;
  TransientRetry retry;
  while (total < max_bytes && !at_eof) {
    bool transient = false;
    const Status injected = robust::CheckFailpoint("io.read", &transient);
    if (!injected.ok()) {
      if (transient && retry.Next()) continue;
      return injected;
    }
    errno = 0;
    const size_t n =
        std::fread(out->data() + total, 1, max_bytes - total, file_);
    total += n;
    if (total == max_bytes) break;
    if (std::ferror(file_) != 0) {
      // Short reads are resumed from where they stopped; EINTR-class
      // interruptions retry with backoff instead of failing the stream.
      if (errno == EINTR && retry.Next()) {
        std::clearerr(file_);
        continue;
      }
      return Status::IoError(ErrnoMessage("read error"));
    }
    at_eof = true;  // short read without error: end of file
  }
  out->resize(total);
  *eof = at_eof || total == 0;
  return Status::OK();
}

}  // namespace parparaw
