#ifndef PARPARAW_IO_FILE_H_
#define PARPARAW_IO_FILE_H_

#include <cstdio>
#include <string>

#include "util/result.h"

namespace parparaw {

/// Reads an entire file into memory.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (truncating) `contents` to `path`.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// \brief Sequential chunk reader feeding the streaming parser from disk.
///
/// Reads fixed-size partitions; the caller prepends its own carry-over
/// (the streaming parser does this internally when given whole buffers —
/// this reader exists so inputs larger than memory can be streamed).
class FileChunkReader {
 public:
  FileChunkReader() = default;
  ~FileChunkReader();

  FileChunkReader(const FileChunkReader&) = delete;
  FileChunkReader& operator=(const FileChunkReader&) = delete;

  /// Opens `path` for reading.
  Status Open(const std::string& path);

  /// Reads up to `max_bytes` into `out` (cleared first). Sets `*eof` when
  /// the file is exhausted; a final partial read still returns data with
  /// `*eof == true` only when nothing further remains.
  Status ReadNext(size_t max_bytes, std::string* out, bool* eof);

  /// Total bytes of the open file.
  int64_t file_size() const { return file_size_; }

 private:
  std::FILE* file_ = nullptr;
  int64_t file_size_ = 0;
};

}  // namespace parparaw

#endif  // PARPARAW_IO_FILE_H_
