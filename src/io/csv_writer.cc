#include "io/csv_writer.h"

#include <cinttypes>
#include <cstdio>

#include "convert/temporal.h"

namespace parparaw {

namespace {

bool NeedsQuoting(std::string_view value, const CsvWriteOptions& options) {
  if (value.empty()) return false;
  if (value.front() == ' ' || value.back() == ' ') return true;
  for (char c : value) {
    if (c == static_cast<char>(options.field_delimiter) ||
        c == static_cast<char>(options.record_delimiter) ||
        c == static_cast<char>(options.quote)) {
      return true;
    }
  }
  return false;
}

void AppendField(std::string_view value, const CsvWriteOptions& options,
                 std::string* out) {
  if (!options.quote_all && !NeedsQuoting(value, options)) {
    out->append(value);
    return;
  }
  const char quote = static_cast<char>(options.quote);
  out->push_back(quote);
  for (char c : value) {
    if (c == quote) out->push_back(quote);  // RFC 4180 "" escape
    out->push_back(c);
  }
  out->push_back(quote);
}

// Renders a value slot in a form that parses back to the identical value.
std::string RenderValue(const Column& column, int64_t row) {
  char buf[64];
  switch (column.type().id) {
    case TypeId::kFloat64:
      // 17 significant digits guarantee exact double round-trips.
      std::snprintf(buf, sizeof(buf), "%.17g", column.Value<double>(row));
      return buf;
    case TypeId::kDate32:
      return FormatDate32(column.Value<int32_t>(row));
    case TypeId::kTimestampMicros:
      return FormatTimestampMicros(column.Value<int64_t>(row));
    default:
      return column.ValueToString(row);
  }
}

}  // namespace

Result<std::string> WriteCsv(const Table& table,
                             const CsvWriteOptions& options) {
  if (options.field_delimiter == options.record_delimiter) {
    return Status::Invalid("field and record delimiter must differ");
  }
  std::string out;
  if (options.header) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(static_cast<char>(options.field_delimiter));
      AppendField(table.schema.field(c).name, options, &out);
    }
    out.push_back(static_cast<char>(options.record_delimiter));
  }
  for (int64_t row = 0; row < table.num_rows; ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(static_cast<char>(options.field_delimiter));
      const Column& column = table.columns[c];
      if (column.IsNull(row)) {
        AppendField(options.null_literal, options, &out);
      } else if (column.type().id == TypeId::kString) {
        AppendField(column.StringValue(row), options, &out);
      } else {
        AppendField(RenderValue(column, row), options, &out);
      }
    }
    out.push_back(static_cast<char>(options.record_delimiter));
  }
  return out;
}

}  // namespace parparaw
