#ifndef PARPARAW_IO_CSV_WRITER_H_
#define PARPARAW_IO_CSV_WRITER_H_

#include <string>

#include "columnar/table.h"
#include "util/result.h"

namespace parparaw {

/// Options controlling textual (re-)serialisation of a table.
struct CsvWriteOptions {
  uint8_t field_delimiter = ',';
  uint8_t record_delimiter = '\n';
  uint8_t quote = '"';
  /// Quote every field, like the yelp dataset, instead of only fields that
  /// need it (contain a delimiter, a quote, or leading/trailing space).
  bool quote_all = false;
  /// Text emitted for NULL slots; must not require quoting. The empty
  /// string round-trips through a parse with matching defaults/nullables.
  std::string null_literal;
  /// Emit a header row with the column names.
  bool header = false;
};

/// \brief Serialises a columnar table back to delimiter-separated text.
///
/// The inverse of the parser for supported types; used by the round-trip
/// property tests (parse(write(T)) == T) and the CLI examples. Values are
/// RFC 4180-quoted when they contain structural characters.
Result<std::string> WriteCsv(const Table& table,
                             const CsvWriteOptions& options = {});

}  // namespace parparaw

#endif  // PARPARAW_IO_CSV_WRITER_H_
