#include "baseline/sequential_parser.h"

#include <string>

#include "baseline/row_buffer.h"
#include "text/unicode.h"
#include "util/stopwatch.h"

namespace parparaw {

Result<ParseOutput> SequentialParser::Parse(std::string_view input,
                                            const ParseOptions& options) {
  ParseOptions resolved = options;
  if (resolved.format.dfa.num_states() == 0) {
    PARPARAW_ASSIGN_OR_RETURN(resolved.format, Rfc4180Format());
  }

  std::string transcoded;
  if (resolved.encoding == TextEncoding::kUtf16Le) {
    PARPARAW_ASSIGN_OR_RETURN(
        transcoded, TranscodeUtf16LeToUtf8(nullptr, input));
    input = transcoded;
    resolved.encoding = TextEncoding::kUtf8;
  }

  int64_t skip_rows = resolved.skip_rows;
  while (skip_rows > 0 && !input.empty()) {
    const size_t pos =
        input.find(static_cast<char>(resolved.format.record_delimiter));
    if (pos == std::string_view::npos) {
      input = std::string_view();
      break;
    }
    input.remove_prefix(pos + 1);
    --skip_rows;
  }

  Stopwatch watch;
  ParseOutput output;
  output.work.input_bytes = static_cast<int64_t>(input.size());

  RecordBuffer records;
  const bool emit_trailing = !resolved.exclude_trailing_record;
  const ScanResult scan = AppendParsedRange(
      resolved.format, reinterpret_cast<const uint8_t*>(input.data()), 0,
      input.size(), emit_trailing, &records);
  if (resolved.validate) {
    if (scan.first_invalid >= 0) {
      return Status::ParseError("invalid symbol at byte offset " +
                                std::to_string(scan.first_invalid));
    }
    if (!resolved.format.dfa.IsAccepting(scan.final_state)) {
      return Status::ParseError(
          "input ends in non-accepting state '" +
          resolved.format.dfa.state_name(scan.final_state) + "'");
    }
  }
  output.timings.parse_ms = watch.ElapsedMillis();

  Stopwatch convert_watch;
  PARPARAW_ASSIGN_OR_RETURN(
      output.table, BuildTableFromRecords(records, resolved, &output));
  output.timings.convert_ms = convert_watch.ElapsedMillis();
  return output;
}

}  // namespace parparaw
